#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md: run every experiment E1-E14 and record
paper-claim vs measured values.

Run:  python scripts/run_experiments.py  [--fast]

This is the human-readable companion to ``pytest benchmarks/
--benchmark-only`` (which times the same code paths); here we collect
the *claim-relevant measurements* into one markdown report.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from pathlib import Path

import numpy as np

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "benchmarks"))

from repro import (  # noqa: E402
    LaplacianSolver,
    default_options,
    practical_options,
    use_ledger,
)
from repro.baselines import DirectSolver, KS16Solver, cg_solve  # noqa: E402
from repro.config import SolverOptions  # noqa: E402
from repro.core.apply_cholesky import ApplyCholeskyOperator  # noqa: E402
from repro.core.block_cholesky import block_cholesky  # noqa: E402
from repro.core.boundedness import (  # noqa: E402
    leverage_scores,
    naive_split,
)
from repro.core.dd_subset import DDSubsetStats, five_dd_subset  # noqa: E402
from repro.core.lev_est import leverage_split  # noqa: E402
from repro.core.richardson import richardson_iterations  # noqa: E402
from repro.core.schur import approx_schur  # noqa: E402
from repro.core.terminal_walks import terminal_walks  # noqa: E402
from repro.graphs import generators as G  # noqa: E402
from repro.graphs.laplacian import laplacian  # noqa: E402
from repro.linalg.loewner import (  # noqa: E402
    approximation_factor,
    operator_approximation_factor,
)
from repro.linalg.ops import relative_lnorm_error  # noqa: E402
from repro.linalg.pinv import (  # noqa: E402
    exact_schur_complement,
    exact_solution,
)
from repro.theory.complexity import fit_power_law  # noqa: E402
from repro.theory.concentration import (  # noqa: E402
    martingale_deviation_trace,
)

from conftest import workload  # noqa: E402  (benchmarks/conftest.py)


def rhs(g, seed=0):
    b = np.random.default_rng(seed).standard_normal(g.n)
    return b - b.mean()


def md_table(headers, rows):
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join(["---"] * len(headers)) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def e01(fast):
    rows = []
    for name in ("grid", "expander", "er", "weighted_grid"):
        g = workload(name, 250 if fast else 400, seed=1)
        solver = LaplacianSolver(g, options=default_options(), seed=0)
        b = rhs(g)
        xstar = exact_solution(g, b)
        for eps in (1e-1, 1e-4, 1e-8):
            x = solver.solve(b, eps=eps)
            err = relative_lnorm_error(laplacian(g), x, xstar)
            rows.append([name, g.n, f"{eps:.0e}", f"{err:.2e}",
                         "PASS" if err <= eps else "FAIL"])
    return ("E1 · Theorem 1.1 — ε-accuracy",
            "`‖x̃ − L⁺b‖_L ≤ ε‖L⁺b‖_L` for every requested ε",
            md_table(["workload", "n", "ε target", "measured error", "ok"],
                     rows))


def e02_e03(fast):
    sizes = [150, 300, 600] if fast else [150, 300, 600, 1200, 2400]
    rows = []
    ms, works = [], []
    for n_target in sizes:
        g = workload("grid", n_target, seed=2)
        b = np.zeros(g.n)
        b[0], b[-1] = 1, -1
        with use_ledger() as build_ledger:
            solver = LaplacianSolver(g, options=default_options(), seed=0)
            solver.solve(b, eps=1e-4)
        with use_ledger() as apply_ledger:
            solver.preconditioner.apply(b)
        ms.append(g.m)
        works.append(build_ledger.work)
        d = max(solver.chain.d, 1)
        l = max((lvl.jacobi.l for lvl in solver.chain.levels), default=1)
        logm = math.log2(max(solver.multigraph.m_logical, 2))
        ratio = apply_ledger.depth / (d * l * logm)
        rows.append([g.n, g.m, f"{build_ledger.work:.3e}",
                     f"{build_ledger.work / g.m:.0f}",
                     f"{apply_ledger.depth:.3e}", d, l,
                     f"{ratio:.2f}"])
    wfit = fit_power_law(ms, works)
    body = md_table(
        ["n", "m", "ledger work (build+solve)", "work/m",
         "apply depth", "d", "jacobi l", "depth/(d·l·log m)"], rows)
    body += (
        f"\n\nwork ∝ m^{wfit.exponent:.2f} (near-linear; paper: "
        f"m·polylog).  The depth column decomposes as predicted: "
        f"depth/(d·l·log m) stays flat across the sweep, i.e. "
        f"depth = O(d·log m·loglog n), and E5 checks "
        f"d ≤ log_{{40/39}} n.  (Exponent-fitting depth vs n is "
        f"meaningless at laptop scale: the paper's d-bound carries a "
        f"36.5× constant in front of log n, so the transient of "
        f"log(n/100) dominates any feasible sweep.)")
    return ("E2+E3 · Theorem 1.1 — work and depth scaling",
            "work `Õ(m log³ n)` (≈ linear in m), depth `O(log² n loglog n)`",
            body)


def e04_e05(fast):
    rows = []
    for name in ("grid", "expander", "er", "barbell"):
        g = workload(name, 250 if fast else 400, seed=4)
        opts = default_options()
        H = naive_split(g, opts.alpha(g.n))
        chain = block_cholesky(H, opts, seed=0)
        counts = chain.edge_counts
        bound = math.log(g.n) / math.log(40 / 39)
        rows.append([name, H.m_logical, max(counts), chain.d,
                     f"{bound:.0f}",
                     "PASS" if max(counts) <= H.m_logical else "FAIL"])
    return ("E4+E5 · Theorem 3.9-(1),(4) — edge budget and level count",
            "every `G^(k)` has ≤ m multi-edges; `d ≤ log_{40/39} n`",
            md_table(["workload", "m (split)", "max level edges",
                      "levels d", "paper bound on d", "edges ok"], rows))


def e06(fast):
    rows = []
    for name in ("grid", "expander", "er"):
        g = workload(name, 800, seed=6)
        rounds, sizes = [], []
        for seed in range(10):
            stats = DDSubsetStats()
            F = five_dd_subset(g, seed=seed, stats=stats)
            rounds.append(stats.rounds)
            sizes.append(F.size)
        rows.append([name, g.n, f"{np.mean(sizes) / g.n:.3f}",
                     f"{np.mean(rounds):.1f}", max(rounds)])
    return ("E6 · Lemma 3.4 — 5DDSubset",
            "|F| ≥ n/40 (= 0.025·n) in O(1) expected rounds",
            md_table(["workload", "n", "mean |F|/n", "mean rounds",
                      "max rounds"], rows))


def e07(fast):
    rows = []
    for name in ("grid", "expander", "er"):
        g = naive_split(workload(name, 600, seed=7), 0.25)
        F = five_dd_subset(g, seed=0)
        C = np.setdiff1d(np.arange(g.n), F)
        _, stats = terminal_walks(g, C, seed=1, return_stats=True)
        rows.append([name, g.m_logical,
                     f"{stats.mean_walk_length:.2f}",
                     stats.max_walk_length,
                     f"{stats.total_steps / g.m_logical:.2f}"])
    return ("E7 · Lemma 5.4 — terminal-walk lengths",
            "mean length O(1); max O(log m) whp; total steps O(m)",
            md_table(["workload", "m", "mean len", "max len",
                      "steps/m"], rows))


def e08(fast):
    g = workload("grid", 36, seed=8)
    C = np.arange(0, g.n, 2)
    SC = exact_schur_complement(laplacian(g).toarray(), C)
    rng = np.random.default_rng(0)
    trials = 1500 if fast else 3000
    acc = np.zeros((C.size, C.size))
    for _ in range(trials):
        H = terminal_walks(g, C, seed=rng)
        acc += laplacian(H).toarray()[np.ix_(C, C)]
    bias = np.abs(acc / trials - SC).max() / np.abs(SC).max()

    g2 = workload("grid", 49, seed=8)
    H2 = naive_split(g2, 0.05)
    chain = block_cholesky(H2, SolverOptions(min_vertices=12), seed=3)
    devs = martingale_deviation_trace(g2, chain)
    body = (f"Monte-Carlo mean of `TerminalWalks` over {trials} trials: "
            f"max relative entrywise bias = **{bias:.3f}** "
            f"(unbiased ⇒ →0).\n\n"
            f"Martingale deviation trace (Theorem 3.9 proof envelope "
            f"0.3): max over {len(devs)} levels = **{max(devs):.3f}**.")
    return ("E8 · Lemma 5.1 / Section 5 — unbiasedness & concentration",
            "E[L_H] = SC(L_G, C); normalised deviation stays ≤ 0.3 whp",
            body)


def e09(fast):
    rows = []
    for name in ("grid", "expander", "weighted_grid"):
        g = workload(name, 90, seed=9)
        H = naive_split(g, 0.05)
        chain = block_cholesky(H, SolverOptions(min_vertices=20), seed=0)
        W = ApplyCholeskyOperator(chain)
        fW = operator_approximation_factor(W.apply, laplacian(g))
        fC = approximation_factor(chain.dense_factorization(),
                                  laplacian(g).toarray())
        rows.append([name, g.n, chain.d, f"{fC:.3f}", f"{fW:.3f}",
                     "PASS" if (fC <= 0.5 and fW <= 1.0) else "FAIL"])
    return ("E9 · Theorems 3.9-(5), 3.10 — factorization & operator "
            "quality",
            "chain `≈_{0.5}` L; operator `W ≈₁ L⁺`",
            md_table(["workload", "n", "d", "chain ε", "W ε", "ok"],
                     rows))


def e10(fast):
    from repro.core.richardson import preconditioned_richardson
    from repro.linalg.pinv import dense_laplacian_pinv

    g = workload("grid", 300, seed=10)
    L = laplacian(g)
    P = dense_laplacian_pinv(L.toarray())
    delta = 1.0
    B = lambda v: math.exp(delta) * (P @ v)  # noqa: E731
    b = rhs(g)
    xstar = exact_solution(g, b)
    rows = []
    for eps in (1e-2, 1e-5, 1e-9):
        res = preconditioned_richardson(
            lambda v: np.asarray(L @ v).ravel(), B, b,
            delta=delta, eps=eps)
        err = relative_lnorm_error(L, res.x, xstar)
        rows.append([f"{eps:.0e}", richardson_iterations(delta, eps),
                     res.iterations, f"{err:.2e}",
                     "PASS" if err <= eps else "FAIL"])
    return ("E10 · Theorem 3.8 — preconditioned Richardson",
            "⌈e^{2δ} log(1/ε)⌉ iterations reach ε",
            md_table(["ε", "formula iters", "used iters",
                      "measured error", "ok"], rows))


def e11(fast):
    g = workload("grid", 64, seed=11)
    C = np.arange(0, g.n, 3)
    SC = exact_schur_complement(laplacian(g).toarray(), C)
    rows = []
    for eps in (0.5, 0.3, 0.15):
        report = approx_schur(g, C, eps=eps, seed=0, return_report=True)
        H = report.graph
        LH = laplacian(H).toarray()[np.ix_(C, C)]
        measured = approximation_factor(LH, SC)
        rows.append([eps, f"{measured:.3f}", report.edges_per_round[0],
                     H.m_logical, report.rounds,
                     "PASS" if measured <= eps else "FAIL"])
    return ("E11 · Theorem 7.1 — ApproxSchur",
            "`L_{G_S} ≈_ε SC(L, C)` with ≤ m multi-edges, O(log s) rounds",
            md_table(["ε target", "measured ε", "m in", "m out",
                      "rounds", "ok"], rows))


def e12(fast):
    rows = []
    # iterations vs CG on a skewed grid
    g = workload("weighted_grid", 400, seed=12)
    b = rhs(g)
    ours = LaplacianSolver(g, options=default_options(), seed=0)
    rep = ours.solve_report(b, eps=1e-6, method="pcg")
    cg = cg_solve(g, b, eps=1e-6)
    rows.append(["iterations (skewed grid)", rep.iterations,
                 cg.iterations, "ours (PCG+W) vs plain CG"])
    # parallel rounds vs KS16 sequential eliminations
    g2 = workload("grid", 900, seed=12)
    s2 = LaplacianSolver(g2, options=default_options(), seed=0)
    rows.append(["elimination rounds (grid n=900)", s2.chain.d, g2.n,
                 "our d vs KS16's n sequential pivots"])
    # accuracy parity
    g3 = workload("grid", 300, seed=12)
    b3 = rhs(g3)
    xstar = exact_solution(g3, b3)
    e_ours = relative_lnorm_error(
        laplacian(g3),
        LaplacianSolver(g3, options=default_options(), seed=1)
        .solve(b3, eps=1e-8), xstar)
    e_ks = relative_lnorm_error(
        laplacian(g3), KS16Solver(g3, seed=0, split_factor=0.3)
        .solve(b3, eps=1e-8), xstar)
    rows.append(["relative L-norm error", f"{e_ours:.1e}",
                 f"{e_ks:.1e}", "ours vs KS16-PCG at ε=1e-8"])
    return ("E12 · intro comparison — vs KS16 / CG / direct",
            "same sampling paradigm, but O(log n) parallel rounds; "
            "bounded iterations where CG degrades",
            md_table(["metric", "ours", "baseline", "note"], rows))


def e13(fast):
    import scipy.linalg

    from repro.graphs.laplacian import laplacian_blocks
    from repro.linalg.jacobi import JacobiOperator

    g = workload("grid", 400, seed=13)
    F = five_dd_subset(g, seed=13)
    C = np.setdiff1d(np.arange(g.n), F)
    blocks = laplacian_blocks(g, F, C)
    rows = []
    for eps in (0.5, 0.1, 0.02):
        op = JacobiOperator(blocks.X, blocks.Y, eps)
        Zinv = op.dense_Zinv()
        M = np.diag(blocks.X) + blocks.Y.toarray()
        lo = float(scipy.linalg.eigvalsh(Zinv - M).min())
        hi = float(scipy.linalg.eigvalsh(
            M + eps * blocks.Y.toarray() - Zinv).min())
        rows.append([eps, op.l, f"{lo:.1e}", f"{hi:.1e}",
                     "PASS" if lo > -1e-8 and hi > -1e-8 else "FAIL"])
    return ("E13 · Lemma 3.5 — Jacobi operator sandwich",
            "`M ≼ Z⁻¹ ≼ M + εY` with l = O(log 1/ε) terms",
            md_table(["ε", "terms l", "min eig(Z⁻¹−M)",
                      "min eig(M+εY−Z⁻¹)", "ok"], rows))


def e14(fast):
    rows = []
    for g, name in ((G.complete(50), "complete n=50 (dense)"),
                    (workload("grid", 400, seed=14), "grid n=400 "
                                                     "(sparse)")):
        alpha = 1.0 / 16.0
        lev = leverage_split(g, alpha, K=3, seed=0,
                             options=practical_options())
        naive = naive_split(g, alpha)
        rows.append([name, g.m, naive.m_logical, lev.m_logical,
                     f"{naive.m_logical / lev.m_logical:.2f}x"])
    g = G.complete(36)
    tau = leverage_scores(g)
    from repro.core.lev_est import leverage_overestimates

    tau_hat = leverage_overestimates(g, K=3, seed=2,
                                     options=practical_options())
    frac = float(np.mean(tau_hat >= tau * 0.999))
    body = md_table(["workload", "m", "naive multi-edges",
                     "leverage multi-edges", "savings"], rows)
    body += (f"\n\noverestimate validity on K₃₆: "
             f"τ̂ ≥ τ on **{frac:.1%}** of edges "
             f"(Στ̂ = {tau_hat.sum():.0f}, bound O(nK) = "
             f"{g.n * 3}).")
    return ("E14 · Lemmas 3.2 vs 3.3 — splitting schemes",
            "naive O(m/α) vs leverage O(m + nKα⁻¹); "
            "leverage wins on dense graphs",
            body)


EXPERIMENTS = [e01, e02_e03, e04_e05, e06, e07, e08, e09, e10, e11,
               e12, e13, e14]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--fast", action="store_true",
                        help="smaller sizes / fewer trials")
    parser.add_argument("--output", default=str(ROOT / "EXPERIMENTS.md"))
    args = parser.parse_args()

    sections = []
    for fn in EXPERIMENTS:
        t0 = time.time()
        title, claim, body = fn(args.fast)
        dt = time.time() - t0
        print(f"[{dt:6.1f}s] {title}", flush=True)
        sections.append(f"## {title}\n\n**Paper claim.** {claim}.\n\n"
                        f"{body}\n")

    preamble = (
        "# EXPERIMENTS — paper claims vs measured\n\n"
        "Generated by `python scripts/run_experiments.py`"
        f"{' --fast' if args.fast else ''}.  The paper (SPAA 2023) is a "
        "theory contribution with no empirical tables; each section "
        "below regenerates one theorem/lemma's measurable claim "
        "(see DESIGN.md §4 for the index).  Absolute wall-clock is "
        "intentionally not compared — the paper's model is CREW PRAM "
        "work/depth, which the `repro.pram` ledger measures directly.\n\n"
        "All runs are seeded and reproducible.\n\n")
    Path(args.output).write_text(preamble + "\n".join(sections))
    print(f"wrote {args.output}")


if __name__ == "__main__":
    main()
