"""Build the HTML API reference and lint docstrings.

Two jobs, one script (CI runs it as the docs step, see
``.github/workflows/ci.yml``):

1. **Docstring lint** (always runs first): every module under
   ``src/repro`` must carry a module docstring, and every *public*
   top-level class, function, and method must carry one too.  Gaps
   fail the build — the generated reference is only as good as the
   docstrings it renders, so the build doubles as the audit.
2. **HTML build**: renders the API reference into ``--out``
   (default ``docs/api``).  Uses `pdoc <https://pdoc.dev>`_ when it is
   installed (CI installs it); falls back to a dependency-free
   ``ast``-based renderer otherwise, so the docs build never needs a
   package this container may not have.

Usage::

    python scripts/build_docs.py                # lint + build docs/api
    python scripts/build_docs.py --lint-only    # just the audit
    python scripts/build_docs.py --out build/docs
"""

from __future__ import annotations

import argparse
import ast
import html
import os
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
PACKAGE = "repro"


def iter_modules() -> list[Path]:
    """All python files of the package, sorted for stable output."""
    return sorted((SRC / PACKAGE).rglob("*.py"))


def module_name(path: Path) -> str:
    rel = path.relative_to(SRC).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def lint_module(path: Path) -> list[str]:
    """Missing-docstring findings for one file, as display strings."""
    tree = ast.parse(path.read_text(), filename=str(path))
    name = module_name(path)
    missing: list[str] = []
    if ast.get_docstring(tree) is None:
        missing.append(f"{name}: missing module docstring")
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and _is_public(node.name):
            if ast.get_docstring(node) is None:
                missing.append(f"{name}.{node.name}: missing docstring")
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                missing.append(f"{name}.{node.name}: missing docstring")
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and _is_public(sub.name) \
                        and ast.get_docstring(sub) is None \
                        and not _is_dataclass_boilerplate(sub):
                    missing.append(f"{name}.{node.name}.{sub.name}: "
                                   f"missing docstring")
    return missing


def _is_dataclass_boilerplate(fn: ast.FunctionDef) -> bool:
    # __repr__/__eq__-style dunders never need their own docstring.
    return fn.name.startswith("__") and fn.name.endswith("__")


def run_lint() -> int:
    findings: list[str] = []
    for path in iter_modules():
        findings.extend(lint_module(path))
    if findings:
        print(f"docstring lint: {len(findings)} finding(s)",
              file=sys.stderr)
        for f in findings:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"docstring lint: OK ({len(iter_modules())} modules)")
    return 0


# -- fallback HTML renderer ---------------------------------------------------

_PAGE = """<!doctype html><html><head><meta charset="utf-8">
<title>{title}</title>
<style>
body {{ font: 15px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 60rem; padding: 0 1rem; color: #222; }}
pre {{ background: #f6f6f6; padding: .75rem; overflow-x: auto;
      white-space: pre-wrap; }}
h2 {{ border-bottom: 1px solid #ddd; padding-bottom: .25rem; }}
code {{ background: #f2f2f2; padding: 0 .2rem; }}
a {{ color: #0b62a4; }}
</style></head><body>
<p><a href="index.html">index</a></p>
{body}
</body></html>
"""


def _signature(fn: ast.FunctionDef) -> str:
    return f"{fn.name}({ast.unparse(fn.args)})"


def _doc_block(node) -> str:
    doc = ast.get_docstring(node)
    return f"<pre>{html.escape(doc)}</pre>" if doc else ""


def render_module(path: Path) -> str:
    tree = ast.parse(path.read_text(), filename=str(path))
    name = module_name(path)
    parts = [f"<h1><code>{html.escape(name)}</code></h1>",
             _doc_block(tree)]
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and _is_public(node.name):
            parts.append(f"<h2>class <code>{html.escape(node.name)}"
                         f"</code></h2>")
            parts.append(_doc_block(node))
            for sub in node.body:
                if isinstance(sub, (ast.FunctionDef,
                                    ast.AsyncFunctionDef)) \
                        and _is_public(sub.name):
                    parts.append(f"<h3><code>"
                                 f"{html.escape(_signature(sub))}"
                                 f"</code></h3>")
                    parts.append(_doc_block(sub))
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and _is_public(node.name):
            parts.append(f"<h2><code>{html.escape(_signature(node))}"
                         f"</code></h2>")
            parts.append(_doc_block(node))
    return _PAGE.format(title=html.escape(name), body="\n".join(parts))


def build_fallback(out: Path) -> None:
    """Render the stdlib (``ast``-based) reference into ``out``."""
    out.mkdir(parents=True, exist_ok=True)
    names = []
    for path in iter_modules():
        name = module_name(path)
        names.append(name)
        (out / f"{name}.html").write_text(render_module(path))
    links = "\n".join(
        f'<li><a href="{n}.html"><code>{html.escape(n)}</code></a></li>'
        for n in sorted(names))
    (out / "index.html").write_text(_PAGE.format(
        title=f"{PACKAGE} API reference",
        body=f"<h1><code>{PACKAGE}</code> API reference</h1>"
             f"<ul>{links}</ul>"))
    print(f"built fallback reference: {len(names)} pages -> {out}")


def build_pdoc(out: Path) -> bool:
    """Render with pdoc if available; returns False when it is not."""
    try:
        import pdoc  # noqa: F401
    except ImportError:
        return False
    if out.exists():
        shutil.rmtree(out)
    env = {**os.environ,
           "PYTHONPATH": f"{SRC}{os.pathsep}"
                         f"{os.environ.get('PYTHONPATH', '')}"}
    subprocess.run([sys.executable, "-m", "pdoc", PACKAGE,
                    "-o", str(out)], check=True, env=env)
    print(f"built pdoc reference -> {out}")
    return True


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", type=Path,
                    default=REPO_ROOT / "docs" / "api",
                    help="output directory for the HTML reference")
    ap.add_argument("--lint-only", action="store_true",
                    help="run the docstring audit without building")
    args = ap.parse_args(argv)

    status = run_lint()
    if status != 0 or args.lint_only:
        return status
    if not build_pdoc(args.out):
        print("pdoc not installed; using the stdlib fallback renderer")
        build_fallback(args.out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
