"""SolverOptions, the error hierarchy, and RNG stream management."""

import math

import numpy as np
import pytest

from repro.config import (
    SolverOptions,
    default_options,
    practical_options,
    theorem_1_1_options,
    theorem_1_2_options,
)
from repro.errors import (
    ConvergenceError,
    FactorizationError,
    GraphStructureError,
    NotConnectedError,
    ReproError,
    SamplingError,
)
from repro.rng import DEFAULT_SEED, as_generator, child, split


class TestSolverOptions:
    def test_alpha_inverse_theta_log_squared(self):
        opts = SolverOptions(alpha_scale=1.0)
        n = 1 << 10
        assert opts.alpha_inverse(n) == 100  # (log2 n)^2 = 100

    def test_alpha_inverse_floors_at_one(self):
        assert SolverOptions(alpha_scale=1e-9).alpha_inverse(100) == 1
        assert SolverOptions().alpha_inverse(1) == 1

    def test_alpha_reciprocal(self):
        opts = SolverOptions(alpha_scale=1.0)
        assert opts.alpha(1 << 10) == pytest.approx(0.01)

    def test_K_theta_log_cubed(self):
        opts = SolverOptions()
        n = 1 << 8
        assert opts.K(n) == max(1, round(8.0 ** 3 / 8.0))

    def test_K_override(self):
        assert SolverOptions(lev_sample_K=7).K(10 ** 6) == 7

    def test_with_(self):
        opts = default_options()
        new = opts.with_(min_vertices=50)
        assert new.min_vertices == 50
        assert opts.min_vertices == 100  # frozen original untouched

    def test_presets(self):
        assert theorem_1_1_options().splitting == "naive"
        assert theorem_1_1_options().alpha_scale == 1.0
        assert theorem_1_2_options().splitting == "leverage"
        assert practical_options(seed=5).seed == 5

    def test_frozen(self):
        with pytest.raises(Exception):
            default_options().min_vertices = 3  # type: ignore


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (GraphStructureError, NotConnectedError,
                    ConvergenceError, FactorizationError, SamplingError):
            assert issubclass(exc, ReproError)

    def test_not_connected_is_structure_error(self):
        assert issubclass(NotConnectedError, GraphStructureError)

    def test_convergence_error_payload(self):
        err = ConvergenceError("no", iterations=7, residual=0.5)
        assert err.iterations == 7
        assert err.residual == 0.5


class TestRng:
    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_from_int(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_split_independence_and_reproducibility(self):
        parent1 = as_generator(DEFAULT_SEED)
        parent2 = as_generator(DEFAULT_SEED)
        kids1 = split(parent1, 3)
        kids2 = split(parent2, 3)
        for k1, k2 in zip(kids1, kids2):
            assert np.array_equal(k1.random(4), k2.random(4))
        # children differ from each other
        assert not np.array_equal(kids1[0].random(4), kids1[1].random(4))

    def test_split_validation(self):
        with pytest.raises(ValueError):
            split(as_generator(0), -1)

    def test_child(self):
        gen = as_generator(1)
        c = child(gen)
        assert isinstance(c, np.random.Generator)
