"""Emitted-edge coalescing in the incremental walk store (PR 8).

Contract under test (DESIGN.md §11):

* **Laplacian equality.**  A store fed coalesced batches and a store
  fed the raw batches represent the same Laplacian after every round:
  identical coalesced edge *structure* and logical edge counts
  exactly, per-group weights equal up to float-addition association
  (bitwise when a pair's copies all land in one batch — asserted —
  and to a few ulps when a pair accumulates across rounds or folds
  into a pre-existing group).
* **Scratch equality.**  The coalesced store's extracted views, alias
  planes, and interior degrees stay *bit-identical* to from-scratch
  builds over its own live graph — coalescing changes what is stored,
  never how it is extracted.
* **Representation lift.**  ``insert(mult > 1)`` into a
  multiplicity-less store promotes a mult column instead of raising,
  and the column is charged in ``nbytes``.
* **Invalidation narrowing.**  Alias invalidation skips rows outside
  the primed interior and rows already eliminated.
* **Determinism.**  Fixed seed + fixed coalesce setting ⇒
  bit-identical graphs and ledger totals across backends and worker
  counts; the flag resolves SolverOptions → REPRO_COALESCE with loud
  typos.
"""

import numpy as np
import pytest

from repro.config import default_options, practical_options
from repro.core.boundedness import naive_split
from repro.core.schur import approx_schur
from repro.core.solver import LaplacianSolver
from repro.core.terminal_walks import terminal_walks
from repro.graphs import generators as G
from repro.graphs.multigraph import MultiGraph
from repro.pram import use_ledger
from repro.sampling.alias import build_alias_tables
from repro.sampling.inc_csr import IncrementalWalkCSR

ULP_RTOL = 1e-12  # float-addition association slack, a few ulps


def lockstep_rounds(side=9, alpha=0.25, seed=0, rounds=4,
                    rebuild_factor=None):
    """Drive a raw store and a coalescing store with identical
    emission batches; yield both after every round.

    The raw run realises the walks (so both stores consume the same
    batches — this isolates coalescing as a pure store
    transformation); the coalescing store consumes them with
    ``coalesce=True``.
    """
    g = naive_split(G.grid2d(side, side), alpha)
    kw = {} if rebuild_factor is None \
        else {"rebuild_factor": rebuild_factor}
    raw = IncrementalWalkCSR(g, **kw)
    co = IncrementalWalkCSR(g, **kw)
    rng = np.random.default_rng(seed)
    work = g
    remaining = np.arange(g.n)
    for _ in range(rounds):
        if remaining.size <= 4:
            break
        F = np.unique(rng.choice(remaining,
                                 size=max(1, remaining.size // 5),
                                 replace=False))
        terminals = np.setdiff1d(remaining, F)
        nxt, stats = terminal_walks(work, terminals, seed=rng,
                                    return_stats=True)
        p = stats.passthrough_stored
        mult = None if nxt.mult is None else nxt.mult[p:]
        raw.advance(F, nxt.u[p:], nxt.v[p:], nxt.w[p:], mult)
        co.advance(F, nxt.u[p:], nxt.v[p:], nxt.w[p:], mult,
                   coalesce=True)
        yield raw, co, F, terminals
        work = nxt
        remaining = terminals


def assert_same_laplacian(a: MultiGraph, b: MultiGraph):
    """Coalesced images bit-equal in structure, ulp-equal in weight."""
    ca, cb = a.coalesced(), b.coalesced()
    np.testing.assert_array_equal(ca.u, cb.u)
    np.testing.assert_array_equal(ca.v, cb.v)
    np.testing.assert_allclose(ca.w, cb.w, rtol=ULP_RTOL, atol=0.0)


class TestCoalescedStoreLockstep:
    def test_per_round_and_end_to_end_laplacian_equality(self):
        rounds = 0
        raw = co = None
        for raw, co, _, _ in lockstep_rounds():
            la, lb = raw.live_graph(), co.live_graph()
            assert_same_laplacian(la, lb)
            # Logical multi-edge counts match exactly (mults sum).
            assert la.m_logical == lb.m_logical
            # Coalescing strictly shrinks the stored representation
            # once duplicates exist.
            assert lb.m <= la.m
            rounds += 1
        assert rounds >= 3
        assert co.emitted_slots_saved > 0
        assert_same_laplacian(raw.live_graph(), co.live_graph())

    def test_survives_epoch_compaction(self):
        # A tiny rebuild factor forces compaction nearly every round:
        # the coalesce lookup must be remapped, not stale.
        for raw, co, _, _ in lockstep_rounds(rebuild_factor=0.05):
            assert_same_laplacian(raw.live_graph(), co.live_graph())
            assert co.m == co.m_alive  # compacted

    def test_single_batch_coalesce_is_bitwise(self):
        # All copies of a pair inside one batch, pair absent from the
        # base graph: the coalesced weight is the same left-to-right
        # float sum the raw store's coalesced() computes — bitwise.
        g = MultiGraph(5, [0], [1], [1.0])
        raw = IncrementalWalkCSR(g)
        co = IncrementalWalkCSR(g)
        u = np.array([2, 3, 2, 2], dtype=np.int64)
        v = np.array([3, 4, 3, 3], dtype=np.int64)
        w = np.array([0.5, 1.0, 0.25, 0.125])
        raw.insert(u, v, w)
        co.insert(u, v, w, coalesce=True)
        ca = raw.live_graph().coalesced()
        cb = co.live_graph().coalesced()
        np.testing.assert_array_equal(ca.u, cb.u)
        np.testing.assert_array_equal(ca.v, cb.v)
        np.testing.assert_array_equal(ca.w, cb.w)  # bitwise
        assert co.m_alive == 3  # (0,1) + (2,3) + (3,4)
        assert co.emitted_slots_saved == 2

    def test_live_slot_folding_accumulates_in_place(self):
        g = MultiGraph(4, [0], [1], [1.0])
        co = IncrementalWalkCSR(g)
        co.insert(np.array([2]), np.array([3]), np.array([0.5]),
                  coalesce=True)
        m_after_first = co.m_alive
        co.insert(np.array([2, 3]), np.array([3, 2]),
                  np.array([0.25, 0.125]), coalesce=True)
        # Second batch (both orientations of the same pair) folded
        # into the existing slot: no growth.
        assert co.m_alive == m_after_first
        live = co.live_graph()
        key = (live.u == 2) & (live.v == 3)
        assert key.sum() == 1
        np.testing.assert_allclose(live.w[key], [0.875])
        np.testing.assert_array_equal(live.mult[key], [3])
        assert co.live_merged_slots == 1


class TestCoalescedViewsMatchScratch:
    """Extraction from a coalesced store == from-scratch rebuilds.

    Coalescing changes the live graph (fewer groups, same Laplacian);
    the contract is that every extraction stays bit-identical to a
    scratch build **over the coalesced store's own live graph**.
    """

    @pytest.mark.parametrize("rebuild_factor", [None, 0.05])
    def test_views_planes_and_degrees(self, rebuild_factor):
        g = naive_split(G.grid2d(9, 9), 0.25)
        kw = {} if rebuild_factor is None \
            else {"rebuild_factor": rebuild_factor}
        co = IncrementalWalkCSR(g, **kw)
        rng = np.random.default_rng(0)
        work = g
        remaining = np.arange(g.n)
        checked = 0
        for _ in range(4):
            if remaining.size <= 4:
                break
            F = np.unique(rng.choice(remaining,
                                     size=max(1, remaining.size // 5),
                                     replace=False))
            terminals = np.setdiff1d(remaining, F)
            live = co.live_graph()
            mask = np.zeros(live.n, dtype=bool)
            mask[F] = True
            view, slot_mult = co.restricted_view(F)
            want = live.adjacency_restricted(mask)
            np.testing.assert_array_equal(view.indptr, want.indptr)
            np.testing.assert_array_equal(view.neighbor, want.neighbor)
            np.testing.assert_array_equal(view.weight, want.weight)
            got_mult = slot_mult if slot_mult is not None \
                else np.ones(view.weight.size, dtype=np.int32)
            np.testing.assert_array_equal(
                got_mult, live.multiplicities()[want.edge_id])
            # Alias planes bitwise == a from-scratch build on the view.
            prob, alias, total = co.alias_planes(F, view)
            w_prob, w_alias, w_total = build_alias_tables(view.indptr,
                                                          view.weight)
            np.testing.assert_array_equal(prob, w_prob)
            np.testing.assert_array_equal(alias, w_alias)
            np.testing.assert_array_equal(total[F], w_total[F])
            # Interior degree oracle bitwise == the rebuild path.
            member = np.zeros(live.n, dtype=bool)
            member[remaining] = True
            oracle = co.interior_degrees(remaining)
            rebuild = live.edge_subset(member[live.u] & member[live.v])
            np.testing.assert_array_equal(oracle.weighted_degrees(),
                                          rebuild.weighted_degrees())
            checked += 1
            nxt, stats = terminal_walks(work, terminals, seed=rng,
                                        return_stats=True)
            p = stats.passthrough_stored
            co.advance(F, nxt.u[p:], nxt.v[p:], nxt.w[p:],
                       None if nxt.mult is None else nxt.mult[p:],
                       coalesce=True)
            # Stay in lockstep with the store: the next round walks
            # the coalesced graph, exactly as approx_schur does.
            work = co.live_graph()
            remaining = terminals
        assert checked >= 3
        assert co.emitted_slots_saved > 0

    def test_interior_degrees_flag_invariant_up_to_rounding(self):
        # Cross-flag: the coalesced store's interior degrees are the
        # same sums in a different association — equal to ulps.
        for raw, co, _, terminals in lockstep_rounds():
            a = raw.interior_degrees(terminals).weighted_degrees()
            b = co.interior_degrees(terminals).weighted_degrees()
            np.testing.assert_allclose(a, b, rtol=ULP_RTOL, atol=0.0)


class TestMultPromotion:
    def test_mult_insert_no_longer_raises(self):
        g = MultiGraph(4, [0, 1], [1, 2], [1.0, 2.0])  # mult-less
        inc = IncrementalWalkCSR(g)
        assert inc.mult is None
        inc.insert(np.array([2]), np.array([3]), np.array([3.0]),
                   mult=np.array([5]))
        assert inc.mult is not None
        np.testing.assert_array_equal(inc.mult, [1, 1, 5])
        live = inc.live_graph()
        assert live.m_logical == 7
        # The promoted column is charged in the store footprint.
        assert inc.nbytes > IncrementalWalkCSR(g).nbytes
        # Extraction carries per-slot multiplicities.
        view, slot_mult = inc.restricted_view(np.array([2]))
        assert slot_mult is not None
        np.testing.assert_array_equal(slot_mult,
                                      live.multiplicities()[view.edge_id])

    def test_all_ones_mult_insert_stays_implicit(self):
        g = MultiGraph(4, [0], [1], [1.0])
        inc = IncrementalWalkCSR(g)
        inc.insert(np.array([2]), np.array([3]), np.array([1.0]),
                   mult=np.array([1]))
        assert inc.mult is None  # unchanged historical behaviour


class TestInvalidationNarrowing:
    def test_unprimed_rows_skip_invalidation(self):
        g = G.grid2d(5, 5)
        inc = IncrementalWalkCSR(g)
        primed = np.arange(0, 10)
        inc.prime_alias(primed)
        assert set(inc._alias_rows) <= set(primed.tolist())
        cached_before = set(inc._alias_rows)
        # Churn touching only unprimed rows: nothing to do, nothing
        # dropped.
        inc.insert(np.array([20]), np.array([21]), np.array([1.0]))
        assert set(inc._alias_rows) == cached_before
        # Churn touching a primed row drops exactly that row.
        inc.insert(np.array([0]), np.array([20]), np.array([1.0]))
        assert set(inc._alias_rows) == cached_before - {0}

    def test_eliminated_rows_leave_the_primed_set(self):
        g = G.grid2d(5, 5)
        inc = IncrementalWalkCSR(g)
        inc.prime_alias(np.arange(g.n))
        F = np.array([0, 1, 2])
        inc.eliminate(F)
        assert not inc._primed_mask[F].any()
        for r in F.tolist():
            assert r not in inc._alias_rows
        # Later churn naming an eliminated row is a no-op for it.
        inc.insert(np.array([10]), np.array([11]), np.array([1.0]))
        assert 0 not in inc._alias_rows


class TestFlagResolution:
    def test_options_take_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_COALESCE", "1")
        assert default_options().resolve_coalesce() is True
        assert default_options().with_(
            coalesce_emitted=False).resolve_coalesce() is False
        monkeypatch.delenv("REPRO_COALESCE")
        assert default_options().resolve_coalesce() is False
        assert default_options().with_(
            coalesce_emitted=True).resolve_coalesce() is True

    @pytest.mark.parametrize("raw,expect", [
        ("1", True), ("true", True), ("ON", True),
        ("0", False), ("off", False), ("", False),
    ])
    def test_env_values(self, raw, expect, monkeypatch):
        monkeypatch.setenv("REPRO_COALESCE", raw)
        assert default_options().resolve_coalesce() is expect

    def test_typo_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_COALESCE", "yep")
        with pytest.raises(ValueError, match="REPRO_COALESCE"):
            default_options().resolve_coalesce()

    def test_cli_flag_threads_through(self):
        import argparse

        from repro.cli import main  # noqa: F401 - import check
        parser = argparse.ArgumentParser()
        parser.add_argument("--coalesce", default=None,
                            action=argparse.BooleanOptionalAction)
        assert parser.parse_args(["--coalesce"]).coalesce is True
        assert parser.parse_args(["--no-coalesce"]).coalesce is False
        assert parser.parse_args([]).coalesce is None


class TestCoalesceEndToEnd:
    def _workload(self):
        g = G.grid2d(13, 13)
        C = np.arange(0, g.n, 4)
        return g, C

    def test_report_metrics_shrink(self):
        g, C = self._workload()
        off = approx_schur(g, C, eps=0.5, seed=5, return_report=True,
                           options=default_options().with_(
                               coalesce_emitted=False))
        on = approx_schur(g, C, eps=0.5, seed=5, return_report=True,
                          options=default_options().with_(
                              coalesce_emitted=True))
        assert not off.coalesced and on.coalesced
        assert on.emitted_slots_saved > 0
        assert (sum(on.stored_edges_per_round)
                < sum(off.stored_edges_per_round))
        assert on.peak_edge_bytes < off.peak_edge_bytes
        assert on.alias_rebuilt_slots < off.alias_rebuilt_slots
        # Logical accounting (the paper's m) is preserved per round 0/1
        # (walks diverge distributionally afterwards).
        assert on.edges_per_round[:2] == off.edges_per_round[:2]

    def test_deterministic_across_backends_and_workers(self, monkeypatch):
        g, C = self._workload()
        opts = default_options().with_(coalesce_emitted=True,
                                       chunk_items=512)

        def run(backend, workers):
            monkeypatch.setenv("REPRO_BACKEND", backend)
            monkeypatch.setenv("REPRO_WORKERS", str(workers))
            with use_ledger() as ledger:
                got = approx_schur(g, C, eps=0.5, seed=11, options=opts)
            return got, ledger.work, ledger.depth

        base = run("serial", 1)
        for backend in ("serial", "thread"):
            for workers in (1, 2):
                got = run(backend, workers)
                assert got[0] == base[0], (backend, workers)
                assert got[1:] == base[1:], (backend, workers)

    @pytest.mark.parametrize("sampler", ["alias", "bisect"])
    def test_deterministic_per_sampler(self, sampler):
        g, C = self._workload()
        opts = default_options().with_(coalesce_emitted=True,
                                       sampler=sampler)
        a = approx_schur(g, C, eps=0.5, seed=3, options=opts)
        b = approx_schur(g, C, eps=0.5, seed=3, options=opts)
        assert a == b

    def test_solver_solves_under_coalescing(self):
        g = G.grid2d(12, 12)
        opts = practical_options().with_(coalesce_emitted=True)
        solver = LaplacianSolver(g, options=opts, seed=2)
        b = np.zeros(g.n)
        b[0], b[-1] = 1.0, -1.0
        report = solver.solve_report(b, eps=1e-8)
        assert report.residual_2norm <= 1e-6
        # Same seed + same flag ⇒ bit-identical chain.
        again = LaplacianSolver(g, options=opts, seed=2)
        np.testing.assert_array_equal(solver.chain.final_pinv,
                                      again.chain.final_pinv)

    def test_legacy_baseline_pinned_off(self):
        g, C = self._workload()
        opts = default_options().with_(coalesce_emitted=True)
        report = approx_schur(g, C, eps=0.5, seed=1, options=opts,
                              legacy=True, split=True,
                              return_report=True)
        assert not report.coalesced  # no store on the legacy path
