"""ApplyCholesky (Algorithm 2): the operator W with W⁺ ≈₁ L."""

import numpy as np
import pytest

from repro.config import SolverOptions
from repro.core.apply_cholesky import ApplyCholeskyOperator
from repro.core.block_cholesky import block_cholesky
from repro.core.boundedness import naive_split
from repro.errors import DimensionMismatchError, FactorizationError
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian
from repro.linalg.loewner import operator_approximation_factor


def _operator(graph, alpha=0.1, seed=0, min_vertices=20):
    H = naive_split(graph, alpha)
    chain = block_cholesky(H, SolverOptions(min_vertices=min_vertices),
                           seed=seed)
    return ApplyCholeskyOperator(chain)


class TestOperatorQuality:
    @pytest.mark.parametrize("maker", [
        lambda: G.grid2d(8, 8),
        lambda: G.random_regular(60, 4, seed=5),
        lambda: G.with_random_weights(G.grid2d(7, 7), 0.2, 5.0, seed=6),
    ])
    def test_theorem_3_10(self, maker):
        # W ≈_1 L⁺ (Theorem 3.10 states W⁺ ≈₁ L; equivalent by Fact 2.1).
        g = maker()
        W = _operator(g, seed=1)
        factor = operator_approximation_factor(W.apply, laplacian(g))
        assert factor <= 1.0

    def test_no_levels_is_exact(self):
        g = G.grid2d(4, 4)
        chain = block_cholesky(g, SolverOptions(min_vertices=100), seed=0)
        W = ApplyCholeskyOperator(chain)
        factor = operator_approximation_factor(W.apply, laplacian(g))
        assert factor <= 1e-6


class TestOperatorProperties:
    def test_symmetric(self):
        g = G.grid2d(7, 7)
        Wd = _operator(g).dense_operator()
        # dense_operator symmetrises; check raw applications instead:
        W = _operator(g, seed=2)
        rng = np.random.default_rng(0)
        x = rng.standard_normal(g.n)
        y = rng.standard_normal(g.n)
        assert float(y @ W.apply(x)) == pytest.approx(
            float(x @ W.apply(y)), rel=1e-8)

    def test_psd_on_complement_of_ones(self):
        g = G.grid2d(7, 7)
        Wd = _operator(g, seed=3).dense_operator()
        evals = np.linalg.eigvalsh(Wd)
        assert evals.min() > -1e-8

    def test_linear(self):
        g = G.grid2d(6, 6)
        W = _operator(g, seed=4)
        rng = np.random.default_rng(1)
        x, y = rng.standard_normal((2, g.n))
        assert np.allclose(W.apply(2.0 * x - 3.0 * y),
                           2.0 * W.apply(x) - 3.0 * W.apply(y),
                           atol=1e-9)

    def test_shape_check(self):
        W = _operator(G.grid2d(6, 6))
        with pytest.raises(DimensionMismatchError):
            W.apply(np.zeros(7))

    def test_as_linear_operator(self):
        g = G.grid2d(6, 6)
        W = _operator(g, seed=5)
        lin = W.as_linear_operator()
        x = np.random.default_rng(2).standard_normal(g.n)
        assert np.allclose(lin @ x, W.apply(x))

    def test_rejects_chain_without_jacobi(self):
        g = naive_split(G.grid2d(6, 6), 0.5)
        chain = block_cholesky(g, SolverOptions(min_vertices=15), seed=0)
        for level in chain.levels:
            level.jacobi = None
        with pytest.raises(FactorizationError):
            ApplyCholeskyOperator(chain)

    def test_callable(self):
        g = G.grid2d(6, 6)
        W = _operator(g, seed=6)
        b = np.zeros(g.n)
        b[0], b[-1] = 1, -1
        assert np.allclose(W(b), W.apply(b))
