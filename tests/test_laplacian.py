"""Laplacian assembly, edge-array application, and block extraction."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import DimensionMismatchError
from repro.graphs import generators as G
from repro.graphs.laplacian import (
    adjacency_matrix,
    apply_laplacian,
    laplacian,
    laplacian_blocks,
)
from repro.graphs.multigraph import MultiGraph


class TestLaplacian:
    def test_path3_matrix(self):
        L = laplacian(G.path(3)).toarray()
        expected = np.array([[1, -1, 0], [-1, 2, -1], [0, -1, 1]],
                            dtype=float)
        assert np.allclose(L, expected)

    def test_row_sums_zero(self, zoo_graph):
        L = laplacian(zoo_graph)
        assert np.abs(np.asarray(L.sum(axis=1))).max() < 1e-12

    def test_offdiagonal_nonpositive(self, zoo_graph):
        L = laplacian(zoo_graph)
        off = L - sp.diags(L.diagonal())
        if off.nnz:
            assert off.data.max() <= 1e-12

    def test_psd(self, zoo_graph):
        L = laplacian(zoo_graph).toarray()
        evals = np.linalg.eigvalsh(L)
        assert evals.min() > -1e-9

    def test_parallel_edges_coalesce(self):
        g = MultiGraph(2, [0, 0], [1, 1], [1.0, 2.0])
        L = laplacian(g).toarray()
        assert np.allclose(L, [[3, -3], [-3, 3]])

    def test_matches_networkx(self, zoo_graph):
        nx = pytest.importorskip("networkx")
        from repro.graphs.conversions import to_networkx

        L_nx = nx.laplacian_matrix(
            to_networkx(zoo_graph),
            nodelist=range(zoo_graph.n)).toarray().astype(float)
        assert np.allclose(laplacian(zoo_graph).toarray(), L_nx)


class TestApplyLaplacian:
    def test_matches_matrix(self, zoo_graph, rng):
        x = rng.standard_normal(zoo_graph.n)
        assert np.allclose(apply_laplacian(zoo_graph, x),
                           laplacian(zoo_graph) @ x)

    def test_kernel(self, zoo_graph):
        ones = np.ones(zoo_graph.n)
        assert np.abs(apply_laplacian(zoo_graph, ones)).max() < 1e-12

    def test_dimension_check(self):
        with pytest.raises(DimensionMismatchError):
            apply_laplacian(G.path(3), np.zeros(5))


class TestAdjacencyMatrix:
    def test_symmetric(self, zoo_graph):
        A = adjacency_matrix(zoo_graph)
        assert abs(A - A.T).max() < 1e-12

    def test_zero_diagonal(self, zoo_graph):
        assert np.abs(adjacency_matrix(zoo_graph).diagonal()).max() == 0.0


class TestLaplacianBlocks:
    def _check_blocks(self, g, F, C):
        blocks = laplacian_blocks(g, F, C)
        L = laplacian(g).toarray()
        LFF = L[np.ix_(F, F)]
        LFC = L[np.ix_(F, C)]
        assert np.allclose(np.diag(blocks.X) + blocks.Y.toarray(), LFF)
        assert np.allclose(blocks.L_FC.toarray(), LFC)

    def test_grid_split(self):
        g = G.grid2d(4, 4)
        F = np.arange(0, g.n, 3)
        C = np.setdiff1d(np.arange(g.n), F)
        self._check_blocks(g, F, C)

    def test_random_split(self, zoo_graph, rng):
        perm = rng.permutation(zoo_graph.n)
        cut = max(1, zoo_graph.n // 3)
        F = np.sort(perm[:cut])
        C = np.sort(perm[cut:])
        self._check_blocks(zoo_graph, F, C)

    def test_X_is_degree_to_C(self):
        g = G.path(4)  # 0-1-2-3
        F = np.array([1])
        C = np.array([0, 2, 3])
        blocks = laplacian_blocks(g, F, C)
        assert np.allclose(blocks.X, [2.0])  # edges (0,1) and (1,2)
        assert blocks.Y.nnz == 0

    def test_partition_must_cover(self):
        g = G.path(4)
        with pytest.raises(DimensionMismatchError):
            laplacian_blocks(g, np.array([0]), np.array([1]))

    def test_shapes(self):
        g = G.cycle(6)
        F = np.array([0, 2])
        C = np.array([1, 3, 4, 5])
        blocks = laplacian_blocks(g, F, C)
        assert blocks.nf == 2
        assert blocks.nc == 4
        assert blocks.L_FC.shape == (2, 4)
