"""5DDSubset (Algorithm 3, Lemma 3.4)."""

import numpy as np
import pytest

from repro.config import SolverOptions
from repro.core.dd_subset import (
    DDSubsetStats,
    five_dd_subset,
    verify_five_dd,
)
from repro.errors import FactorizationError
from repro.graphs import generators as G
from repro.graphs.multigraph import MultiGraph
from repro.linalg.jacobi import is_k_diagonally_dominant


class TestFiveDDSubset:
    def test_result_is_five_dd(self, zoo_graph):
        F = five_dd_subset(zoo_graph, seed=0)
        assert verify_five_dd(zoo_graph, F)

    def test_result_is_five_dd_matrix_sense(self):
        from repro.graphs.laplacian import laplacian

        g = G.grid2d(10, 10)
        F = five_dd_subset(g, seed=1)
        LFF = laplacian(g).toarray()[np.ix_(F, F)]
        assert is_k_diagonally_dominant(LFF, 5.0)

    def test_size_lower_bound(self):
        # Lemma 3.4: |F| >= n/40 (we accept > n*dd_fraction).
        for seed in range(5):
            g = G.grid2d(12, 12)
            F = five_dd_subset(g, seed=seed)
            assert F.size > g.n / 40

    def test_expected_constant_rounds(self):
        # Lemma 3.4's proof: success probability >= 1/2 per round.
        stats = DDSubsetStats()
        g = G.random_regular(200, 4, seed=0)
        rounds = []
        for seed in range(20):
            s = DDSubsetStats()
            five_dd_subset(g, seed=seed, stats=s)
            rounds.append(s.rounds)
        assert np.mean(rounds) <= 4.0

    def test_respects_active_set(self):
        g = G.grid2d(8, 8)
        active = np.arange(0, g.n, 2)
        F = five_dd_subset(g, active=active, seed=2)
        assert np.all(np.isin(F, active))

    def test_excludes_zero_degree_vertices(self):
        # Vertex 3 isolated: must never enter F (it would break X > 0).
        g = MultiGraph(4, [0, 1], [1, 2], [1.0, 1.0])
        for seed in range(10):
            F = five_dd_subset(g, seed=seed)
            assert 3 not in F

    def test_singleton_eligible(self):
        g = MultiGraph(3, [0, 1], [1, 2], [1.0, 1.0])
        F = five_dd_subset(g, active=np.array([1]), seed=0)
        assert F.tolist() == [1]

    def test_no_edges_raises(self):
        g = MultiGraph(5, [], [], [])
        with pytest.raises(FactorizationError):
            five_dd_subset(g, seed=0)

    def test_sorted_output(self, zoo_graph):
        F = five_dd_subset(zoo_graph, seed=3)
        assert np.all(np.diff(F) > 0)

    def test_deterministic_given_seed(self):
        g = G.erdos_renyi(60, 0.1, seed=0)
        assert np.array_equal(five_dd_subset(g, seed=9),
                              five_dd_subset(g, seed=9))

    def test_independent_set_fully_kept(self):
        # A star's leaves never neighbour each other: any sampled
        # candidate set not containing the centre passes entirely.
        g = G.star(50)
        F = five_dd_subset(g, seed=1)
        assert verify_five_dd(g, F)

    def test_custom_thresholds(self):
        opts = SolverOptions(dd_threshold=0.1)
        g = G.grid2d(10, 10)
        F = five_dd_subset(g, seed=4, options=opts)
        assert verify_five_dd(g, F, threshold=0.1)


class TestVerifyFiveDD:
    def test_rejects_clique_subset(self):
        g = G.complete(10)
        F = np.arange(5)  # half of a clique: heavily interconnected
        assert not verify_five_dd(g, F)

    def test_accepts_singleton(self, zoo_graph):
        assert verify_five_dd(zoo_graph, np.array([0]))

    def test_accepts_independent_set(self):
        g = G.cycle(10)
        F = np.arange(0, 10, 2)[:3]  # pairwise non-adjacent
        assert verify_five_dd(g, F)
