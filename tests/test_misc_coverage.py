"""Coverage for small utility paths not exercised elsewhere."""

import numpy as np
import pytest

from repro import SolveReport
from repro.graphs import generators as G
from repro.pram.executor import default_workers
from repro.rng import integers_from


class TestRngUtilities:
    def test_integers_from_deterministic(self):
        assert integers_from(7, 5) == integers_from(7, 5)

    def test_integers_from_range(self):
        vals = integers_from(1, 100, high=10)
        assert all(0 <= v < 10 for v in vals)


class TestExecutorDefaults:
    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_env_garbage_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        assert default_workers() >= 1


class TestReportRepr:
    def test_solve_report_repr(self):
        rep = SolveReport(x=np.zeros(3), iterations=5,
                          method="richardson", target_eps=1e-6,
                          residual_2norm=1e-9, chain_depth=2,
                          multiedges=10)
        text = repr(rep)
        assert "richardson" in text and "5" in text


class TestChainDiagnostics:
    def test_summary_and_counts(self):
        from repro.config import SolverOptions
        from repro.core.block_cholesky import block_cholesky
        from repro.core.boundedness import naive_split

        g = naive_split(G.grid2d(7, 7), 0.25)
        chain = block_cholesky(g, SolverOptions(min_vertices=15), seed=0)
        counts = chain.active_counts
        assert counts[0] == g.n
        assert counts[-1] == chain.final_active.size
        assert chain.total_stored_edges() == sum(chain.stored_edge_counts)
        assert chain.total_stored_edges() <= sum(chain.edge_counts)
        assert f"d={chain.d}" in chain.summary()


class TestDDSubsetStats:
    def test_stats_record(self):
        from repro.core.dd_subset import DDSubsetStats, five_dd_subset

        stats = DDSubsetStats()
        five_dd_subset(G.grid2d(8, 8), seed=0, stats=stats)
        assert stats.rounds == len(stats.accepted) >= 1


class TestWalkChunkedThreaded:
    def test_threaded_chunks_agree_statistically(self):
        from repro.sampling.walks import WalkEngine

        g = G.grid2d(8, 8)
        is_term = np.zeros(g.n, dtype=bool)
        is_term[:8] = True
        engine = WalkEngine(g, is_term)
        starts = np.tile(np.arange(g.n), 20)
        res = engine.run_chunked(starts, seed=0, workers=4, chunks=4)
        assert res.terminal.size == starts.size
        assert is_term[res.terminal].all()
        # distribution sanity: every terminal reachable gets some mass
        hits = np.bincount(res.terminal, minlength=g.n)[:8]
        assert (hits > 0).all()


class TestLevEstInternals:
    def test_spanning_edges_form_spanning_forest(self):
        from repro.core.lev_est import _spanning_edges
        from repro.graphs.validation import is_connected

        g = G.erdos_renyi(40, 0.15, seed=0)
        idx = _spanning_edges(g)
        assert idx.size == g.n - 1
        tree = g.edge_subset(np.isin(np.arange(g.m), idx))
        assert is_connected(tree)


class TestSchurReport:
    def test_report_fields_consistent(self):
        from repro.core.schur import approx_schur

        g = G.grid2d(6, 6)
        C = np.arange(0, g.n, 4)
        rep = approx_schur(g, C, eps=0.5, seed=0, return_report=True)
        assert len(rep.edges_per_round) == rep.rounds + 1
        assert len(rep.interior_per_round) == rep.rounds + 1
        assert rep.interior_per_round[-1] == 0
        assert rep.graph.m_logical == rep.edges_per_round[-1]
        assert rep.graph.m == rep.stored_edges_per_round[-1]
        assert rep.peak_edge_bytes > 0
