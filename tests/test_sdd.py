"""SDD solving via the Gremban double cover."""

import numpy as np
import pytest
import scipy.linalg
import scipy.sparse as sp

from repro.config import practical_options
from repro.core.sdd import SDDSolver, gremban_cover, is_sdd, solve_sdd
from repro.errors import GraphStructureError, ReproError
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian


def _random_sdd(n: int, seed: int, positive_frac: float = 0.3,
                slack: float = 0.5) -> np.ndarray:
    """Random irreducible SDD matrix with mixed off-diagonal signs."""
    rng = np.random.default_rng(seed)
    M = np.zeros((n, n))
    # ring ensures irreducibility
    for i in range(n):
        j = (i + 1) % n
        w = rng.uniform(0.5, 2.0)
        sign = -1.0 if rng.random() > positive_frac else 1.0
        M[i, j] = M[j, i] = sign * w
    extra = rng.integers(0, n, size=(2 * n, 2))
    for a, b in extra:
        if a != b:
            w = rng.uniform(0.1, 1.0)
            sign = -1.0 if rng.random() > positive_frac else 1.0
            M[a, b] = M[b, a] = sign * w
    offsum = np.abs(M).sum(axis=1)
    M[np.diag_indices(n)] = offsum + rng.uniform(0, slack, size=n)
    return M


class TestIsSDD:
    def test_laplacian_is_sdd(self, zoo_graph):
        assert is_sdd(laplacian(zoo_graph))

    def test_random_sdd(self):
        assert is_sdd(_random_sdd(12, 0))

    def test_rejects_non_dd(self):
        M = np.array([[1.0, -2.0], [-2.0, 1.0]])
        assert not is_sdd(M)

    def test_rejects_asymmetric(self):
        M = np.array([[2.0, -1.0], [0.0, 2.0]])
        assert not is_sdd(M)


class TestGrembanCover:
    def test_cover_is_valid_laplacian_graph(self):
        M = _random_sdd(10, 1)
        cover = gremban_cover(M)
        assert cover.n == 20
        assert np.all(cover.w > 0)

    def test_cover_encodes_M(self):
        # L [x; -x] = [Mx; -Mx]
        from repro.graphs.laplacian import apply_laplacian

        M = _random_sdd(9, 2)
        cover = gremban_cover(M)
        x = np.random.default_rng(0).standard_normal(9)
        z = apply_laplacian(cover, np.concatenate([x, -x]))
        assert np.allclose(z[:9], M @ x, atol=1e-10)
        assert np.allclose(z[9:], -(M @ x), atol=1e-10)

    def test_pure_laplacian_cover_disconnected(self):
        # No positive entries, no slack: the two layers never touch.
        from repro.graphs.validation import is_connected

        L = laplacian(G.cycle(5)).toarray()
        assert not is_connected(gremban_cover(L))

    def test_rejects_non_sdd(self):
        with pytest.raises(GraphStructureError):
            gremban_cover(np.array([[1.0, -5.0], [-5.0, 1.0]]))


class TestSDDSolver:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_dense_solve(self, seed):
        M = _random_sdd(25, seed, slack=1.0)
        b = np.random.default_rng(seed).standard_normal(25)
        x = solve_sdd(M, b, eps=1e-9, options=practical_options(),
                      seed=seed)
        xstar = scipy.linalg.solve(M, b, assume_a="sym")
        assert np.linalg.norm(x - xstar) < 1e-4 * max(
            np.linalg.norm(xstar), 1.0)

    def test_positive_offdiagonals_only(self):
        # "Anti-ferromagnetic" SDD system: all couplings positive.
        n = 12
        M = _random_sdd(n, 7, positive_frac=1.0, slack=0.8)
        b = np.random.default_rng(1).standard_normal(n)
        x = solve_sdd(M, b, eps=1e-9, options=practical_options(),
                      seed=0)
        assert np.allclose(M @ x, b, atol=1e-4)

    def test_laplacian_falls_back(self):
        g = G.grid2d(5, 5)
        L = laplacian(g)
        b = np.random.default_rng(2).standard_normal(g.n)
        b -= b.mean()
        solver = SDDSolver(L, options=practical_options(), seed=0)
        assert solver._mode == "laplacian"
        x = solver.solve(b, eps=1e-8)
        assert np.allclose(L @ x, b, atol=1e-5)

    def test_sparse_input(self):
        M = sp.csr_matrix(_random_sdd(15, 3))
        b = np.random.default_rng(3).standard_normal(15)
        x = solve_sdd(M, b, eps=1e-9, options=practical_options(),
                      seed=1)
        assert np.allclose(M @ x, b, atol=1e-4)

    def test_b_shape_checked(self):
        solver = SDDSolver(_random_sdd(8, 4),
                           options=practical_options(), seed=0)
        with pytest.raises(ReproError):
            solver.solve(np.zeros(9))

    def test_reusable_factorization(self):
        M = _random_sdd(20, 5)
        solver = SDDSolver(M, options=practical_options(), seed=0)
        rng = np.random.default_rng(4)
        for _ in range(3):
            b = rng.standard_normal(20)
            x = solver.solve(b, eps=1e-9)
            assert np.allclose(M @ x, b, atol=1e-4)
