"""Concentration diagnostics and complexity-fit utilities."""

import numpy as np
import pytest

from repro.config import SolverOptions
from repro.core.block_cholesky import block_cholesky
from repro.core.boundedness import naive_split
from repro.graphs import generators as G
from repro.theory.complexity import (
    fit_power_law,
    is_polylog_shaped,
    loglog_slope,
    polylog_ratio_table,
)
from repro.theory.concentration import (
    empirical_success_rate,
    freedman_bound,
    martingale_deviation_trace,
)


class TestConcentration:
    def test_martingale_deviation_below_theorem_bound(self):
        # Theorem 3.9's proof keeps the deviation <= 0.3 whp for the
        # right Θ(log² n) constant; at this toy scale we use a finer α
        # and check the ≈_{0.5} success event's deviation budget.
        g = G.grid2d(7, 7)
        H = naive_split(g, 0.05)
        chain = block_cholesky(H, SolverOptions(min_vertices=15), seed=0)
        devs = martingale_deviation_trace(g, chain)
        assert len(devs) == chain.d
        assert max(devs) <= 0.5

    def test_deviation_grows_with_level(self):
        # The quadratic variation accumulates: the *envelope* of the
        # deviation tends to widen down the chain (not monotone per
        # sample, so compare first vs max).
        g = G.grid2d(7, 7)
        H = naive_split(g, 0.25)
        chain = block_cholesky(H, SolverOptions(min_vertices=15), seed=1)
        devs = martingale_deviation_trace(g, chain)
        assert devs[0] <= max(devs) + 1e-12

    def test_empirical_success_rate(self):
        g = naive_split(G.grid2d(6, 6), 0.1)
        rate = empirical_success_rate(g, trials=5, target_eps=0.5,
                                      seed=0,
                                      options=SolverOptions(
                                          min_vertices=12))
        assert rate == 1.0

    def test_freedman_envelope(self):
        # monotone in t, increasing in sigma^2 and R
        assert freedman_bound(0.3, 0.01, 0.01, 100) < 100
        assert freedman_bound(0.1, 0.01, 0.01, 100) > freedman_bound(
            0.5, 0.01, 0.01, 100)
        assert freedman_bound(0.3, 0.1, 0.01, 100) > freedman_bound(
            0.3, 0.001, 0.01, 100)
        assert freedman_bound(0.0, 0.01, 0.01, 7) == 7.0


class TestComplexityFits:
    def test_power_law_recovery(self):
        x = np.array([100, 200, 400, 800, 1600], dtype=float)
        y = 3.0 * x ** 1.5
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.5, abs=1e-9)
        assert fit.coeff == pytest.approx(3.0, rel=1e-9)
        assert fit.r2 == pytest.approx(1.0)

    def test_loglog_slope_with_noise(self, rng):
        x = np.logspace(2, 5, 12)
        y = x ** 1.02 * np.exp(rng.normal(0, 0.05, size=12))
        assert loglog_slope(x, y) == pytest.approx(1.02, abs=0.15)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, -2.0], [1.0, 1.0])

    def test_polylog_ratio_table(self):
        n = np.array([2.0 ** k for k in range(4, 10)])
        cost = np.log2(n) ** 2
        table = polylog_ratio_table(n, cost)
        spread = table[2].max() / table[2].min()
        assert spread == pytest.approx(1.0, abs=1e-9)

    def test_is_polylog_shaped_accepts_polylog(self):
        n = np.array([2.0 ** k for k in range(5, 14)])
        assert is_polylog_shaped(n, 3.0 * np.log2(n) ** 3)

    def test_is_polylog_shaped_rejects_polynomial(self):
        # Over a laptop-scale sweep, log^6 n can mimic n^0.9 — so the
        # discriminating check caps the candidate powers at the level
        # the theorems actually predict.
        n = np.array([2.0 ** k for k in range(5, 14)])
        assert not is_polylog_shaped(n, n ** 0.9, max_power=2)
