"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.graphs.io import load_npz, save_npz
from repro.graphs import generators as G


@pytest.fixture
def grid_file(tmp_path):
    path = tmp_path / "g.npz"
    save_npz(G.grid2d(8, 8), path)
    return str(path)


class TestGen:
    def test_gen_grid(self, tmp_path, capsys):
        out = str(tmp_path / "grid.npz")
        assert main(["gen", "grid", out, "--size", "6"]) == 0
        g = load_npz(out)
        assert g.n == 36
        assert "n=36" in capsys.readouterr().out

    def test_gen_all_families(self, tmp_path):
        for fam in ("grid", "torus", "er", "path"):
            out = str(tmp_path / f"{fam}.npz")
            assert main(["gen", fam, out, "--size", "12"]) == 0

    def test_gen_unknown_family(self, tmp_path, capsys):
        assert main(["gen", "hypercube", str(tmp_path / "x.npz")]) == 2
        assert "unknown family" in capsys.readouterr().err


class TestInfo:
    def test_info(self, grid_file, capsys):
        assert main(["info", grid_file]) == 0
        out = capsys.readouterr().out
        assert "n=64" in out
        assert "components=1" in out


class TestSolve:
    def test_solve_st_demand(self, grid_file, tmp_path, capsys):
        out = str(tmp_path / "x.npy")
        assert main(["solve", grid_file, "--eps", "1e-6",
                     "--output", out]) == 0
        x = np.load(out)
        assert x.shape == (64,)
        assert "iterations" in capsys.readouterr().out

    def test_solve_rhs_file(self, grid_file, tmp_path):
        b = np.zeros(64)
        b[3], b[40] = 2.0, -2.0
        rhs = str(tmp_path / "b.npy")
        np.save(rhs, b)
        assert main(["solve", grid_file, "--rhs", rhs,
                     "--method", "pcg"]) == 0


class TestBench:
    def test_bench_prints_ledger(self, grid_file, capsys):
        assert main(["bench", grid_file, "--eps", "1e-3"]) == 0
        out = capsys.readouterr().out
        assert "work=" in out
        assert "depth=" in out
