"""ApproxSchur (Algorithm 6 / Theorem 7.1)."""

import numpy as np
import pytest

from repro.core.schur import approx_schur, schur_alpha_inverse
from repro.errors import SamplingError
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian
from repro.linalg.loewner import approximation_factor
from repro.linalg.pinv import exact_schur_complement


def _measured_eps(graph, C, eps, seed=0, **kw):
    H = approx_schur(graph, C, eps=eps, seed=seed, **kw)
    SC = exact_schur_complement(laplacian(graph).toarray(), C)
    LH = laplacian(H).toarray()[np.ix_(C, C)]
    return approximation_factor(LH, SC), H


class TestTheorem71:
    @pytest.mark.parametrize("maker,csize", [
        (lambda: G.grid2d(7, 7), 20),
        (lambda: G.random_regular(60, 4, seed=1), 25),
        (lambda: G.with_random_weights(G.grid2d(6, 6), 0.3, 3.0, seed=2),
         12),
    ])
    def test_approximation_guarantee(self, maker, csize):
        g = maker()
        rng = np.random.default_rng(0)
        C = np.sort(rng.choice(g.n, size=csize, replace=False))
        measured, _ = _measured_eps(g, C, eps=0.5, seed=3)
        assert measured <= 0.5

    def test_smaller_eps_tighter(self):
        g = G.grid2d(6, 6)
        C = np.arange(0, g.n, 3)
        loose, _ = _measured_eps(g, C, eps=0.6, seed=1)
        tight, _ = _measured_eps(g, C, eps=0.15, seed=1)
        assert tight < loose

    def test_edge_budget(self):
        # Theorem 7.1-(2): |E(G_S)| <= m of the (split) input.
        g = G.grid2d(8, 8)
        C = np.arange(0, g.n, 2)
        report = approx_schur(g, C, eps=0.5, seed=2, return_report=True)
        m_input = report.edges_per_round[0]
        assert all(m <= m_input for m in report.edges_per_round)

    def test_round_count_logarithmic(self):
        g = G.grid2d(9, 9)
        C = np.arange(0, g.n, 4)
        s = g.n - C.size
        report = approx_schur(g, C, eps=0.5, seed=3, return_report=True)
        assert report.rounds <= np.log(max(s, 2)) / np.log(40 / 39) + 10

    def test_interior_shrinks_monotonically(self):
        g = G.grid2d(8, 8)
        C = np.arange(0, g.n, 5)
        report = approx_schur(g, C, eps=0.5, seed=4, return_report=True)
        ints = report.interior_per_round
        assert all(b < a for a, b in zip(ints, ints[1:]))
        assert ints[-1] == 0

    def test_prescaled_input(self):
        # split=False: caller already provides an α-bounded multigraph.
        from repro.core.boundedness import naive_split

        g = G.grid2d(6, 6)
        C = np.arange(0, g.n, 3)
        H = naive_split(g, 1.0 / schur_alpha_inverse(g.n, 0.5))
        measured, out = _measured_eps(H, C, eps=0.5, seed=5, split=False)
        assert measured <= 0.5
        assert out.m_logical <= H.m_logical


class TestInterface:
    def test_rejects_trivial_C(self):
        g = G.path(5)
        with pytest.raises(SamplingError):
            approx_schur(g, np.array([], dtype=np.int64))
        with pytest.raises(SamplingError):
            approx_schur(g, np.arange(5))

    def test_rejects_out_of_range_C(self):
        with pytest.raises(SamplingError):
            approx_schur(G.path(5), np.array([0, 9]))

    def test_alpha_inverse_formula(self):
        assert schur_alpha_inverse(1000, 0.5) >= schur_alpha_inverse(
            1000, 0.9)
        assert schur_alpha_inverse(10, 0.5, scale=1e-9) == 1
        with pytest.raises(ValueError):
            schur_alpha_inverse(100, 1.5)

    def test_single_terminal_component_edge_case(self):
        # C = one vertex of a star: SC onto it is the zero matrix.
        g = G.star(8)
        H = approx_schur(g, np.array([0]), eps=0.5, seed=0)
        assert H.m == 0

    def test_interior_independent_set(self):
        # Interior has no internal edges: eliminated in one round.
        g = G.star(12)  # leaves are independent
        C = np.array([0, 1, 2])
        report = approx_schur(g, C, eps=0.5, seed=1, return_report=True)
        assert report.rounds == 1

    def test_output_is_laplacian_on_C(self):
        g = G.grid2d(6, 6)
        C = np.arange(0, g.n, 3)
        H = approx_schur(g, C, eps=0.4, seed=6)
        in_C = np.zeros(g.n, dtype=bool)
        in_C[C] = True
        assert in_C[H.u].all() and in_C[H.v].all()
        assert np.all(H.w > 0)
