"""End-to-end solver tests (Theorems 1.1 / 1.2)."""

import numpy as np
import pytest

from repro import (
    LaplacianSolver,
    SolverOptions,
    practical_options,
    solve_laplacian,
    theorem_1_1_options,
    theorem_1_2_options,
)
from repro.errors import (
    DimensionMismatchError,
    NotConnectedError,
    ReproError,
)
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian
from repro.linalg.ops import relative_lnorm_error
from repro.linalg.pinv import exact_solution


def _check_eps(graph, eps, seed=0, options=None, method="richardson"):
    b = np.random.default_rng(seed).standard_normal(graph.n)
    b -= b.mean()
    solver = LaplacianSolver(graph, options=options or practical_options(),
                             seed=seed)
    x = solver.solve(b, eps=eps, method=method)
    err = relative_lnorm_error(laplacian(graph), x,
                               exact_solution(graph, b))
    assert err <= eps, f"err {err} > eps {eps}"
    return solver


class TestTheorem11Accuracy:
    @pytest.mark.parametrize("eps", [1e-1, 1e-3, 1e-6])
    def test_grid(self, eps):
        _check_eps(G.grid2d(12, 12), eps)

    def test_expander(self):
        _check_eps(G.random_regular(150, 4, seed=1), 1e-6)

    def test_weighted(self):
        g = G.with_random_weights(G.grid2d(11, 11), 0.01, 100.0, seed=2,
                                  log_uniform=True)
        _check_eps(g, 1e-6)

    def test_barbell(self):
        _check_eps(G.barbell(60, 3), 1e-6)

    def test_zoo(self, zoo_graph, balanced_rhs):
        # Small graphs hit the dense base case — still must meet eps.
        b = balanced_rhs(zoo_graph)
        solver = LaplacianSolver(zoo_graph, options=practical_options(),
                                 seed=3)
        x = solver.solve(b, eps=1e-8)
        err = relative_lnorm_error(laplacian(zoo_graph), x,
                                   exact_solution(zoo_graph, b))
        assert err <= 1e-8

    def test_theorem_1_1_literal_options(self):
        _check_eps(G.grid2d(11, 11), 1e-4, options=theorem_1_1_options())

    def test_theorem_1_2_leverage_options(self):
        _check_eps(G.erdos_renyi(140, 0.2, seed=4), 1e-4,
                   options=theorem_1_2_options())


class TestSolveVariants:
    def test_pcg_method(self):
        _check_eps(G.grid2d(12, 12), 1e-8, method="pcg")

    def test_pcg_fewer_iterations_than_richardson(self):
        g = G.grid2d(12, 12)
        b = np.random.default_rng(0).standard_normal(g.n)
        b -= b.mean()
        solver = LaplacianSolver(g, options=practical_options(), seed=0)
        rich = solver.solve_report(b, eps=1e-8, method="richardson")
        pcg = solver.solve_report(b, eps=1e-8, method="pcg")
        assert pcg.iterations <= rich.iterations

    def test_unknown_method(self):
        solver = LaplacianSolver(G.grid2d(5, 5), seed=0)
        with pytest.raises(ReproError):
            solver.solve(np.zeros(25), method="magic")

    def test_report_fields(self):
        g = G.grid2d(12, 12)
        solver = LaplacianSolver(g, options=practical_options(), seed=0)
        b = np.zeros(g.n)
        b[0], b[-1] = 1, -1
        rep = solver.solve_report(b, eps=1e-4)
        assert rep.method == "richardson"
        assert rep.target_eps == 1e-4
        assert rep.iterations >= 1
        assert rep.chain_depth == solver.chain.d
        assert rep.multiedges == solver.multigraph.m_logical

    def test_unbalanced_rhs_projected(self):
        g = G.grid2d(8, 8)
        solver = LaplacianSolver(g, options=practical_options(), seed=0)
        b = np.zeros(g.n)
        b[0] = 1.0  # sums to 1, not 0
        x = solver.solve(b, eps=1e-6)
        assert np.allclose(laplacian(g) @ x, b - b.mean(), atol=1e-4)

    def test_many_rhs_one_factorization(self):
        g = G.grid2d(10, 10)
        solver = LaplacianSolver(g, options=practical_options(), seed=0)
        rng = np.random.default_rng(5)
        for _ in range(4):
            b = rng.standard_normal(g.n)
            b -= b.mean()
            x = solver.solve(b, eps=1e-6)
            err = relative_lnorm_error(laplacian(g), x,
                                       exact_solution(g, b))
            assert err <= 1e-6


class TestInputHandling:
    def test_requires_connected(self):
        g = G.union_disjoint(G.path(10), G.path(10))
        with pytest.raises(NotConnectedError):
            LaplacianSolver(g)

    def test_rejects_matrix_in_class(self):
        with pytest.raises(TypeError):
            LaplacianSolver(laplacian(G.path(4)))

    def test_b_shape_checked(self):
        solver = LaplacianSolver(G.path(10), seed=0)
        with pytest.raises(DimensionMismatchError):
            solver.solve(np.zeros(4))

    def test_solve_laplacian_with_sparse_matrix(self):
        g = G.grid2d(6, 6)
        b = np.random.default_rng(1).standard_normal(g.n)
        b -= b.mean()
        x = solve_laplacian(laplacian(g), b, eps=1e-6,
                            options=practical_options(), seed=0)
        assert relative_lnorm_error(laplacian(g), x,
                                    exact_solution(g, b)) <= 1e-6

    def test_solve_laplacian_with_dense_matrix(self):
        g = G.cycle(9)
        b = np.zeros(9)
        b[0], b[3] = 1, -1
        x = solve_laplacian(laplacian(g).toarray(), b, eps=1e-6, seed=0)
        assert np.allclose(laplacian(g) @ x, b, atol=1e-4)

    def test_solve_laplacian_rejects_junk(self):
        with pytest.raises(TypeError):
            solve_laplacian("nope", np.zeros(3))

    def test_splitting_none_accepts_multigraph(self):
        from repro.core.boundedness import naive_split

        g = naive_split(G.grid2d(8, 8), 0.25)
        solver = LaplacianSolver(g, options=SolverOptions(splitting="none"),
                                 seed=0)
        assert solver.multigraph is g

    def test_determinism_given_seed(self):
        g = G.grid2d(9, 9)
        b = np.zeros(g.n)
        b[0], b[-1] = 1, -1
        x1 = LaplacianSolver(g, options=practical_options(),
                             seed=99).solve(b, eps=1e-6)
        x2 = LaplacianSolver(g, options=practical_options(),
                             seed=99).solve(b, eps=1e-6)
        assert np.array_equal(x1, x2)
