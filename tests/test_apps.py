"""Application modules: learning, flows, trees, partitioning, oracle."""

import numpy as np
import pytest

from repro.apps import (
    ResistanceOracle,
    effective_resistance,
    electrical_flow,
    electrical_voltages,
    fiedler_vector,
    harmonic_label_propagation,
    spanning_tree_via_schur,
    spectral_bisection,
    wilson_spanning_tree,
)
from repro.apps.electrical import dissipated_power, st_demand
from repro.apps.partitioning import cut_quality
from repro.apps.semi_supervised import exact_harmonic_extension
from repro.config import practical_options
from repro.errors import DimensionMismatchError, ReproError
from repro.graphs import generators as G
from repro.linalg.pinv import exact_effective_resistances

OPTS = practical_options()


class TestSemiSupervised:
    def test_exact_harmonic_oracle(self):
        # On a path with endpoints clamped to 0/1, the harmonic
        # extension is linear interpolation.
        g = G.path(5)
        f = exact_harmonic_extension(g, np.array([0, 4]),
                                     np.array([0.0, 1.0]))
        assert np.allclose(f, [0, 0.25, 0.5, 0.75, 1.0])

    def test_propagation_matches_oracle(self):
        g = G.grid2d(6, 6)
        labeled = np.array([0, g.n - 1])
        labels = np.array([0, 1])
        _, scores = harmonic_label_propagation(
            g, labeled, labels, clamp_weight=1e6, eps=1e-10,
            options=OPTS, seed=0)
        f1 = exact_harmonic_extension(g, labeled,
                                      (labels == 1).astype(float))
        assert np.abs(scores[:, 1] - f1).max() < 1e-2

    def test_labels_respected(self):
        g = G.dumbbell(4)
        labeled = np.array([0, g.n - 1])
        labels = np.array([0, 1])
        assignment, _ = harmonic_label_propagation(
            g, labeled, labels, options=OPTS, seed=1)
        half = g.n // 2
        assert assignment[0] == 0 and assignment[-1] == 1
        # the bottleneck makes sides homogeneous
        assert np.mean(assignment[:half] == 0) > 0.9
        assert np.mean(assignment[half:] == 1) > 0.9

    def test_validation(self):
        g = G.path(5)
        with pytest.raises(DimensionMismatchError):
            harmonic_label_propagation(g, np.array([0, 1]),
                                       np.array([0]))
        with pytest.raises(ReproError):
            harmonic_label_propagation(g, np.array([], dtype=np.int64),
                                       np.array([], dtype=np.int64))


class TestElectrical:
    def test_flow_conservation(self, zoo_graph):
        b = st_demand(zoo_graph.n, 0, zoo_graph.n - 1)
        flow, _ = electrical_flow(zoo_graph, b, eps=1e-8, options=OPTS,
                                  seed=0)
        net = np.zeros(zoo_graph.n)
        np.add.at(net, zoo_graph.u, flow)
        np.subtract.at(net, zoo_graph.v, flow)
        assert np.abs(net - b).max() < 1e-4

    def test_series_parallel_resistance(self):
        r = effective_resistance(G.cycle(6), 0, 3, eps=1e-9,
                                 options=OPTS, seed=1)
        assert r == pytest.approx(1.5, abs=1e-4)  # 3 || 3

    def test_energy_optimality(self):
        # Electrical energy equals b^T L^+ b = R_eff for unit demand.
        g = G.grid2d(5, 5)
        b = st_demand(g.n, 0, g.n - 1)
        flow, x = electrical_flow(g, b, eps=1e-9, options=OPTS, seed=2)
        assert dissipated_power(g, flow) == pytest.approx(
            float(x[0] - x[-1]), abs=1e-4)

    def test_rejects_unbalanced_demand(self):
        with pytest.raises(ReproError):
            electrical_voltages(G.path(4), np.array([1.0, 0, 0, 0]),
                                options=OPTS)

    def test_st_demand_validation(self):
        with pytest.raises(ReproError):
            st_demand(5, 2, 2)

    def test_dissipated_power_shape(self):
        with pytest.raises(DimensionMismatchError):
            dissipated_power(G.path(4), np.zeros(7))


class TestSpanningTrees:
    def test_wilson_returns_tree(self, zoo_graph):
        tree = wilson_spanning_tree(zoo_graph, seed=0)
        assert tree.size == zoo_graph.n - 1
        sub = zoo_graph.edge_subset(
            np.isin(np.arange(zoo_graph.m), tree))
        from repro.graphs.validation import is_connected

        assert is_connected(sub)

    def test_wilson_distribution_triangle(self):
        # On K3 all three spanning trees are equally likely.
        g = G.complete(3)
        counts = np.zeros(3)
        rng = np.random.default_rng(0)
        trials = 3000
        for _ in range(trials):
            tree = wilson_spanning_tree(g, seed=rng)
            missing = int(np.setdiff1d(np.arange(3), tree)[0])
            counts[missing] += 1
        assert np.abs(counts / trials - 1 / 3).max() < 0.04

    def test_wilson_weighted_distribution(self):
        # Tree probability ∝ product of edge weights: on a triangle
        # with weights (2,1,1), trees are {e0,e1}:2, {e0,e2}:2, {e1,e2}:1.
        from repro.graphs.multigraph import MultiGraph

        g = MultiGraph(3, [0, 1, 0], [1, 2, 2], [2.0, 1.0, 1.0])
        rng = np.random.default_rng(1)
        counts = {0: 0, 1: 0, 2: 0}  # keyed by the *missing* edge
        trials = 5000
        for _ in range(trials):
            tree = wilson_spanning_tree(g, seed=rng)
            missing = int(np.setdiff1d(np.arange(3), tree)[0])
            counts[missing] += 1
        # weights of trees missing e: {2: 2*1=2, 1: 2*1=2, 0: 1*1=1}
        assert counts[0] / trials == pytest.approx(0.2, abs=0.03)
        assert counts[1] / trials == pytest.approx(0.4, abs=0.03)
        assert counts[2] / trials == pytest.approx(0.4, abs=0.03)

    def test_schur_variant_returns_tree(self):
        g = G.grid2d(9, 9)
        tree = spanning_tree_via_schur(g, seed=1, min_size=32)
        assert tree.size == g.n - 1
        sub = g.edge_subset(np.isin(np.arange(g.m), tree))
        from repro.graphs.validation import is_connected

        assert is_connected(sub)

    def test_small_falls_back_to_wilson(self):
        g = G.cycle(10)
        tree = spanning_tree_via_schur(g, seed=2, min_size=64)
        assert tree.size == g.n - 1


class TestPartitioning:
    def test_fiedler_eigenvalue(self):
        import scipy.linalg

        from repro.graphs.laplacian import laplacian

        g = G.grid2d(6, 6)
        _, lam = fiedler_vector(g, options=OPTS, seed=0)
        evals = np.sort(scipy.linalg.eigvalsh(laplacian(g).toarray()))
        assert lam == pytest.approx(evals[1], rel=1e-3)

    def test_bisection_finds_planted_cut(self):
        g = G.dumbbell(6)
        side = spectral_bisection(g, options=OPTS, seed=1)
        half = g.n // 2
        planted = np.zeros(g.n, dtype=bool)
        planted[:half] = True
        agreement = max(np.mean(side == planted),
                        np.mean(side != planted))
        assert agreement > 0.95

    def test_cut_quality(self):
        g = G.dumbbell(4)
        planted = np.zeros(g.n, dtype=bool)
        planted[: g.n // 2] = True
        cut, cond = cut_quality(g, planted)
        assert cut == pytest.approx(1.0)
        assert 0 < cond < 0.05


class TestResistanceOracle:
    def test_matches_exact_within_gamma(self):
        g = G.grid2d(6, 6)
        gamma = 0.3
        oracle = ResistanceOracle(g, gamma=gamma, options=OPTS, seed=0)
        exact = exact_effective_resistances(g)
        approx = oracle.edge_resistances()
        ratio = approx / exact
        assert ratio.min() > 1 - gamma - 0.05
        assert ratio.max() < 1 + gamma + 0.05

    def test_scalar_query(self):
        g = G.path(8)
        oracle = ResistanceOracle(g, gamma=0.2, options=OPTS, seed=1)
        r = oracle.query(0, 7)
        assert isinstance(r, float)
        assert r == pytest.approx(7.0, rel=0.3)

    def test_leverage_scores_clipped(self):
        g = G.cycle(12)
        oracle = ResistanceOracle(g, gamma=0.3, options=OPTS, seed=2)
        tau = oracle.leverage_scores()
        assert np.all(tau >= 0) and np.all(tau <= 1)

    def test_query_shape_check(self):
        g = G.path(5)
        oracle = ResistanceOracle(g, gamma=0.4, options=OPTS, seed=3)
        with pytest.raises(DimensionMismatchError):
            oracle.query(np.array([0, 1]), np.array([2]))

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            ResistanceOracle(G.path(4), gamma=1.5)
