"""Approximate max-flow via electrical flows [CKMST11]."""

import numpy as np
import pytest

from repro.apps.maxflow import (
    MaxFlowResult,
    approx_max_flow,
    flow_feasibility,
)
from repro.errors import ReproError
from repro.graphs import generators as G
from repro.graphs.multigraph import MultiGraph


def _exact_max_flow(g: MultiGraph, s: int, t: int) -> float:
    nx = pytest.importorskip("networkx")
    Gx = nx.Graph()
    Gx.add_nodes_from(range(g.n))
    for a, b, w in zip(g.u.tolist(), g.v.tolist(), g.w.tolist()):
        if Gx.has_edge(a, b):
            Gx[a][b]["capacity"] += w
        else:
            Gx.add_edge(a, b, capacity=w)
    return float(nx.maximum_flow_value(Gx, s, t))


class TestApproxMaxFlow:
    def test_path_bottleneck(self):
        # A path's max flow is its minimum capacity.
        g = MultiGraph(4, [0, 1, 2], [1, 2, 3], [3.0, 1.0, 2.0])
        res = approx_max_flow(g, 0, 3, eps=0.25, bisection_steps=8,
                              mwu_iters=25, seed=0)
        assert res.value == pytest.approx(1.0, rel=0.25)
        assert res.congestion <= 1.5

    def test_parallel_paths_add(self):
        # Two disjoint s-t paths of capacity 1 each: max flow 2.
        g = MultiGraph(4, [0, 1, 0, 2], [1, 3, 2, 3],
                       [1.0, 1.0, 1.0, 1.0])
        res = approx_max_flow(g, 0, 3, eps=0.25, bisection_steps=8,
                              mwu_iters=25, seed=1)
        assert res.value == pytest.approx(2.0, rel=0.25)

    def test_grid_vs_exact(self):
        g = G.grid2d(4, 4)
        exact = _exact_max_flow(g, 0, g.n - 1)
        res = approx_max_flow(g, 0, g.n - 1, eps=0.3,
                              bisection_steps=7, mwu_iters=20, seed=2)
        assert res.value >= 0.6 * exact
        assert res.value <= 1.1 * exact

    def test_flow_is_nearly_feasible(self):
        g = G.grid2d(4, 4)
        res = approx_max_flow(g, 0, g.n - 1, eps=0.3,
                              bisection_steps=6, mwu_iters=20, seed=3)
        value, violation = flow_feasibility(g, res.flow, 0, g.n - 1)
        assert value == pytest.approx(res.value, rel=1e-6)
        assert violation < 1e-6  # electrical flows conserve exactly
        assert res.congestion <= 1.0 + 2 * 0.3 + 0.05

    def test_validation(self):
        g = G.path(4)
        with pytest.raises(ReproError):
            approx_max_flow(g, 1, 1)
        with pytest.raises(ReproError):
            approx_max_flow(g, 0, 3, eps=1.5)
        with pytest.raises(ReproError):
            approx_max_flow(g, 0, 3, capacities=np.array([1.0]))

    def test_custom_capacities(self):
        g = G.path(3)
        res = approx_max_flow(g, 0, 2, eps=0.25,
                              capacities=np.array([5.0, 2.0]),
                              bisection_steps=8, mwu_iters=25, seed=4)
        assert res.value == pytest.approx(2.0, rel=0.25)

    def test_result_dataclass(self):
        res = MaxFlowResult(value=1.0, flow=np.zeros(3),
                            congestion=0.5, oracle_calls=7)
        assert res.oracle_calls == 7
