"""Lemma 3.5: the Jacobi operator's Loewner sandwich M ≼ Z⁻¹ ≼ M + εY."""

import numpy as np
import pytest
import scipy.linalg
import scipy.sparse as sp

from repro.errors import DimensionMismatchError, FactorizationError
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian_blocks
from repro.linalg.jacobi import (
    JacobiOperator,
    is_k_diagonally_dominant,
    jacobi_terms,
)


def _five_dd_instance(seed: int, n: int = 25):
    """A random (X, Y) with X + Y genuinely 5-DD and Y a Laplacian."""
    rng = np.random.default_rng(seed)
    g = G.with_random_weights(G.erdos_renyi(n, 0.2, seed=seed), 0.5, 2.0,
                              seed=seed)
    from repro.graphs.laplacian import laplacian

    Y = laplacian(g).tocsr()
    # X_ii >= 4 * (offdiag row sum) makes X + Y 5-DD with margin.
    offdiag = np.asarray(abs(Y).sum(axis=1)).ravel() - Y.diagonal()
    X = 4.0 * offdiag + rng.random(n) + 0.1
    return X, Y


class TestJacobiTerms:
    def test_odd(self):
        for eps in (0.9, 0.5, 0.1, 0.01, 1e-6):
            l = jacobi_terms(eps)
            assert l % 2 == 1
            assert l >= np.log2(3.0 / eps)

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            jacobi_terms(0.0)
        with pytest.raises(ValueError):
            jacobi_terms(1.0)


class TestFiveDDCheck:
    def test_accepts_diagonal(self):
        assert is_k_diagonally_dominant(np.diag([1.0, 2.0]), 5.0)

    def test_rejects_laplacian(self):
        from repro.graphs.laplacian import laplacian

        assert not is_k_diagonally_dominant(laplacian(G.path(4)), 5.0)

    def test_threshold_is_sharp(self):
        M = np.array([[5.0, -1.0], [-1.0, 5.0]])
        assert is_k_diagonally_dominant(M, 5.0)
        assert not is_k_diagonally_dominant(M, 5.1)


class TestLemma35Sandwich:
    @pytest.mark.parametrize("eps", [0.5, 0.25, 0.05])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_sandwich(self, eps, seed):
        X, Y = _five_dd_instance(seed)
        op = JacobiOperator(X, Y, eps, validate_dd=True)
        Zinv = op.dense_Zinv()
        M = np.diag(X) + Y.toarray()
        # M ≼ Z⁻¹:
        lo = scipy.linalg.eigvalsh(Zinv - M).min()
        assert lo > -1e-8
        # Z⁻¹ ≼ M + εY:
        hi = scipy.linalg.eigvalsh(M + eps * Y.toarray() - Zinv).min()
        assert hi > -1e-8

    def test_apply_matches_neumann_series(self):
        X, Y = _five_dd_instance(2, n=12)
        eps = 0.3
        op = JacobiOperator(X, Y, eps)
        # Z = Σ_{i=0}^{l} (−X⁻¹Y)^i X⁻¹  (equivalent form of (3)).
        Xinv = np.diag(1.0 / X)
        Z = np.zeros_like(Xinv)
        T = np.eye(X.size)
        for _ in range(op.l + 1):
            Z += T @ Xinv
            T = T @ (-Xinv @ Y.toarray())
        b = np.random.default_rng(0).standard_normal(X.size)
        assert np.allclose(op.apply(b), Z @ b, atol=1e-10)

    def test_more_terms_tighter(self):
        X, Y = _five_dd_instance(3)
        M = np.diag(X) + Y.toarray()
        errs = []
        for eps in (0.5, 0.05, 0.005):
            Zinv = JacobiOperator(X, Y, eps).dense_Zinv()
            errs.append(np.linalg.norm(Zinv - M))
        assert errs[0] > errs[1] > errs[2]


class TestJacobiValidation:
    def test_rejects_nonpositive_X(self):
        with pytest.raises(FactorizationError, match="5-DD"):
            JacobiOperator(np.array([0.0, 1.0]),
                           sp.csr_matrix((2, 2)), 0.5)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            JacobiOperator(np.array([1.0, 1.0]),
                           sp.csr_matrix((3, 3)), 0.5)

    def test_validate_dd_catches_violation(self):
        from repro.graphs.laplacian import laplacian

        Y = laplacian(G.path(3)).tocsr()
        X = np.full(3, 0.1)  # way below 4x the off-diagonals
        with pytest.raises(FactorizationError):
            JacobiOperator(X, Y, 0.5, validate_dd=True)

    def test_apply_shape_check(self):
        X, Y = _five_dd_instance(4, n=8)
        op = JacobiOperator(X, Y, 0.5)
        with pytest.raises(DimensionMismatchError):
            op.apply(np.zeros(9))

    def test_from_real_dd_subset(self):
        # The exact shape the solver produces: blocks of a 5-DD subset.
        from repro.core.dd_subset import five_dd_subset, verify_five_dd

        g = G.grid2d(8, 8)
        F = five_dd_subset(g, seed=0)
        assert verify_five_dd(g, F)
        C = np.setdiff1d(np.arange(g.n), F)
        blocks = laplacian_blocks(g, F, C)
        op = JacobiOperator(blocks.X, blocks.Y, 0.25, validate_dd=True)
        assert op.n == F.size
