"""TerminalWalks (Algorithm 4): Lemmas 5.1, 5.2, and 5.4."""

import numpy as np
import pytest

from repro.core.boundedness import leverage_scores, naive_split
from repro.core.dd_subset import five_dd_subset
from repro.core.terminal_walks import terminal_walks
from repro.errors import SamplingError
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian
from repro.graphs.multigraph import MultiGraph
from repro.linalg.pinv import exact_schur_complement


class TestBasicContract:
    def test_edges_touch_only_C(self, zoo_graph, rng):
        C = np.sort(rng.choice(zoo_graph.n,
                               size=max(2, zoo_graph.n // 2),
                               replace=False))
        H = terminal_walks(zoo_graph, C, seed=0)
        in_C = np.zeros(zoo_graph.n, dtype=bool)
        in_C[C] = True
        assert in_C[H.u].all() and in_C[H.v].all()

    def test_edge_count_never_increases(self, zoo_graph, rng):
        # Lemma 5.4 part 1.
        C = np.sort(rng.choice(zoo_graph.n,
                               size=max(2, zoo_graph.n // 2),
                               replace=False))
        for seed in range(5):
            H = terminal_walks(zoo_graph, C, seed=seed)
            assert H.m <= zoo_graph.m

    def test_edge_within_C_kept_verbatim(self):
        # Both endpoints in C: the walk is empty and f_e = e.
        g = G.path(3)
        H = terminal_walks(g, np.array([0, 1, 2]), seed=0)
        assert H.m == 2
        assert np.allclose(laplacian(H).toarray(), laplacian(g).toarray())

    def test_empty_graph(self):
        g = MultiGraph(4, [], [], [])
        H = terminal_walks(g, np.array([0, 1]), seed=0)
        assert H.m == 0

    def test_rejects_empty_C(self):
        with pytest.raises(SamplingError):
            terminal_walks(G.path(3), np.array([], dtype=np.int64))

    def test_stats(self):
        g = G.grid2d(5, 5)
        F = five_dd_subset(g, seed=0)
        C = np.setdiff1d(np.arange(g.n), F)
        H, stats = terminal_walks(g, C, seed=1, return_stats=True)
        assert stats.edges_in == g.m
        assert stats.edges_out == H.m
        assert stats.edges_out + stats.self_loops_dropped == g.m
        assert stats.max_walk_length >= stats.mean_walk_length >= 0

    def test_deterministic_given_seed(self):
        g = G.grid2d(5, 5)
        C = np.arange(0, g.n, 2)
        assert terminal_walks(g, C, seed=7) == terminal_walks(g, C, seed=7)


class TestLemma51Unbiased:
    """E[L_H] = SC(L_G, C) — statistical check on small graphs."""

    @pytest.mark.parametrize("maker,Cids", [
        (lambda: G.path(5), [0, 4]),
        (lambda: G.cycle(6), [0, 2, 4]),
        (lambda: G.with_random_weights(G.complete(6), 0.5, 2.0, seed=1),
         [0, 1, 2]),
    ])
    def test_unbiased(self, maker, Cids):
        g = maker()
        C = np.asarray(Cids)
        SC = exact_schur_complement(laplacian(g).toarray(), C)
        trials = 4000
        rng = np.random.default_rng(0)
        acc = np.zeros((C.size, C.size))
        for _ in range(trials):
            H = terminal_walks(g, C, seed=rng)
            acc += laplacian(H).toarray()[np.ix_(C, C)]
        acc /= trials
        scale = np.abs(SC).max()
        # Monte-Carlo tolerance: generous but catches systematic bias.
        assert np.abs(acc - SC).max() < 0.08 * scale

    def test_unbiased_on_multigraph(self):
        # Parallel edges must be handled per multi-edge (Lemma 3.7's
        # multigraph extension).
        g = MultiGraph(4, [0, 0, 1, 2, 1], [1, 1, 2, 3, 3],
                       [1.0, 2.0, 1.0, 1.5, 0.5])
        C = np.array([0, 3])
        SC = exact_schur_complement(laplacian(g).toarray(), C)
        rng = np.random.default_rng(1)
        acc = np.zeros((2, 2))
        trials = 6000
        for _ in range(trials):
            H = terminal_walks(g, C, seed=rng)
            acc += laplacian(H).toarray()[np.ix_(C, C)]
        acc /= trials
        assert np.abs(acc - SC).max() < 0.08 * np.abs(SC).max()


class TestLemma52AlphaClosure:
    def test_new_edges_alpha_bounded_wrt_original(self):
        alpha = 0.25
        g0 = G.grid2d(5, 5)
        g = naive_split(g0, alpha)
        F = five_dd_subset(g, seed=0)
        C = np.setdiff1d(np.arange(g.n), F)
        for seed in range(3):
            H = terminal_walks(g, C, seed=seed)
            tau = leverage_scores(H, reference=g0)
            assert np.all(tau <= alpha + 1e-9)


class TestLemma54WalkLengths:
    def test_short_walks_under_5dd(self):
        g = naive_split(G.grid2d(10, 10), 0.5)
        F = five_dd_subset(g, seed=0)
        C = np.setdiff1d(np.arange(g.n), F)
        _, stats = terminal_walks(g, C, seed=1, return_stats=True)
        # Escape probability >= 4/5 per step: mean length O(1),
        # max O(log m) whp.  Generous constants.
        assert stats.mean_walk_length < 2.0
        assert stats.max_walk_length <= 4 * np.log2(max(g.m, 2)) + 8
        assert stats.total_steps <= 4 * g.m

    def test_resistance_composition_on_path(self):
        # Eliminating the middle of a 3-path: every surviving walk is
        # exactly 0-1-2 (the terminals block any detour), so every
        # emitted edge has weight exactly 1/(1/w1 + 1/w2) = 4/3.
        g = MultiGraph(3, [0, 1], [1, 2], [2.0, 4.0])
        rng = np.random.default_rng(0)
        seen_any = False
        for _ in range(50):
            H = terminal_walks(g, np.array([0, 2]), seed=rng)
            assert H.m <= 2
            if H.m:
                seen_any = True
                assert np.allclose(H.w, 4.0 / 3.0)
        assert seen_any
