"""Incidence matrices and sketch helpers."""

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian
from repro.linalg.incidence import (
    incidence_matrix,
    resistance_from_sketch,
    sketch_rows,
    weighted_incidence,
)
from repro.linalg.pinv import (
    dense_laplacian_pinv,
    exact_effective_resistances,
)


class TestIncidence:
    def test_laplacian_identity(self, zoo_graph):
        # L = B^T W B
        B = incidence_matrix(zoo_graph)
        import scipy.sparse as sp

        L = (B.T @ sp.diags(zoo_graph.w) @ B).toarray()
        assert np.allclose(L, laplacian(zoo_graph).toarray())

    def test_weighted_incidence_identity(self, zoo_graph):
        WB = weighted_incidence(zoo_graph)
        assert np.allclose((WB.T @ WB).toarray(),
                           laplacian(zoo_graph).toarray())

    def test_rows_sum_to_zero(self, zoo_graph):
        B = incidence_matrix(zoo_graph)
        assert np.abs(np.asarray(B.sum(axis=1))).max() == 0.0


class TestSketch:
    def test_jl_resistances_concentrate(self):
        g = G.grid2d(6, 6)
        q = 600  # large sketch: tight concentration for the test
        Z0 = sketch_rows(g, q, seed=0)
        pinv = dense_laplacian_pinv(laplacian(g).toarray())
        Z = Z0 @ pinv
        approx = resistance_from_sketch(Z, g.u, g.v)
        exact = exact_effective_resistances(g)
        assert np.abs(approx / exact - 1.0).max() < 0.25

    def test_sketch_shape_and_kernel(self):
        g = G.cycle(8)
        Z = sketch_rows(g, 5, seed=1)
        assert Z.shape == (5, 8)
        # rows of Q W^{1/2} B are in 1⊥
        assert np.abs(Z.sum(axis=1)).max() < 1e-10
