"""Fault-tolerant execution (ISSUE 6): injection harness + recovery.

The determinism contract (chunk layout and per-chunk RNG streams are
functions of problem size only) makes recovery cheap: a lost chunk
re-dispatched with its original ``(lo, hi, seed_key)`` is bit-identical
to what the lost attempt would have produced.  These tests *prove* it:
for every backend and fault kind, a faulted run must equal a fault-free
run bit-for-bit — solutions **and** ledger totals — and every recovery
action must appear in the structured :class:`FaultLog`.
"""

import os

import numpy as np
import pytest

from repro.config import default_options, practical_options
from repro.core.solver import LaplacianSolver
from repro.errors import (
    ConvergenceError,
    ExecutionError,
    NumericalBreakdownError,
)
from repro.graphs import generators as G
from repro.pram import use_ledger
from repro.pram.executor import (
    BACKENDS,
    ExecutionContext,
    RetryPolicy,
    default_chunk_timeout,
    default_degrade,
    default_retries,
    live_segment_names,
)
from repro.pram.faults import (
    FaultDirective,
    FaultLog,
    FaultPlan,
    InjectedFault,
    active_plan,
    apply_chunk_faults,
    use_fault_log,
    use_faults,
)

#: A fast retry policy for tests (no reason to sleep real backoffs).
FAST = RetryPolicy(max_attempts=3, base_delay=0.01)


def _square_task(arrays, meta, lo, hi, stream, ledger):
    """Module-level shipped task (pickled by reference under the
    process backend): deterministic value + one charged region."""
    from repro.pram import charge, use_ledger as _use

    value = float((arrays["x"][lo:hi] ** 2).sum()) + meta["bias"]
    if stream is not None:
        value += float(stream.random())
    if ledger is not None:
        with _use(ledger):
            charge(hi - lo, 2.0, label="sq")
    return value


class TestPlanParsing:
    def test_parse_directives(self):
        plan = FaultPlan.parse(
            "kill:chunk=2:attempt=1, hang:chunk=0:seconds=2,"
            "nan:col=3:iter=1:stage=cg")
        kill, hang, nan = plan.directives
        assert (kill.kind, kill.chunk, kill.attempt) == ("kill", 2, 1)
        assert (hang.kind, hang.chunk, hang.seconds) == ("hang", 0, 2.0)
        assert (nan.kind, nan.col, nan.iteration, nan.stage) == \
            ("nan", 3, 1, "cg")

    def test_spec_roundtrip(self):
        text = ("kill:chunk=2:attempt=1,hang:chunk=0:seconds=2,"
                "nan:col=3:iter=1:stage=cg,"
                "kill:chunk=1:attempt=*:backend=process:phase=walk")
        plan = FaultPlan.parse(text)
        reparsed = FaultPlan.parse(
            ",".join(d.spec() for d in plan.directives))
        assert reparsed == plan

    def test_attempt_star_means_every_attempt(self):
        d = FaultPlan.parse("kill:chunk=1:attempt=*").directives[0]
        assert d.attempt is None
        assert d.matches_chunk(chunk=1, attempt=0)
        assert d.matches_chunk(chunk=1, attempt=5)
        assert not d.matches_chunk(chunk=2, attempt=0)

    def test_backend_and_phase_selectors(self):
        d = FaultPlan.parse(
            "kill:chunk=0:backend=process:phase=walk").directives[0]
        assert d.matches_chunk(chunk=0, attempt=0, backend="process",
                               phase="walk")
        assert not d.matches_chunk(chunk=0, attempt=0, backend="thread",
                                   phase="walk")
        assert not d.matches_chunk(chunk=0, attempt=0, backend="process",
                                   phase="columns")
        # Unknown coordinate at the call site: selector not consulted.
        assert d.matches_chunk(chunk=0, attempt=0)

    def test_chunk_directives_prefilter(self):
        plan = FaultPlan.parse(
            "kill:chunk=0:backend=process,kill:chunk=1:backend=serial,"
            "nan:col=2,hang:chunk=3")
        ships = plan.chunk_directives(backend="process", phase="walk")
        assert [d.chunk for d in ships] == [0, 3]

    @pytest.mark.parametrize("bad", [
        "explode:chunk=1",       # unknown kind
        "kill",                  # kill needs chunk=
        "nan:iter=1",            # nan needs col=
        "kill:chunk=x",          # non-integer
        "hang:chunk=0:seconds=no",
        "hang:chunk=0:seconds=-1",
        "kill:chunk=0:wat=1",    # unknown selector
        "kill:chunk",            # selector without =
        " , ",                   # no directives at all
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_env_activation(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert active_plan() is None
        monkeypatch.setenv("REPRO_FAULTS", "kill:chunk=2")
        plan = active_plan()
        assert plan is not None and plan.directives[0].chunk == 2
        # use_faults overrides the env var ...
        with use_faults("kill:chunk=7"):
            assert active_plan().directives[0].chunk == 7
        # ... and use_faults(None) masks it entirely.
        with use_faults(None):
            assert active_plan() is None
        assert active_plan().directives[0].chunk == 2

    def test_apply_chunk_faults_logs_and_raises(self):
        plan = FaultPlan.parse("kill:chunk=1")
        log = FaultLog()
        apply_chunk_faults(plan, chunk=0, attempt=0, log=log)  # no match
        assert len(log) == 0
        with pytest.raises(InjectedFault):
            apply_chunk_faults(plan, chunk=1, attempt=0, log=log)
        assert log.actions() == ("inject",)
        assert log.events[0].kind == "kill"


class TestEnvKnobs:
    def test_default_retries(self, monkeypatch):
        monkeypatch.delenv("REPRO_RETRIES", raising=False)
        assert default_retries() == 2
        monkeypatch.setenv("REPRO_RETRIES", "0")
        assert default_retries() == 0
        monkeypatch.setenv("REPRO_RETRIES", "-1")
        with pytest.raises(ValueError):
            default_retries()

    def test_default_chunk_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK_TIMEOUT", raising=False)
        assert default_chunk_timeout() is None
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "2.5")
        assert default_chunk_timeout() == 2.5
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "0")
        with pytest.raises(ValueError):
            default_chunk_timeout()

    def test_default_degrade(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEGRADE", raising=False)
        assert default_degrade() is False
        monkeypatch.setenv("REPRO_DEGRADE", "1")
        assert default_degrade() is True
        monkeypatch.setenv("REPRO_DEGRADE", "0")
        assert default_degrade() is False

    def test_retry_policy_validation_and_backoff(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0.0)
        policy = RetryPolicy(max_attempts=4, base_delay=0.1)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(3) == pytest.approx(0.4)  # doubles per round

    def test_policy_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRIES", "5")
        monkeypatch.setenv("REPRO_CHUNK_TIMEOUT", "1.5")
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 6
        assert policy.timeout == 1.5

    def test_options_thread_through(self):
        ctx = default_options().with_(
            retries=1, chunk_timeout=2.0, degrade=True).execution()
        assert ctx.retry == RetryPolicy(max_attempts=2, timeout=2.0)
        assert ctx.resolve_degrade() is True
        # All-defaults options still share the singleton context.
        assert default_options().execution() is ExecutionContext.DEFAULT


class TestChunkRedispatch:
    """Fault ⇒ re-dispatch ⇒ bit-identical values and ledger totals."""

    def _run(self, ctx, pieces, x, plan):
        rng = np.random.default_rng(5)
        with use_ledger() as ledger:
            with use_faults(plan), use_fault_log() as flog:
                out = ctx.run_shipped(_square_task, {"x": x},
                                      {"bias": 1.5}, pieces, rng=rng)
        return out, ledger.work, ledger.depth, flog

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fault", [
        "kill:chunk=1", "hang:chunk=1:seconds=0.01",
    ])
    def test_faulted_matches_clean(self, backend, fault, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        x = np.linspace(0.0, 3.0, 37)
        ctx = ExecutionContext(backend=backend, chunk_items=8, retry=FAST)
        pieces = ctx.item_chunks(x.size)
        assert len(pieces) > 2
        base, work, depth, _ = self._run(ctx, pieces, x, None)
        out, fwork, fdepth, flog = self._run(ctx, pieces, x, fault)
        assert out == base
        assert (fwork, fdepth) == (work, depth)
        assert flog.count("retry") >= 1
        if backend == "process" and fault.startswith("kill"):
            assert flog.count("pool_rebuild") >= 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_second_attempt_can_fault_too(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        x = np.linspace(0.0, 3.0, 37)
        ctx = ExecutionContext(backend=backend, chunk_items=8, retry=FAST)
        pieces = ctx.item_chunks(x.size)
        base, work, *_ = self._run(ctx, pieces, x, None)
        out, fwork, _, flog = self._run(
            ctx, pieces, x, "kill:chunk=1,kill:chunk=1:attempt=1")
        assert out == base and fwork == work
        assert flog.count("retry") >= 2

    def test_stall_timeout_rebuilds_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        x = np.linspace(0.0, 3.0, 37)
        policy = RetryPolicy(max_attempts=2, base_delay=0.01, timeout=0.5)
        ctx = ExecutionContext(backend="process", chunk_items=8,
                               retry=policy)
        pieces = ctx.item_chunks(x.size)
        base, work, *_ = self._run(ctx, pieces, x, None)
        # A real 30s sleep in a worker: only the stall timeout can save
        # this dispatch within the test's lifetime.
        out, fwork, _, flog = self._run(ctx, pieces, x,
                                        "hang:chunk=0:seconds=30")
        assert out == base and fwork == work
        assert flog.count("timeout") >= 1
        assert flog.count("retry") >= 1
        assert live_segment_names() == ()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_exhaustion_error_shape(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        x = np.linspace(0.0, 3.0, 37)
        ctx = ExecutionContext(
            backend=backend, chunk_items=8,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01))
        pieces = ctx.item_chunks(x.size)
        with use_faults("kill:chunk=1:attempt=*"), \
                use_fault_log() as flog:
            with pytest.raises(ExecutionError) as err:
                ctx.run_shipped(_square_task, {"x": x}, {"bias": 1.5},
                                pieces)
        # A dying worker can take co-scheduled chunks down with it
        # (BrokenProcessPool breaks the whole pool), so the lowest
        # exhausted chunk may be a collateral one — but chunk 1 always
        # exhausts, and the error shape is fixed.
        assert err.value.chunk is not None
        assert err.value.attempts == 2
        assert err.value.__cause__ is not None
        assert flog.count("exhausted") >= 1
        assert any(e.chunk == 1 for e in flog.events
                   if e.action == "exhausted")
        assert live_segment_names() == ()

    def test_nontransient_errors_are_not_retried(self, monkeypatch):
        # A deterministic bug must not burn retry attempts: only
        # injected faults / crashes / timeouts are transient.
        monkeypatch.setenv("REPRO_WORKERS", "2")
        ctx = ExecutionContext(backend="serial", chunk_items=4,
                               retry=FAST)
        pieces = ctx.item_chunks(8)
        calls = []

        def one(lo, hi):
            calls.append(lo)
            raise ValueError(f"boom {lo}")

        with pytest.raises(ValueError, match="boom 0"):
            ctx.run_chunks(one, pieces)
        assert sorted(calls) == [lo for lo, _ in pieces]  # once each

    def test_run_chunks_retries_injected_faults(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        ctx = ExecutionContext(backend="thread", chunk_items=4,
                               retry=FAST)
        pieces = ctx.item_chunks(12)
        with use_faults("kill:chunk=0"), use_fault_log() as flog:
            out = ctx.run_chunks(lambda lo, hi: hi - lo, pieces)
        assert out == [hi - lo for lo, hi in pieces]
        assert flog.count("inject") == 1 and flog.count("retry") == 1


class TestShmHygiene:
    """Satellite: no leaked segments when workers die mid-dispatch."""

    def _assert_no_leaks(self):
        assert live_segment_names() == ()
        shm_dir = "/dev/shm"
        prefix = f"repro-{os.getpid()}-"
        if os.path.isdir(shm_dir):
            leaked = [name for name in os.listdir(shm_dir)
                      if name.startswith(prefix)]
            assert leaked == []

    def test_killed_worker_leaves_no_segments(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        x = np.linspace(0.0, 3.0, 37)
        ctx = ExecutionContext(
            backend="process", chunk_items=8,
            retry=RetryPolicy(max_attempts=1, base_delay=0.01))
        pieces = ctx.item_chunks(x.size)
        with use_faults("kill:chunk=1:attempt=*"):
            with pytest.raises(ExecutionError):
                ctx.run_shipped(_square_task, {"x": x}, {"bias": 1.5},
                                pieces)
        self._assert_no_leaks()

    def test_recovered_dispatch_leaves_no_segments(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        x = np.linspace(0.0, 3.0, 37)
        ctx = ExecutionContext(backend="process", chunk_items=8,
                               retry=FAST)
        pieces = ctx.item_chunks(x.size)
        with use_faults("kill:chunk=0"):
            ctx.run_shipped(_square_task, {"x": x}, {"bias": 1.5}, pieces)
        self._assert_no_leaks()


class TestDegradation:
    """Retry-exhausted chunks fall down the backend ladder — and the
    degraded result is still bit-identical."""

    def test_process_degrades_to_thread_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        x = np.linspace(0.0, 3.0, 37)
        policy = RetryPolicy(max_attempts=2, base_delay=0.01)
        pieces = ExecutionContext(chunk_items=8).item_chunks(x.size)

        def run(ctx, plan):
            rng = np.random.default_rng(5)
            with use_faults(plan), use_fault_log() as flog:
                out = ctx.run_shipped(_square_task, {"x": x},
                                      {"bias": 1.5}, pieces, rng=rng)
            return out, flog

        base, _ = run(ExecutionContext(backend="serial", chunk_items=8),
                      None)
        ctx = ExecutionContext(backend="process", chunk_items=8,
                               retry=policy, degrade=True)
        # backend=process pins the kill to the process attempts only, so
        # the degraded (thread) re-dispatch of the same chunk succeeds.
        out, flog = run(ctx, "kill:chunk=1:attempt=*:backend=process")
        assert out == base
        # Collateral chunks may exhaust alongside chunk 1 (a dying
        # worker breaks the whole pool) — degradation recovers them all.
        assert flog.count("exhausted") >= 1
        assert flog.count("degrade") >= 1
        assert flog.events[-1].action != "exhausted"
        assert live_segment_names() == ()

    def test_degrade_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEGRADE", raising=False)
        ctx = ExecutionContext(backend="process", chunk_items=8,
                               retry=RetryPolicy(max_attempts=1))
        assert ctx.resolve_degrade() is False
        x = np.linspace(0.0, 3.0, 37)
        pieces = ctx.item_chunks(x.size)
        with use_faults("kill:chunk=1:attempt=*"):
            with pytest.raises(ExecutionError):
                ctx.run_shipped(_square_task, {"x": x}, {"bias": 1.5},
                                pieces)


class TestSolverFaultInvariance:
    """The bench gate, in-tree: fixed seed ⇒ identical solutions and
    ledger totals with and without injected faults, on every backend."""

    WORKER_COUNTS = (1, 2)

    def _solve(self, monkeypatch, backend, workers, plan):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        monkeypatch.setenv("REPRO_WORKERS", str(workers))
        g = G.grid2d(12, 12)
        rng = np.random.default_rng(7)
        B = rng.standard_normal((g.n, 5))
        B -= B.mean(axis=0)
        opts = practical_options().with_(chunk_items=512, retries=2)
        with use_faults(plan):
            with use_ledger() as ledger:
                solver = LaplacianSolver(g, options=opts, seed=11)
                X = solver.solve_many(B, eps=1e-6)
        return X, ledger.work, ledger.depth

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kill_one_chunk_is_invisible(self, backend, monkeypatch):
        base = self._solve(monkeypatch, backend, 1, None)
        for workers in self.WORKER_COUNTS:
            faulted = self._solve(monkeypatch, backend, workers,
                                  "kill:chunk=1")
            np.testing.assert_array_equal(faulted[0], base[0],
                                          err_msg=f"{backend} w={workers}")
            assert faulted[1:] == base[1:], (backend, workers)

    def test_hang_on_process_backend_is_invisible(self, monkeypatch):
        base = self._solve(monkeypatch, "process", 2, None)
        faulted = self._solve(monkeypatch, "process", 2,
                              "hang:chunk=0:seconds=0.01")
        np.testing.assert_array_equal(faulted[0], base[0])
        assert faulted[1:] == base[1:]
        assert live_segment_names() == ()

    def test_column_chunk_faults_are_invisible(self, monkeypatch):
        # phase=columns pins the fault to the column-chunked solve
        # dispatches (run_chunks closures), leaving the walk phase
        # alone — exercises the in-process retry path end-to-end.
        base = self._solve(monkeypatch, "thread", 2, None)
        faulted = self._solve(monkeypatch, "thread", 2,
                              "kill:chunk=0:phase=columns")
        np.testing.assert_array_equal(faulted[0], base[0])
        assert faulted[1:] == base[1:]


class TestShippedSolveFaults:
    """ISSUE 7: the fault machinery covers shipped solve chunks
    unchanged.  ``stage=solve`` pins kill/hang to the shipped-solve
    dispatch scope (and widens nan directives over every kernel
    stage); recovery replays the identical column chunks, so faulted
    runs stay bit-identical — solutions and ledger totals — and no
    shared memory survives a worker dying mid-solve."""

    def _solve(self, plan, backend="process", ship=True, retries=2):
        g = G.grid2d(12, 12)
        rng = np.random.default_rng(5)
        B = rng.standard_normal((g.n, 8))
        B -= B.mean(axis=0)
        opts = practical_options().with_(
            chunk_columns=2, chunk_items=512, backend=backend,
            workers=2, ship_solves=ship, retries=retries)
        solver = LaplacianSolver(g, options=opts, seed=11)
        with use_faults(plan):
            with use_ledger() as ledger:
                rep = solver.solve_many_report(B, eps=1e-6)
        solver.close()
        return rep, (ledger.work, ledger.depth)

    def test_stage_solve_selector_semantics(self):
        plan = FaultPlan.parse("kill:chunk=1:stage=solve")
        assert plan.chunk_directives(phase="solve")
        assert not plan.chunk_directives(phase="walk")
        assert not plan.chunk_directives(phase="columns")
        d = plan.directives[0]
        assert d.matches_chunk(chunk=1, attempt=0, phase="solve")
        assert not d.matches_chunk(chunk=1, attempt=0, phase="walk")
        assert FaultPlan.parse(d.spec()) == plan  # spec round-trips

    @pytest.mark.parametrize("backend", ["process", "distributed"])
    def test_killed_solve_chunk_recovers_bit_identical(self, backend):
        base, lbase = self._solve(None, backend=backend)
        assert base.iterations > 0
        rep, led = self._solve("kill:chunk=1:stage=solve",
                               backend=backend)
        np.testing.assert_array_equal(rep.x, base.x)
        assert rep.iterations == base.iterations
        assert led == lbase
        assert rep.fault_log.summary().get("retry", 0) >= 1
        assert live_segment_names() == ()

    def test_hung_solve_chunk_recovers_bit_identical(self):
        base, lbase = self._solve(None)
        rep, led = self._solve(
            "hang:chunk=0:seconds=0.01:stage=solve")
        np.testing.assert_array_equal(rep.x, base.x)
        assert led == lbase
        assert rep.fault_log.summary().get("retry", 0) >= 1
        assert live_segment_names() == ()

    def test_nan_stage_solve_shipped_matches_inprocess(self):
        # stage=solve is a wildcard over the kernel stages for nan
        # directives; the quarantine fires inside a shipped worker, the
        # escalation runs parent-side — the whole trajectory (status,
        # solutions, ledger) must equal the unshipped thread run.
        ship, led_s = self._solve("nan:col=3:stage=solve")
        plain, led_p = self._solve("nan:col=3:stage=solve",
                                   backend="thread", ship=False)
        np.testing.assert_array_equal(ship.x, plain.x)
        assert ship.method == plain.method
        assert list(ship.column_status) == list(plain.column_status)
        assert "dense" in ship.column_status or \
            "pcg" in ship.column_status
        assert led_s == led_p
        assert ship.fault_log.summary()["quarantine"] == \
            plain.fault_log.summary()["quarantine"]
        assert live_segment_names() == ()

    def test_shm_clean_after_killed_worker_mid_solve(self):
        # The killed worker dies holding live attachments to both the
        # dispatch payload and the persistent chain payload; neither
        # may outlive the run on the filesystem.
        rep, _ = self._solve("kill:chunk=1:stage=solve")
        assert np.isfinite(rep.x).all()
        assert live_segment_names() == ()
        prefix = f"repro-{os.getpid()}-"
        if os.path.isdir("/dev/shm"):
            assert [name for name in os.listdir("/dev/shm")
                    if name.startswith(prefix)] == []


class TestNumericalContainment:
    """NaN/Inf guards: quarantine broken columns, escalate, contain."""

    def _solver(self, **with_):
        g = G.grid2d(8, 8)
        opts = default_options().with_(chunk_columns=4, **with_)
        solver = LaplacianSolver(g, options=opts, seed=0)
        B = np.random.default_rng(1).normal(size=(g.n, 6))
        return solver, B

    def test_clean_report_surface(self):
        solver, B = self._solver()
        rep = solver.solve_many_report(B, eps=1e-8)
        assert list(rep.column_status) == ["richardson"] * 6
        assert len(rep.fault_log) == 0
        assert len(solver.build_fault_log) == 0

    def test_richardson_breakdown_escalates_to_pcg(self):
        solver, B = self._solver()
        clean = solver.solve_many_report(B, eps=1e-8)
        with use_faults("nan:col=3:stage=richardson"):
            rep = solver.solve_many_report(B, eps=1e-8)
        assert rep.method == "richardson+pcg"
        assert list(rep.column_status) == \
            ["richardson"] * 3 + ["pcg"] + ["richardson"] * 2
        assert rep.fault_log.summary()["quarantine"] == 1
        assert rep.fault_log.summary()["escalate"] == 1
        # Healthy columns never felt the fault — bit-identical.
        keep = [0, 1, 2, 4, 5]
        np.testing.assert_array_equal(rep.x[:, keep], clean.x[:, keep])
        # The escalated column still meets its target.
        assert np.isfinite(rep.x).all()
        assert rep.residual_2norms[3] <= 1e-6

    def test_double_breakdown_escalates_to_dense(self):
        solver, B = self._solver()
        clean = solver.solve_many_report(B, eps=1e-8)
        # No stage= pin: the directive re-fires inside the PCG
        # escalation too, forcing the dense pseudo-inverse last line.
        with use_faults("nan:col=3"):
            rep = solver.solve_many_report(B, eps=1e-8)
        assert rep.method == "richardson+pcg+dense"
        assert rep.column_status[3] == "dense"
        assert np.isfinite(rep.x).all()
        assert rep.residual_2norms[3] <= 1e-8
        keep = [0, 1, 2, 4, 5]
        np.testing.assert_array_equal(rep.x[:, keep], clean.x[:, keep])

    def test_blocked_cg_quarantines_and_reports(self):
        from repro.linalg.cg import conjugate_gradient

        solver, B = self._solver()
        with use_faults("nan:col=2:stage=cg"):
            res = conjugate_gradient(solver.apply_L, B, tol=1e-8,
                                     preconditioner=solver.
                                     preconditioner.apply,
                                     ctx=solver.ctx)
        assert res.broken_columns is not None
        assert list(res.broken_columns) == [2]
        assert np.isnan(res.x[:, 2]).all()
        assert np.isfinite(np.delete(res.x, 2, axis=1)).all()

    def test_blocked_cg_raise_on_fail_error_shape(self):
        from repro.linalg.cg import conjugate_gradient

        solver, B = self._solver()
        with use_faults("nan:col=2:stage=cg"):
            with pytest.raises(NumericalBreakdownError) as err:
                conjugate_gradient(solver.apply_L, B, tol=1e-8,
                                   preconditioner=solver.
                                   preconditioner.apply,
                                   raise_on_fail=True)
        assert err.value.column_indices == (2,)
        assert isinstance(err.value, ConvergenceError)  # old handlers work

    def test_single_vector_cg_breakdown(self):
        from repro.linalg.cg import conjugate_gradient

        def bad_apply(v):
            return np.full_like(v, np.nan)

        with pytest.raises(NumericalBreakdownError):
            conjugate_gradient(bad_apply, np.arange(8.0), tol=1e-8,
                               raise_on_fail=True)

    def test_chebyshev_quarantines_broken_columns(self):
        import math

        from repro.graphs.laplacian import laplacian
        from repro.linalg.chebyshev import chebyshev_iteration

        solver, B = self._solver()
        L = laplacian(solver.graph)
        clean = chebyshev_iteration(L, solver.preconditioner.apply, B,
                                    math.exp(-1), math.exp(1), 50,
                                    tol=1e-9)
        with use_faults("nan:col=1:stage=chebyshev"), \
                use_fault_log() as flog:
            X = chebyshev_iteration(L, solver.preconditioner.apply, B,
                                    math.exp(-1), math.exp(1), 50,
                                    tol=1e-9)
        assert np.isnan(X[:, 1]).all()
        keep = [0, 2, 3, 4, 5]
        np.testing.assert_array_equal(X[:, keep], clean[:, keep])
        assert flog.count("quarantine") == 1

    def test_nan_injection_survives_column_chunking(self):
        # col=5 lands in the second column chunk (chunk_columns=4):
        # global col_ids must reach the blocked kernels for the
        # directive to find its target.
        solver, B = self._solver()
        with use_faults("nan:col=5:stage=richardson"):
            rep = solver.solve_many_report(B, eps=1e-8)
        assert rep.column_status[5] == "pcg"
        assert np.isfinite(rep.x).all()
