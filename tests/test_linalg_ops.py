"""Norms, projections, pseudoinverse oracles, and Loewner checks."""

import numpy as np
import pytest
import scipy.linalg

from repro.errors import DimensionMismatchError
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian
from repro.linalg.loewner import (
    approximation_factor,
    is_epsilon_approximation,
    operator_approximation_factor,
    relative_spectral_bounds,
)
from repro.linalg.ops import (
    energy_norm,
    lnorm_error,
    project_out_ones,
    relative_lnorm_error,
    residual_norm,
)
from repro.linalg.pinv import (
    dense_laplacian_pinv,
    exact_effective_resistances,
    exact_leverage_scores,
    exact_schur_complement,
    exact_solution,
    solve_dense_pseudo,
)


class TestNorms:
    def test_energy_norm_definition(self, zoo_graph, rng):
        L = laplacian(zoo_graph).toarray()
        x = rng.standard_normal(zoo_graph.n)
        assert energy_norm(L, x) == pytest.approx(
            float(np.sqrt(x @ L @ x)))

    def test_energy_norm_kernel_is_zero(self, zoo_graph):
        L = laplacian(zoo_graph)
        assert energy_norm(L, np.ones(zoo_graph.n)) == pytest.approx(
            0.0, abs=1e-6)

    def test_lnorm_error_shape_check(self):
        L = laplacian(G.path(3))
        with pytest.raises(DimensionMismatchError):
            lnorm_error(L, np.zeros(3), np.zeros(4))

    def test_relative_error_zero_target(self):
        L = laplacian(G.path(3))
        assert relative_lnorm_error(L, np.ones(3), np.ones(3)) == 0.0
        assert relative_lnorm_error(L, np.array([1.0, 0, 0]),
                                    np.ones(3)) == float("inf")

    def test_project_out_ones(self, rng):
        b = rng.standard_normal(10) + 5.0
        p = project_out_ones(b)
        assert abs(p.sum()) < 1e-10
        assert np.allclose(p, b - b.mean())

    def test_residual_norm(self):
        g = G.path(3)
        L = laplacian(g)
        b = np.array([1.0, 0.0, -1.0])
        x = exact_solution(g, b)
        assert residual_norm(L, x, b) < 1e-10


class TestPinv:
    def test_pinv_identity(self, zoo_graph):
        L = laplacian(zoo_graph).toarray()
        P = dense_laplacian_pinv(L)
        n = zoo_graph.n
        proj = np.eye(n) - np.full((n, n), 1.0 / n)
        assert np.allclose(L @ P, proj, atol=1e-8)
        assert np.allclose(P @ L, proj, atol=1e-8)

    def test_pinv_matches_numpy(self, zoo_graph):
        L = laplacian(zoo_graph).toarray()
        assert np.allclose(dense_laplacian_pinv(L), np.linalg.pinv(L),
                           atol=1e-7)

    def test_solve_dense_pseudo(self, zoo_graph, balanced_rhs):
        b = balanced_rhs(zoo_graph)
        L = laplacian(zoo_graph).toarray()
        x = solve_dense_pseudo(L, b)
        assert np.allclose(L @ x, b, atol=1e-8)
        assert abs(x.sum()) < 1e-8

    def test_exact_solution_unbalanced_rhs_projected(self):
        g = G.cycle(5)
        b = np.ones(5)  # entirely in the kernel
        assert np.allclose(exact_solution(g, b), 0.0, atol=1e-10)

    def test_disconnected_pinv_fallback(self):
        L = np.array([[1.0, -1, 0, 0], [-1, 1, 0, 0],
                      [0, 0, 1, -1], [0, 0, -1, 1]])
        assert np.allclose(dense_laplacian_pinv(L), np.linalg.pinv(L),
                           atol=1e-8)


class TestSchurOracle:
    def test_path_series_resistance(self):
        # SC of a unit path onto its endpoints = one edge of
        # conductance 1/(n-1).
        g = G.path(6)
        SC = exact_schur_complement(laplacian(g).toarray(),
                                    np.array([0, 5]))
        assert np.allclose(SC, 0.2 * np.array([[1, -1], [-1, 1]]))

    def test_schur_is_laplacian(self, zoo_graph):
        C = np.arange(zoo_graph.n // 2)
        if C.size in (0, zoo_graph.n):
            pytest.skip("trivial C")
        SC = exact_schur_complement(laplacian(zoo_graph).toarray(), C)
        assert np.abs(SC.sum(axis=1)).max() < 1e-8  # zero row sums
        off = SC - np.diag(np.diag(SC))
        assert off.max() < 1e-8  # non-positive off-diagonals

    def test_schur_quadratic_form_identity(self, zoo_graph, rng):
        # x^T SC x = min_y [x; y]^T L [x; y]: check via pinv formula
        # SC(L, C)^+ = (L^+)_CC  restricted-inverse identity instead:
        L = laplacian(zoo_graph).toarray()
        C = np.sort(rng.choice(zoo_graph.n, size=zoo_graph.n // 2,
                               replace=False))
        SC = exact_schur_complement(L, C)
        pin = dense_laplacian_pinv(L)[np.ix_(C, C)]
        x = rng.standard_normal(C.size)
        x -= x.mean()
        lhs = x @ np.linalg.pinv(SC) @ x
        # (SC)^+ x = ((L^+)_CC centered) x on the Schur kernel space
        rhs = x @ (pin @ x)
        assert lhs == pytest.approx(rhs, rel=1e-6)

    def test_full_C_is_identity(self):
        g = G.cycle(4)
        L = laplacian(g).toarray()
        SC = exact_schur_complement(L, np.arange(4))
        assert np.allclose(SC, L)


class TestEffectiveResistance:
    def test_path_distances(self):
        g = G.path(5)
        pairs = np.array([[0, 4], [0, 1], [1, 3]])
        r = exact_effective_resistances(g, pairs)
        assert np.allclose(r, [4.0, 1.0, 2.0])

    def test_cycle_parallel_paths(self):
        g = G.cycle(4)
        r = exact_effective_resistances(g, np.array([[0, 2]]))
        assert np.allclose(r, 1.0)  # 2 || 2

    def test_leverage_scores_sum_to_rank(self, zoo_graph):
        tau = exact_leverage_scores(zoo_graph)
        assert tau.sum() == pytest.approx(zoo_graph.n - 1, rel=1e-6)

    def test_leverage_scores_in_unit_interval(self, zoo_graph):
        tau = exact_leverage_scores(zoo_graph)
        assert np.all(tau >= -1e-12)
        assert np.all(tau <= 1.0 + 1e-9)

    def test_bridge_has_leverage_one(self):
        g = G.barbell(4, 1)
        tau = exact_leverage_scores(g)
        # the bridge is a cut edge => leverage exactly 1
        assert tau[-1] == pytest.approx(1.0, abs=1e-9)


class TestLoewner:
    def test_self_approximation(self, zoo_graph):
        L = laplacian(zoo_graph).toarray()
        assert approximation_factor(L, L) == pytest.approx(0.0, abs=1e-6)

    def test_scaling_factor(self, zoo_graph):
        L = laplacian(zoo_graph).toarray()
        c = 1.7
        assert approximation_factor(c * L, L) == pytest.approx(
            np.log(c), abs=1e-6)

    def test_kernel_mismatch_is_infinite(self):
        g = G.path(4)
        L = laplacian(g).toarray()
        M = L.copy()
        M[0, 0] += 1.0  # no longer shares the kernel
        assert approximation_factor(M, L) == float("inf")

    def test_is_epsilon_approximation(self, zoo_graph):
        L = laplacian(zoo_graph).toarray()
        assert is_epsilon_approximation(1.2 * L, L, eps=0.2)
        assert not is_epsilon_approximation(1.5 * L, L, eps=0.2)

    def test_relative_spectral_bounds_diag(self):
        A = np.diag([2.0, 3.0, 0.0])
        B = np.diag([1.0, 1.0, 0.0])
        lo, hi = relative_spectral_bounds(A, B)
        assert (lo, hi) == (pytest.approx(2.0), pytest.approx(3.0))

    def test_operator_factor_exact_pinv(self):
        g = G.cycle(6)
        L = laplacian(g).toarray()
        P = dense_laplacian_pinv(L)
        factor = operator_approximation_factor(lambda v: P @ v, L)
        assert factor == pytest.approx(0.0, abs=1e-6)
