"""Lemma 3.3 / Section 6: leverage-score overestimates and splitting."""

import numpy as np
import pytest

from repro.config import SolverOptions, practical_options
from repro.core.boundedness import leverage_scores, naive_split
from repro.core.lev_est import (
    leverage_overestimates,
    leverage_split,
    uniform_edge_sample,
)
from repro.errors import SamplingError
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian
from repro.graphs.validation import is_connected


class TestUniformEdgeSample:
    def test_connected(self, zoo_graph):
        H = uniform_edge_sample(zoo_graph, K=4, seed=0)
        assert is_connected(H)

    def test_subgraph_domination(self, zoo_graph):
        # L_{G'} ≼ L_G: G' is a subset of edges at original weights.
        H = uniform_edge_sample(zoo_graph, K=4, seed=1)
        L = laplacian(zoo_graph).toarray()
        LH = laplacian(H).toarray()
        evals = np.linalg.eigvalsh(L - LH)
        assert evals.min() > -1e-9

    def test_size_reduction(self):
        g = G.complete(40)
        H = uniform_edge_sample(g, K=10, seed=2)
        # ~m/K sampled + spanning forest
        assert H.m <= g.m / 10 + g.n

    def test_K_one_keeps_everything(self, zoo_graph):
        H = uniform_edge_sample(zoo_graph, K=1, seed=3)
        assert H.m == zoo_graph.m

    def test_rejects_K_below_one(self):
        with pytest.raises(SamplingError):
            uniform_edge_sample(G.path(4), K=0.5)


class TestLeverageOverestimates:
    def test_overestimates_dense_graph(self):
        # The contract: tau_hat >= tau (up to clipping), whp.
        g = G.complete(30)
        tau = leverage_scores(g)
        tau_hat = leverage_overestimates(g, K=4, seed=0,
                                         options=practical_options())
        assert np.mean(tau_hat >= tau * 0.999) > 0.98

    def test_bounded_in_unit_interval(self):
        g = G.erdos_renyi(60, 0.3, seed=1)
        tau_hat = leverage_overestimates(g, K=4, seed=1,
                                         options=practical_options())
        assert np.all(tau_hat > 0)
        assert np.all(tau_hat <= 1.0)

    def test_sum_bound(self):
        # [CLMMPS15]: sum tau_hat = O(nK).
        g = G.complete(40)
        K = 4
        tau_hat = leverage_overestimates(g, K=K, seed=2,
                                         options=practical_options())
        assert tau_hat.sum() <= 10.0 * g.n * K

    def test_informative_on_dense_graphs(self):
        # On K_n most edges have tiny leverage (~2/n): estimates must
        # be well below 1 so the split actually saves copies.
        g = G.complete(40)
        tau_hat = leverage_overestimates(g, K=3, seed=3,
                                         options=practical_options())
        assert np.median(tau_hat) < 0.5


class TestLeverageSplit:
    def test_preserves_laplacian(self):
        g = G.complete(25)
        H = leverage_split(g, alpha=0.2, K=4, seed=0,
                           options=practical_options())
        assert np.allclose(laplacian(H).toarray(),
                           laplacian(g).toarray())

    def test_achieves_alpha(self):
        g = G.complete(25)
        alpha = 0.2
        H = leverage_split(g, alpha, K=4, seed=1,
                           options=practical_options())
        tau = leverage_scores(H, reference=g)
        assert np.all(tau <= alpha * 1.001 + 1e-9)

    def test_beats_naive_on_dense_graphs(self):
        g = G.complete(40)
        alpha = 1.0 / 16.0
        lev = leverage_split(g, alpha, K=3, seed=2,
                             options=practical_options())
        naive = naive_split(g, alpha)
        assert lev.m_logical < 0.6 * naive.m_logical

    def test_tau_hat_reuse(self):
        g = G.complete(20)
        tau_hat = np.full(g.m, 0.5)
        H = leverage_split(g, alpha=0.25, tau_hat=tau_hat)
        assert H.m == g.m  # stored groups stay compact
        assert H.m_logical == 2 * g.m  # ceil(0.5/0.25) = 2 copies each
        mat = leverage_split(g, alpha=0.25, tau_hat=tau_hat,
                             materialize=True)
        assert mat.m == 2 * g.m
        assert H.materialized() == mat

    def test_tau_hat_shape_checked(self):
        with pytest.raises(SamplingError):
            leverage_split(G.path(4), alpha=0.5, tau_hat=np.ones(7))
