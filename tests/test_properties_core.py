"""Hypothesis property tests on the core elimination machinery."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from tests.test_properties import multigraphs

SETTINGS = dict(deadline=None, max_examples=30,
                suppress_health_check=[HealthCheck.too_slow])


class TestDDSubsetProperties:
    @given(multigraphs(connected=True), st.integers(0, 2 ** 31 - 1))
    @settings(**SETTINGS)
    def test_output_always_5dd_and_nonempty(self, g, seed):
        from repro.core.dd_subset import five_dd_subset, verify_five_dd

        F = five_dd_subset(g, seed=seed)
        assert F.size >= 1
        assert verify_five_dd(g, F)
        # never includes an isolated vertex
        wdeg = g.weighted_degrees()
        assert np.all(wdeg[F] > 0)


class TestTerminalWalkProperties:
    @given(multigraphs(connected=True, max_n=8, max_m=12),
           st.integers(0, 2 ** 31 - 1))
    @settings(deadline=None, max_examples=20)
    def test_alpha_closure(self, g, seed):
        """Lemma 5.2 as a property: sampled edges stay 1-bounded w.r.t.
        the original Laplacian (every input edge is 1-bounded)."""
        from repro.core.boundedness import leverage_scores
        from repro.core.terminal_walks import terminal_walks

        rng = np.random.default_rng(seed)
        k = rng.integers(1, g.n)
        C = np.sort(rng.choice(g.n, size=k, replace=False))
        H = terminal_walks(g, C, seed=rng)
        if H.m:
            tau = leverage_scores(H, reference=g)
            assert np.all(tau <= 1.0 + 1e-7)


class TestGrembanProperties:
    @given(st.integers(3, 10), st.integers(0, 2 ** 31 - 1),
           st.floats(0.0, 1.0))
    @settings(**SETTINGS)
    def test_cover_encodes_matrix(self, n, seed, pos_frac):
        from repro.core.sdd import gremban_cover, is_sdd
        from repro.graphs.laplacian import apply_laplacian

        rng = np.random.default_rng(seed)
        M = np.zeros((n, n))
        for i in range(n):
            j = (i + 1) % n
            sign = -1.0 if rng.random() > pos_frac else 1.0
            M[i, j] = M[j, i] = sign * rng.uniform(0.2, 2.0)
        M[np.diag_indices(n)] = np.abs(M).sum(axis=1) \
            + rng.uniform(0, 1, size=n)
        assert is_sdd(M)
        cover = gremban_cover(M)
        x = rng.standard_normal(n)
        z = apply_laplacian(cover, np.concatenate([x, -x]))
        assert np.allclose(z[:n], M @ x, atol=1e-8)

    @given(st.integers(3, 8), st.integers(0, 2 ** 31 - 1))
    @settings(**SETTINGS)
    def test_solver_accuracy_on_random_sdd(self, n, seed):
        import scipy.linalg

        from repro.config import practical_options
        from repro.core.sdd import solve_sdd

        rng = np.random.default_rng(seed)
        M = np.zeros((n, n))
        for i in range(n):
            j = (i + 1) % n
            sign = rng.choice([-1.0, 1.0])
            M[i, j] = M[j, i] = sign * rng.uniform(0.2, 2.0)
        M[np.diag_indices(n)] = np.abs(M).sum(axis=1) \
            + rng.uniform(0.1, 1, size=n)
        b = rng.standard_normal(n)
        x = solve_sdd(M, b, eps=1e-9, options=practical_options(),
                      seed=seed)
        xstar = scipy.linalg.solve(M, b, assume_a="sym")
        assert np.linalg.norm(x - xstar) <= 1e-4 * max(
            1.0, np.linalg.norm(xstar))


class TestSplitRoundTrip:
    @given(multigraphs(connected=True), st.floats(0.05, 1.0))
    @settings(**SETTINGS)
    def test_split_then_coalesce_recovers_simple_graph(self, g, alpha):
        from repro.core.boundedness import naive_split

        h = naive_split(g, alpha).coalesced()
        assert h.m == g.coalesced().m
        assert np.allclose(h.total_weight(), g.total_weight())
