"""Shared fixtures: a deterministic graph zoo and seeded generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import generators as G
from repro.graphs.multigraph import MultiGraph


@pytest.fixture(autouse=True)
def _reset_env_caches():
    """Teardown: drop cached ``REPRO_*`` env lookups after every test.

    The env knobs are parsed once per raw value into a shared
    module-level cache (:func:`repro.pram.executor._env_cached`); a
    test that monkeypatches an env var or pokes the cache must not
    leak its parse results into the next test.
    """
    yield
    from repro.config import reset_env_caches

    reset_env_caches()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


def _zoo() -> dict[str, MultiGraph]:
    return {
        "path": G.path(25),
        "cycle": G.cycle(24),
        "complete": G.complete(12),
        "star": G.star(20),
        "grid": G.grid2d(6, 7),
        "torus": G.torus2d(5, 6),
        "tree": G.binary_tree(4),
        "barbell": G.barbell(8, 2),
        "er": G.erdos_renyi(40, 0.15, seed=1),
        "regular": G.random_regular(30, 4, seed=2),
        "weighted_grid": G.with_random_weights(G.grid2d(5, 5), 0.1, 10.0,
                                               seed=3, log_uniform=True),
    }


@pytest.fixture(params=sorted(_zoo()))
def zoo_graph(request) -> MultiGraph:
    """Parametrised over a small family of connected graphs."""
    return _zoo()[request.param]


@pytest.fixture
def zoo() -> dict[str, MultiGraph]:
    """The whole zoo as a dict for tests that pick specific members."""
    return _zoo()


@pytest.fixture
def balanced_rhs():
    """Factory: a zero-sum right-hand side for a given graph."""

    def make(graph: MultiGraph, seed: int = 1) -> np.ndarray:
        r = np.random.default_rng(seed)
        b = r.standard_normal(graph.n)
        return b - b.mean()

    return make
