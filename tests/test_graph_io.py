"""npz persistence round-trips."""

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graphs import generators as G
from repro.graphs.io import load_npz, save_npz


def test_round_trip(tmp_path, zoo_graph):
    path = tmp_path / "g.npz"
    save_npz(zoo_graph, path)
    back = load_npz(path)
    assert back == zoo_graph


def test_creates_parent_dirs(tmp_path):
    path = tmp_path / "a" / "b" / "g.npz"
    save_npz(G.path(4), path)
    assert load_npz(path) == G.path(4)


def test_rejects_wrong_version(tmp_path):
    path = tmp_path / "g.npz"
    g = G.path(3)
    np.savez_compressed(path, version=np.int64(999), n=np.int64(g.n),
                        u=g.u, v=g.v, w=g.w)
    with pytest.raises(GraphStructureError, match="version"):
        load_npz(path)
