"""CSR-aligned alias sampling (ISSUE 5 tentpole).

Pins the PR-5 contracts:

* the batched Vose construction encodes every row's distribution
  exactly (pmf reconstruction == weights / total, aliases stay in-row);
* alias and bisect transition distributions agree per row (chi-square);
* sampler selection threads ``SolverOptions.sampler`` / ``REPRO_SAMPLER``
  / explicit parameters through the walk stack, with the legacy
  baseline pinned to bisect;
* per sampler, fixed seed ⇒ bit-identical results across
  ``{serial, thread, process}`` × ``{1, 2, 4}`` workers;
* the incrementally maintained alias planes equal a from-scratch
  rebuild after every elimination round — bitwise;
* the satellite guards: ``RowSampler``'s empty-row clip validation and
  the ``REPRO_CHUNK_ITEMS`` chunk-grain override.
"""

import numpy as np
import pytest
from scipy import stats

from repro.config import default_options
from repro.core.schur import approx_schur
from repro.core.terminal_walks import terminal_walks
from repro.errors import SamplingError
from repro.graphs import generators as G
from repro.graphs.multigraph import MultiGraph
from repro.pram import use_ledger
from repro.pram.executor import (
    BACKENDS,
    DEFAULT_CHUNK_ITEMS,
    ExecutionContext,
    default_chunk_items,
    run_column_chunks,
)
from repro.sampling import (
    AliasTable,
    CSRAliasSampler,
    IncrementalWalkCSR,
    RowSampler,
    SAMPLERS,
    WalkEngine,
    build_alias_tables,
    default_sampler,
)


def _random_csr(rng, n_max=14, deg_max=11):
    n = int(rng.integers(1, n_max))
    deg = rng.integers(0, deg_max, size=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    scale = rng.choice([1e-9, 1e-3, 1.0, 1e6], size=int(deg.sum()))
    w = rng.random(int(deg.sum())) * scale
    return indptr, w, deg


class TestBuildAliasTables:
    def test_pmf_exact_per_row(self, rng):
        for _ in range(60):
            indptr, w, deg = _random_csr(rng)
            prob, alias, total = build_alias_tables(indptr, w)
            row_of = np.repeat(np.arange(deg.size), deg)
            # aliases never leave their row
            assert np.all(row_of[alias] == row_of)
            denom = np.maximum(deg[row_of], 1).astype(np.float64)
            out = prob / denom
            np.add.at(out, alias, (1.0 - prob) / denom)
            ok = total[row_of] > 0
            want = np.where(ok, w / np.where(ok, total[row_of], 1.0), 0.0)
            np.testing.assert_allclose(out, want, rtol=1e-12, atol=1e-15)

    def test_uniform_row_is_identity(self):
        prob, alias, total = build_alias_tables(np.array([0, 5]),
                                                np.full(5, 3.25))
        assert np.all(prob == 1.0)
        np.testing.assert_array_equal(alias, np.arange(5))
        assert total[0] == pytest.approx(5 * 3.25)

    def test_zero_weight_slots_never_sampled(self):
        prob, alias, _ = build_alias_tables(np.array([0, 4]),
                                            np.array([0.0, 1.0, 0.0, 3.0]))
        out = prob / 4.0
        np.add.at(out, alias, (1.0 - prob) / 4.0)
        np.testing.assert_allclose(out, [0.0, 0.25, 0.0, 0.75])

    def test_subnormal_totals_stay_proportional(self):
        # Regression: scaling must normalise (w / total) before the
        # degree fan-out — deg / total overflows to inf for subnormal
        # totals and silently degraded the row to uniform sampling.
        w = np.array([1e-310, 3e-310])
        prob, alias, total = build_alias_tables(np.array([0, 2]), w)
        out = prob / 2.0
        np.add.at(out, alias, (1.0 - prob) / 2.0)
        np.testing.assert_allclose(out, [0.25, 0.75], rtol=1e-12)
        s = AliasTable(w).sample(40_000, seed=0)
        assert abs(float(np.mean(s == 0)) - 0.25) < 0.01

    def test_empty_input(self):
        prob, alias, total = build_alias_tables(np.zeros(4, np.int64),
                                                np.empty(0))
        assert prob.size == 0 and alias.size == 0
        np.testing.assert_array_equal(total, np.zeros(3))

    def test_high_degree_sweep_rows_exact(self, rng):
        # Rows at/above the sweep threshold use the vectorised
        # prefix-sum construction; exactness degrades only by prefix-
        # sum rounding.
        for _ in range(15):
            n = int(rng.integers(1, 5))
            deg = rng.choice([0, 3, 130, 500, 2000], size=n)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(deg, out=indptr[1:])
            w = rng.random(int(deg.sum())) \
                * rng.choice([1e-6, 1.0, 1e5], size=int(deg.sum()))
            prob, alias, total = build_alias_tables(indptr, w)
            row_of = np.repeat(np.arange(n), deg)
            assert np.all(row_of[alias] == row_of)
            assert np.all((prob >= 0.0) & (prob <= 1.0))
            denom = np.maximum(deg[row_of], 1).astype(np.float64)
            out = prob / denom
            np.add.at(out, alias, (1.0 - prob) / denom)
            ok = total[row_of] > 0
            want = np.where(ok, w / np.where(ok, total[row_of], 1.0), 0.0)
            np.testing.assert_allclose(out, want, rtol=1e-9, atol=1e-12)

    def test_batched_sweep_bit_identical_to_per_row(self, rng,
                                                    monkeypatch):
        # ISSUE 7 satellite: same-(deg, ns) high-degree rows batch
        # into one 2-D sweep pass.  The batch is pure scheduling — its
        # planes must equal a per-row _vose_row_sweep loop bit for bit,
        # so the (deg, ns) grouping can never leak into results.
        import repro.sampling.alias as A

        for trial in range(6):
            trial_rng = np.random.default_rng(100 + trial)
            degs = ([200] * 7 + [300] * 4 + [257] + [128] * 3 +
                    [5, 40, 1, 0, 129, 2000])
            trial_rng.shuffle(degs)
            indptr = np.concatenate(
                ([0], np.cumsum(degs))).astype(np.int64)
            w = trial_rng.gamma(0.4, size=int(indptr[-1]))
            w[trial_rng.random(w.size) < 0.05] = 0.0

            batched = build_alias_tables(indptr, w)
            calls = []

            def per_row(prob, alias, smalls2d, larges2d, scaled):
                calls.append(smalls2d.shape[0])
                for s_row, l_row in zip(smalls2d, larges2d):
                    A._vose_row_sweep(prob, alias, s_row, l_row,
                                      scaled)

            monkeypatch.setattr(A, "_vose_rows_sweep_batch", per_row)
            reference = build_alias_tables(indptr, w)
            monkeypatch.undo()
            assert calls and all(g > 1 for g in calls)
            for got, want in zip(batched, reference):
                np.testing.assert_array_equal(got, want)

    def test_row_planes_independent_of_batch_grouping(self):
        # The incremental cache rebuilds rows in mini-CSRs; a row's
        # planes must not depend on which batch built it — including
        # across the sequential/sweep threshold.
        for deg0 in (9, 700):
            w0 = np.random.default_rng(7).random(deg0) * 10.0
            p1, a1, _ = build_alias_tables(np.array([0, deg0]), w0)
            wb = np.concatenate([[1.0, 2.0], w0, [5.0]])
            ib = np.array([0, 2, 2 + deg0, 3 + deg0])
            p2, a2, _ = build_alias_tables(ib, wb)
            np.testing.assert_array_equal(p1, p2[2:2 + deg0])
            np.testing.assert_array_equal(a1 + 2, a2[2:2 + deg0])


class TestCSRAliasSampler:
    def test_slots_stay_in_row(self, zoo_graph, rng):
        adj = zoo_graph.adjacency()
        sampler = CSRAliasSampler(adj)
        rows = rng.integers(0, zoo_graph.n, size=2000)
        slots = sampler.sample(rows, seed=1)
        assert np.all(slots >= adj.indptr[rows])
        assert np.all(slots < adj.indptr[rows + 1])

    def test_row_totals_are_degrees(self, zoo_graph):
        sampler = CSRAliasSampler(zoo_graph.adjacency())
        assert np.allclose(sampler.row_totals(),
                           zoo_graph.weighted_degrees())

    def test_weight_proportional(self):
        g = MultiGraph(4, [0, 0, 0], [1, 2, 3], [1.0, 1.0, 8.0])
        sampler = CSRAliasSampler(g.adjacency())
        slots = sampler.sample(np.zeros(100_000, dtype=np.int64), seed=2)
        picked = g.adjacency().neighbor[slots]
        freq = np.bincount(picked, minlength=4) / picked.size
        assert np.allclose(freq[[1, 2, 3]], [0.1, 0.1, 0.8], atol=0.01)

    def test_isolated_vertex_raises(self):
        g = MultiGraph(3, [0], [1], [1.0])
        sampler = CSRAliasSampler(g.adjacency())
        with pytest.raises(SamplingError):
            sampler.sample(np.array([2]), seed=0)

    def test_deterministic_given_seed(self, zoo_graph):
        sampler = CSRAliasSampler(zoo_graph.adjacency())
        rows = np.arange(zoo_graph.n)
        np.testing.assert_array_equal(sampler.sample(rows, seed=7),
                                      sampler.sample(rows, seed=7))

    def test_pmf_method(self, zoo_graph):
        adj = zoo_graph.adjacency()
        sampler = CSRAliasSampler(adj)
        deg = np.diff(adj.indptr)
        row_of = np.repeat(np.arange(zoo_graph.n), deg)
        want = adj.weight / sampler.row_totals()[row_of]
        np.testing.assert_allclose(sampler.pmf(), want, rtol=1e-12)

    def test_from_planes_charges_nothing(self, zoo_graph):
        adj = zoo_graph.adjacency()
        prob, alias, total = build_alias_tables(adj.indptr, adj.weight)
        with use_ledger() as ledger:
            CSRAliasSampler.from_planes(adj, prob, alias, total)
        assert ledger.work == 0


class TestChiSquareAgreement:
    """Alias and bisect encode the same per-row transition pmf."""

    @pytest.mark.parametrize("kind", SAMPLERS)
    def test_per_row_chi_square(self, kind):
        # Irregular weighted graph: a weighted star glued to a path.
        g = MultiGraph(6,
                       [0, 0, 0, 0, 1, 2],
                       [1, 2, 3, 4, 2, 5],
                       [0.5, 2.0, 7.5, 1.0, 3.0, 0.25])
        adj = g.adjacency()
        sampler = CSRAliasSampler(adj) if kind == "alias" \
            else RowSampler(adj)
        rng = np.random.default_rng(42)
        draws = 40_000
        for row in range(g.n):
            lo, hi = adj.indptr[row], adj.indptr[row + 1]
            if hi - lo < 2:
                continue
            slots = sampler.sample(np.full(draws, row, dtype=np.int64),
                                   seed=rng)
            counts = np.bincount(slots - lo, minlength=hi - lo)
            expected = adj.weight[lo:hi] / adj.weight[lo:hi].sum() * draws
            _, p = stats.chisquare(counts, expected)
            assert p > 1e-4, (kind, row, p)

    def test_cross_sampler_hitting_distribution(self):
        # Gambler's ruin 0 -(3)- 1 -(1)- 2: both samplers hit 0 from 1
        # w.p. 3/4 — distributional agreement, not bitwise.
        g = MultiGraph(3, [0, 1], [1, 2], [3.0, 1.0])
        is_term = np.array([True, False, True])
        for kind in SAMPLERS:
            res = WalkEngine(g, is_term, sampler=kind).run(
                np.full(40_000, 1), seed=5)
            assert abs(float(np.mean(res.terminal == 0)) - 0.75) < 0.01


class TestSamplerSelection:
    def test_default_sampler_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SAMPLER", raising=False)
        assert default_sampler() == "alias"
        monkeypatch.setenv("REPRO_SAMPLER", "alias")
        assert default_sampler() == "alias"
        monkeypatch.setenv("REPRO_SAMPLER", "bisect")
        assert default_sampler() == "bisect"

    def test_default_sampler_rejects_typos(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLER", "ailas")
        with pytest.raises(ValueError):
            default_sampler()

    def test_options_resolve_sampler(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLER", "alias")
        assert default_options().resolve_sampler() == "alias"
        assert default_options().with_(
            sampler="bisect").resolve_sampler() == "bisect"
        with pytest.raises(ValueError):
            default_options().with_(sampler="bogus").resolve_sampler()

    def test_engine_sampler_kinds(self):
        g = G.grid2d(4, 4)
        is_term = np.zeros(g.n, dtype=bool)
        is_term[:4] = True
        assert isinstance(WalkEngine(g, is_term, sampler="alias").sampler,
                          CSRAliasSampler)
        assert isinstance(WalkEngine(g, is_term, sampler="bisect").sampler,
                          RowSampler)
        with pytest.raises(ValueError):
            WalkEngine(g, is_term, sampler="nope")

    def test_env_matches_explicit_param(self, monkeypatch):
        g = G.grid2d(8, 8)
        C = np.arange(0, g.n, 3)
        explicit = terminal_walks(g, C, seed=11, sampler="alias")
        monkeypatch.setenv("REPRO_SAMPLER", "alias")
        via_env = terminal_walks(g, C, seed=11)
        assert explicit == via_env

    def test_legacy_pinned_to_bisect(self, monkeypatch):
        g = G.grid2d(6, 6)
        C = np.arange(0, g.n, 2)
        base = terminal_walks(g, C, seed=3, legacy=True)
        monkeypatch.setenv("REPRO_SAMPLER", "alias")
        assert terminal_walks(g, C, seed=3, legacy=True) == base

    def test_samplers_change_results_distributionally(self):
        g = G.grid2d(10, 10)
        C = np.arange(0, g.n, 3)
        a = approx_schur(g, C, eps=0.5, seed=7,
                         options=default_options().with_(sampler="alias"))
        b = approx_schur(g, C, eps=0.5, seed=7,
                         options=default_options().with_(sampler="bisect"))
        assert a != b  # different RNG-to-transition maps
        # ... but both remain supported on C only.
        for h in (a, b):
            assert np.isin(np.concatenate([h.u, h.v]), C).all()


class TestPerSamplerBackendMatrix:
    """ISSUE 5 acceptance: fixed seed + fixed sampler ⇒ bit-identical
    results and ledger totals across backends × worker counts."""

    @pytest.mark.parametrize("kind", SAMPLERS)
    def test_backend_matrix_bit_identical(self, kind, monkeypatch):
        opts = default_options().with_(chunk_items=512, sampler=kind)

        def schur(backend, workers):
            monkeypatch.setenv("REPRO_BACKEND", backend)
            monkeypatch.setenv("REPRO_WORKERS", str(workers))
            g = G.grid2d(14, 14)
            C = np.arange(0, g.n, 3)
            return approx_schur(g, C, eps=0.5, seed=123, options=opts)

        base = schur("serial", 1)
        for backend in BACKENDS:
            for workers in (1, 2, 4):
                assert schur(backend, workers) == base, (backend, workers)

    @pytest.mark.parametrize("kind", SAMPLERS)
    def test_ledger_totals_invariant(self, kind, monkeypatch):
        g = G.grid2d(10, 10)
        C = np.arange(0, g.n, 2)
        opts = default_options().with_(chunk_items=512, sampler=kind)

        def totals(backend, workers):
            monkeypatch.setenv("REPRO_BACKEND", backend)
            monkeypatch.setenv("REPRO_WORKERS", str(workers))
            with use_ledger() as ledger:
                approx_schur(g, C, eps=0.5, seed=3, options=opts)
            return ledger.work, ledger.depth

        base = totals("serial", 1)
        for backend in BACKENDS:
            assert totals(backend, 2) == base, backend


class TestIncrementalAliasPlanes:
    """Maintained alias planes == from-scratch builds, every round."""

    def test_round_by_round_plane_equality(self):
        from repro.core.boundedness import naive_split

        g = naive_split(G.grid2d(9, 9), 0.25)
        inc = IncrementalWalkCSR(g, rebuild_factor=0.3)
        rng = np.random.default_rng(0)
        work = g
        remaining = np.arange(g.n)
        rounds = 0
        for _ in range(4):
            if remaining.size <= 4:
                break
            F = np.unique(rng.choice(remaining,
                                     size=max(1, remaining.size // 5),
                                     replace=False))
            terminals = np.setdiff1d(remaining, F)
            view, _ = inc.restricted_view(F)
            got = inc.alias_planes(F, view)
            want = build_alias_tables(view.indptr, view.weight)
            np.testing.assert_array_equal(got[0], want[0])  # prob
            np.testing.assert_array_equal(got[1], want[1])  # alias
            np.testing.assert_array_equal(got[2][F], want[2][F])  # totals
            # Second extraction is served from cache, bit-identically.
            again = inc.alias_planes(F, view)
            np.testing.assert_array_equal(again[0], got[0])
            np.testing.assert_array_equal(again[1], got[1])
            nxt, stats = terminal_walks(work, terminals, seed=rng,
                                        return_stats=True)
            p = stats.passthrough_stored
            inc.advance(F, nxt.u[p:], nxt.v[p:], nxt.w[p:],
                        None if nxt.mult is None else nxt.mult[p:])
            work = nxt
            remaining = terminals
            rounds += 1
        assert rounds >= 2

    def test_round_by_round_plane_equality_coalesced(self):
        # Same lockstep as above, but the store coalesces each round's
        # emissions: planes must stay bitwise == scratch builds over
        # the coalesced view, through churn and epoch compaction.
        from repro.core.boundedness import naive_split

        g = naive_split(G.grid2d(9, 9), 0.25)
        inc = IncrementalWalkCSR(g, rebuild_factor=0.05)
        rng = np.random.default_rng(0)
        work = g
        remaining = np.arange(g.n)
        rounds = 0
        for _ in range(4):
            if remaining.size <= 4:
                break
            F = np.unique(rng.choice(remaining,
                                     size=max(1, remaining.size // 5),
                                     replace=False))
            terminals = np.setdiff1d(remaining, F)
            view, _ = inc.restricted_view(F)
            got = inc.alias_planes(F, view)
            want = build_alias_tables(view.indptr, view.weight)
            np.testing.assert_array_equal(got[0], want[0])
            np.testing.assert_array_equal(got[1], want[1])
            np.testing.assert_array_equal(got[2][F], want[2][F])
            nxt, stats = terminal_walks(work, terminals, seed=rng,
                                        return_stats=True)
            p = stats.passthrough_stored
            inc.advance(F, nxt.u[p:], nxt.v[p:], nxt.w[p:],
                        None if nxt.mult is None else nxt.mult[p:],
                        coalesce=True)
            work = inc.live_graph()  # walk the coalesced graph next
            remaining = terminals
            rounds += 1
        assert rounds >= 2
        assert inc.emitted_slots_saved > 0

    def test_churn_invalidates_touched_rows_only(self):
        g = G.grid2d(5, 5)
        inc = IncrementalWalkCSR(g)
        all_rows = np.arange(g.n)
        view, _ = inc.restricted_view(all_rows)
        inc.alias_planes(all_rows, view)
        assert len(inc._alias_rows) > 0
        before = dict(inc._alias_rows)
        # Insert one far-away edge: only its endpoints drop.
        inc.insert(np.array([0]), np.array([1]), np.array([2.0]))
        assert 0 not in inc._alias_rows and 1 not in inc._alias_rows
        for r in before:
            if r not in (0, 1):
                assert r in inc._alias_rows

    def test_incremental_matches_scratch_end_to_end(self):
        g = G.grid2d(13, 13)
        C = np.arange(0, g.n, 4)
        # Scratch rebuilds cannot coalesce — pin the flag off so the
        # equality is well-defined under a REPRO_COALESCE=1 ambient.
        opts = default_options().with_(sampler="alias",
                                       coalesce_emitted=False)
        a = approx_schur(g, C, eps=0.5, seed=99, options=opts,
                         incremental=True)
        b = approx_schur(g, C, eps=0.5, seed=99, options=opts,
                         incremental=False)
        assert a == b

    def test_solver_chain_alias_incremental_invariant(self):
        from repro.config import practical_options
        from repro.core.solver import LaplacianSolver

        g = G.grid2d(12, 12)
        opts = practical_options().with_(sampler="alias",
                                         coalesce_emitted=False)
        on = LaplacianSolver(g, options=opts, seed=8)
        off = LaplacianSolver(g, options=opts.with_(incremental_csr=False),
                              seed=8)
        np.testing.assert_array_equal(on.chain.final_pinv,
                                      off.chain.final_pinv)


class TestRowSamplerClipGuard:
    def test_empty_row_raises_instead_of_clipping(self):
        # Simulate inconsistent derived planes (the shipped-
        # reconstruction hazard): an empty row whose base/top bounds
        # wrongly claim positive span must raise, not clip into a
        # neighbouring row's slots.
        g = MultiGraph(3, [0], [1], [1.0])
        adj = g.adjacency()
        sampler = RowSampler(adj)
        sampler._base = np.array([0.0, 1.0, 0.5])
        sampler._top = np.array([1.0, 2.0, 1.5])
        with pytest.raises(SamplingError, match="empty adjacency row"):
            sampler.sample(np.array([2]), seed=0)


class TestChunkItemsOverride:
    def test_env_override_changes_layout(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHUNK_ITEMS", raising=False)
        assert default_chunk_items() == DEFAULT_CHUNK_ITEMS
        ctx = ExecutionContext()
        n = 4 * DEFAULT_CHUNK_ITEMS
        assert len(ctx.item_chunks(n)) == 4
        monkeypatch.setenv("REPRO_CHUNK_ITEMS", str(DEFAULT_CHUNK_ITEMS * 2))
        assert default_chunk_items() == DEFAULT_CHUNK_ITEMS * 2
        assert len(ctx.item_chunks(n)) == 2

    def test_explicit_chunk_items_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_ITEMS", "7")
        ctx = ExecutionContext(chunk_items=100)
        assert ctx.resolve_chunk_items() == 100

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHUNK_ITEMS", "lots")
        with pytest.raises(ValueError):
            default_chunk_items()
        monkeypatch.setenv("REPRO_CHUNK_ITEMS", "0")
        with pytest.raises(ValueError):
            default_chunk_items()


class TestRunColumnChunks:
    def test_single_chunk_returns_none(self):
        ctx = ExecutionContext(chunk_columns=16)
        assert run_column_chunks(ctx, np.zeros((3, 4)),
                                 lambda bc: bc) is None

    def test_broadcasts_and_slices(self):
        ctx = ExecutionContext(chunk_columns=2)
        b = np.arange(12.0).reshape(3, 4)
        seen_ids = []

        def block(bc, tc, none_col, ids):
            assert none_col is None
            seen_ids.append(ids)
            return bc.sum(axis=0) + tc

        results = run_column_chunks(ctx, b, block, cols=(0.5, None))
        merged = np.concatenate(results)
        np.testing.assert_allclose(merged, b.sum(axis=0) + 0.5)
        # Each chunk sees its global column ids (PR 6 quarantine needs
        # caller-visible indices inside a chunk).
        np.testing.assert_array_equal(np.concatenate(seen_ids),
                                      np.arange(4))

    def test_col_ids_passthrough(self):
        ctx = ExecutionContext(chunk_columns=1)
        b = np.zeros((2, 3))
        got = run_column_chunks(ctx, b, lambda bc, ids: ids.copy(),
                                col_ids=np.array([7, 9, 11]))
        np.testing.assert_array_equal(np.concatenate(got), [7, 9, 11])
