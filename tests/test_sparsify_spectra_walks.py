"""Sparsification, eigensolvers, and random-walk quantities."""

import numpy as np
import pytest
import scipy.linalg

from repro.apps.random_walks import (
    commute_time,
    hitting_times,
    stationary_distribution,
)
from repro.config import practical_options
from repro.core.sparsify import spectral_sparsify
from repro.errors import ReproError
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian
from repro.graphs.validation import is_connected
from repro.linalg.loewner import approximation_factor
from repro.theory.spectra import smallest_eigenpairs

OPTS = practical_options()


class TestSparsify:
    def test_spectral_guarantee_exact_leverage(self):
        g = G.complete(30)
        eps = 0.5
        H = spectral_sparsify(g, eps=eps, exact_leverage=True, seed=0)
        factor = approximation_factor(laplacian(H).toarray(),
                                      laplacian(g).toarray())
        assert factor <= eps

    def test_reduces_dense_graph(self):
        g = G.complete(40)  # m = 780
        H = spectral_sparsify(g, eps=0.5, exact_leverage=True, seed=1)
        assert H.m < g.m
        assert is_connected(H)

    def test_oracle_leverage_path(self):
        g = G.grid2d(6, 6)
        H = spectral_sparsify(g, eps=0.5, options=OPTS, seed=2)
        factor = approximation_factor(laplacian(H).toarray(),
                                      laplacian(g).toarray())
        assert factor <= 0.75  # oracle estimates add slack

    def test_expectation_preserved(self):
        # E[L_H] = L_G: average many sparsifiers of a small graph.
        g = G.cycle(8)
        rng = np.random.default_rng(3)
        acc = np.zeros((8, 8))
        trials = 300
        for _ in range(trials):
            H = spectral_sparsify(g, eps=0.9, exact_leverage=True,
                                  seed=rng, oversample=0.5)
            acc += laplacian(H).toarray()
        assert np.abs(acc / trials - laplacian(g).toarray()).max() < 0.15

    def test_validation(self):
        with pytest.raises(ReproError):
            spectral_sparsify(G.path(4), eps=1.5)


class TestSpectra:
    def test_matches_dense_eigh(self):
        g = G.path(12)  # simple, well-separated spectrum
        vals, vecs = smallest_eigenpairs(g, 3, options=OPTS, seed=0)
        dense = np.sort(scipy.linalg.eigvalsh(laplacian(g).toarray()))
        assert np.allclose(vals, dense[1:4], rtol=1e-3)

    def test_vectors_are_eigenvectors(self):
        g = G.grid2d(5, 4)
        vals, vecs = smallest_eigenpairs(g, 2, options=OPTS, seed=1,
                                         tol=1e-10)
        L = laplacian(g).toarray()
        for i in range(2):
            v = vecs[:, i]
            assert np.linalg.norm(L @ v - vals[i] * v) < 1e-3

    def test_orthonormal_and_centred(self):
        g = G.cycle(11)
        _, vecs = smallest_eigenpairs(g, 3, options=OPTS, seed=2)
        gram = vecs.T @ vecs
        assert np.allclose(gram, np.eye(3), atol=1e-6)
        assert np.abs(vecs.sum(axis=0)).max() < 1e-6

    def test_k_validation(self):
        with pytest.raises(ReproError):
            smallest_eigenpairs(G.path(5), 0)
        with pytest.raises(ReproError):
            smallest_eigenpairs(G.path(5), 5)


class TestRandomWalks:
    def test_stationary(self):
        g = G.star(6)
        pi = stationary_distribution(g)
        assert pi.sum() == pytest.approx(1.0)
        assert pi[0] == pytest.approx(0.5)  # centre has half the degree

    def test_hitting_times_path_formula(self):
        # Unweighted path 0..n-1, target 0: h(v) = v^2 is wrong;
        # correct: h(v) = v*(2n - 1 - v) for path? Verify against the
        # direct linear-system oracle instead of a closed form.
        g = G.path(8)
        h = hitting_times(g, 0, eps=1e-10, options=OPTS, seed=0)
        L = laplacian(g).toarray()
        d = g.weighted_degrees()
        sub = L[1:, 1:]
        oracle = np.zeros(8)
        oracle[1:] = scipy.linalg.solve(sub, d[1:])
        assert np.allclose(h, oracle, atol=1e-4)
        assert h[0] == 0.0

    def test_hitting_times_cycle_symmetry(self):
        g = G.cycle(9)
        h = hitting_times(g, 0, eps=1e-10, options=OPTS, seed=1)
        assert np.allclose(h[1:], h[1:][::-1], atol=1e-4)

    def test_commute_time_identity(self):
        # C(s,t) = (sum of degrees) * R_eff(s,t); on a path R = dist.
        g = G.path(6)
        c = commute_time(g, 0, 5, eps=1e-10, options=OPTS, seed=2)
        assert c == pytest.approx(2 * g.m * 5.0, rel=1e-3)

    def test_commute_symmetric_and_zero_diag(self):
        g = G.grid2d(4, 4)
        c1 = commute_time(g, 0, 7, eps=1e-9, options=OPTS, seed=3)
        c2 = commute_time(g, 7, 0, eps=1e-9, options=OPTS, seed=4)
        assert c1 == pytest.approx(c2, rel=1e-3)
        assert commute_time(g, 3, 3) == 0.0

    def test_hitting_plus_reverse_equals_commute(self):
        g = G.grid2d(4, 3)
        s, t = 0, g.n - 1
        h_st = hitting_times(g, t, eps=1e-10, options=OPTS, seed=5)[s]
        h_ts = hitting_times(g, s, eps=1e-10, options=OPTS, seed=6)[t]
        c = commute_time(g, s, t, eps=1e-10, options=OPTS, seed=7)
        assert h_st + h_ts == pytest.approx(c, rel=1e-3)

    def test_target_validation(self):
        with pytest.raises(ReproError):
            hitting_times(G.path(4), 9)
