"""PreconRichardson (Algorithm 5 / Theorem 3.8)."""

import math

import numpy as np
import pytest

from repro.core.richardson import (
    preconditioned_richardson,
    richardson_iterations,
)
from repro.graphs import generators as G
from repro.graphs.laplacian import apply_laplacian, laplacian
from repro.linalg.ops import energy_norm, relative_lnorm_error
from repro.linalg.pinv import dense_laplacian_pinv, exact_solution


class TestIterationFormula:
    def test_values(self):
        assert richardson_iterations(1.0, 0.5) == math.ceil(
            math.exp(2.0) * math.log(2.0))
        assert richardson_iterations(1.0, 1e-6) == math.ceil(
            math.exp(2.0) * math.log(1e6))

    def test_validation(self):
        with pytest.raises(ValueError):
            richardson_iterations(1.0, 0.0)
        with pytest.raises(ValueError):
            richardson_iterations(1.0, 1.5)
        with pytest.raises(ValueError):
            richardson_iterations(0.0, 0.5)


class TestConvergence:
    def _setup(self, delta):
        # Preconditioner B = scaled exact pseudoinverse: B ≈_δ L⁺ with
        # exactly computable δ = |log c|.
        g = G.grid2d(6, 6)
        L = laplacian(g)
        P = dense_laplacian_pinv(L.toarray())
        c = math.exp(delta)
        rng = np.random.default_rng(0)
        b = rng.standard_normal(g.n)
        b -= b.mean()
        xstar = exact_solution(g, b)
        return g, L, (lambda v: c * (P @ v)), b, xstar

    @pytest.mark.parametrize("eps", [1e-2, 1e-4, 1e-8])
    def test_theorem_3_8_guarantee(self, eps):
        delta = 0.5
        g, L, B, b, xstar = self._setup(delta)
        res = preconditioned_richardson(
            lambda v: apply_laplacian(g, v), B, b, delta=delta, eps=eps)
        err = relative_lnorm_error(L, res.x, xstar)
        assert err <= eps

    def test_geometric_decay(self):
        delta = 1.0
        g, L, B, b, xstar = self._setup(delta)
        res = preconditioned_richardson(
            lambda v: apply_laplacian(g, v), B, b, delta=delta, eps=1e-10,
            track_errors=lambda x: energy_norm(L, x - xstar))
        hist = np.array(res.error_history)
        hist = hist[hist > 1e-13]
        ratios = hist[1:] / hist[:-1]
        assert np.all(ratios < 1.0)  # monotone decay

    def test_alpha_formula(self):
        delta = 0.7
        g, L, B, b, xstar = self._setup(delta)
        res = preconditioned_richardson(
            lambda v: apply_laplacian(g, v), B, b, delta=delta, eps=0.5)
        assert res.alpha == pytest.approx(
            2.0 / (math.exp(-delta) + math.exp(delta)))

    def test_iterations_override(self):
        g, L, B, b, _ = self._setup(0.5)
        res = preconditioned_richardson(
            lambda v: apply_laplacian(g, v), B, b, delta=0.5, eps=1e-8,
            iterations=3)
        assert res.iterations == 3

    def test_exact_preconditioner_one_shot(self):
        # With B = L⁺ the initial x0 is already exact.
        g = G.cycle(8)
        L = laplacian(g)
        P = dense_laplacian_pinv(L.toarray())
        b = np.zeros(8)
        b[0], b[4] = 1, -1
        res = preconditioned_richardson(
            lambda v: apply_laplacian(g, v), lambda v: P @ v, b,
            delta=0.1, eps=0.5)
        assert np.allclose(res.x, exact_solution(g, b), atol=1e-10)

    def test_projection_keeps_iterates_centred(self):
        g, L, B, b, _ = self._setup(0.5)
        res = preconditioned_richardson(
            lambda v: apply_laplacian(g, v), B, b + 7.0, delta=0.5,
            eps=1e-4)
        assert abs(res.x.sum()) < 1e-8
