"""Blocked (n, k) multi-RHS solves: one factorization, k right-hand
sides, BLAS-3-style kernels throughout (ISSUE 2)."""

import math

import numpy as np
import pytest

from repro.config import SolverOptions, practical_options
from repro.core.apply_cholesky import ApplyCholeskyOperator
from repro.core.block_cholesky import block_cholesky
from repro.core.boundedness import naive_split
from repro.core.lev_est import _spanning_edges, leverage_overestimates
from repro.core.richardson import preconditioned_richardson
from repro.core.solver import LaplacianSolver
from repro.errors import DimensionMismatchError, FactorizationError
from repro.graphs import generators as G
from repro.graphs.laplacian import apply_laplacian, laplacian
from repro.graphs.multigraph import MultiGraph
from repro.graphs.validation import connected_components, is_connected
from repro.linalg.cg import conjugate_gradient
from repro.linalg.chebyshev import chebyshev_iteration
from repro.linalg.ops import project_out_ones
from repro.linalg.pinv import exact_solution, solve_dense_pseudo
from repro.pram import use_ledger


@pytest.fixture(scope="module")
def grid():
    return G.grid2d(10, 10)


@pytest.fixture(scope="module")
def operator(grid):
    H = naive_split(grid, 0.1)
    chain = block_cholesky(H, SolverOptions(min_vertices=20), seed=0)
    return ApplyCholeskyOperator(chain)


@pytest.fixture(scope="module")
def rhs_block(grid):
    rng = np.random.default_rng(7)
    return rng.standard_normal((grid.n, 6))


class TestBlockedKernels:
    """(n, k) block vs k separate (n,) applies — same linear operator."""

    def test_apply_cholesky(self, operator, rhs_block):
        blocked = operator.apply(rhs_block)
        looped = np.column_stack([operator.apply(rhs_block[:, j])
                                  for j in range(rhs_block.shape[1])])
        assert blocked.shape == rhs_block.shape
        np.testing.assert_allclose(blocked, looped, rtol=1e-12, atol=1e-12)

    def test_apply_cholesky_rejects_bad_shapes(self, operator):
        with pytest.raises(DimensionMismatchError):
            operator.apply(np.zeros(operator.n + 1))
        with pytest.raises(DimensionMismatchError):
            operator.apply(np.zeros((operator.n + 1, 3)))
        with pytest.raises(DimensionMismatchError):
            operator.apply(np.zeros((operator.n, 2, 2)))

    def test_jacobi(self, operator):
        Z = operator.chain.levels[0].jacobi
        rng = np.random.default_rng(0)
        B = rng.standard_normal((Z.n, 5))
        blocked = Z.apply(B)
        looped = np.column_stack([Z.apply(B[:, j]) for j in range(5)])
        np.testing.assert_allclose(blocked, looped, rtol=1e-12, atol=1e-12)

    def test_apply_laplacian(self, grid, rhs_block):
        blocked = apply_laplacian(grid, rhs_block)
        looped = np.column_stack([apply_laplacian(grid, rhs_block[:, j])
                                  for j in range(rhs_block.shape[1])])
        np.testing.assert_allclose(blocked, looped, rtol=1e-12, atol=1e-12)

    def test_dense_operator_matches_columnwise(self, operator):
        W = operator.dense_operator()
        e = np.zeros(operator.n)
        e[3] = 1.0
        col = operator.apply(e)
        # dense_operator symmetrises, so compare against the mean of the
        # raw column and row (W is symmetric to rounding anyway).
        np.testing.assert_allclose(W[:, 3], col, rtol=1e-8, atol=1e-10)

    def test_project_out_ones_columnwise(self):
        B = np.arange(12, dtype=np.float64).reshape(4, 3)
        P = project_out_ones(B)
        np.testing.assert_allclose(P.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(P[:, 0],
                                   project_out_ones(B[:, 0]), atol=1e-12)


class TestBlockedOuterLoops:
    """richardson / pcg / chebyshev on blocks vs column-by-column."""

    def test_richardson(self, grid, operator, rhs_block):
        blocked = preconditioned_richardson(
            lambda x: apply_laplacian(grid, x), operator.apply,
            rhs_block, eps=1e-8)
        looped = np.column_stack([
            preconditioned_richardson(
                lambda x: apply_laplacian(grid, x), operator.apply,
                rhs_block[:, j], eps=1e-8).x
            for j in range(rhs_block.shape[1])])
        # Identical up to the early-freeze threshold (conservative
        # fraction of the target eps).
        np.testing.assert_allclose(blocked.x, looped, rtol=1e-6, atol=1e-8)
        assert blocked.per_column_iterations is not None
        assert blocked.per_column_iterations.shape == (6,)

    def test_pcg(self, grid, operator, rhs_block):
        L = laplacian(grid)
        blocked = conjugate_gradient(L, rhs_block, tol=1e-10,
                                     preconditioner=operator.apply)
        looped = np.column_stack([
            conjugate_gradient(L, rhs_block[:, j], tol=1e-10,
                               preconditioner=operator.apply).x
            for j in range(rhs_block.shape[1])])
        assert blocked.converged
        np.testing.assert_allclose(blocked.x, looped, rtol=1e-6, atol=1e-8)

    def test_chebyshev(self, grid, operator, rhs_block):
        L = laplacian(grid)
        blocked = chebyshev_iteration(L, operator.apply, rhs_block,
                                      math.exp(-1), math.exp(1), 25)
        looped = np.column_stack([
            chebyshev_iteration(L, operator.apply, rhs_block[:, j],
                                math.exp(-1), math.exp(1), 25)
            for j in range(rhs_block.shape[1])])
        np.testing.assert_allclose(blocked, looped, rtol=1e-10, atol=1e-12)

    def test_chebyshev_column_freeze_converges(self, grid, operator,
                                               rhs_block):
        L = laplacian(grid)
        X = chebyshev_iteration(L, operator.apply, rhs_block,
                                math.exp(-1), math.exp(1), 200, tol=1e-9)
        R = np.asarray(L @ X) - project_out_ones(rhs_block)
        bnorm = np.linalg.norm(rhs_block, axis=0)
        assert np.all(np.linalg.norm(R, axis=0) <= 2e-9 * bnorm)


class TestPerColumnConvergence:
    def test_mixed_eps_iteration_budgets(self, grid):
        # min_vertices below n so the chain is non-trivial and
        # Richardson actually has to iterate.
        solver = LaplacianSolver(
            grid, options=SolverOptions(min_vertices=20), seed=0)
        rng = np.random.default_rng(3)
        B = rng.standard_normal((grid.n, 4))
        eps = np.array([1e-1, 1e-3, 1e-6, 1e-9])
        rep = solver.solve_many_report(B, eps=eps)
        iters = rep.per_column_iterations
        assert iters is not None
        # Looser targets stop strictly earlier.
        assert np.all(np.diff(iters) > 0)
        # Residuals decrease along with the targets.
        assert rep.residual_2norms[3] < rep.residual_2norms[0]

    def test_mixed_difficulty_freezes_easy_columns(self, grid):
        solver = LaplacianSolver(
            grid, options=SolverOptions(min_vertices=20), seed=0)
        # Easy column: b = L v for v an eigenvector of W L with
        # eigenvalue nearest 1 — Richardson's first iterate B b = λ v
        # is already an almost-exact solution, so the column freezes
        # right away; a random column needs the full budget.
        Ld = laplacian(grid).toarray()
        M = solver.preconditioner.dense_operator() @ Ld
        evals, evecs = np.linalg.eig(M)
        j = int(np.argmin(np.abs(evals - 1.0)))
        v = np.real(evecs[:, j])
        easy = Ld @ v
        hard = np.random.default_rng(4).standard_normal(grid.n)
        B = np.column_stack([np.zeros(grid.n), easy, hard])
        rep = solver.solve_many_report(B, eps=1e-6)
        iters = rep.per_column_iterations
        assert iters is not None
        assert iters[0] == 0           # zero column converges instantly
        assert iters[1] < iters[2]     # easy column freezes early

    def test_blocked_matches_exact(self, grid):
        solver = LaplacianSolver(grid, seed=0)
        rng = np.random.default_rng(5)
        B = project_out_ones(rng.standard_normal((grid.n, 5)))
        X = solver.solve_many(B, eps=1e-10)
        Xstar = exact_solution(grid, B)
        np.testing.assert_allclose(X, Xstar, rtol=1e-6, atol=1e-8)

    def test_blocked_pcg_matches_exact(self, grid):
        solver = LaplacianSolver(grid, seed=0)
        rng = np.random.default_rng(6)
        B = project_out_ones(rng.standard_normal((grid.n, 3)))
        X = solver.solve_many(B, eps=1e-10, method="pcg")
        np.testing.assert_allclose(X, exact_solution(grid, B),
                                   rtol=1e-6, atol=1e-8)


class TestShapes:
    def test_one_d_round_trip(self, grid):
        solver = LaplacianSolver(grid, seed=0)
        b = np.random.default_rng(8).standard_normal(grid.n)
        x1 = solver.solve_many(b, eps=1e-8)
        assert x1.shape == (grid.n,)
        np.testing.assert_allclose(x1, solver.solve(b, eps=1e-8),
                                   rtol=1e-6, atol=1e-9)

    def test_single_column_block(self, grid):
        solver = LaplacianSolver(grid, seed=0)
        b = np.random.default_rng(9).standard_normal((grid.n, 1))
        x = solver.solve_many(b, eps=1e-8)
        assert x.shape == (grid.n, 1)
        np.testing.assert_allclose(x[:, 0],
                                   solver.solve(b[:, 0], eps=1e-8),
                                   rtol=1e-6, atol=1e-9)

    def test_rejects_bad_shapes(self, grid):
        solver = LaplacianSolver(grid, seed=0)
        with pytest.raises(DimensionMismatchError):
            solver.solve_many(np.zeros((grid.n + 1, 2)))

    def test_solve_dense_pseudo_blocked(self, grid):
        rng = np.random.default_rng(10)
        B = rng.standard_normal((grid.n, 4))
        blocked = solve_dense_pseudo(laplacian(grid), B)
        looped = np.column_stack([
            solve_dense_pseudo(laplacian(grid), B[:, j]) for j in range(4)])
        np.testing.assert_allclose(blocked, looped, rtol=1e-9, atol=1e-10)


class TestLeverageEquivalence:
    def test_blocked_matches_looped_fixed_seed(self):
        g = G.grid2d(12, 12)
        opts = practical_options()
        tau_b = leverage_overestimates(g, K=4, seed=11, options=opts,
                                       blocked=True)
        tau_l = leverage_overestimates(g, K=4, seed=11, options=opts,
                                       blocked=False)
        # Same G', same signs, same inner chain — the only difference
        # is blocked vs sequential outer iteration, which agrees to
        # solver tolerance.
        np.testing.assert_allclose(tau_b, tau_l, rtol=0.1, atol=1e-9)


class TestSpanningEdges:
    @pytest.mark.parametrize("maker", [
        lambda: G.grid2d(7, 7),
        lambda: G.complete(25),
        lambda: G.erdos_renyi(40, 0.15, seed=3),
    ])
    def test_spanning_forest(self, maker):
        g = maker()
        keep = _spanning_edges(g)
        sub = MultiGraph(g.n, g.u[keep], g.v[keep], g.w[keep],
                         validate=False)
        n_components = int(connected_components(g).max()) + 1
        # A spanning forest: same connectivity, acyclic edge count.
        assert int(connected_components(sub).max()) + 1 == n_components
        assert keep.size == g.n - n_components
        assert is_connected(sub) == is_connected(g)

    def test_parallel_edges(self):
        # Duplicate edges must not corrupt the index recovery.
        u = np.array([0, 0, 0, 1, 1, 2])
        v = np.array([1, 1, 2, 2, 2, 3])
        w = np.ones(6)
        g = MultiGraph(4, u, v, w, validate=False)
        keep = _spanning_edges(g)
        assert keep.size == 3
        sub = MultiGraph(4, u[keep], v[keep], w[keep], validate=False)
        assert is_connected(sub)


class TestKeepGraphs:
    def test_streaming_chain_solves(self):
        g = G.grid2d(9, 9)
        H = naive_split(g, 0.1)
        opts = SolverOptions(min_vertices=20)
        kept = block_cholesky(H, opts, seed=0, keep_graphs=True)
        streamed = block_cholesky(H, opts, seed=0, keep_graphs=False)
        assert streamed.graphs is None
        # Diagnostics that only need counts keep working...
        assert streamed.edge_counts == kept.edge_counts
        assert streamed.stored_edge_counts == kept.stored_edge_counts
        assert streamed.total_stored_edges() == kept.total_stored_edges()
        assert f"d={streamed.d}" in streamed.summary()
        # ...and the operator is identical (same seed, same randomness).
        Wk = ApplyCholeskyOperator(kept)
        Ws = ApplyCholeskyOperator(streamed)
        b = np.random.default_rng(1).standard_normal(g.n)
        np.testing.assert_allclose(Ws.apply(b), Wk.apply(b),
                                   rtol=1e-12, atol=1e-12)

    def test_graph_diagnostics_raise_when_streamed(self):
        g = G.grid2d(6, 6)
        chain = block_cholesky(naive_split(g, 0.2),
                               SolverOptions(min_vertices=10),
                               seed=0, keep_graphs=False)
        with pytest.raises(FactorizationError):
            chain.dense_factorization()

    def test_solver_option_threads_through(self):
        g = G.grid2d(8, 8)
        solver = LaplacianSolver(
            g, options=SolverOptions(keep_graphs=False), seed=0)
        assert solver.chain.graphs is None
        B = project_out_ones(
            np.random.default_rng(2).standard_normal((g.n, 3)))
        x = solver.solve_many(B, eps=1e-10)
        assert x.shape == (g.n, 3)
        np.testing.assert_allclose(x, exact_solution(g, B),
                                   rtol=1e-6, atol=1e-8)


class TestBlockedApps:
    def test_label_propagation_ignores_negative_sentinels(self, grid):
        # -1 "unlabeled" sentinels matched nothing in the old per-class
        # loop; the blocked RHS assembly must ignore them the same way.
        from repro.apps.semi_supervised import harmonic_label_propagation
        labeled = np.array([0, 5, 11, 17])
        labels = np.array([0, 1, -1, 0])
        assign, scores = harmonic_label_propagation(
            grid, labeled, labels, num_classes=2,
            options=practical_options(), seed=0)
        assert scores.shape == (grid.n, 2)
        assert assign[0] == 0 and assign[5] == 1

    def test_electrical_kcl_checked_per_column(self, grid):
        # A column violating KCL at its own (tiny) scale must raise even
        # when another column is huge.
        from repro.apps.electrical import electrical_voltages, st_demand
        from repro.errors import ReproError
        big = 1e6 * st_demand(grid.n, 0, 1)
        bad = np.zeros(grid.n)
        bad[2] = 1e-4
        with pytest.raises(ReproError):
            electrical_voltages(grid, np.column_stack([big, bad]),
                                options=practical_options(), seed=0)


class TestChargeGuards:
    def test_lev_est_charges_only_with_ledger(self):
        g = G.grid2d(6, 6)
        opts = practical_options()
        # Without a ledger: runs fine, nothing to record.
        leverage_overestimates(g, K=3, seed=0, options=opts)
        # With a ledger: the guarded labels appear.
        with use_ledger() as ledger:
            leverage_overestimates(g, K=3, seed=0, options=opts)
        for label in ("uniform_edge_sample", "jl_row", "jl_distances"):
            assert label in ledger.by_label, label

    def test_blocked_matvec_cost_scales_with_k(self):
        g = G.grid2d(6, 6)
        solver = LaplacianSolver(g, seed=0)
        B = np.random.default_rng(3).standard_normal((g.n, 4))
        with use_ledger() as one:
            solver.apply_L(B[:, :1])
        with use_ledger() as four:
            solver.apply_L(B)
        assert four.by_label["apply_laplacian"].work == pytest.approx(
            4.0 * one.by_label["apply_laplacian"].work)
