"""Representation conversions (Lemma 2.7) and external interop."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphStructureError
from repro.graphs import generators as G
from repro.graphs.conversions import (
    adjacency_to_edge_list,
    edge_list_to_adjacency,
    from_networkx,
    from_scipy_adjacency,
    from_scipy_laplacian,
    to_networkx,
)
from repro.graphs.laplacian import laplacian
from repro.graphs.multigraph import MultiGraph


class TestEdgeListAdjacencyRoundTrip:
    def test_round_trip_preserves_laplacian(self, zoo_graph):
        adj = edge_list_to_adjacency(zoo_graph)
        back = adjacency_to_edge_list(zoo_graph.n, adj)
        assert np.allclose(laplacian(back).toarray(),
                           laplacian(zoo_graph).toarray())

    def test_round_trip_preserves_multiplicity(self):
        g = MultiGraph(3, [0, 0, 1], [1, 1, 2], [1.0, 2.0, 3.0])
        back = adjacency_to_edge_list(g.n, g.adjacency())
        assert back.m == 3
        assert sorted(back.w.tolist()) == [1.0, 2.0, 3.0]


class TestScipyInterop:
    def test_from_scipy_adjacency(self):
        A = sp.csr_matrix(np.array([[0, 2.0], [2.0, 0]]))
        g = from_scipy_adjacency(A)
        assert g.m == 1
        assert g.w[0] == 2.0

    def test_from_scipy_adjacency_rejects_asymmetric(self):
        A = np.array([[0, 1.0], [2.0, 0]])
        with pytest.raises(GraphStructureError, match="symmetric"):
            from_scipy_adjacency(A)

    def test_from_scipy_adjacency_rejects_diagonal(self):
        A = np.array([[1.0, 1.0], [1.0, 0]])
        with pytest.raises(GraphStructureError, match="diagonal"):
            from_scipy_adjacency(A)

    def test_from_scipy_laplacian_round_trip(self, zoo_graph):
        L = laplacian(zoo_graph)
        g = from_scipy_laplacian(L)
        assert np.allclose(laplacian(g).toarray(), L.toarray())

    def test_from_scipy_laplacian_rejects_bad_row_sums(self):
        M = np.array([[1.0, -0.5], [-0.5, 1.0]])
        with pytest.raises(GraphStructureError, match="sum to zero"):
            from_scipy_laplacian(M)

    def test_from_scipy_laplacian_rejects_positive_offdiag(self):
        M = np.array([[-1.0, 1.0], [1.0, -1.0]])
        with pytest.raises(GraphStructureError):
            from_scipy_laplacian(M)


class TestNetworkxInterop:
    def test_round_trip(self, zoo_graph):
        pytest.importorskip("networkx")
        back = from_networkx(to_networkx(zoo_graph))
        assert np.allclose(laplacian(back).toarray(),
                           laplacian(zoo_graph).toarray())

    def test_from_networkx_default_weight(self):
        nx = pytest.importorskip("networkx")
        g = from_networkx(nx.path_graph(4))
        assert np.allclose(g.w, 1.0)

    def test_from_networkx_drops_self_loops(self):
        nx = pytest.importorskip("networkx")
        H = nx.Graph()
        H.add_edge(0, 1)
        H.add_edge(1, 1)
        g = from_networkx(H)
        assert g.m == 1
