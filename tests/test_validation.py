"""Connectivity and structural validation."""

import numpy as np
import pytest

from repro.errors import GraphStructureError, NotConnectedError
from repro.graphs import generators as G
from repro.graphs.multigraph import MultiGraph
from repro.graphs.validation import (
    connected_components,
    is_connected,
    require_connected,
    validate_graph,
)


class TestConnectivity:
    def test_zoo_connected(self, zoo_graph):
        assert is_connected(zoo_graph)

    def test_disjoint_union_disconnected(self):
        g = G.union_disjoint(G.path(3), G.cycle(4))
        assert not is_connected(g)
        labels = connected_components(g)
        assert labels.max() == 1
        assert set(labels[:3]) == {0}
        assert set(labels[3:]) == {1}

    def test_singleton_connected(self):
        assert is_connected(MultiGraph(1, [], [], []))

    def test_edgeless_multi_vertex_disconnected(self):
        assert not is_connected(MultiGraph(3, [], [], []))

    def test_isolated_vertex(self):
        g = MultiGraph(4, [0, 1], [1, 2], [1.0, 1.0])
        labels = connected_components(g)
        assert labels[3] != labels[0]

    def test_components_matches_networkx(self, zoo_graph):
        nx = pytest.importorskip("networkx")
        from repro.graphs.conversions import to_networkx

        ours = connected_components(zoo_graph).max() + 1
        theirs = nx.number_connected_components(to_networkx(zoo_graph))
        assert ours == theirs

    def test_require_connected_raises(self):
        g = G.union_disjoint(G.path(2), G.path(2))
        with pytest.raises(NotConnectedError):
            require_connected(g)

    def test_require_connected_passes(self):
        require_connected(G.path(5))


class TestValidateGraph:
    def test_valid(self, zoo_graph):
        validate_graph(zoo_graph)

    def test_detects_in_place_corruption(self):
        g = G.path(3)
        g.w[0] = -5.0  # bypasses constructor validation
        with pytest.raises(GraphStructureError, match="non-positive"):
            validate_graph(g, connected=False)

    def test_detects_nan_corruption(self):
        g = G.path(3)
        g.w[1] = float("nan")
        with pytest.raises(GraphStructureError, match="non-finite"):
            validate_graph(g, connected=False)

    def test_detects_disconnection(self):
        g = G.union_disjoint(G.path(2), G.path(2))
        with pytest.raises(NotConnectedError):
            validate_graph(g)
