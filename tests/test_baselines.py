"""Baseline solvers: KS16 approximate Cholesky, direct, CG variants."""

import numpy as np
import pytest

from repro.baselines import (
    DirectSolver,
    KS16Solver,
    approximate_cholesky,
    cg_solve,
    jacobi_pcg_solve,
)
from repro.errors import NotConnectedError
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian
from repro.linalg.pinv import exact_solution


class TestDirectSolver:
    def test_exact(self, zoo_graph, balanced_rhs):
        b = balanced_rhs(zoo_graph)
        x = DirectSolver(zoo_graph).solve(b)
        assert np.allclose(x, exact_solution(zoo_graph, b), atol=1e-8)

    def test_requires_connected(self):
        with pytest.raises(NotConnectedError):
            DirectSolver(G.union_disjoint(G.path(3), G.path(3)))

    def test_centres_output(self, zoo_graph, balanced_rhs):
        x = DirectSolver(zoo_graph).solve(balanced_rhs(zoo_graph))
        assert abs(x.sum()) < 1e-8


class TestCGBaselines:
    def test_cg_solve(self, balanced_rhs):
        g = G.grid2d(8, 8)
        b = balanced_rhs(g)
        res = cg_solve(g, b, eps=1e-10)
        assert res.converged
        assert np.allclose(res.x, exact_solution(g, b), atol=1e-6)

    def test_jacobi_pcg(self, balanced_rhs):
        g = G.with_random_weights(G.grid2d(8, 8), 0.01, 100.0, seed=1,
                                  log_uniform=True)
        b = balanced_rhs(g)
        res = jacobi_pcg_solve(g, b, eps=1e-10)
        assert res.converged
        assert np.allclose(res.x, exact_solution(g, b), atol=1e-5)

    def test_jacobi_helps_on_skewed_weights(self, balanced_rhs):
        g = G.with_random_weights(G.grid2d(10, 10), 1e-3, 1e3, seed=2,
                                  log_uniform=True)
        b = balanced_rhs(g)
        plain = cg_solve(g, b, eps=1e-8)
        jac = jacobi_pcg_solve(g, b, eps=1e-8)
        assert jac.iterations < plain.iterations


class TestKS16:
    def test_factor_is_lower_triangular(self):
        g = G.grid2d(6, 6)
        fac = approximate_cholesky(g, seed=0, split_factor=0.2)
        Lf = fac.Lfactor.toarray()
        assert np.allclose(Lf, np.tril(Lf))

    def test_factor_spectrally_close(self):
        # L ≈ 𝓛𝓛ᵀ in the permuted basis, close enough to precondition.
        from repro.linalg.loewner import approximation_factor

        g = G.grid2d(6, 6)
        fac = approximate_cholesky(g, seed=1, split_factor=1.0)
        Lf = fac.Lfactor.toarray()
        approx = Lf @ Lf.T
        L = laplacian(g).toarray()[np.ix_(fac.perm, fac.perm)]
        eps = approximation_factor(approx, L)
        assert eps < 1.5  # constant-quality preconditioner

    @pytest.mark.parametrize("maker", [
        lambda: G.grid2d(7, 7),
        lambda: G.barbell(15, 2),
        lambda: G.with_random_weights(G.cycle(40), 0.2, 5.0, seed=3),
    ])
    def test_solver_accuracy(self, maker, balanced_rhs):
        g = maker()
        b = balanced_rhs(g)
        solver = KS16Solver(g, seed=2, split_factor=0.5)
        x = solver.solve(b, eps=1e-10)
        xstar = exact_solution(g, b)
        assert np.linalg.norm(x - xstar) < 1e-6 * max(
            np.linalg.norm(xstar), 1.0)

    def test_preconditioning_beats_plain_cg(self, balanced_rhs):
        # A skew-weighted grid has a spread-out spectrum, the regime
        # where plain CG needs many iterations.  (Clique barbells are a
        # bad test: their Laplacians have ~4 distinct eigenvalues and CG
        # finishes in that many steps.)
        g = G.with_random_weights(G.grid2d(9, 9), 1e-2, 1e2, seed=7,
                                  log_uniform=True)
        b = balanced_rhs(g)
        ks = KS16Solver(g, seed=3, split_factor=0.5)
        pcg_iters = ks.solve_report(b, eps=1e-8).iterations
        plain_iters = cg_solve(g, b, eps=1e-8).iterations
        assert pcg_iters < plain_iters

    def test_requires_connected(self):
        with pytest.raises(NotConnectedError):
            approximate_cholesky(G.union_disjoint(G.path(4), G.path(4)))

    def test_deterministic_given_seed(self, balanced_rhs):
        g = G.grid2d(5, 5)
        b = balanced_rhs(g)
        x1 = KS16Solver(g, seed=11, split_factor=0.3).solve(b)
        x2 = KS16Solver(g, seed=11, split_factor=0.3).solve(b)
        assert np.allclose(x1, x2)
