"""Work/depth ledger, cost primitives, and the chunked executor."""

import math

import numpy as np
import pytest

from repro.pram import (
    WorkDepthLedger,
    chunk_ranges,
    charge,
    current_ledger,
    parallel_map,
    parallel_region,
    use_ledger,
)
from repro.pram import primitives as P
from repro.pram.ledger import CostSnapshot, ParallelRegion


class TestLedger:
    def test_sequential_composition(self):
        ledger = WorkDepthLedger()
        ledger.charge(10, 2)
        ledger.charge(5, 3)
        assert ledger.work == 15
        assert ledger.depth == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            WorkDepthLedger().charge(-1, 0)

    def test_label_attribution(self):
        ledger = WorkDepthLedger()
        ledger.charge(10, 1, label="a")
        ledger.charge(20, 1, label="a")
        ledger.charge(5, 1, label="b")
        assert ledger.by_label["a"].work == 30
        assert ledger.by_label["b"].work == 5

    def test_reset(self):
        ledger = WorkDepthLedger()
        ledger.charge(10, 1, label="x")
        ledger.reset()
        assert ledger.work == 0
        assert ledger.by_label == {}

    def test_report_contains_labels(self):
        ledger = WorkDepthLedger()
        ledger.charge(10, 1, label="walks")
        assert "walks" in ledger.report()


class TestAmbientLedger:
    def test_no_ledger_is_noop(self):
        assert current_ledger() is None
        charge(100, 100)  # must not raise

    def test_use_ledger_installs(self):
        with use_ledger() as ledger:
            assert current_ledger() is ledger
            charge(7, 1)
        assert current_ledger() is None
        assert ledger.work == 7

    def test_nesting_restores_outer(self):
        with use_ledger() as outer:
            with use_ledger() as inner:
                charge(1, 1)
            charge(10, 1)
        assert inner.work == 1
        assert outer.work == 10

    def test_ledger_active_flag(self):
        from repro.pram import ledger_active

        assert not ledger_active()
        with use_ledger():
            assert ledger_active()
        assert not ledger_active()

    def test_guarded_hot_paths_still_charge(self):
        # The walk/sampler/adjacency charges are guarded by
        # ledger_active(); with a ledger installed they must still
        # record their Lemma 2.6/2.7/5.4 costs.
        from repro.core.terminal_walks import terminal_walks
        from repro.graphs import generators as G

        g = G.grid2d(5, 5)
        with use_ledger() as ledger:
            terminal_walks(g, np.arange(0, g.n, 2), seed=0)
        assert "walk_steps" in ledger.by_label
        # One Lemma 2.6 query label per sampler realisation.
        assert ("rowsampler_query" in ledger.by_label
                or "alias_query" in ledger.by_label)
        assert "adjacency_build" in ledger.by_label


class TestParallelRegion:
    def test_fork_join_semantics(self):
        region = ParallelRegion()
        region.branch(10, 5)
        region.branch(20, 3)
        assert region.cost.work == 30
        assert region.cost.depth == 5

    def test_context_manager_charges(self):
        with use_ledger() as ledger:
            with parallel_region("fork") as region:
                region.branch(4, 2)
                region.branch(6, 9)
        assert ledger.work == 10
        assert ledger.depth == 9
        assert ledger.by_label["fork"].work == 10

    def test_snapshot_arithmetic(self):
        a = CostSnapshot(5, 2)
        b = CostSnapshot(3, 4)
        assert (a + b) == CostSnapshot(8, 6)
        assert a.parallel_join(b) == CostSnapshot(8, 4)


class TestPrimitives:
    def test_map_is_unit_depth(self):
        work, depth = P.map_cost(1000)
        assert work == 1000 and depth == 1

    def test_reduce_log_depth(self):
        work, depth = P.reduce_cost(1024)
        assert work == 1024 and depth == pytest.approx(10.0)

    def test_sort(self):
        work, depth = P.sort_cost(256)
        assert work == pytest.approx(256 * 8)
        assert depth == pytest.approx(8)

    def test_degenerate_sizes_cost_a_unit(self):
        for fn in (P.map_cost, P.reduce_cost, P.scan_cost, P.sort_cost,
                   P.convert_cost, P.sampler_build_cost,
                   P.sampler_query_cost, P.matvec_cost, P.walk_step_cost,
                   P.diag_solve_cost, P.axpy_cost):
            work, depth = fn(0)
            assert work >= 1 and depth >= 1

    def test_log2p_floor(self):
        assert P.log2p(0.5) == 1.0
        assert P.log2p(2 ** 20) == pytest.approx(20.0)


class TestExecutor:
    def test_chunk_ranges_cover(self):
        pieces = chunk_ranges(10, 3)
        covered = [i for lo, hi in pieces for i in range(lo, hi)]
        assert covered == list(range(10))

    def test_chunk_ranges_balanced(self):
        sizes = [hi - lo for lo, hi in chunk_ranges(11, 4)]
        assert max(sizes) - min(sizes) <= 1

    def test_chunk_ranges_more_chunks_than_items(self):
        assert chunk_ranges(2, 8) == [(0, 1), (1, 2)]

    def test_chunk_ranges_validation(self):
        with pytest.raises(ValueError):
            chunk_ranges(-1, 2)
        with pytest.raises(ValueError):
            chunk_ranges(5, 0)

    def test_parallel_map_serial(self):
        assert parallel_map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]

    def test_parallel_map_threaded_matches_serial(self):
        items = list(range(50))
        serial = parallel_map(lambda x: x * x, items, workers=1)
        threaded = parallel_map(lambda x: x * x, items, workers=4)
        assert serial == threaded


class TestLedgerIntegration:
    def test_solver_charges_costs(self):
        from repro import LaplacianSolver, generators, practical_options

        g = generators.grid2d(12, 12)  # > min_vertices: real chain built
        with use_ledger() as ledger:
            solver = LaplacianSolver(g, options=practical_options(), seed=0)
            b = np.zeros(g.n)
            b[0], b[-1] = 1, -1
            solver.solve(b, eps=1e-3)
        assert ledger.work > 0
        assert ledger.depth > 0
        assert "walk_steps" in ledger.by_label
        assert "jacobi_apply" in ledger.by_label

    def test_depth_much_smaller_than_work(self):
        from repro import LaplacianSolver, generators, practical_options

        g = generators.grid2d(12, 12)
        with use_ledger() as ledger:
            LaplacianSolver(g, options=practical_options(), seed=0)
        # The whole point of the parallel algorithm.
        assert ledger.depth < ledger.work / 10.0
