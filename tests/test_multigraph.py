"""Unit tests for the MultiGraph substrate."""

import numpy as np
import pytest

from repro.errors import (
    DimensionMismatchError,
    EmptyGraphError,
    GraphStructureError,
)
from repro.graphs import generators as G
from repro.graphs.multigraph import MultiGraph


class TestConstruction:
    def test_basic(self):
        g = MultiGraph(3, [0, 1], [1, 2], [1.0, 2.0])
        assert g.n == 3
        assert g.m == 2
        assert g.w.dtype == np.float64

    def test_parallel_edges_allowed(self):
        g = MultiGraph(2, [0, 0, 0], [1, 1, 1], [1.0, 1.0, 1.0])
        assert g.m == 3

    def test_rejects_self_loop(self):
        with pytest.raises(GraphStructureError, match="self-loop"):
            MultiGraph(2, [0], [0], [1.0])

    def test_rejects_zero_weight(self):
        with pytest.raises(GraphStructureError, match="positive"):
            MultiGraph(2, [0], [1], [0.0])

    def test_rejects_negative_weight(self):
        with pytest.raises(GraphStructureError):
            MultiGraph(2, [0], [1], [-1.0])

    def test_rejects_nan_weight(self):
        with pytest.raises(GraphStructureError):
            MultiGraph(2, [0], [1], [float("nan")])

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphStructureError, match="out of range"):
            MultiGraph(2, [0], [5], [1.0])

    def test_rejects_empty_vertex_set(self):
        with pytest.raises(EmptyGraphError):
            MultiGraph(0, [], [], [])

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(DimensionMismatchError):
            MultiGraph(3, [0, 1], [1], [1.0])

    def test_edgeless_graph_ok(self):
        g = MultiGraph(4, [], [], [])
        assert g.m == 0
        assert g.total_weight() == 0.0

    def test_from_edges(self):
        g = MultiGraph.from_edges(3, [(0, 1, 2.0), (1, 2, 3.0)])
        assert g.m == 2
        assert g.total_weight() == 5.0

    def test_from_edges_empty(self):
        g = MultiGraph.from_edges(3, [])
        assert g.m == 0


class TestDegrees:
    def test_weighted_degrees_triangle(self):
        g = G.cycle(3)
        assert np.allclose(g.weighted_degrees(), [2.0, 2.0, 2.0])

    def test_weighted_degrees_parallel(self):
        g = MultiGraph(2, [0, 0], [1, 1], [1.5, 2.5])
        assert np.allclose(g.weighted_degrees(), [4.0, 4.0])

    def test_multi_degrees(self):
        g = MultiGraph(3, [0, 0], [1, 1], [1.0, 1.0])
        assert list(g.multi_degrees()) == [2, 2, 0]

    def test_degrees_cached(self):
        g = G.path(5)
        assert g.weighted_degrees() is g.weighted_degrees()


class TestAdjacency:
    def test_row_contents(self):
        g = MultiGraph(3, [0, 1, 0], [1, 2, 2], [1.0, 2.0, 3.0])
        nbr, w, eid = g.adjacency().row(0)
        assert sorted(nbr.tolist()) == [1, 2]
        assert sorted(w.tolist()) == [1.0, 3.0]

    def test_each_edge_twice(self, zoo_graph):
        adj = zoo_graph.adjacency()
        assert adj.neighbor.size == 2 * zoo_graph.m
        counts = np.bincount(adj.edge_id, minlength=zoo_graph.m)
        assert np.all(counts == 2)

    def test_indptr_monotone(self, zoo_graph):
        adj = zoo_graph.adjacency()
        assert np.all(np.diff(adj.indptr) >= 0)
        assert adj.indptr[-1] == 2 * zoo_graph.m

    def test_cumweight_strictly_increasing(self, zoo_graph):
        adj = zoo_graph.adjacency()
        if adj.cumweight.size:
            assert np.all(np.diff(adj.cumweight) > 0)

    def test_neighbors_sorted_unique(self):
        g = MultiGraph(4, [0, 0, 0], [2, 1, 2], [1.0, 1.0, 1.0])
        assert g.neighbors(0).tolist() == [1, 2]


class TestDerivedGraphs:
    def test_copy_independent(self):
        g = G.path(4)
        h = g.copy()
        h.w[0] = 99.0
        assert g.w[0] == 1.0

    def test_edge_subset(self):
        g = G.path(4)
        h = g.edge_subset(np.array([True, False, True]))
        assert h.m == 2
        assert h.n == 4

    def test_edge_subset_bad_mask(self):
        with pytest.raises(DimensionMismatchError):
            G.path(4).edge_subset(np.array([True]))

    def test_induced_subgraph(self):
        g = G.cycle(6)
        h, vertices = g.induced_subgraph(np.array([0, 1, 2]))
        assert h.n == 3
        assert h.m == 2  # edges (0,1) and (1,2); the wrap edge is cut
        assert vertices.tolist() == [0, 1, 2]

    def test_induced_subgraph_relabels(self):
        g = G.path(5)
        h, _ = g.induced_subgraph(np.array([2, 3, 4]))
        assert h.u.max() < 3 and h.v.max() < 3

    def test_coalesced_merges_parallel(self):
        g = MultiGraph(3, [0, 0, 1], [1, 1, 2], [1.0, 2.0, 5.0])
        h = g.coalesced()
        assert h.m == 2
        assert h.total_weight() == 8.0

    def test_coalesced_huge_vertex_count_no_overflow(self):
        # Regression: the old packed key `lo * n + hi` overflowed int64
        # for n > ~3e9; the stacked (lo, hi) key cannot.
        n = 2 ** 33
        a, b = n - 2, n - 1
        g = MultiGraph(n, [a, a, 0], [b, b, a], [1.0, 2.0, 4.0],
                       validate=False)
        h = g.coalesced()
        assert h.m == 2
        pairs = {(int(u), int(v)) for u, v in zip(h.u, h.v)}
        assert pairs == {(a, b), (0, a)}
        assert h.total_weight() == 7.0
        merged = h.w[(h.u == a) & (h.v == b)]
        assert np.allclose(merged, [3.0])

    def test_coalesced_preserves_laplacian(self, zoo_graph):
        from repro.graphs.laplacian import laplacian

        doubled = MultiGraph(
            zoo_graph.n,
            np.concatenate([zoo_graph.u, zoo_graph.u]),
            np.concatenate([zoo_graph.v, zoo_graph.v]),
            np.concatenate([zoo_graph.w * 0.25, zoo_graph.w * 0.75]))
        L1 = laplacian(doubled).toarray()
        L2 = laplacian(doubled.coalesced()).toarray()
        assert np.allclose(L1, L2)

    def test_equality(self):
        assert G.path(4) == G.path(4)
        assert G.path(4) != G.path(5)

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(G.path(3))

    def test_repr(self):
        assert repr(G.path(3)) == "MultiGraph(n=3, m=2)"


class TestImplicitMultiplicity:
    def test_default_is_single_copy(self):
        g = MultiGraph(3, [0, 1], [1, 2], [1.0, 2.0])
        assert g.mult is None
        assert g.m_logical == g.m == 2
        assert np.all(g.multiplicities() == 1)

    def test_logical_count(self):
        g = MultiGraph(3, [0, 1], [1, 2], [1.0, 2.0], mult=[3, 5])
        assert g.m == 2
        assert g.m_logical == 8
        assert repr(g) == "MultiGraph(n=3, m=2, m_logical=8)"

    def test_rejects_nonpositive_mult(self):
        with pytest.raises(GraphStructureError, match="multiplicities"):
            MultiGraph(3, [0, 1], [1, 2], [1.0, 2.0], mult=[1, 0])

    def test_rejects_mult_beyond_int32(self):
        # Regression: oversized multiplicities must raise, not wrap.
        with pytest.raises(GraphStructureError, match="int32"):
            MultiGraph(3, [0, 1], [1, 2], [1.0, 2.0],
                       mult=np.array([1, 2 ** 31], dtype=np.int64),
                       validate=False)

    def test_rejects_mismatched_mult_shape(self):
        with pytest.raises(DimensionMismatchError):
            MultiGraph(3, [0, 1], [1, 2], [1.0, 2.0], mult=[1])

    def test_weighted_degrees_use_totals(self):
        a = MultiGraph(2, [0], [1], [4.0], mult=[4])
        b = MultiGraph(2, [0, 0, 0, 0], [1, 1, 1, 1], [1.0] * 4)
        assert np.allclose(a.weighted_degrees(), b.weighted_degrees())

    def test_multi_degrees_count_logical_copies(self):
        g = MultiGraph(3, [0, 1], [1, 2], [1.0, 1.0], mult=[3, 2])
        assert list(g.multi_degrees()) == [3, 5, 2]

    def test_materialized_expands(self):
        g = MultiGraph(3, [0, 1], [1, 2], [3.0, 2.0], mult=[3, 2])
        x = g.materialized()
        assert x.mult is None
        assert x.m == 5
        assert np.allclose(np.sort(x.w), [1.0, 1.0, 1.0, 1.0, 1.0])
        from repro.graphs.laplacian import laplacian

        assert np.allclose(laplacian(x).toarray(), laplacian(g).toarray())

    def test_equality_compares_logical_multiplicity(self):
        plain = MultiGraph(3, [0, 1], [1, 2], [1.0, 2.0])
        ones = MultiGraph(3, [0, 1], [1, 2], [1.0, 2.0], mult=[1, 1])
        double = MultiGraph(3, [0, 1], [1, 2], [1.0, 2.0], mult=[2, 1])
        assert plain == ones
        assert plain != double

    def test_edge_nbytes_accounts_mult(self):
        plain = MultiGraph(3, [0, 1], [1, 2], [1.0, 2.0])
        with_mult = MultiGraph(3, [0, 1], [1, 2], [1.0, 2.0], mult=[2, 2])
        assert with_mult.edge_nbytes > plain.edge_nbytes
