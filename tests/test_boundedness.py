"""α-boundedness and Lemma 3.2 naive splitting."""

import numpy as np
import pytest

from repro.core.boundedness import (
    is_alpha_bounded,
    leverage_scores,
    naive_split,
    split_counts_for_alpha,
)
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian


class TestLeverageScores:
    def test_tree_edges_leverage_one(self):
        tau = leverage_scores(G.binary_tree(3))
        assert np.allclose(tau, 1.0, atol=1e-9)

    def test_cycle_uniform(self):
        n = 8
        tau = leverage_scores(G.cycle(n))
        assert np.allclose(tau, (n - 1) / n, atol=1e-9)

    def test_reference_graph(self):
        # Measure a cycle's edges against the same cycle via the
        # reference argument: identical results.
        g = G.cycle(6)
        assert np.allclose(leverage_scores(g, reference=g),
                           leverage_scores(g))

    def test_reference_shape_check(self):
        from repro.errors import GraphStructureError

        with pytest.raises(GraphStructureError):
            leverage_scores(G.path(4), reference=G.path(5))


class TestSplitCounts:
    def test_values(self):
        assert split_counts_for_alpha(1.0) == 1
        assert split_counts_for_alpha(0.5) == 2
        assert split_counts_for_alpha(0.3) == 4
        assert split_counts_for_alpha(2.0) == 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            split_counts_for_alpha(0.0)


class TestNaiveSplit:
    def test_preserves_laplacian(self, zoo_graph):
        H = naive_split(zoo_graph, alpha=0.25)
        assert np.allclose(laplacian(H).toarray(),
                           laplacian(zoo_graph).toarray())

    def test_edge_count(self, zoo_graph):
        # Implicit split: O(m) stored groups, m * ceil(1/alpha) logical
        # copies carried as multiplicities.
        H = naive_split(zoo_graph, alpha=0.2)
        assert H.m == zoo_graph.m
        assert H.m_logical == 5 * zoo_graph.m
        assert np.all(H.multiplicities() == 5)

    def test_materialized_edge_count(self, zoo_graph):
        H = naive_split(zoo_graph, alpha=0.2, materialize=True)
        assert H.m == 5 * zoo_graph.m
        assert H.mult is None
        implicit = naive_split(zoo_graph, alpha=0.2)
        assert implicit.materialized() == H

    def test_achieves_alpha_boundedness(self):
        g = G.barbell(5, 1)  # contains a leverage-1 bridge
        alpha = 0.25
        H = naive_split(g, alpha)
        assert is_alpha_bounded(H, alpha)

    def test_alpha_one_is_copy(self, zoo_graph):
        H = naive_split(zoo_graph, 1.0)
        assert H == zoo_graph
        assert H is not zoo_graph

    def test_copies_have_equal_weight(self):
        g = G.path(3)
        H = naive_split(g, 1.0 / 3.0)
        # Per-copy weight is w/mult; totals are untouched.
        assert np.allclose(H.w / H.multiplicities(), 1.0 / 3.0)
        assert np.allclose(H.w, g.w)
        assert np.allclose(naive_split(g, 1.0 / 3.0, materialize=True).w,
                           1.0 / 3.0)

    def test_lemma_3_2_bound_formula(self, zoo_graph):
        # leverage of each copy = tau(e)/k <= 1/k <= alpha
        alpha = 0.2
        H = naive_split(zoo_graph, alpha)
        tau = leverage_scores(H)
        assert np.all(tau <= alpha + 1e-9)


class TestIsAlphaBounded:
    def test_simple_graph_always_1_bounded(self, zoo_graph):
        assert is_alpha_bounded(zoo_graph, 1.0)

    def test_bridge_not_half_bounded(self):
        g = G.barbell(4, 1)
        assert not is_alpha_bounded(g, 0.5)
