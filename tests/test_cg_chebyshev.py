"""CG, PCG, and Chebyshev iteration."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian
from repro.linalg.cg import conjugate_gradient
from repro.linalg.chebyshev import chebyshev_iteration
from repro.linalg.pinv import dense_laplacian_pinv, exact_solution


class TestCG:
    def test_solves_laplacian(self, zoo_graph, balanced_rhs):
        b = balanced_rhs(zoo_graph)
        res = conjugate_gradient(laplacian(zoo_graph), b, tol=1e-10)
        assert res.converged
        assert np.allclose(res.x, exact_solution(zoo_graph, b), atol=1e-6)

    def test_callable_operator(self, balanced_rhs):
        g = G.grid2d(5, 5)
        from repro.graphs.laplacian import apply_laplacian

        b = balanced_rhs(g)
        res = conjugate_gradient(lambda x: apply_laplacian(g, x), b,
                                 tol=1e-10)
        assert res.converged

    def test_zero_rhs(self):
        res = conjugate_gradient(laplacian(G.path(4)), np.zeros(4))
        assert res.converged
        assert res.iterations == 0
        assert np.allclose(res.x, 0.0)

    def test_kernel_rhs_projected(self):
        res = conjugate_gradient(laplacian(G.path(4)), np.ones(4))
        assert res.converged
        assert np.allclose(res.x, 0.0, atol=1e-10)

    def test_residual_history_decreases_overall(self, balanced_rhs):
        g = G.grid2d(6, 6)
        res = conjugate_gradient(laplacian(g), balanced_rhs(g), tol=1e-12)
        assert res.residual_norms[-1] < res.residual_norms[0] * 1e-8

    def test_max_iter_respected(self, balanced_rhs):
        g = G.barbell(15, 1)  # ill-conditioned
        res = conjugate_gradient(laplacian(g), balanced_rhs(g),
                                 tol=1e-14, max_iter=2)
        assert res.iterations <= 2
        assert not res.converged

    def test_raise_on_fail(self, balanced_rhs):
        g = G.barbell(15, 1)
        with pytest.raises(ConvergenceError):
            conjugate_gradient(laplacian(g), balanced_rhs(g), tol=1e-14,
                               max_iter=2, raise_on_fail=True)

    def test_preconditioner_speeds_up(self, balanced_rhs):
        g = G.barbell(12, 1)
        b = balanced_rhs(g)
        P = dense_laplacian_pinv(laplacian(g).toarray())
        plain = conjugate_gradient(laplacian(g), b, tol=1e-8)
        pcg = conjugate_gradient(laplacian(g), b, tol=1e-8,
                                 preconditioner=lambda r: P @ r)
        assert pcg.iterations < plain.iterations
        assert pcg.iterations <= 3  # exact preconditioner: ~1 step

    def test_spd_nonsingular_mode(self, rng):
        A = rng.standard_normal((12, 12))
        A = A @ A.T + 12 * np.eye(12)
        b = rng.standard_normal(12)
        res = conjugate_gradient(A, b, tol=1e-12, singular=False)
        assert res.converged
        assert np.allclose(A @ res.x, b, atol=1e-8)


class TestChebyshev:
    def test_exact_preconditioner_bounds(self, balanced_rhs):
        g = G.grid2d(6, 6)
        b = balanced_rhs(g)
        L = laplacian(g)
        P = dense_laplacian_pinv(L.toarray())
        x = chebyshev_iteration(L, lambda v: P @ v, b, 0.99, 1.01, 6)
        assert np.allclose(x, exact_solution(g, b), atol=1e-8)

    def test_constant_approx_preconditioner(self, balanced_rhs):
        # B = c * L^+ with spectrum {c}: Chebyshev with the right bounds
        # converges geometrically.
        g = G.cycle(10)
        b = balanced_rhs(g)
        L = laplacian(g)
        P = 0.7 * dense_laplacian_pinv(L.toarray())
        x = chebyshev_iteration(L, lambda v: P @ v, b, 0.5, 0.9, 25)
        xstar = exact_solution(g, b)
        assert np.linalg.norm(x - xstar) < 1e-6 * np.linalg.norm(xstar)

    def test_parameter_validation(self):
        g = G.path(3)
        L = laplacian(g)
        with pytest.raises(ValueError):
            chebyshev_iteration(L, lambda v: v, np.zeros(3), -1.0, 1.0, 5)
        with pytest.raises(ValueError):
            chebyshev_iteration(L, lambda v: v, np.zeros(3), 1.0, 1.0, 0)

    def test_single_iteration(self, balanced_rhs):
        g = G.path(5)
        b = balanced_rhs(g)
        L = laplacian(g)
        P = dense_laplacian_pinv(L.toarray())
        x = chebyshev_iteration(L, lambda v: P @ v, b, 1.0, 1.0, 1)
        assert np.allclose(x, exact_solution(g, b), atol=1e-8)
