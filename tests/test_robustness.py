"""Failure injection: the robustness mechanisms must actually fire."""

import numpy as np
import pytest

from repro import LaplacianSolver, practical_options
from repro.core.richardson import preconditioned_richardson
from repro.errors import ConvergenceError
from repro.graphs import generators as G
from repro.graphs.laplacian import apply_laplacian, laplacian
from repro.linalg.ops import relative_lnorm_error
from repro.linalg.pinv import dense_laplacian_pinv, exact_solution


class TestRichardsonDivergenceGuard:
    def test_guard_trips_on_bad_preconditioner(self):
        g = G.grid2d(6, 6)
        P = dense_laplacian_pinv(laplacian(g).toarray())
        bad = lambda v: 25.0 * (P @ v)  # noqa: E731  B ≈_{ln 25} L⁺ ≫ δ=1
        b = np.random.default_rng(0).standard_normal(g.n)
        b -= b.mean()
        with pytest.raises(ConvergenceError, match="diverged"):
            preconditioned_richardson(
                lambda v: apply_laplacian(g, v), bad, b,
                delta=1.0, eps=1e-6)

    def test_guard_quiet_on_good_preconditioner(self):
        g = G.grid2d(6, 6)
        P = dense_laplacian_pinv(laplacian(g).toarray())
        b = np.random.default_rng(1).standard_normal(g.n)
        b -= b.mean()
        res = preconditioned_richardson(
            lambda v: apply_laplacian(g, v), lambda v: P @ v, b,
            delta=1.0, eps=1e-8)
        assert np.isfinite(res.x).all()

    def test_guard_can_be_disabled(self):
        g = G.grid2d(5, 5)
        P = dense_laplacian_pinv(laplacian(g).toarray())
        bad = lambda v: 25.0 * (P @ v)  # noqa: E731
        b = np.random.default_rng(2).standard_normal(g.n)
        b -= b.mean()
        res = preconditioned_richardson(
            lambda v: apply_laplacian(g, v), bad, b, delta=1.0,
            eps=1e-2, divergence_guard=False)
        assert res.iterations >= 1  # ran to completion, however badly


class TestSolverFallback:
    def test_pcg_fallback_still_accurate(self, monkeypatch):
        g = G.grid2d(10, 10)
        solver = LaplacianSolver(g, options=practical_options(), seed=0)
        # Sabotage the preconditioner scale so Richardson (δ=1) diverges
        # while PCG (scale-invariant) still converges.
        true_apply = solver.preconditioner.apply
        monkeypatch.setattr(solver.preconditioner, "apply",
                            lambda b: 25.0 * true_apply(b))
        b = np.random.default_rng(3).standard_normal(g.n)
        b -= b.mean()
        rep = solver.solve_report(b, eps=1e-8)
        assert rep.method == "richardson->pcg"
        err = relative_lnorm_error(laplacian(g), rep.x,
                                   exact_solution(g, b))
        assert err <= 1e-6


class TestConnectivityCertificate:
    def test_bridge_graphs_survive_small_alpha(self):
        # Without the Fact 2.4 resampling, barbells at tiny α lose
        # their bridge with constant probability per level and the
        # solve silently fails (this was a real regression).
        g = G.barbell(60, 3)
        b = np.random.default_rng(4).standard_normal(g.n)
        b -= b.mean()
        for seed in range(3):
            solver = LaplacianSolver(g, options=practical_options(),
                                     seed=seed)
            x = solver.solve(b, eps=1e-6)
            err = relative_lnorm_error(laplacian(g), x,
                                       exact_solution(g, b))
            assert err <= 1e-6

    def test_chain_levels_stay_connected(self):
        from repro.graphs.validation import connected_components

        g = G.barbell(60, 3)
        solver = LaplacianSolver(g, options=practical_options(), seed=1)
        chain = solver.chain
        active = np.arange(g.n)
        for k, level in enumerate(chain.levels):
            sub, _ = chain.graphs[k + 1].induced_subgraph(level.C)
            assert int(connected_components(sub).max()) == 0


class TestWalkCap:
    def test_cap_produces_diagnostic(self):
        from repro.errors import SamplingError
        from repro.sampling.walks import WalkEngine

        g = G.path(300)
        is_term = np.zeros(g.n, dtype=bool)
        is_term[0] = True
        engine = WalkEngine(g, is_term)
        with pytest.raises(SamplingError, match="5-DD"):
            engine.run(np.array([g.n - 1]), seed=0, max_steps=5)
