"""Cross-module integration scenarios.

Each test exercises a realistic multi-component pipeline end-to-end:
the flows a downstream user of the library would actually run.
"""

import numpy as np
import pytest

from repro import (
    LaplacianSolver,
    approx_schur,
    default_options,
    generators as G,
    practical_options,
    use_ledger,
)
from repro.graphs.io import load_npz, save_npz
from repro.graphs.laplacian import laplacian
from repro.linalg.ops import relative_lnorm_error
from repro.linalg.pinv import exact_solution


class TestSolverPipelines:
    def test_factor_once_solve_many_with_ledger(self):
        """The IPM-style usage: one factorization, a stream of rhs,
        full cost accounting."""
        g = G.grid2d(14, 14)
        with use_ledger() as ledger:
            solver = LaplacianSolver(g, options=default_options(), seed=0)
            build_work = ledger.work
            rng = np.random.default_rng(0)
            for _ in range(3):
                b = rng.standard_normal(g.n)
                b -= b.mean()
                x = solver.solve(b, eps=1e-6)
                err = relative_lnorm_error(laplacian(g), x,
                                           exact_solution(g, b))
                assert err <= 1e-6
        # Builds dominate; solves are cheap relative to the build.
        solve_work = ledger.work - build_work
        assert solve_work > 0
        assert ledger.depth < ledger.work

    def test_round_trip_through_disk(self, tmp_path):
        """Persist a generated workload, reload, solve."""
        g = G.with_random_weights(G.torus2d(8, 8), 0.5, 2.0, seed=1)
        save_npz(g, tmp_path / "w.npz")
        h = load_npz(tmp_path / "w.npz")
        b = np.zeros(h.n)
        b[0], b[10] = 1, -1
        x = LaplacianSolver(h, options=practical_options(),
                            seed=2).solve(b, eps=1e-6)
        assert relative_lnorm_error(laplacian(g), x,
                                    exact_solution(g, b)) <= 1e-6

    def test_matrix_api_to_graph_api_consistency(self):
        """solve_laplacian(matrix) == LaplacianSolver(graph) given the
        same seed."""
        from repro import solve_laplacian

        g = G.grid2d(9, 9)
        b = np.zeros(g.n)
        b[0], b[-1] = 1, -1
        x1 = solve_laplacian(laplacian(g), b, eps=1e-6,
                             options=practical_options(), seed=5)
        x2 = LaplacianSolver(g, options=practical_options(),
                             seed=5).solve(b, eps=1e-6)
        assert np.allclose(x1, x2, atol=1e-5)


class TestSchurPipelines:
    def test_nested_elimination_consistency(self):
        """Eliminating A then B matches eliminating A∪B (approximately):
        Schur complements compose."""
        from repro.linalg.loewner import approximation_factor
        from repro.linalg.pinv import exact_schur_complement

        g = G.grid2d(6, 6)
        keep_final = np.arange(0, g.n, 4)
        # one-shot
        H1 = approx_schur(g, keep_final, eps=0.25, seed=0)
        L1 = laplacian(H1).toarray()[np.ix_(keep_final, keep_final)]
        SC = exact_schur_complement(laplacian(g).toarray(), keep_final)
        assert approximation_factor(L1, SC) <= 0.3

    def test_schur_then_solve(self):
        """Solve a boundary-only system via the sparsified Schur
        complement and compare with the full-graph solution restricted
        to the boundary (voltages on C given currents on C)."""
        g = G.grid2d(7, 7)
        C = np.arange(0, g.n, 3)
        H = approx_schur(g, C, eps=0.1, seed=1)
        sub, _ = H.induced_subgraph(C)
        from repro.graphs.validation import is_connected

        assert is_connected(sub)
        b_local = np.zeros(sub.n)
        b_local[0], b_local[-1] = 1.0, -1.0
        x_schur = LaplacianSolver(sub, options=practical_options(),
                                  seed=2).solve(b_local, eps=1e-8)
        # full-graph ground truth: inject currents at C vertices only
        b_full = np.zeros(g.n)
        b_full[C[0]], b_full[C[-1]] = 1.0, -1.0
        x_full = exact_solution(g, b_full)
        drop_schur = x_schur[0] - x_schur[-1]
        drop_full = x_full[C[0]] - x_full[C[-1]]
        assert drop_schur == pytest.approx(drop_full, rel=0.25)


class TestApplicationStacks:
    def test_resistance_oracle_consistent_with_solver(self):
        """Two independent paths to effective resistance agree."""
        from repro.apps import ResistanceOracle, effective_resistance

        g = G.grid2d(6, 6)
        oracle = ResistanceOracle(g, gamma=0.2,
                                  options=practical_options(), seed=0)
        direct = effective_resistance(g, 0, g.n - 1, eps=1e-8,
                                      options=practical_options(), seed=1)
        sketched = oracle.query(0, g.n - 1)
        assert sketched == pytest.approx(direct, rel=0.3)

    def test_partition_then_solve_subgraphs(self):
        """Spectral bisection then independent solves per side — the
        divide-and-conquer pattern."""
        from repro.apps import spectral_bisection

        g = G.dumbbell(5)
        side = spectral_bisection(g, options=practical_options(), seed=0)
        for mask in (side, ~side):
            ids = np.nonzero(mask)[0]
            sub, _ = g.induced_subgraph(ids)
            from repro.graphs.validation import is_connected

            if not is_connected(sub):
                continue  # median split may strand the bridge vertex
            b = np.zeros(sub.n)
            b[0] = 1.0
            b -= b.mean()
            x = LaplacianSolver(sub, options=practical_options(),
                                seed=1).solve(b, eps=1e-6)
            assert np.isfinite(x).all()

    def test_wilson_tree_weights_solver_weights_agree(self):
        """Spanning-tree marginals equal leverage scores: P[e ∈ T] =
        τ(e) — ties the sampler to the linear algebra."""
        from repro.apps import wilson_spanning_tree
        from repro.core.boundedness import leverage_scores

        g = G.cycle(6)
        tau = leverage_scores(g)
        counts = np.zeros(g.m)
        rng = np.random.default_rng(3)
        trials = 4000
        for _ in range(trials):
            counts[wilson_spanning_tree(g, seed=rng)] += 1
        marginals = counts / trials
        assert np.abs(marginals - tau).max() < 0.03
