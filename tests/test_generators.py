"""Graph generators: structure, sizes, connectivity, determinism."""

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graphs import generators as G
from repro.graphs.validation import is_connected


class TestDeterministicFamilies:
    def test_path(self):
        g = G.path(5)
        assert (g.n, g.m) == (5, 4)
        assert is_connected(g)

    def test_cycle(self):
        g = G.cycle(5)
        assert (g.n, g.m) == (5, 5)
        assert np.all(g.multi_degrees() == 2)

    def test_cycle_too_small(self):
        with pytest.raises(GraphStructureError):
            G.cycle(2)

    def test_complete(self):
        g = G.complete(6)
        assert g.m == 15
        assert np.all(g.multi_degrees() == 5)

    def test_star(self):
        g = G.star(7)
        deg = g.multi_degrees()
        assert deg[0] == 6
        assert np.all(deg[1:] == 1)

    def test_grid2d(self):
        g = G.grid2d(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # horizontal + vertical
        assert is_connected(g)

    def test_torus2d_regular(self):
        g = G.torus2d(4, 5)
        assert np.all(g.multi_degrees() == 4)
        assert is_connected(g)

    def test_grid3d(self):
        g = G.grid3d(2, 3, 4)
        assert g.n == 24
        assert is_connected(g)

    def test_binary_tree(self):
        g = G.binary_tree(3)
        assert g.n == 15
        assert g.m == 14
        assert is_connected(g)

    def test_barbell(self):
        g = G.barbell(5, 1)
        assert g.n == 10
        assert is_connected(g)
        # two K5's plus one bridge
        assert g.m == 2 * 10 + 1

    def test_barbell_long_bridge(self):
        g = G.barbell(4, 4)
        assert g.n == 2 * 4 + 3
        assert is_connected(g)

    def test_dumbbell(self):
        g = G.dumbbell(3)
        assert g.n == 18
        assert is_connected(g)

    def test_lollipop(self):
        g = G.lollipop(5, 4)
        assert g.n == 9
        assert is_connected(g)
        assert g.m == 10 + 4


class TestRandomFamilies:
    def test_erdos_renyi_connected(self):
        for seed in range(5):
            assert is_connected(G.erdos_renyi(50, 0.02, seed=seed))

    def test_erdos_renyi_simple(self):
        g = G.erdos_renyi(30, 0.3, seed=0)
        key = np.minimum(g.u, g.v) * g.n + np.maximum(g.u, g.v)
        assert np.unique(key).size == key.size

    def test_erdos_renyi_deterministic(self):
        assert G.erdos_renyi(30, 0.1, seed=7) == G.erdos_renyi(30, 0.1,
                                                               seed=7)

    def test_random_regular_degree(self):
        g = G.random_regular(20, 4, seed=0)
        assert np.all(g.multi_degrees() == 4)
        assert is_connected(g)

    def test_random_regular_parity_check(self):
        with pytest.raises(GraphStructureError, match="even"):
            G.random_regular(5, 3)

    def test_random_regular_d_too_large(self):
        with pytest.raises(GraphStructureError):
            G.random_regular(4, 5)

    def test_watts_strogatz(self):
        g = G.watts_strogatz(40, 4, 0.2, seed=1)
        assert is_connected(g)
        assert g.n == 40

    def test_watts_strogatz_bad_k(self):
        with pytest.raises(GraphStructureError):
            G.watts_strogatz(10, 3, 0.1)

    def test_preferential_attachment(self):
        g = G.preferential_attachment(50, 2, seed=3)
        assert is_connected(g)
        # hubs exist: max degree well above the minimum
        deg = g.multi_degrees()
        assert deg.max() >= 3 * max(1, deg.min())

    def test_random_bipartite_connected(self):
        g = G.random_bipartite(10, 15, 0.1, seed=2)
        assert is_connected(g)

    def test_random_bipartite_no_internal_edges(self):
        a, b = 8, 12
        g = G.random_bipartite(a, b, 0.3, seed=4)
        left_u = g.u < a
        left_v = g.v < a
        assert np.all(left_u != left_v)


class TestUtilities:
    def test_with_random_weights_range(self):
        g = G.with_random_weights(G.grid2d(4, 4), 0.5, 2.0, seed=0)
        assert g.w.min() >= 0.5
        assert g.w.max() <= 2.0

    def test_with_random_weights_log_uniform(self):
        g = G.with_random_weights(G.grid2d(5, 5), 0.01, 100.0, seed=0,
                                  log_uniform=True)
        assert g.w.min() >= 0.01
        assert g.w.max() <= 100.0

    def test_with_random_weights_validates(self):
        with pytest.raises(GraphStructureError):
            G.with_random_weights(G.path(3), -1.0, 2.0)

    def test_union_disjoint_disconnected(self):
        g = G.union_disjoint(G.path(3), G.path(4))
        assert g.n == 7
        assert not is_connected(g)

    def test_add_bridge_connects(self):
        g = G.union_disjoint(G.path(3), G.path(3))
        assert is_connected(G.add_bridge(g, 0, 5))
