"""Alias tables, row sampling, and the walk engine."""

import numpy as np
import pytest

from repro.errors import SamplingError
from repro.graphs import generators as G
from repro.graphs.multigraph import MultiGraph
from repro.sampling import AliasTable, RowSampler, WalkEngine


class TestAliasTable:
    def test_pmf_matches_weights(self, rng):
        w = rng.random(37) + 0.01
        table = AliasTable(w)
        assert np.allclose(table.pmf(), w / w.sum(), atol=1e-12)

    def test_pmf_with_zeros(self):
        w = np.array([0.0, 1.0, 0.0, 3.0])
        assert np.allclose(AliasTable(w).pmf(), [0, 0.25, 0, 0.75])

    def test_empirical_distribution(self):
        w = np.array([1.0, 4.0, 5.0])
        s = AliasTable(w).sample(200_000, seed=0)
        freq = np.bincount(s, minlength=3) / s.size
        assert np.allclose(freq, [0.1, 0.4, 0.5], atol=0.01)

    def test_single_item(self):
        assert np.all(AliasTable(np.array([2.0])).sample(10, seed=0) == 0)

    def test_zero_size_sample(self):
        assert AliasTable(np.array([1.0])).sample(0, seed=0).size == 0

    def test_rejects_bad_weights(self):
        with pytest.raises(SamplingError):
            AliasTable(np.array([]))
        with pytest.raises(SamplingError):
            AliasTable(np.array([-1.0, 2.0]))
        with pytest.raises(SamplingError):
            AliasTable(np.array([0.0, 0.0]))
        with pytest.raises(SamplingError):
            AliasTable(np.array([np.inf]))

    def test_rejects_negative_size(self):
        with pytest.raises(SamplingError):
            AliasTable(np.array([1.0])).sample(-1)

    def test_deterministic_given_seed(self):
        t = AliasTable(np.array([1.0, 2.0, 3.0]))
        assert np.array_equal(t.sample(100, seed=5), t.sample(100, seed=5))


class TestRowSampler:
    def test_slots_stay_in_row(self, zoo_graph, rng):
        adj = zoo_graph.adjacency()
        sampler = RowSampler(adj)
        rows = rng.integers(0, zoo_graph.n, size=2000)
        slots = sampler.sample(rows, seed=1)
        assert np.all(slots >= adj.indptr[rows])
        assert np.all(slots < adj.indptr[rows + 1])

    def test_row_totals_are_degrees(self, zoo_graph):
        sampler = RowSampler(zoo_graph.adjacency())
        assert np.allclose(sampler.row_totals(),
                           zoo_graph.weighted_degrees())

    def test_weight_proportional(self):
        # Star with very asymmetric weights from the centre.
        g = MultiGraph(4, [0, 0, 0], [1, 2, 3], [1.0, 1.0, 8.0])
        sampler = RowSampler(g.adjacency())
        slots = sampler.sample(np.zeros(100_000, dtype=np.int64), seed=2)
        picked = g.adjacency().neighbor[slots]
        freq = np.bincount(picked, minlength=4) / picked.size
        assert np.allclose(freq[[1, 2, 3]], [0.1, 0.1, 0.8], atol=0.01)

    def test_isolated_vertex_raises(self):
        g = MultiGraph(3, [0], [1], [1.0])
        sampler = RowSampler(g.adjacency())
        with pytest.raises(SamplingError):
            sampler.sample(np.array([2]), seed=0)


class TestWalkEngine:
    def test_walkers_end_on_terminals(self, zoo_graph, rng):
        is_term = np.zeros(zoo_graph.n, dtype=bool)
        is_term[rng.choice(zoo_graph.n, size=max(1, zoo_graph.n // 3),
                           replace=False)] = True
        engine = WalkEngine(zoo_graph, is_term)
        res = engine.run(np.arange(zoo_graph.n), seed=1)
        assert is_term[res.terminal].all()

    def test_start_on_terminal_is_trivial(self):
        g = G.path(5)
        is_term = np.array([True, False, False, False, True])
        res = WalkEngine(g, is_term).run(np.array([0, 4]), seed=0)
        assert res.terminal.tolist() == [0, 4]
        assert res.length.tolist() == [0, 0]
        assert np.allclose(res.resistance, 0.0)

    def test_resistance_accumulates(self):
        # Path 0-1-2 with terminal {0, 2}: a walker from 1 takes exactly
        # one step of resistance 1/w.
        g = MultiGraph(3, [0, 1], [1, 2], [2.0, 2.0])
        is_term = np.array([True, False, True])
        res = WalkEngine(g, is_term).run(np.full(1000, 1), seed=3)
        assert np.allclose(res.resistance, 0.5)
        assert np.all(res.length == 1)

    def test_max_steps_guard(self):
        # Terminal unreachable in few steps from a long path's far end.
        g = G.path(200)
        is_term = np.zeros(200, dtype=bool)
        is_term[0] = True
        with pytest.raises(SamplingError, match="exceeded"):
            WalkEngine(g, is_term).run(np.array([199]), seed=0,
                                       max_steps=3)

    def test_requires_nonempty_terminal(self):
        g = G.path(3)
        with pytest.raises(SamplingError):
            WalkEngine(g, np.zeros(3, dtype=bool))

    def test_terminal_mask_shape_checked(self):
        with pytest.raises(SamplingError):
            WalkEngine(G.path(3), np.zeros(5, dtype=bool))

    def test_hitting_distribution_path(self):
        # From the middle of a 3-path with equal weights, the walker
        # hits each end w.p. 1/2.
        g = G.path(3)
        is_term = np.array([True, False, True])
        res = WalkEngine(g, is_term).run(np.full(40_000, 1), seed=4)
        frac0 = float(np.mean(res.terminal == 0))
        assert abs(frac0 - 0.5) < 0.01

    def test_hitting_distribution_weighted(self):
        # Gambler's ruin with asymmetric conductances: from vertex 1 of
        # 0 -(3)- 1 -(1)- 2, P(hit 0) = 3/4.
        g = MultiGraph(3, [0, 1], [1, 2], [3.0, 1.0])
        is_term = np.array([True, False, True])
        res = WalkEngine(g, is_term).run(np.full(40_000, 1), seed=5)
        frac0 = float(np.mean(res.terminal == 0))
        assert abs(frac0 - 0.75) < 0.01

    def test_chunked_matches_semantics(self):
        g = G.grid2d(6, 6)
        is_term = np.zeros(g.n, dtype=bool)
        is_term[:6] = True
        engine = WalkEngine(g, is_term)
        res = engine.run_chunked(np.arange(g.n), seed=6, chunks=4)
        assert is_term[res.terminal].all()
        assert res.terminal.size == g.n

    def test_chunked_empty_input(self):
        g = G.path(3)
        is_term = np.array([True, False, True])
        res = WalkEngine(g, is_term).run_chunked(
            np.empty(0, dtype=np.int64), seed=0)
        assert res.terminal.size == 0
