"""BlockCholesky (Algorithm 1) — the five Theorem 3.9 guarantees."""

import numpy as np
import pytest

from repro.config import SolverOptions
from repro.core.block_cholesky import block_cholesky
from repro.core.boundedness import naive_split
from repro.core.dd_subset import verify_five_dd
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian
from repro.linalg.loewner import approximation_factor


def _chain(graph, alpha=0.25, seed=0, **opt_kwargs):
    opts = SolverOptions(min_vertices=20, **opt_kwargs)
    H = naive_split(graph, alpha)
    return H, block_cholesky(H, opts, seed=seed)


class TestTheorem39Invariants:
    def test_edge_counts_never_exceed_m(self):
        # Theorem 3.9-(1).
        for maker in (lambda: G.grid2d(10, 10),
                      lambda: G.random_regular(120, 4, seed=1),
                      lambda: G.erdos_renyi(100, 0.08, seed=2)):
            H, chain = _chain(maker())
            assert all(mk <= H.m_logical for mk in chain.edge_counts)

    def test_every_F_is_5dd_in_parent(self):
        # Theorem 3.9-(2).
        H, chain = _chain(G.grid2d(9, 9), seed=3)
        for k, level in enumerate(chain.levels):
            assert verify_five_dd(chain.graphs[k], level.F)

    def test_base_case_small(self):
        # Theorem 3.9-(3).
        H, chain = _chain(G.grid2d(10, 10))
        assert chain.final_active.size <= 20

    def test_level_count_logarithmic(self):
        # Theorem 3.9-(4): d <= log_{40/39} n.
        g = G.grid2d(12, 12)
        H, chain = _chain(g)
        assert chain.d <= np.log(g.n) / np.log(40.0 / 39.0) + 10

    def test_factorization_constant_approximation(self):
        # Theorem 3.9-(5): (U^d)^T D^d U^d ≈_{0.5} L.
        g = G.grid2d(8, 8)
        H, chain = _chain(g, alpha=0.1, seed=4)
        approx = chain.dense_factorization()
        eps = approximation_factor(approx, laplacian(g).toarray())
        assert eps <= 0.5

    @pytest.mark.parametrize("seed", range(4))
    def test_factorization_approximation_across_seeds(self, seed):
        g = G.random_regular(80, 4, seed=10)
        H, chain = _chain(g, alpha=0.1, seed=seed)
        eps = approximation_factor(chain.dense_factorization(),
                                   laplacian(g).toarray())
        assert eps <= 0.5


class TestChainStructure:
    def test_levels_partition_actives(self):
        H, chain = _chain(G.grid2d(8, 8))
        active = np.arange(H.n)
        for level in chain.levels:
            assert np.array_equal(np.union1d(level.F, level.C), active)
            assert np.intersect1d(level.F, level.C).size == 0
            active = level.C
        assert np.array_equal(active, chain.final_active)

    def test_positions_consistent(self):
        H, chain = _chain(G.grid2d(8, 8))
        parent = np.arange(H.n)
        for level in chain.levels:
            assert np.array_equal(parent[level.idxF], level.F)
            assert np.array_equal(parent[level.idxC], level.C)
            parent = level.C

    def test_active_counts_shrink(self):
        H, chain = _chain(G.grid2d(10, 10))
        counts = chain.active_counts
        assert all(b < a for a, b in zip(counts, counts[1:]))

    def test_jacobi_attached_with_paper_eps(self):
        H, chain = _chain(G.grid2d(8, 8))
        assert chain.jacobi_eps == pytest.approx(1.0 / (2 * chain.d))
        for level in chain.levels:
            assert level.jacobi is not None
            assert level.jacobi.eps == chain.jacobi_eps

    def test_jacobi_eps_override(self):
        H, chain = _chain(G.grid2d(8, 8), jacobi_eps=0.125)
        assert chain.jacobi_eps == 0.125

    def test_small_graph_no_levels(self):
        g = G.grid2d(4, 4)  # 16 < min_vertices
        chain = block_cholesky(g, SolverOptions(min_vertices=20), seed=0)
        assert chain.d == 0 or chain.levels == []
        # base-case pinv must still solve the whole system
        L = laplacian(g).toarray()
        assert np.allclose(chain.final_pinv, np.linalg.pinv(L), atol=1e-8)

    def test_summary_mentions_levels(self):
        H, chain = _chain(G.grid2d(8, 8))
        text = chain.summary()
        assert "level 1" in text
        assert "base case" in text

    def test_deterministic_given_seed(self):
        g = naive_split(G.grid2d(7, 7), 0.5)
        opts = SolverOptions(min_vertices=15)
        c1 = block_cholesky(g, opts, seed=123)
        c2 = block_cholesky(g, opts, seed=123)
        assert c1.d == c2.d
        assert all(a == b for a, b in zip(c1.graphs, c2.graphs))


class TestDenseFactorizationOracle:
    def test_no_levels_is_base_laplacian(self):
        g = G.grid2d(4, 4)
        chain = block_cholesky(g, SolverOptions(min_vertices=20), seed=0)
        assert np.allclose(chain.dense_factorization(),
                           laplacian(g).toarray())

    def test_factorization_is_laplacian_like(self):
        # symmetric PSD with the all-ones kernel
        H, chain = _chain(G.grid2d(7, 7), seed=1)
        A = chain.dense_factorization()
        assert np.allclose(A, A.T, atol=1e-9)
        assert np.abs(A @ np.ones(A.shape[0])).max() < 1e-8
        assert np.linalg.eigvalsh(A).min() > -1e-8
