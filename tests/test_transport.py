"""Hardened transport layer (ISSUE 10): frames, auth, leases.

Proves the wire contract of DESIGN.md §13 at three levels:

* **frame protocol** — CRC32-checksummed framed messages over a raw
  socket pair: round-trips (single- and multi-frame), corrupt-frame
  NAK + per-frame retransmission, dropped-frame ACK-timeout
  retransmission, bounded budgets (exhaustion ⇒
  :class:`TransportError`), heartbeat frames;
* **handshake** — mutual HMAC-SHA256 challenge/response: wrong keys
  and protocol-version mismatches are refused (and logged as
  ``auth_refused``) before any job bytes flow;
* **the pool** — lease-based scheduling through the real
  ``distributed`` backend: tcp-vs-shm payload bit-identity, frame
  faults (``drop``/``corrupt``/``delay``), worker-side ``disconnect``
  and ``stage=transport`` kill/hang with in-place worker replacement
  (no pool teardown), heartbeat-detected frozen workers, checkout
  capacity top-up after an external SIGKILL, and full reaping on
  shutdown.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time

import numpy as np
import pytest

from repro.errors import TransportError
from repro.pram import use_ledger
from repro.pram.executor import (
    ExecutionContext,
    RetryPolicy,
    live_distributed_workers,
    live_segment_names,
    shutdown_distributed_pools,
)
from repro.pram.faults import FaultLog, FaultPlan, use_fault_log, use_faults
from repro.pram.transport import (
    _AUTH,
    _CHALLENGE,
    _HELLO,
    _REFUSE,
    _plain_recv,
    _plain_send,
    Channel,
    MAX_RETRANSMITS,
    PROTOCOL_VERSION,
    TransportPool,
    client_handshake,
    default_ack_timeout,
    default_heartbeat_s,
    default_transport,
    default_transport_key,
    payload_fingerprint,
    server_handshake,
)

#: Fast retry policy for tests (no reason to sleep real backoffs).
FAST = RetryPolicy(max_attempts=3, base_delay=0.01)


def _square_task(arrays, meta, lo, hi, stream, ledger):
    """Module-level shipped task (pickled by reference over the wire):
    deterministic value + one charged region."""
    from repro.pram import charge, use_ledger as _use

    value = float((arrays["x"][lo:hi] ** 2).sum()) + meta["bias"]
    if stream is not None:
        value += float(stream.random())
    if ledger is not None:
        with _use(ledger):
            charge(hi - lo, 2.0, label="sq")
    return value


@pytest.fixture(autouse=True)
def _reap_pools():
    """Teardown: drop cached transport pools so worker-id counters,
    env-config snapshots, and worker processes never leak across
    tests."""
    yield
    shutdown_distributed_pools()


# ---------------------------------------------------------------------------
# fault grammar (transport extension)


class TestTransportGrammar:
    def test_parse_and_spec_roundtrip(self):
        text = ("drop:frame=0,corrupt:frame=2:attempt=*,"
                "disconnect:worker=1,delay:seconds=0.5,"
                "kill:chunk=1:stage=transport,"
                "hang:chunk=0:stage=transport:seconds=9")
        plan = FaultPlan.parse(text)
        reparsed = FaultPlan.parse(
            ",".join(d.spec() for d in plan.directives))
        assert reparsed == plan

    def test_frame_match_semantics(self):
        drop = FaultPlan.parse("drop:frame=2").directives[0]
        assert drop.matches_frame(frame=2, attempt=0)
        # Default attempt=0: never refires on the retransmission path.
        assert not drop.matches_frame(frame=2, attempt=1)
        assert not drop.matches_frame(frame=1, attempt=0)
        always = FaultPlan.parse("corrupt:frame=2:attempt=*").directives[0]
        assert always.matches_frame(frame=2, attempt=5)
        pinned = FaultPlan.parse("drop:frame=0:worker=1").directives[0]
        assert pinned.matches_frame(frame=0, attempt=0, worker=1)
        assert not pinned.matches_frame(frame=0, attempt=0, worker=2)
        # delay has no frame= selector: matches every outbound frame.
        delay = FaultPlan.parse("delay:seconds=0.1").directives[0]
        assert delay.matches_frame(frame=7, attempt=0)
        # kill/hang never match the frame hook.
        kill = FaultPlan.parse("kill:chunk=0").directives[0]
        assert not kill.matches_frame(frame=0, attempt=0)

    @pytest.mark.parametrize("bad", [
        "drop",                    # drop needs frame=
        "corrupt:worker=1",        # corrupt needs frame=
        "disconnect:frame=1",      # disconnect needs worker=
        "drop:frame=x",            # non-integer
        "delay:seconds=-1",
    ])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_directive_partition(self):
        plan = FaultPlan.parse(
            "drop:frame=0,corrupt:frame=1,delay:seconds=0.1,"
            "disconnect:worker=0,kill:chunk=1:stage=transport,"
            "hang:chunk=0:phase=transport,kill:chunk=2")
        assert [d.kind for d in plan.frame_directives()] == \
            ["drop", "corrupt", "delay"]
        assert [d.kind for d in plan.transport_directives()] == \
            ["disconnect", "kill", "hang"]
        # Transport-scope kill/hang never ship to pool workers ...
        ships = plan.chunk_directives(backend="distributed", phase="walk")
        assert [d.chunk for d in ships] == [2]
        # ... frame faults are invisible to the chunk filter too.
        assert all(d.kind in ("kill", "hang") for d in ships)


# ---------------------------------------------------------------------------
# env knobs


class TestEnvKnobs:
    def test_default_transport(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        assert default_transport() == "shm"
        monkeypatch.setenv("REPRO_TRANSPORT", "tcp")
        assert default_transport() == "tcp"
        monkeypatch.setenv("REPRO_TRANSPORT", "SHM")
        assert default_transport() == "shm"
        monkeypatch.setenv("REPRO_TRANSPORT", "udp")
        with pytest.raises(ValueError):
            default_transport()

    def test_default_transport_key(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT_KEY", raising=False)
        assert default_transport_key() is None
        monkeypatch.setenv("REPRO_TRANSPORT_KEY", "sesame")
        assert default_transport_key() == b"sesame"

    def test_default_heartbeat_s(self, monkeypatch):
        monkeypatch.delenv("REPRO_HEARTBEAT_S", raising=False)
        assert default_heartbeat_s() == 5.0
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "0")
        assert default_heartbeat_s() == 0.0  # disabled
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "-1")
        with pytest.raises(ValueError):
            default_heartbeat_s()

    def test_default_ack_timeout(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT_ACK_S", raising=False)
        assert default_ack_timeout() == 5.0
        monkeypatch.setenv("REPRO_TRANSPORT_ACK_S", "0.25")
        assert default_ack_timeout() == 0.25
        monkeypatch.setenv("REPRO_TRANSPORT_ACK_S", "0")
        with pytest.raises(ValueError):
            default_ack_timeout()


class TestPayloadFingerprint:
    def test_content_addressing(self):
        a = {"x": np.arange(5.0), "y": np.arange(3)}
        same = {"y": np.arange(3), "x": np.arange(5.0)}  # order-free
        assert payload_fingerprint(a) == payload_fingerprint(same)
        renamed = {"z": np.arange(5.0), "y": np.arange(3)}
        assert payload_fingerprint(a) != payload_fingerprint(renamed)
        cast = {"x": np.arange(5.0, dtype=np.float32),
                "y": np.arange(3)}
        assert payload_fingerprint(a) != payload_fingerprint(cast)
        bumped = {"x": np.arange(5.0) + 1e-16, "y": np.arange(3)}
        assert payload_fingerprint(a) == payload_fingerprint(bumped) \
            or not np.array_equal(a["x"], bumped["x"])


# ---------------------------------------------------------------------------
# the framed channel


def _chan_pair(ack_timeout=2.0):
    sa, sb = socket.socketpair()
    return (Channel(sa, peer=0, ack_timeout=ack_timeout),
            Channel(sb, peer=0, ack_timeout=ack_timeout))


def _recv_in_thread(chan, timeout=15.0):
    box: dict = {}

    def run():
        try:
            box["msg"] = chan.recv_msg(timeout=timeout)
        except BaseException as exc:  # noqa: BLE001 - captured for asserts
            box["exc"] = exc

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    return thread, box


class TestChannel:
    def test_round_trip_and_duplex(self):
        a, b = _chan_pair()
        thread, box = _recv_in_thread(b)
        a.send_msg({"hello": [1, 2, 3]})
        thread.join(15)
        assert box["msg"] == {"hello": [1, 2, 3]}
        # Other direction on the same sockets.
        thread, box = _recv_in_thread(a)
        b.send_msg(("reply", 7))
        thread.join(15)
        assert box["msg"] == ("reply", 7)
        a.close(), b.close()

    def test_multi_frame_message(self):
        a, b = _chan_pair()
        big = np.arange(400_000, dtype=np.float64)  # > 3 MB pickled
        thread, box = _recv_in_thread(b)
        a.send_msg(big)
        thread.join(30)
        np.testing.assert_array_equal(box["msg"], big)
        assert a._frames_sent >= 3  # really did span frames
        a.close(), b.close()

    def test_corrupt_frame_naked_and_resent(self):
        a, b = _chan_pair()
        a.log, b.log = FaultLog(), FaultLog()
        a.directives = FaultPlan.parse("corrupt:frame=0") \
            .frame_directives()
        thread, box = _recv_in_thread(b)
        a.send_msg("payload intact?")
        thread.join(15)
        assert box["msg"] == "payload intact?"
        assert a.log.count("inject") == 1  # the corruption
        assert a.log.count("nak") == 1     # the per-frame resend
        assert b.log.count("nak") == 1     # the receiver's rejection
        a.close(), b.close()

    def test_corrupt_every_attempt_exhausts(self):
        a, b = _chan_pair()
        a.directives = FaultPlan.parse("corrupt:frame=0:attempt=*") \
            .frame_directives()
        thread, box = _recv_in_thread(b)
        with pytest.raises(TransportError):
            a.send_msg("never arrives")
        thread.join(15)
        assert isinstance(box.get("exc"), TransportError)
        assert a.closed
        with pytest.raises(TransportError):
            a.send_msg("channel is dead")

    def test_dropped_frame_retransmits_on_ack_timeout(self):
        a, b = _chan_pair(ack_timeout=0.3)
        a.log = FaultLog()
        a.directives = FaultPlan.parse("drop:frame=0").frame_directives()
        thread, box = _recv_in_thread(b)
        t0 = time.monotonic()
        a.send_msg([9, 9, 9])
        thread.join(15)
        assert box["msg"] == [9, 9, 9]
        assert time.monotonic() - t0 >= 0.3  # waited out the ACK window
        assert a.log.count("inject") == 1
        assert a.log.count("retransmit") == 1
        a.close(), b.close()

    def test_delay_directive_slows_but_delivers(self):
        a, b = _chan_pair()
        a.log = FaultLog()
        a.directives = FaultPlan.parse("delay:seconds=0.05") \
            .frame_directives()
        thread, box = _recv_in_thread(b)
        t0 = time.monotonic()
        a.send_msg("late but intact")
        thread.join(15)
        assert box["msg"] == "late but intact"
        assert time.monotonic() - t0 >= 0.05
        assert a.log.count("inject") >= 1
        a.close(), b.close()

    def test_heartbeat_updates_last_heard(self):
        a, b = _chan_pair()
        b.last_heard = 0.0
        a.send_heartbeat()
        assert b.pump(time.monotonic() + 2.0)
        assert b.last_heard > 0.0
        assert not b.poll(0.0)  # heartbeats are not messages
        a.close(), b.close()

    def test_exhausted_retransmits_raise(self):
        a, b = _chan_pair(ack_timeout=0.05)
        a.directives = FaultPlan.parse("drop:frame=0:attempt=*") \
            .frame_directives()
        thread, box = _recv_in_thread(b, timeout=5.0)
        with pytest.raises(TransportError, match="unacknowledged"):
            a.send_msg("black hole")
        thread.join(15)
        assert MAX_RETRANSMITS == 3  # budget pinned by the docs


# ---------------------------------------------------------------------------
# the handshake


class TestHandshake:
    WELCOME = {"worker_id": 7, "heartbeat_s": 1.0, "ack_timeout": 2.0}

    def _serve(self, sock, key, log=None):
        box: dict = {}

        def run():
            box["ok"] = server_handshake(sock, key, self.WELCOME,
                                         log=log)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        return thread, box

    def test_mutual_auth_success(self):
        sa, sb = socket.socketpair()
        thread, box = self._serve(sa, b"secret")
        welcome = client_handshake(sb, b"secret")
        thread.join(15)
        assert box["ok"] is True
        assert welcome == self.WELCOME
        sa.close(), sb.close()

    def test_wrong_key_refused_both_ways(self):
        # Mutual auth: the client detects the impostor first (the
        # server's CHALLENGE proof fails), and the server logs the
        # refusal when the client walks away.
        sa, sb = socket.socketpair()
        log = FaultLog()
        thread, box = self._serve(sa, b"right", log=log)
        with pytest.raises(TransportError):
            client_handshake(sb, b"wrong")
        sb.close()
        thread.join(15)
        assert box["ok"] is False
        assert log.count("auth_refused") == 1

    def test_forged_client_proof_refused(self):
        # Raw-framed handshake: HELLO is a bare 16-byte nonce, AUTH a
        # bare 32-byte proof — no pickle ever crosses pre-auth.
        sa, sb = socket.socketpair()
        log = FaultLog()
        thread, box = self._serve(sa, b"secret", log=log)
        _plain_send(sb, _HELLO, os.urandom(16))
        _, ftype, _ = _plain_recv(sb)
        assert ftype == _CHALLENGE
        _plain_send(sb, _AUTH, os.urandom(32))  # right width, wrong key
        _, ftype, _ = _plain_recv(sb)
        assert ftype == _REFUSE
        thread.join(15)
        assert box["ok"] is False
        assert log.count("auth_refused") == 1
        assert "HMAC" in log.events[0].detail
        sa.close(), sb.close()

    def test_malformed_hello_refused_without_unpickling(self):
        # A pickle bomb in the HELLO payload is refused on width alone.
        sa, sb = socket.socketpair()
        log = FaultLog()
        thread, box = self._serve(sa, b"secret", log=log)
        _plain_send(sb, _HELLO, __import__("pickle").dumps(
            {"version": PROTOCOL_VERSION, "nonce": os.urandom(16)}))
        _, ftype, payload = _plain_recv(sb)
        assert ftype == _REFUSE
        assert "malformed HELLO" in payload.decode("utf-8")
        thread.join(15)
        assert box["ok"] is False
        assert log.count("auth_refused") == 1
        sa.close(), sb.close()

    def test_version_mismatch_refused(self):
        # The protocol version rides in the frame header.
        sa, sb = socket.socketpair()
        log = FaultLog()
        thread, box = self._serve(sa, b"secret", log=log)
        _plain_send(sb, _HELLO, os.urandom(16), version=99)
        _, ftype, payload = _plain_recv(sb)
        assert ftype == _REFUSE
        reason = payload.decode("utf-8")
        assert "version" in reason
        thread.join(15)
        assert box["ok"] is False
        assert log.count("auth_refused") == 1


# ---------------------------------------------------------------------------
# the pool (direct API)


class TestTransportPool:
    def test_spawn_kill_topup_shutdown(self):
        pool = TransportPool(2, heartbeat_s=0.0, ack_timeout=1.0)
        try:
            pids = pool.alive_pids()
            assert len(pids) == 2
            assert sorted(w.id for w in pool.workers) == [0, 1]
            os.kill(pids[0], signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while len(pool.alive_pids()) == 2 \
                    and time.monotonic() < deadline:
                time.sleep(0.02)
            # The checkout liveness check: retire the corpse, top up.
            assert pool.ensure_capacity() == 1
            assert len(pool.alive_pids()) == 2
            # Replacements get fresh (monotone) worker ids.
            assert max(w.id for w in pool.workers) == 2
        finally:
            pool.shutdown()
        assert pool.alive_pids() == ()
        assert pool.workers == []


# ---------------------------------------------------------------------------
# the distributed backend over the wire (integration)


class TestDistributedWire:
    """Fixed seed ⇒ bit-identical results and ledger totals across
    payload modes and under every transport fault kind — with worker
    replacement, never pool teardown."""

    def _run(self, monkeypatch, plan=None, transport="shm",
             policy=FAST):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_TRANSPORT", transport)
        monkeypatch.setenv("REPRO_TRANSPORT_ACK_S", "0.5")
        x = np.linspace(0.0, 3.0, 37)
        ctx = ExecutionContext(backend="distributed", chunk_items=8,
                               retry=policy)
        pieces = ctx.item_chunks(x.size)
        assert len(pieces) > 2
        rng = np.random.default_rng(5)
        with use_ledger() as ledger:
            with use_faults(plan), use_fault_log() as flog:
                out = ctx.run_shipped(_square_task, {"x": x},
                                      {"bias": 1.5}, pieces, rng=rng)
        return out, (ledger.work, ledger.depth), flog

    def test_fast_results_never_wait_for_retransmit(self, monkeypatch):
        # Regression: a result that lands during the job send's ACK
        # wait is pulled into Channel._rbuf, which select() cannot
        # see.  The scheduler must drain userspace buffers every
        # iteration — otherwise each such chunk stalls until the
        # worker's ACK-timeout retransmit (5 s default), turning a
        # sub-second round into minutes.
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.delenv("REPRO_TRANSPORT_ACK_S", raising=False)
        x = np.linspace(0.0, 3.0, 197)
        ctx = ExecutionContext(backend="distributed", chunk_items=8,
                               retry=FAST)
        pieces = ctx.item_chunks(x.size)
        assert len(pieces) >= 20
        start = time.monotonic()
        out = ctx.run_shipped(_square_task, {"x": x}, {"bias": 1.5},
                              pieces, rng=np.random.default_rng(5))
        elapsed = time.monotonic() - start
        assert len(out) == len(pieces)
        # Pre-fix this took >= one 5 s ACK cycle per couple of chunks
        # (~50 s here); post-fix the whole round is well under one.
        assert elapsed < 5.0, f"wire round stalled: {elapsed:.1f}s"

    def test_tcp_payloads_match_shm_bit_identical(self, monkeypatch):
        base, lbase, _ = self._run(monkeypatch, transport="shm")
        shutdown_distributed_pools()  # mode switch: fresh pool
        out, led, _ = self._run(monkeypatch, transport="tcp")
        assert out == base
        assert led == lbase
        # In-band payloads never touch /dev/shm.
        assert live_segment_names() == ()

    @pytest.mark.parametrize("plan, actions", [
        ("drop:frame=0", ("inject", "retransmit")),
        ("corrupt:frame=1", ("inject", "nak")),
        ("delay:seconds=0.01", ("inject",)),
    ])
    def test_frame_faults_are_invisible(self, monkeypatch, plan,
                                        actions):
        base, lbase, _ = self._run(monkeypatch)
        shutdown_distributed_pools()  # frame counters restart at 0
        out, led, flog = self._run(monkeypatch, plan=plan)
        assert out == base and led == lbase
        summary = flog.summary()
        for action in actions:
            assert summary.get(action, 0) >= 1, (plan, summary)
        assert summary.get("pool_rebuild", 0) == 0

    def test_disconnect_replaces_worker_in_place(self, monkeypatch):
        base, lbase, _ = self._run(monkeypatch)
        shutdown_distributed_pools()  # worker ids restart at 0
        out, led, flog = self._run(monkeypatch, plan="disconnect:worker=0")
        assert out == base and led == lbase
        summary = flog.summary()
        assert summary.get("worker_dead", 0) >= 1
        assert summary.get("worker_replace", 0) >= 1
        assert summary.get("retry", 0) >= 1
        assert summary.get("pool_rebuild", 0) == 0

    def test_transport_kill_replaces_worker(self, monkeypatch):
        base, lbase, _ = self._run(monkeypatch)
        out, led, flog = self._run(monkeypatch,
                                   plan="kill:chunk=1:stage=transport")
        assert out == base and led == lbase
        assert flog.count("worker_replace") >= 1
        assert flog.count("pool_rebuild") == 0

    @pytest.mark.parametrize("scope", ["stage", "phase"])
    def test_heartbeats_detect_frozen_worker(self, monkeypatch, scope):
        base, lbase, _ = self._run(monkeypatch)
        shutdown_distributed_pools()
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "0.2")
        # A 30s freeze with suspended heartbeats: no EOF, no lease
        # timeout (FAST has none) — only heartbeat monitoring can
        # detect it within the test's lifetime.  Both transport-scope
        # spellings must suspend heartbeats worker-side (the filter
        # mirrors FaultPlan.transport_directives).
        t0 = time.monotonic()
        out, led, flog = self._run(
            monkeypatch, plan=f"hang:chunk=0:{scope}=transport:seconds=30")
        assert time.monotonic() - t0 < 20.0
        assert out == base and led == lbase
        assert any("heartbeat" in e.detail for e in flog.events
                   if e.action == "worker_dead")
        assert flog.count("worker_replace") >= 1

    def test_checkout_survives_external_worker_death(self, monkeypatch):
        from repro.pram.executor import _dist_pool

        base, lbase, _ = self._run(monkeypatch)
        pool = _dist_pool(2)
        pids = pool.alive_pids()
        assert len(pids) == 2
        os.kill(pids[-1], signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while len(pool.alive_pids()) == 2 and time.monotonic() < deadline:
            time.sleep(0.02)
        # The cached pool is checked out again with a dead worker:
        # capacity must be topped up, not trusted (the rot fix).
        out, led, _ = self._run(monkeypatch)
        assert out == base and led == lbase
        assert len(_dist_pool(2).alive_pids()) == 2

    def test_config_drift_rebuilds_pool_at_checkout(self, monkeypatch):
        from repro.pram.executor import _dist_pool

        self._run(monkeypatch)
        monkeypatch.setenv("REPRO_WORKERS", "2")
        monkeypatch.setenv("REPRO_TRANSPORT_ACK_S", "0.5")
        first = _dist_pool(2)
        monkeypatch.setenv("REPRO_HEARTBEAT_S", "1.25")
        rebuilt = _dist_pool(2)
        assert rebuilt is not first
        assert rebuilt.heartbeat_s == 1.25

    def test_shutdown_reaps_every_worker(self, monkeypatch):
        self._run(monkeypatch)
        assert len(live_distributed_workers()) >= 1
        shutdown_distributed_pools()
        assert live_distributed_workers() == ()
        assert live_segment_names() == ()
