"""Service-level test suite: resident chain cache + micro-batched solves.

Re-proves the library's contracts at the service boundary
(DESIGN.md §12):

* **batching equivalence** — k concurrent single-RHS requests through
  the micro-batcher are bit-identical to one direct ``solve_many`` on
  the assembled block, across ``{serial, thread, process}`` backends
  and both samplers; sequential library ``solve(b)`` calls agree to
  solver tolerance (the blocked path's documented contract — see
  ``FREEZE_FACTOR`` in :mod:`repro.core.richardson`);
* **cache semantics** — canonical graph hashing, LRU eviction under a
  byte budget audited against ``CholeskyChain.nbytes``, single-flight
  concurrent builds, cached-vs-fresh-chain bit-identity;
* **fault isolation** — ``stage=serve`` kill/hang retries recover
  bit-identically; a nan-poisoned request degrades only its own
  column (``column_status``) while cohabiting requests in the same
  batch are untouched;
* **hygiene** — no leaked shared-memory segments after shutdown; env
  caches reset on server start and in test teardown.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import numpy as np
import pytest

from repro.config import default_options, practical_options, reset_env_caches
from repro.core.solver import LaplacianSolver
from repro.errors import DimensionMismatchError, ServiceError, \
    ServiceOverloadedError
from repro.graphs import generators as G
from repro.graphs.multigraph import MultiGraph
from repro.pram.executor import _env_caches, default_workers, \
    live_segment_names
from repro.pram.faults import FaultPlan, InjectedFault, split_serve_plan, \
    use_faults
from repro.serve import (
    ChainCache,
    SolverService,
    default_serve_breaker_cooldown_s,
    default_serve_breaker_fails,
    default_serve_cache_bytes,
    default_serve_max_batch,
    default_serve_max_pending,
    default_serve_window_ms,
    graph_fingerprint,
    solver_cache_key,
)
from repro.serve.http import default_serve_read_timeout_s

#: Generous gathering window for tests that must co-batch their
#: submissions regardless of scheduler jitter.
WINDOW_MS = 200.0


def _streaming(options=None):
    return (options or default_options()).with_(keep_graphs=False)


def _build_solver(graph, options=None, seed=0):
    return LaplacianSolver(graph, options=_streaming(options), seed=seed)


# ---------------------------------------------------------------------------
# canonical cache keys


class TestGraphKeys:
    def test_edge_order_permutation_hashes_identically(self):
        g = G.grid2d(5, 5)
        perm = np.random.default_rng(3).permutation(g.m)
        shuffled = MultiGraph(g.n, g.u[perm], g.v[perm], g.w[perm])
        assert graph_fingerprint(shuffled) == graph_fingerprint(g)

    def test_endpoint_orientation_hashes_identically(self):
        g = G.path(10)
        flipped = MultiGraph(g.n, g.v.copy(), g.u.copy(), g.w.copy())
        assert graph_fingerprint(flipped) == graph_fingerprint(g)

    def test_dtype_variants_hash_identically(self):
        g = G.cycle(12)
        narrow = MultiGraph(g.n,
                            g.u.astype(np.int32), g.v.astype(np.int32),
                            g.w.astype(np.float32))
        assert graph_fingerprint(narrow) == graph_fingerprint(g)

    def test_node_relabeling_hashes_distinctly(self):
        g = G.grid2d(5, 5)
        relabel = np.arange(g.n)
        relabel[[0, 1]] = [1, 0]
        relabeled = MultiGraph(g.n, relabel[g.u], relabel[g.v], g.w)
        assert graph_fingerprint(relabeled) != graph_fingerprint(g)

    def test_weights_hash_distinctly(self):
        g = G.path(10)
        heavier = MultiGraph(g.n, g.u, g.v, g.w * 2.0)
        assert graph_fingerprint(heavier) != graph_fingerprint(g)

    def test_mult_grouping_is_part_of_identity(self):
        # Two unit groups vs one mult=2 group have the same Laplacian
        # but different stored layouts, hence different walk
        # realisations — they must not share a chain.
        two_groups = MultiGraph(3, [0, 0, 1], [1, 1, 2],
                                [1.0, 1.0, 1.0])
        merged = MultiGraph(3, [0, 1], [1, 2], [2.0, 1.0],
                            mult=[2, 1])
        assert graph_fingerprint(two_groups) != graph_fingerprint(merged)
        # ...but an explicit all-ones mult is the same identity as None.
        explicit = MultiGraph(3, [0, 0, 1], [1, 1, 2],
                              [1.0, 1.0, 1.0], mult=[1, 1, 1])
        assert graph_fingerprint(explicit) == graph_fingerprint(two_groups)

    def test_seed_and_chain_options_change_the_key(self):
        g = G.grid2d(5, 5)
        base = solver_cache_key(g, default_options(), 0)
        assert solver_cache_key(g, default_options(), 1) != base
        assert solver_cache_key(g, practical_options(), 0) != base
        assert solver_cache_key(
            g, default_options().with_(min_vertices=50), 0) != base
        assert solver_cache_key(
            g, default_options().with_(chunk_columns=4), 0) != base

    def test_runtime_knobs_do_not_change_the_key(self):
        # The determinism contract (DESIGN.md §6) proves these
        # result-neutral, so clients differing only in them share a
        # resident chain.
        g = G.grid2d(5, 5)
        base = solver_cache_key(g, default_options(), 0)
        for variant in (default_options().with_(workers=3),
                        default_options().with_(backend="process"),
                        default_options().with_(retries=7),
                        default_options().with_(degrade=True),
                        default_options().with_(ship_solves=True),
                        default_options().with_(keep_graphs=False)):
            assert solver_cache_key(g, variant, 0) == base

    def test_sampler_resolution_changes_the_key(self):
        g = G.grid2d(5, 5)
        alias = solver_cache_key(
            g, default_options().with_(sampler="alias"), 0)
        bisect = solver_cache_key(
            g, default_options().with_(sampler="bisect"), 0)
        assert alias != bisect

    def test_solver_cache_key_method(self):
        g = G.grid2d(4, 4)
        opts = _streaming()
        solver = LaplacianSolver(g, options=opts, seed=0)
        assert solver.cache_key() == solver_cache_key(g, opts, 0)
        gen = LaplacianSolver(g, options=opts,
                              seed=np.random.default_rng(0))
        with pytest.raises(TypeError):
            gen.cache_key()


# ---------------------------------------------------------------------------
# cache semantics


class TestChainCache:
    def test_hit_miss_and_build_counts(self):
        g = G.path(20)
        cache = ChainCache(max_bytes=1 << 30)
        key = solver_cache_key(g, default_options(), 0)
        built = []

        def build():
            solver = _build_solver(g)
            built.append(solver)
            return solver

        first = cache.get_or_build(key, build)
        second = cache.get_or_build(key, build)
        assert first is second and len(built) == 1
        assert cache.builds == 1 and cache.misses == 1
        assert cache.hits == 1
        assert key in cache and len(cache) == 1

    def test_lru_eviction_audited_against_chain_nbytes(self):
        graphs = [G.path(30), G.grid2d(5, 5), G.cycle(40)]
        solvers = [_build_solver(g) for g in graphs]
        sizes = [s.chain.nbytes for s in solvers]
        keys = [solver_cache_key(g, default_options(), 0)
                for g in graphs]
        # Budget admits the first two chains but not all three.
        budget = sizes[0] + sizes[1] + sizes[2] - 1
        cache = ChainCache(max_bytes=budget)
        cache.get_or_build(keys[0], lambda: solvers[0])
        cache.get_or_build(keys[1], lambda: solvers[1])
        assert cache.total_bytes() == sizes[0] + sizes[1]
        # Touch key 0 so key 1 is the LRU entry...
        assert cache.get(keys[0]) is solvers[0]
        cache.get_or_build(keys[2], lambda: solvers[2])
        # ...and the third insert evicts exactly key 1.
        assert cache.keys() == (keys[0], keys[2])
        assert cache.evictions == 1
        assert cache.total_bytes() == sizes[0] + sizes[2] <= budget

    def test_oversized_single_entry_is_retained(self):
        g = G.path(25)
        cache = ChainCache(max_bytes=1)
        key = solver_cache_key(g, default_options(), 0)
        solver = cache.get_or_build(key, lambda: _build_solver(g))
        assert cache.get(key) is solver
        assert cache.evictions == 0

    def test_single_flight_concurrent_misses_build_once(self):
        g = G.grid2d(5, 5)
        cache = ChainCache(max_bytes=1 << 30)
        key = solver_cache_key(g, default_options(), 0)
        build_calls = []
        barrier = threading.Barrier(6)
        results = []

        def build():
            build_calls.append(1)
            time.sleep(0.05)  # widen the race window
            return _build_solver(g)

        def worker():
            barrier.wait()
            results.append(cache.get_or_build(key, build))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert len(build_calls) == 1 and cache.builds == 1
        assert len(results) == 6
        assert all(r is results[0] for r in results)

    def test_build_failure_propagates_and_is_not_cached(self):
        cache = ChainCache(max_bytes=1 << 30)
        calls = []

        def boom():
            calls.append(1)
            raise ValueError("injected build failure")

        with pytest.raises(ValueError):
            cache.get_or_build("k", boom)
        # A later miss retries (failures are not poisoned-cached).
        g = G.path(10)
        solver = cache.get_or_build("k", lambda: _build_solver(g))
        assert solver.n == g.n and len(calls) == 1

    def test_cached_vs_fresh_chain_solves_bit_identical(self):
        g = G.grid2d(6, 6)
        cache = ChainCache(max_bytes=1 << 30)
        key = solver_cache_key(g, default_options(), 0)
        cached = cache.get_or_build(key, lambda: _build_solver(g))
        fresh = _build_solver(g)
        assert cached.chain.payload_fingerprint() \
            == fresh.chain.payload_fingerprint()
        B = np.random.default_rng(7).normal(size=(g.n, 4))
        np.testing.assert_array_equal(cached.solve_many(B),
                                      fresh.solve_many(B))

    def test_close_releases_everything(self):
        g = G.path(15)
        cache = ChainCache(max_bytes=1 << 30)
        cache.get_or_build("k", lambda: _build_solver(g))
        cache.close()
        assert len(cache) == 0
        assert live_segment_names() == ()


# ---------------------------------------------------------------------------
# batching equivalence (backend × sampler matrix)


class TestBatchingEquivalence:
    K = 5

    @pytest.mark.parametrize("sampler", ["alias", "bisect"])
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_batched_bit_identical_to_direct_solve_many(
            self, backend, sampler):
        # n > min_vertices so the build actually walks (the sampler and
        # backend matter); chunk_columns=2 so the blocked solve fans
        # out column chunks through the chosen backend too.
        g = G.grid2d(12, 12)
        opts = practical_options(seed=0).with_(
            backend=backend, sampler=sampler, chunk_columns=2)
        with SolverService(options=opts, window_ms=WINDOW_MS) as svc:
            key = svc.register(g, seed=0)
            B = np.random.default_rng(5).normal(size=(g.n, self.K))
            futures = [svc.submit(key, B[:, i]) for i in range(self.K)]
            results = [f.result(timeout=120) for f in futures]
            # One batch, columns scattered in submission order.
            assert {r.batch_seq for r in results} == \
                {results[0].batch_seq}
            assert all(r.batched_k == self.K for r in results)
            X = np.stack([r.x for r in results], axis=1)
            solver = svc.cache.get(key)
            direct = solver.solve_many_report(B, eps=1e-6)
            np.testing.assert_array_equal(X, direct.x)
            assert [r.status for r in results] \
                == list(direct.column_status)
            assert [r.iterations for r in results] \
                == list(direct.per_column_iterations)

    def test_batched_matches_sequential_solves_to_tolerance(self):
        # Sequential solve(b) runs the 1-D scalar hot path (different
        # kernels, no freeze), so agreement is to solver tolerance —
        # the documented blocked-path contract — while both meet eps.
        g = G.grid2d(8, 8)
        with SolverService(window_ms=WINDOW_MS) as svc:
            key = svc.register(g, seed=0)
            B = np.random.default_rng(2).normal(size=(g.n, 4))
            futures = [svc.submit(key, B[:, i], eps=1e-8)
                       for i in range(4)]
            results = [f.result(timeout=60) for f in futures]
            solver = svc.cache.get(key)
        for i, r in enumerate(results):
            x_seq = solver.solve(B[:, i], eps=1e-8)
            np.testing.assert_allclose(r.x, x_seq, rtol=1e-6,
                                       atol=1e-9)
            assert r.residual_2norm < 1e-6

    def test_heterogeneous_eps_per_request(self):
        g = G.grid2d(8, 8)
        with SolverService(window_ms=WINDOW_MS) as svc:
            key = svc.register(g, seed=0)
            B = np.random.default_rng(3).normal(size=(g.n, 3))
            eps = [1e-4, 1e-8, 1e-6]
            futures = [svc.submit(key, B[:, i], eps=eps[i])
                       for i in range(3)]
            results = [f.result(timeout=60) for f in futures]
            assert all(r.batched_k == 3 for r in results)
            X = np.stack([r.x for r in results], axis=1)
            direct = svc.cache.get(key).solve_many(
                B, eps=np.array(eps))
        np.testing.assert_array_equal(X, direct)

    def test_single_request_is_a_batch_of_one(self):
        g = G.grid2d(6, 6)
        with SolverService(window_ms=20.0) as svc:
            key = svc.register(g, seed=0)
            b = np.random.default_rng(4).normal(size=g.n)
            r = svc.solve(key, b)
            assert r.batched_k == 1
            direct = svc.cache.get(key).solve_many(b[:, None])
        np.testing.assert_array_equal(r.x, direct[:, 0])

    def test_max_batch_flushes_before_the_window(self):
        g = G.grid2d(6, 6)
        # Window absurdly long: only the max-batch flush can finish.
        with SolverService(window_ms=60_000.0, max_batch=3) as svc:
            key = svc.register(g, seed=0)
            B = np.random.default_rng(6).normal(size=(g.n, 3))
            t0 = time.perf_counter()
            futures = [svc.submit(key, B[:, i]) for i in range(3)]
            results = [f.result(timeout=30) for f in futures]
            elapsed = time.perf_counter() - t0
        assert elapsed < 30.0
        assert all(r.batched_k == 3 for r in results)

    def test_methods_do_not_share_a_batch(self):
        g = G.grid2d(6, 6)
        with SolverService(window_ms=WINDOW_MS) as svc:
            key = svc.register(g, seed=0)
            b = np.random.default_rng(8).normal(size=g.n)
            f1 = svc.submit(key, b, method="richardson")
            f2 = svc.submit(key, b, method="pcg")
            r1, r2 = f1.result(60), f2.result(60)
        assert r1.batch_seq != r2.batch_seq
        assert r1.batched_k == r2.batched_k == 1
        assert r2.method == "pcg"

    def test_two_graphs_batch_separately(self):
        g1, g2 = G.grid2d(6, 6), G.path(30)
        with SolverService(window_ms=WINDOW_MS) as svc:
            k1 = svc.register(g1, seed=0)
            k2 = svc.register(g2, seed=0)
            assert k1 != k2
            b1 = np.random.default_rng(9).normal(size=g1.n)
            b2 = np.random.default_rng(10).normal(size=g2.n)
            f1 = svc.submit(k1, b1)
            f2 = svc.submit(k2, b2)
            r1, r2 = f1.result(60), f2.result(60)
        assert r1.batch_seq != r2.batch_seq
        assert r1.x.shape == (g1.n,) and r2.x.shape == (g2.n,)

    def test_eviction_then_request_rebuilds_transparently(self):
        g1, g2 = G.path(30), G.cycle(40)
        nb = _build_solver(g1).chain.nbytes
        # Budget below two chains: registering g2 evicts g1's chain.
        with SolverService(window_ms=20.0, cache_bytes=nb) as svc:
            k1 = svc.register(g1, seed=0)
            baseline = svc.solve(
                k1, np.random.default_rng(11).normal(size=g1.n))
            k2 = svc.register(g2, seed=0)
            assert svc.cache.keys() == (k2,)
            # The evicted key still serves: the retained spec rebuilds.
            again = svc.solve(
                k1, np.random.default_rng(11).normal(size=g1.n))
            assert svc.cache.builds == 3
        np.testing.assert_array_equal(again.x, baseline.x)

    def test_request_validation(self):
        g = G.grid2d(5, 5)
        with SolverService(window_ms=10.0) as svc:
            key = svc.register(g, seed=0)
            with pytest.raises(ServiceError):
                svc.solve("no-such-key",
                          np.zeros(g.n))
            with pytest.raises(DimensionMismatchError):
                svc.submit(key, np.zeros((g.n, 2)))
            bad = svc.submit(key, np.zeros(g.n + 1))
            with pytest.raises(DimensionMismatchError):
                bad.result(timeout=30)
        with pytest.raises(ServiceError):
            svc.submit(key, np.zeros(g.n))


# ---------------------------------------------------------------------------
# service-level fault injection


class TestServeFaults:
    def test_kill_retry_recovers_bit_identically(self):
        g = G.grid2d(6, 6)
        with SolverService(window_ms=20.0) as svc:
            key = svc.register(g, seed=0)
            b = np.random.default_rng(12).normal(size=g.n)
            clean = svc.solve(key, b)  # batch_seq 0
            with use_faults("kill:chunk=1:stage=serve"):
                faulted = svc.solve(key, b)  # batch_seq 1
            assert faulted.batch_seq == 1
            np.testing.assert_array_equal(faulted.x, clean.x)
            summary = svc.fault_log.summary()
        assert summary.get("inject") == 1
        assert summary.get("retry") == 1

    def test_hang_retry_recovers_bit_identically(self):
        g = G.grid2d(6, 6)
        with SolverService(window_ms=20.0) as svc:
            key = svc.register(g, seed=0)
            b = np.random.default_rng(13).normal(size=g.n)
            clean = svc.solve(key, b)
            with use_faults("hang:chunk=1:stage=serve:seconds=5"):
                t0 = time.perf_counter()
                faulted = svc.solve(key, b)
                elapsed = time.perf_counter() - t0
            # In-process hangs are capped to a bounded stall.
            assert elapsed < 5.0
            np.testing.assert_array_equal(faulted.x, clean.x)
            assert svc.fault_log.count("inject") == 1

    def test_kill_every_attempt_exhausts_the_whole_batch(self):
        g = G.grid2d(6, 6)
        with SolverService(window_ms=WINDOW_MS) as svc:
            key = svc.register(g, seed=0)
            B = np.random.default_rng(14).normal(size=(g.n, 3))
            with use_faults("kill:chunk=0:attempt=*:stage=serve"):
                futures = [svc.submit(key, B[:, i]) for i in range(3)]
            # Batch-level failure reaches every cohabiting caller.
            for f in futures:
                with pytest.raises(InjectedFault):
                    f.result(timeout=60)
            assert svc.fault_log.count("exhausted") == 1
            # The service survives: the directive pins batch 0 only.
            ok = svc.solve(key, B[:, 0])
            assert np.isfinite(ok.x).all()

    def test_nan_poisons_only_its_own_request(self):
        # Same workload as TestNumericalContainment in test_faults.py,
        # through the service: request 3 of a 6-wide batch is poisoned;
        # its column walks the escalation ladder while the cohabiting
        # five are bit-identical to the fault-free batch.
        g = G.grid2d(8, 8)
        opts = default_options().with_(chunk_columns=4)
        with SolverService(options=opts, window_ms=WINDOW_MS) as svc:
            key = svc.register(g, seed=0)
            B = np.random.default_rng(1).normal(size=(g.n, 6))
            futures = [svc.submit(key, B[:, i]) for i in range(6)]
            clean = [f.result(timeout=60) for f in futures]
            assert all(r.batched_k == 6 for r in clean)
            assert all(r.status == "richardson" for r in clean)
            with use_faults("nan:col=3:stage=serve"):
                futures = [svc.submit(key, B[:, i]) for i in range(6)]
            faulted = [f.result(timeout=60) for f in futures]
            summary = svc.fault_log.summary()
        assert all(r.batched_k == 6 for r in faulted)
        # The poisoned request alone degrades (nan at iter 0, re-fired
        # by the stage wildcard inside the escalation CG -> dense).
        assert faulted[3].status == "dense"
        assert np.isfinite(faulted[3].x).all()
        assert faulted[3].residual_2norm < 1e-6
        for i in (0, 1, 2, 4, 5):
            assert faulted[i].status == "richardson"
            np.testing.assert_array_equal(faulted[i].x, clean[i].x)
        assert summary.get("quarantine", 0) >= 1
        assert summary.get("escalate", 0) >= 1

    def test_serve_faults_compose_with_executor_faults(self):
        plan = FaultPlan.parse(
            "kill:chunk=0:stage=serve,nan:col=1:stage=serve,"
            "kill:chunk=2:phase=walk")
        serve, inner = split_serve_plan(plan)
        assert len(serve) == 1 and serve[0].kind == "kill"
        assert inner is not None and len(inner.directives) == 2
        kinds = {d.kind for d in inner.directives}
        assert kinds == {"nan", "kill"}
        nan = next(d for d in inner.directives if d.kind == "nan")
        assert nan.stage == "solve"  # rewritten for the kernels
        walk = next(d for d in inner.directives if d.kind == "kill")
        assert walk.phase == "walk"  # untouched pass-through
        assert split_serve_plan(None) == ((), None)

    def test_shm_hygiene_after_shutdown(self):
        # Shipped solves publish the chain payload through shared
        # memory; closing the service must unlink every segment.
        g = G.grid2d(6, 6)
        opts = default_options().with_(backend="process",
                                       ship_solves=True,
                                       chunk_columns=2)
        with SolverService(options=opts, window_ms=WINDOW_MS) as svc:
            key = svc.register(g, seed=0)
            B = np.random.default_rng(15).normal(size=(g.n, 4))
            futures = [svc.submit(key, B[:, i]) for i in range(4)]
            for f in futures:
                assert np.isfinite(f.result(timeout=120).x).all()
        assert live_segment_names() == ()


# ---------------------------------------------------------------------------
# env-cache reset (satellite fix)


class TestEnvCacheReset:
    def test_reset_clears_the_shared_cache_dict(self):
        default_workers()
        assert "REPRO_WORKERS" in _env_caches
        reset_env_caches()
        assert _env_caches == {}

    def test_reset_drops_stale_parse_results(self):
        # Simulate a poisoned entry (same raw env value, stale parse):
        # the raw-value check alone cannot catch this; reset can.
        real = default_workers()
        _env_caches["REPRO_WORKERS"] = (
            os.environ.get("REPRO_WORKERS"), real + 555)
        assert default_workers() == real + 555
        reset_env_caches()
        assert default_workers() == real

    def test_service_start_resets_env_caches(self):
        real = default_workers()
        _env_caches["REPRO_WORKERS"] = (
            os.environ.get("REPRO_WORKERS"), real + 555)
        svc = SolverService(window_ms=10.0)
        try:
            svc.start()
            assert default_workers() == real
        finally:
            svc.close()

    def test_serve_knobs_are_env_cached(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WINDOW_MS", "7.5")
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "9")
        monkeypatch.setenv("REPRO_SERVE_CACHE_BYTES", "12345")
        assert default_serve_window_ms() == 7.5
        assert default_serve_max_batch() == 9
        assert default_serve_cache_bytes() == 12345
        monkeypatch.setenv("REPRO_SERVE_WINDOW_MS", "oops")
        with pytest.raises(ValueError):
            default_serve_window_ms()
        monkeypatch.setenv("REPRO_SERVE_MAX_BATCH", "0")
        with pytest.raises(ValueError):
            default_serve_max_batch()
        monkeypatch.setenv("REPRO_SERVE_CACHE_BYTES", "-1")
        with pytest.raises(ValueError):
            default_serve_cache_bytes()


# ---------------------------------------------------------------------------
# HTTP front end


class TestServeHTTP:
    @staticmethod
    def _request(base, path, method="GET", payload=None):
        from repro.serve.http import http_request
        return http_request(base + path, method=method, payload=payload)

    def test_healthz_stats_and_errors(self):
        with SolverService(window_ms=20.0) as svc:
            host, port = svc.serve_http("127.0.0.1", 0)
            base = f"http://{host}:{port}"
            code, payload = self._request(base, "/healthz")
            assert code == 200 and payload["ok"] is True
            code, payload = self._request(base, "/stats")
            assert code == 200 and "cache" in payload
            code, payload = self._request(base, "/nope")
            assert code == 404
            code, payload = self._request(
                base, "/solve", method="POST",
                payload={"key": "missing", "source": 0, "sink": -1})
            assert code == 404 and "unknown graph key" in payload["error"]
            code, payload = self._request(
                base, "/graphs", method="POST", payload={"n": 3})
            assert code == 400

    def test_register_and_solve_round_trip(self):
        g = G.grid2d(6, 6)
        with SolverService(window_ms=20.0) as svc:
            svc.start()
            host, port = svc.serve_http("127.0.0.1", 0)
            base = f"http://{host}:{port}"
            code, reg = self._request(
                base, "/graphs", method="POST",
                payload={"n": g.n, "u": g.u.tolist(),
                         "v": g.v.tolist(), "w": g.w.tolist(),
                         "seed": 0})
            assert code == 200
            assert reg["n"] == g.n and reg["m"] == g.m
            assert reg["chain_nbytes"] > 0
            key = reg["key"]
            assert key == solver_cache_key(g, svc.options, 0)
            code, sol = self._request(
                base, "/solve", method="POST",
                payload={"key": key, "source": 0, "sink": -1})
            assert code == 200 and sol["status"] == "richardson"
            # JSON floats round-trip exactly (repr-based), so the HTTP
            # answer is bit-identical to the direct blocked solve.
            b = np.zeros(g.n)
            b[0], b[-1] = 1.0, -1.0
            direct = svc.cache.get(key).solve_many(b[:, None])
            np.testing.assert_array_equal(np.asarray(sol["x"]),
                                          direct[:, 0])

    def test_concurrent_http_requests_share_a_batch(self):
        g = G.grid2d(6, 6)
        with SolverService(window_ms=400.0) as svc:
            key = svc.register(g, seed=0)
            host, port = svc.serve_http("127.0.0.1", 0)
            base = f"http://{host}:{port}"
            results = [None, None]

            def call(i, source):
                results[i] = self._request(
                    base, "/solve", method="POST",
                    payload={"key": key, "source": source, "sink": -1})

            threads = [threading.Thread(target=call, args=(i, i))
                       for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        for code, payload in results:
            assert code == 200
            assert payload["batched_k"] == 2


# ---------------------------------------------------------------------------
# CLI: `repro serve` subprocess + `repro client`


class TestServeCLI:
    def test_serve_and_client_end_to_end(self, tmp_path):
        from repro.cli import main

        root = Path(__file__).resolve().parents[1]
        graph_path = tmp_path / "g.npz"
        assert main(["gen", "grid", str(graph_path), "--size", "5"]) == 0

        env = dict(os.environ)
        env["PYTHONPATH"] = str(root / "src") + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(graph_path),
             "--port", "0", "--window-ms", "10"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env, cwd=root)
        try:
            banner = {}

            def read_banner():
                banner["line"] = proc.stdout.readline()

            reader = threading.Thread(target=read_banner, daemon=True)
            reader.start()
            reader.join(timeout=90)
            line = banner.get("line", "")
            assert line.startswith("serving http://"), \
                f"no banner; stderr: {proc.stderr.read() if proc.poll() is not None else '(still running)'}"
            url = line.split()[1]
            key = line.split("key=")[1].split()[0]

            assert main(["client", url, "--stats"]) == 0
            out = tmp_path / "x.npy"
            assert main(["client", url, "--key", key, "--source", "0",
                         "--sink", "-1", "--output", str(out)]) == 0
            x = np.load(out)
            assert x.shape == (25,) and np.isfinite(x).all()
            # Unknown key surfaces the server's 404 as exit code 1.
            assert main(["client", url, "--key", "bogus"]) == 1
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc.kill()
                proc.wait(timeout=10)


# ---------------------------------------------------------------------------
# admission control + circuit breaker (ISSUE 10)


class TestAdmissionControl:
    def _occupy_budget(self, svc, key, b):
        """Submit one request and wait until it holds the budget."""
        future = svc.submit(key, b)
        deadline = time.monotonic() + 10.0
        while svc.stats()["admission"]["pending"] < 1 \
                and time.monotonic() < deadline:
            time.sleep(0.005)
        assert svc.stats()["admission"]["pending"] >= 1
        return future

    def test_burst_beyond_budget_is_shed(self):
        g = G.grid2d(6, 6)
        with SolverService(window_ms=500.0, max_pending=1) as svc:
            key = svc.register(g, seed=0)
            b = np.random.default_rng(20).normal(size=g.n)
            first = self._occupy_budget(svc, key, b)
            shed = svc.submit(key, b)
            with pytest.raises(ServiceOverloadedError) as err:
                shed.result(timeout=30)
            assert err.value.retry_after > 0
            # The in-budget request is untouched by the shedding.
            result = first.result(timeout=120)
            assert np.isfinite(result.x).all()
            assert svc.shed == 1
            assert svc.fault_log.count("shed") == 1
            stats = svc.stats()
            assert stats["admission"]["shed"] == 1
            assert stats["knobs"]["max_pending"] == 1

    def test_zero_budget_disables_shedding(self):
        g = G.grid2d(6, 6)
        with SolverService(window_ms=50.0, max_pending=0) as svc:
            key = svc.register(g, seed=0)
            B = np.random.default_rng(21).normal(size=(g.n, 4))
            futures = [svc.submit(key, B[:, i]) for i in range(4)]
            for f in futures:
                assert np.isfinite(f.result(timeout=120).x).all()
            assert svc.shed == 0

    def test_admission_knobs_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVE_MAX_PENDING", raising=False)
        assert default_serve_max_pending() == 256
        monkeypatch.setenv("REPRO_SERVE_MAX_PENDING", "7")
        assert default_serve_max_pending() == 7
        monkeypatch.setenv("REPRO_SERVE_MAX_PENDING", "0")
        assert default_serve_max_pending() == 0  # shedding off
        monkeypatch.setenv("REPRO_SERVE_MAX_PENDING", "-1")
        with pytest.raises(ValueError):
            default_serve_max_pending()

        monkeypatch.delenv("REPRO_SERVE_BREAKER_FAILS", raising=False)
        assert default_serve_breaker_fails() == 5
        monkeypatch.setenv("REPRO_SERVE_BREAKER_FAILS", "3")
        assert default_serve_breaker_fails() == 3
        monkeypatch.setenv("REPRO_SERVE_BREAKER_FAILS", "0")
        with pytest.raises(ValueError):
            default_serve_breaker_fails()

        monkeypatch.delenv("REPRO_SERVE_BREAKER_COOLDOWN_S",
                           raising=False)
        assert default_serve_breaker_cooldown_s() == 5.0
        monkeypatch.setenv("REPRO_SERVE_BREAKER_COOLDOWN_S", "1.5")
        assert default_serve_breaker_cooldown_s() == 1.5
        monkeypatch.setenv("REPRO_SERVE_BREAKER_COOLDOWN_S", "0")
        with pytest.raises(ValueError):
            default_serve_breaker_cooldown_s()

        monkeypatch.delenv("REPRO_SERVE_READ_TIMEOUT_S", raising=False)
        assert default_serve_read_timeout_s() == 30.0
        monkeypatch.setenv("REPRO_SERVE_READ_TIMEOUT_S", "2.5")
        assert default_serve_read_timeout_s() == 2.5
        monkeypatch.setenv("REPRO_SERVE_READ_TIMEOUT_S", "0")
        with pytest.raises(ValueError):
            default_serve_read_timeout_s()


class TestCircuitBreaker:
    def test_opens_fails_fast_and_recloses(self):
        g = G.grid2d(6, 6)
        with SolverService(window_ms=10.0, breaker_fails=2,
                           breaker_cooldown_s=0.4) as svc:
            key = svc.register(g, seed=0)
            b = np.random.default_rng(22).normal(size=g.n)
            # Batches 0 and 1 exhaust their retries: two consecutive
            # batch failures trip the breaker.
            with use_faults("kill:chunk=0:attempt=*:stage=serve,"
                            "kill:chunk=1:attempt=*:stage=serve"):
                for _ in range(2):
                    with pytest.raises(InjectedFault):
                        svc.solve(key, b)
            assert svc.breaker.state == "open"
            assert svc.fault_log.count("breaker_open") == 1
            # Open breaker: fail fast, no batch is even attempted.
            t0 = time.monotonic()
            with pytest.raises(ServiceOverloadedError) as err:
                svc.solve(key, b)
            assert time.monotonic() - t0 < 0.2
            assert err.value.retry_after > 0
            assert svc.fault_log.count("shed") == 1
            # After the cooldown the half-open probe (batch 2, no
            # directive pins it) succeeds and re-closes the breaker.
            time.sleep(0.45)
            result = svc.solve(key, b)
            assert np.isfinite(result.x).all()
            stats = svc.stats()
            assert stats["breaker"]["state"] == "closed"
            assert stats["breaker"]["opens"] == 1
            assert stats["breaker"]["consecutive_failures"] == 0
            assert svc.fault_log.count("breaker_close") == 1

    def test_failed_probe_reopens(self):
        g = G.grid2d(6, 6)
        with SolverService(window_ms=10.0, breaker_fails=1,
                           breaker_cooldown_s=0.3) as svc:
            key = svc.register(g, seed=0)
            b = np.random.default_rng(23).normal(size=g.n)
            with use_faults("kill:chunk=0:attempt=*:stage=serve,"
                            "kill:chunk=1:attempt=*:stage=serve"):
                with pytest.raises(InjectedFault):
                    svc.solve(key, b)  # batch 0: trips (threshold 1)
                assert svc.breaker.state == "open"
                time.sleep(0.35)
                # The half-open probe (batch 1) also dies: re-open.
                with pytest.raises(InjectedFault):
                    svc.solve(key, b)
            assert svc.breaker.state == "open"
            assert svc.breaker.opens == 2
            assert svc.fault_log.count("breaker_open") == 2
            time.sleep(0.35)
            result = svc.solve(key, b)  # clean probe: batch 2
            assert np.isfinite(result.x).all()
            assert svc.breaker.state == "closed"

    def test_probe_dying_pre_batch_releases_slot(self):
        # A half-open probe that fails before the batch path (unknown
        # key, bad shape) must free the probe slot — not strand
        # _probing=True and shed every later request forever.
        g = G.grid2d(6, 6)
        with SolverService(window_ms=10.0, breaker_fails=1,
                           breaker_cooldown_s=0.2) as svc:
            key = svc.register(g, seed=0)
            b = np.random.default_rng(24).normal(size=g.n)
            with use_faults("kill:chunk=0:attempt=*:stage=serve"):
                with pytest.raises(InjectedFault):
                    svc.solve(key, b)  # batch 0: trips (threshold 1)
            assert svc.breaker.state == "open"
            time.sleep(0.25)
            # Probe 1: dies resolving an unregistered key.
            with pytest.raises(ServiceError):
                svc.solve("no-such-key", b)
            assert svc.breaker.state == "half-open"
            # Probe 2: dies on a right-hand side of the wrong length.
            with pytest.raises(DimensionMismatchError):
                svc.solve(key, b[:-1])
            assert svc.breaker.state == "half-open"
            # Probe 3: clean request is admitted and re-closes.
            result = svc.solve(key, b)
            assert np.isfinite(result.x).all()
            assert svc.breaker.state == "closed"


# ---------------------------------------------------------------------------
# service lifecycle (close() regression) + HTTP hardening


class TestCloseLifecycle:
    def test_close_closes_loop_and_joins_thread(self):
        svc = SolverService(window_ms=10.0)
        svc.start()
        loop, thread = svc._loop, svc._thread
        svc.close()
        assert loop.is_closed()
        assert not thread.is_alive()
        svc.close()  # idempotent

    def test_close_before_start_is_a_noop(self):
        SolverService(window_ms=10.0).close()

    def test_close_closes_loop_with_inflight_request(self):
        # The regression: a drain that cannot finish cleanly must not
        # leak the loop.
        g = G.grid2d(6, 6)
        svc = SolverService(window_ms=5_000.0)  # window outlives close
        svc.start()
        key = svc.register(g, seed=0)
        b = np.random.default_rng(24).normal(size=g.n)
        svc.submit(key, b)  # parked in the gather window
        loop = svc._loop
        svc.close()
        assert loop.is_closed()


class TestHTTPHardening:
    def test_oversized_body_is_413_before_reading(self):
        with SolverService(window_ms=10.0) as svc:
            host, port = svc.serve_http("127.0.0.1", 0)
            with socket.create_connection((host, port)) as s:
                s.sendall(b"POST /solve HTTP/1.1\r\n"
                          b"Content-Length: 999999999999\r\n\r\n")
                s.settimeout(30)
                response = s.recv(65536)
        assert response.startswith(b"HTTP/1.1 413")

    def test_trickling_client_times_out_408(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_READ_TIMEOUT_S", "0.3")
        with SolverService(window_ms=10.0) as svc:
            host, port = svc.serve_http("127.0.0.1", 0)
            with socket.create_connection((host, port)) as s:
                s.sendall(b"POST /solve HT")  # never finishes the line
                s.settimeout(30)
                t0 = time.monotonic()
                response = s.recv(65536)
                elapsed = time.monotonic() - t0
        assert response.startswith(b"HTTP/1.1 408")
        assert 0.2 <= elapsed < 10.0

    def test_overload_maps_to_503_with_retry_after(self):
        g = G.grid2d(6, 6)
        with SolverService(window_ms=500.0, max_pending=1) as svc:
            key = svc.register(g, seed=0)
            host, port = svc.serve_http("127.0.0.1", 0)
            b = np.random.default_rng(25).normal(size=g.n)
            first = TestAdmissionControl()._occupy_budget(svc, key, b)
            request = urllib.request.Request(
                f"http://{host}:{port}/solve", method="POST",
                data=json.dumps({"key": key, "source": 0,
                                 "sink": -1}).encode(),
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=30)
            assert err.value.code == 503
            assert int(err.value.headers["Retry-After"]) >= 1
            body = json.loads(err.value.read().decode())
            assert body["retry_after"] > 0
            assert "overloaded" in body["error"]
            # The in-budget request still completes.
            assert np.isfinite(first.result(timeout=120).x).all()
