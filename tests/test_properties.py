"""Hypothesis property-based tests on core data structures & invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graphs.laplacian import apply_laplacian, laplacian
from repro.graphs.multigraph import MultiGraph
from repro.pram.executor import chunk_ranges
from repro.sampling.alias import AliasTable

SETTINGS = dict(deadline=None, max_examples=60,
                suppress_health_check=[HealthCheck.too_slow])


@st.composite
def multigraphs(draw, max_n=12, max_m=30, connected=False):
    """Random small multigraphs (optionally with a spanning path)."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0 if not connected else 1,
                         max_value=max_m))
    u = draw(st.lists(st.integers(0, n - 1), min_size=m, max_size=m))
    shift = draw(st.lists(st.integers(1, n - 1), min_size=m, max_size=m))
    v = [(a + s) % n for a, s in zip(u, shift)]
    w = draw(st.lists(
        st.floats(min_value=0.01, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        min_size=m, max_size=m))
    if connected:
        us = list(u) + list(range(n - 1))
        vs = list(v) + list(range(1, n))
        ws = list(w) + [1.0] * (n - 1)
        return MultiGraph(n, np.array(us), np.array(vs), np.array(ws))
    return MultiGraph(n, np.array(u, dtype=np.int64),
                      np.array(v, dtype=np.int64), np.array(w))


class TestMultigraphProperties:
    @given(multigraphs())
    @settings(**SETTINGS)
    def test_laplacian_rows_sum_to_zero(self, g):
        L = laplacian(g)
        assert np.abs(np.asarray(L.sum(axis=1))).max() < 1e-9 * max(
            1.0, g.w.sum())

    @given(multigraphs())
    @settings(**SETTINGS)
    def test_degrees_equal_laplacian_diagonal(self, g):
        assert np.allclose(g.weighted_degrees(),
                           laplacian(g).diagonal())

    @given(multigraphs())
    @settings(**SETTINGS)
    def test_adjacency_round_trip(self, g):
        from repro.graphs.conversions import adjacency_to_edge_list

        if g.m == 0:
            return
        back = adjacency_to_edge_list(g.n, g.adjacency())
        assert np.allclose(laplacian(back).toarray(),
                           laplacian(g).toarray())

    @given(multigraphs(), st.integers(0, 2 ** 31 - 1))
    @settings(**SETTINGS)
    def test_apply_matches_matrix(self, g, seed):
        x = np.random.default_rng(seed).standard_normal(g.n)
        assert np.allclose(apply_laplacian(g, x), laplacian(g) @ x,
                           atol=1e-7 * max(1.0, g.w.max(initial=1.0)))

    @given(multigraphs())
    @settings(**SETTINGS)
    def test_coalesce_preserves_laplacian_and_shrinks(self, g):
        h = g.coalesced()
        assert h.m <= g.m
        assert np.allclose(laplacian(h).toarray(),
                           laplacian(g).toarray(), atol=1e-9)

    @given(multigraphs(), st.floats(0.05, 1.0))
    @settings(**SETTINGS)
    def test_naive_split_preserves_laplacian(self, g, alpha):
        from repro.core.boundedness import naive_split

        h = naive_split(g, alpha)
        assert np.allclose(laplacian(h).toarray(),
                           laplacian(g).toarray(), atol=1e-9)

    @given(multigraphs(connected=True))
    @settings(**SETTINGS)
    def test_energy_nonnegative(self, g):
        x = np.linspace(-1, 1, g.n)
        assert float(x @ apply_laplacian(g, x)) >= -1e-9


class TestSchurProperties:
    @given(multigraphs(connected=True), st.integers(0, 2 ** 31 - 1))
    @settings(deadline=None, max_examples=25)
    def test_terminal_walks_edge_budget_and_support(self, g, seed):
        from repro.core.terminal_walks import terminal_walks

        rng = np.random.default_rng(seed)
        k = rng.integers(1, g.n)
        C = np.sort(rng.choice(g.n, size=k, replace=False))
        H = terminal_walks(g, C, seed=rng)
        assert H.m <= g.m
        in_C = np.zeros(g.n, dtype=bool)
        in_C[C] = True
        if H.m:
            assert in_C[H.u].all() and in_C[H.v].all()
            assert np.all(H.w > 0)

    @given(multigraphs(connected=True), st.integers(0, 2 ** 31 - 1))
    @settings(deadline=None, max_examples=20)
    def test_exact_schur_is_laplacian(self, g, seed):
        from repro.linalg.pinv import exact_schur_complement

        rng = np.random.default_rng(seed)
        k = rng.integers(1, g.n)
        C = np.sort(rng.choice(g.n, size=k, replace=False))
        SC = exact_schur_complement(laplacian(g).toarray(), C)
        assert np.abs(SC.sum(axis=1)).max() < 1e-6 * max(
            1.0, float(g.w.sum()))
        assert np.linalg.eigvalsh(SC).min() > -1e-7 * max(
            1.0, float(g.w.sum()))


class TestSamplingProperties:
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=64)
           .filter(lambda ws: sum(ws) > 0))
    @settings(**SETTINGS)
    def test_alias_pmf_matches_weights(self, ws):
        w = np.asarray(ws)
        table = AliasTable(w)
        assert np.allclose(table.pmf(), w / w.sum(), atol=1e-9)

    @given(st.integers(0, 500), st.integers(1, 32))
    @settings(**SETTINGS)
    def test_chunk_ranges_partition(self, n, chunks):
        pieces = chunk_ranges(n, chunks)
        covered = [i for lo, hi in pieces for i in range(lo, hi)]
        assert covered == list(range(n))
        assert all(hi > lo for lo, hi in pieces)


class TestSolverProperty:
    @given(st.integers(0, 2 ** 31 - 1))
    @settings(deadline=None, max_examples=8)
    def test_solver_meets_eps_on_random_instances(self, seed):
        from repro import LaplacianSolver, practical_options
        from repro.graphs import generators as G
        from repro.linalg.ops import relative_lnorm_error
        from repro.linalg.pinv import exact_solution

        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 120))
        g = G.erdos_renyi(n, 0.1, seed=int(rng.integers(0, 2 ** 31)))
        b = rng.standard_normal(g.n)
        b -= b.mean()
        solver = LaplacianSolver(g, options=practical_options(),
                                 seed=int(rng.integers(0, 2 ** 31)))
        x = solver.solve(b, eps=1e-5)
        err = relative_lnorm_error(laplacian(g), x, exact_solution(g, b))
        assert err <= 1e-5
