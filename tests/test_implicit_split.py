"""Implicit α-split multigraphs: equivalence with materialised splits.

Three contracts (see DESIGN.md):

1. ``naive_split`` with implicit multiplicities preserves the Laplacian
   *exactly* (bit-identical arrays — the stored totals are untouched)
   and its logical copies are α-bounded.
2. ``terminal_walks`` consuming an implicit split is statistically
   indistinguishable from the same walk on the materialised split:
   both are unbiased estimators of the same Schur complement, checked
   by comparing Monte-Carlo means under a fixed seed strategy.
3. ``WalkEngine`` compaction and CSR restriction are pure
   optimisations: for the same seed they produce bit-identical
   results to the uncompacted / unrestricted reference loops.
"""

import numpy as np
import pytest

from repro.core.boundedness import (
    is_alpha_bounded,
    leverage_scores,
    naive_split,
    split_counts_for_alpha,
)
from repro.core.schur import approx_schur
from repro.core.terminal_walks import terminal_walks
from repro.errors import SamplingError
from repro.graphs import generators as G
from repro.graphs.laplacian import laplacian
from repro.graphs.multigraph import MultiGraph
from repro.linalg.pinv import exact_schur_complement
from repro.sampling.walks import WalkEngine


class TestImplicitSplitExact:
    @pytest.mark.parametrize("alpha", [0.5, 0.25, 0.1])
    def test_laplacian_bit_identical(self, zoo_graph, alpha):
        H = naive_split(zoo_graph, alpha)
        L_G = laplacian(zoo_graph)
        L_H = laplacian(H)
        # Not just allclose: the split never touches the stored totals,
        # so the assembled Laplacians agree to the last bit.
        assert (L_H != L_G).nnz == 0

    def test_materialized_laplacian_matches(self, zoo_graph):
        H = naive_split(zoo_graph, 0.2)
        M = H.materialized()
        assert np.allclose(laplacian(M).toarray(),
                           laplacian(zoo_graph).toarray())

    @pytest.mark.parametrize("alpha", [0.5, 0.2])
    def test_implicit_split_alpha_bounded(self, zoo_graph, alpha):
        H = naive_split(zoo_graph, alpha)
        assert is_alpha_bounded(H, alpha)
        tau = leverage_scores(H)
        assert tau.shape == (H.m,)
        assert np.all(tau <= alpha + 1e-9)

    def test_per_copy_scores_match_materialized(self, zoo_graph):
        H = naive_split(zoo_graph, 0.25)
        tau_implicit = np.repeat(leverage_scores(H), H.multiplicities())
        tau_explicit = leverage_scores(H.materialized())
        assert np.allclose(tau_implicit, tau_explicit)

    def test_split_counts_consistency(self, zoo_graph):
        for alpha in (1.0, 0.5, 0.3, 0.05):
            H = naive_split(zoo_graph, alpha)
            k = split_counts_for_alpha(alpha)
            assert H.m_logical == k * zoo_graph.m

    def test_composed_splits_multiply(self):
        g = G.path(4)
        H = naive_split(naive_split(g, 0.5), 0.25)
        assert H.m_logical == 2 * 4 * g.m
        # materialize=True on an already-split graph must equal the
        # materialization of the implicit result (copies compose).
        mat = naive_split(naive_split(g, 0.5), 0.25, materialize=True)
        assert mat == H.materialized()
        assert np.allclose(mat.w, 1.0 / 8.0)

    def test_oversized_split_raises(self):
        from repro.errors import GraphStructureError

        g = naive_split(G.path(3), 1.0 / 70_000)
        with pytest.raises(GraphStructureError, match="int32"):
            naive_split(g, 1.0 / 70_000)

    def test_split_copies_rejects_nonpositive(self):
        from repro.errors import GraphStructureError

        g = G.path(3)
        with pytest.raises(GraphStructureError, match=">= 1"):
            g.split_copies(0)
        with pytest.raises(GraphStructureError, match=">= 1"):
            g.split_copies(np.array([1, 0]))

    def test_group_total_leverage_recoverable(self, zoo_graph):
        # Consumers that reweight whole groups (spectral_sparsify's
        # exact path) need w·R_eff = per-copy score × mult.
        H = naive_split(zoo_graph, 0.25)
        total = leverage_scores(H) * H.multiplicities()
        assert np.allclose(total, leverage_scores(zoo_graph))

    def test_sparsify_exact_leverage_on_implicit_split(self):
        from repro.core.sparsify import spectral_sparsify
        from repro.linalg.loewner import approximation_factor

        g = G.complete(14)
        H = naive_split(g, 0.25)
        S = spectral_sparsify(H, eps=0.5, exact_leverage=True, seed=0)
        LS = laplacian(S).toarray()
        assert approximation_factor(LS, laplacian(g).toarray()) <= 0.5

    def test_leverage_split_not_inflated_on_presplit_input(self):
        from repro.core.lev_est import leverage_split

        g = G.path(4)
        H = naive_split(g, 0.5)  # mult = 2, per-copy tau <= 0.5
        tau_total = np.full(H.m, 0.5)  # group-total overestimate
        out = leverage_split(H, alpha=0.25, tau_hat=tau_total)
        # Each existing copy carries tau 0.25 = alpha already: no
        # further splitting, so the logical count must not inflate.
        assert out.m_logical == H.m_logical

    def test_mult_threads_through_derived_graphs(self):
        g = G.grid2d(4, 4)
        H = naive_split(g, 0.25)
        mask = np.zeros(H.m, dtype=bool)
        mask[::2] = True
        sub = H.edge_subset(mask)
        assert np.all(sub.multiplicities() == 4)
        ind, _ = H.induced_subgraph(np.arange(8))
        assert np.all(ind.multiplicities() == 4)
        assert np.all(H.copy().multiplicities() == 4)
        assert H.copy() == H

    def test_coalesce_merges_logical_copies(self, zoo_graph):
        H = naive_split(zoo_graph, 0.25)
        flat = H.coalesced()
        assert flat.mult is None
        assert np.allclose(laplacian(flat).toarray(),
                           laplacian(zoo_graph).toarray())


class TestWalkEquivalence:
    """Implicit and materialised splits drive the same walk process."""

    def _mean_schur_laplacian(self, graph, C, trials, base_seed):
        acc = np.zeros((C.size, C.size))
        for t in range(trials):
            H = terminal_walks(graph, C, seed=base_seed + t)
            acc += laplacian(H).toarray()[np.ix_(C, C)]
        return acc / trials

    def test_statistical_match_implicit_vs_materialized(self):
        g = G.with_random_weights(G.grid2d(4, 4), 0.5, 2.0, seed=0)
        implicit = naive_split(g, 0.25)
        explicit = implicit.materialized()
        C = np.array([0, 3, 12, 15])
        SC = exact_schur_complement(laplacian(g).toarray(), C)
        trials = 2500
        mean_i = self._mean_schur_laplacian(implicit, C, trials, 10_000)
        mean_e = self._mean_schur_laplacian(explicit, C, trials, 50_000)
        scale = np.abs(SC).max()
        # Both estimators are unbiased for SC (Lemma 5.1), so their
        # Monte-Carlo means must agree with it — and each other —
        # within Monte-Carlo noise.
        assert np.abs(mean_i - SC).max() < 0.10 * scale
        assert np.abs(mean_e - SC).max() < 0.10 * scale
        assert np.abs(mean_i - mean_e).max() < 0.15 * scale

    def test_deterministic_outcomes_identical(self):
        # A 3-path with interior {1}: every walk outcome is forced, so
        # implicit and materialised splits agree exactly, per copy.
        g = MultiGraph(3, [0, 1], [1, 2], [2.0, 4.0])
        implicit = naive_split(g, 0.5)
        explicit = naive_split(g, 0.5, materialize=True)
        C = np.array([0, 2])
        Hi = terminal_walks(implicit, C, seed=1)
        He = terminal_walks(explicit, C, seed=2)
        # weight 1/(1/w_copy1 + 1/w_copy2) = 1/(1 + 1/2) = 2/3 for every
        # surviving copy, whichever representation produced it.
        assert np.allclose(np.sort(Hi.w), np.full(Hi.m, 2.0 / 3.0))
        assert np.allclose(np.sort(He.w), np.full(He.m, 2.0 / 3.0))
        assert Hi.m_logical <= implicit.m_logical
        assert He.m <= explicit.m

    def test_passthrough_preserves_groups(self):
        g = G.grid2d(3, 3)
        H = naive_split(g, 0.2)
        out = terminal_walks(H, np.arange(g.n), seed=0)
        # Everything is terminal: the graph passes through verbatim,
        # multiplicities included, and no walkers are launched.
        assert out == H
        _, stats = terminal_walks(H, np.arange(g.n), seed=0,
                                  return_stats=True)
        assert stats.walkers == 0
        assert stats.edges_in == stats.edges_out == H.m_logical

    def test_edge_budget_logical(self):
        g = G.grid2d(5, 5)
        H = naive_split(g, 0.25)
        C = np.arange(0, g.n, 2)
        for seed in range(3):
            out, stats = terminal_walks(H, C, seed=seed, return_stats=True)
            assert out.m_logical <= H.m_logical
            assert stats.edges_out + stats.self_loops_dropped \
                == stats.edges_in

    def test_legacy_requires_materialized(self):
        H = naive_split(G.grid2d(3, 3), 0.5)
        with pytest.raises(SamplingError, match="legacy"):
            terminal_walks(H, np.array([0, 1]), legacy=True)

    def test_legacy_matches_seed_semantics(self):
        g = G.grid2d(4, 4)
        C = np.arange(0, g.n, 2)
        H_new = terminal_walks(g, C, seed=9)
        H_old = terminal_walks(g, C, seed=9, legacy=True)
        # Different RNG consumption order (pass-through edges launch no
        # walkers in the new path), so compare distributional summaries.
        in_C = np.zeros(g.n, dtype=bool)
        in_C[C] = True
        for H in (H_new, H_old):
            assert in_C[H.u].all() and in_C[H.v].all()
            assert H.m <= g.m


class TestWalkEngineCompaction:
    def _engine_and_starts(self, seed=0):
        g = naive_split(G.with_random_weights(G.grid2d(6, 6), 0.5, 2.0,
                                              seed=3), 0.5)
        rng = np.random.default_rng(seed)
        is_term = np.zeros(g.n, dtype=bool)
        is_term[rng.choice(g.n, size=g.n // 2, replace=False)] = True
        starts = np.repeat(np.arange(g.n), 3)
        return g, is_term, starts

    @pytest.mark.parametrize("seed", range(4))
    def test_compacted_identical_to_reference(self, seed):
        g, is_term, starts = self._engine_and_starts(seed)
        engine = WalkEngine(g, is_term)
        a = engine.run(starts, seed=seed, compact=True)
        b = engine.run(starts, seed=seed, compact=False)
        assert np.array_equal(a.terminal, b.terminal)
        assert np.array_equal(a.length, b.length)
        assert np.allclose(a.resistance, b.resistance)
        assert a.rounds == b.rounds

    @pytest.mark.parametrize("seed", range(3))
    def test_restricted_csr_identical_to_full(self, seed):
        g, is_term, starts = self._engine_and_starts(seed)
        restricted = WalkEngine(g, is_term, restricted=True)
        full = WalkEngine(g, is_term, restricted=False)
        a = restricted.run(starts, seed=seed)
        b = full.run(starts, seed=seed)
        assert np.array_equal(a.terminal, b.terminal)
        assert np.array_equal(a.length, b.length)
        assert np.allclose(a.resistance, b.resistance)

    def test_restricted_rows_match_full_rows(self):
        g = G.with_random_weights(G.grid2d(5, 5), 0.1, 10.0, seed=1)
        mask = np.zeros(g.n, dtype=bool)
        mask[::3] = True
        full = g.adjacency()
        restr = g.adjacency_restricted(mask)
        for x in range(g.n):
            nbr_r, w_r, eid_r = restr.row(x)
            if not mask[x]:
                assert nbr_r.size == 0
                continue
            nbr_f, w_f, eid_f = full.row(x)
            assert np.array_equal(nbr_r, nbr_f)
            assert np.array_equal(w_r, w_f)
            assert np.array_equal(eid_r, eid_f)

    def test_mult_scales_traversed_resistance(self):
        # Path 0-1-2, terminal {0, 2}; walker from 1 crosses one copy:
        # its resistance must be mult/w, not 1/w.
        g = MultiGraph(3, [0, 1], [1, 2], [2.0, 2.0], mult=[4, 4])
        is_term = np.array([True, False, True])
        res = WalkEngine(g, is_term).run(np.full(500, 1), seed=0)
        assert np.allclose(res.resistance, 4.0 / 2.0)


class TestApproxSchurImplicit:
    def test_implicit_meets_eps_and_stays_compact(self):
        g = G.grid2d(7, 7)
        rng = np.random.default_rng(0)
        C = np.sort(rng.choice(g.n, size=16, replace=False))
        SC = exact_schur_complement(laplacian(g).toarray(), C)
        from repro.linalg.loewner import approximation_factor

        rep = approx_schur(g, C, eps=0.5, seed=3, return_report=True)
        LH = laplacian(rep.graph).toarray()[np.ix_(C, C)]
        assert approximation_factor(LH, SC) <= 0.5
        # The split level stores O(m) groups, not O(m/alpha) rows.
        assert rep.stored_edges_per_round[0] == g.m
        assert rep.edges_per_round[0] > g.m

    def test_legacy_mode_meets_eps(self):
        g = G.grid2d(6, 6)
        C = np.arange(0, g.n, 3)
        SC = exact_schur_complement(laplacian(g).toarray(), C)
        from repro.linalg.loewner import approximation_factor

        rep = approx_schur(g, C, eps=0.5, seed=4, return_report=True,
                           legacy=True)
        LH = laplacian(rep.graph).toarray()[np.ix_(C, C)]
        assert approximation_factor(LH, SC) <= 0.5
        # Legacy materialises the split: stored == logical everywhere.
        assert rep.stored_edges_per_round == rep.edges_per_round

    def test_peak_bytes_reported_smaller_for_implicit(self):
        g = G.grid2d(10, 10)
        C = np.arange(0, g.n, 3)
        imp = approx_schur(g, C, eps=0.5, seed=5, return_report=True)
        leg = approx_schur(g, C, eps=0.5, seed=5, return_report=True,
                           legacy=True)
        assert 0 < imp.peak_edge_bytes < leg.peak_edge_bytes
