"""ExecutionContext: determinism contract, incremental CSR, satellites.

The worker-invariance tests pin the PR-3 contract: for a fixed seed,
every chunked phase — walker stepping in ``approx_schur``, column-
blocked ``solve_many`` — produces bit-identical results for
``REPRO_WORKERS ∈ {1, 2, 4}``, because chunk layout and per-chunk RNG
streams are functions of problem size only.  The backend-matrix tests
extend that to the PR-4 contract: the same holds for
``REPRO_BACKEND ∈ {serial, thread, process}`` — including ledger
totals — and the process backend leaks no shared-memory segments after
solver teardown.  The incremental-CSR tests pin the other tentpole
invariant: the maintained restricted adjacency (and the interior
degree oracle it serves the 5DD scan from) equals a from-scratch
rebuild after every elimination round.
"""

import os

import numpy as np
import pytest

from repro.config import SolverOptions, default_options, practical_options
from repro.core.schur import approx_schur
from repro.core.solver import LaplacianSolver
from repro.graphs import generators as G
from repro.pram import use_ledger
from repro.pram.executor import (
    BACKENDS,
    DEFAULT_CHUNK_ITEMS,
    ExecutionContext,
    SharedPayload,
    _attach_payload,
    default_backend,
    default_workers,
    get_backend,
    live_segment_names,
)
from repro.sampling.inc_csr import IncrementalWalkCSR


def _square_task(arrays, meta, lo, hi, stream, ledger):
    """Module-level shipped task (pickled by reference under the
    process backend): deterministic value + one charged region."""
    from repro.pram import charge, use_ledger as _use

    value = float((arrays["x"][lo:hi] ** 2).sum()) + meta["bias"]
    if stream is not None:
        value += float(stream.random())
    if ledger is not None:
        with _use(ledger):
            charge(hi - lo, 2.0, label="sq")
    return value


def _fail_task(arrays, meta, lo, hi, stream, ledger):
    from repro.pram import charge, use_ledger as _use

    if ledger is not None:
        with _use(ledger):
            charge(hi - lo, 1.0, label="chunk")
    if lo >= meta["fail_from"]:
        raise ValueError(f"boom {lo}")
    return lo


class TestExecutionContext:
    def test_chunk_layout_ignores_workers(self):
        n = 10 * DEFAULT_CHUNK_ITEMS + 17
        layouts = [ExecutionContext(workers=w).item_chunks(n)
                   for w in (1, 2, 4, 32)]
        assert all(lay == layouts[0] for lay in layouts)
        covered = [i for lo, hi in layouts[0] for i in range(lo, hi)]
        assert covered[0] == 0 and covered[-1] == n - 1
        assert len(covered) == n

    def test_column_chunks_cover(self):
        ctx = ExecutionContext(chunk_columns=4)
        pieces = ctx.column_chunks(11)
        assert pieces[0][0] == 0 and pieces[-1][1] == 11
        assert len(pieces) == 3

    def test_max_chunks_cap(self):
        ctx = ExecutionContext(chunk_items=1, max_chunks=8)
        assert len(ctx.item_chunks(1000)) == 8

    def test_lazy_worker_resolution(self, monkeypatch):
        ctx = ExecutionContext()  # workers=None: consult env per call
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert ctx.resolve_workers() == 3
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert ctx.resolve_workers() == 5

    def test_explicit_workers_win(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert ExecutionContext(workers=2).resolve_workers() == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionContext(chunk_items=0)
        with pytest.raises(ValueError):
            ExecutionContext(workers=0)

    def test_run_chunks_spawns_deterministic_streams(self):
        ctx = ExecutionContext(chunk_items=10)
        pieces = ctx.item_chunks(35)

        def draws(seed):
            rng = np.random.default_rng(seed)
            return ctx.run_chunks(
                lambda lo, hi, stream: stream.random(hi - lo), pieces,
                rng=rng)

        a, b = draws(9), draws(9)
        for xa, xb in zip(a, b):
            np.testing.assert_array_equal(xa, xb)

    def test_run_chunks_ledger_fork_join(self):
        from repro.pram import charge

        ctx = ExecutionContext(chunk_items=5)
        pieces = ctx.item_chunks(20)

        def one(lo, hi):
            charge(hi - lo, 3.0, label="chunk_work")
            return hi - lo

        with use_ledger() as ledger:
            ctx.run_chunks(one, pieces)
        assert ledger.work == 20          # works add across branches
        assert ledger.depth == 3.0        # depths max at the join
        assert ledger.by_label["chunk_work"].work == 20


class TestDefaultWorkersCache:
    def test_monkeypatched_env_is_seen(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert default_workers() == 2
        monkeypatch.setenv("REPRO_WORKERS", "6")
        assert default_workers() == 6
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_workers() >= 1

    def test_repeat_lookup_is_cached(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_workers() == 4
        from repro.pram import executor

        assert executor._env_caches["REPRO_WORKERS"] == ("4", 4)


class TestWorkerInvariance:
    """Same seed ⇒ bit-identical results for REPRO_WORKERS ∈ {1, 2, 4}."""

    def _schur(self, monkeypatch, workers: int):
        monkeypatch.setenv("REPRO_WORKERS", str(workers))
        g = G.grid2d(14, 14)
        C = np.arange(0, g.n, 3)
        return approx_schur(g, C, eps=0.5, seed=123)

    def test_approx_schur_bit_identical(self, monkeypatch):
        base = self._schur(monkeypatch, 1)
        for w in (2, 4):
            other = self._schur(monkeypatch, w)
            assert other == base  # array-level equality, order included

    def test_solve_many_bit_identical(self, monkeypatch):
        g = G.grid2d(12, 12)
        rng = np.random.default_rng(7)
        B = rng.standard_normal((g.n, 9))
        B -= B.mean(axis=0)

        def solutions(workers):
            monkeypatch.setenv("REPRO_WORKERS", str(workers))
            solver = LaplacianSolver(g, options=practical_options(),
                                     seed=11)
            return solver.solve_many(B, eps=1e-6)

        base = solutions(1)
        for w in (2, 4):
            np.testing.assert_array_equal(solutions(w), base)

    def test_block_cholesky_chain_invariant(self, monkeypatch):
        g = G.grid2d(12, 12)

        def chain_pinv(workers):
            monkeypatch.setenv("REPRO_WORKERS", str(workers))
            solver = LaplacianSolver(g, options=practical_options(),
                                     seed=5)
            return solver.chain.final_pinv

        base = chain_pinv(1)
        for w in (2, 4):
            np.testing.assert_array_equal(chain_pinv(w), base)

    def test_ledger_totals_invariant(self, monkeypatch):
        g = G.grid2d(10, 10)
        C = np.arange(0, g.n, 2)

        def totals(workers):
            monkeypatch.setenv("REPRO_WORKERS", str(workers))
            with use_ledger() as ledger:
                approx_schur(g, C, eps=0.5, seed=3)
            return ledger.work, ledger.depth

        assert totals(1) == totals(2) == totals(4)


class TestExecutionBackends:
    """Unit surface of the backend layer itself."""

    def test_default_backend_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert default_backend() == "thread"
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert default_backend() == "process"
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert default_backend() == "serial"

    def test_default_backend_rejects_typos(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "porcess")
        with pytest.raises(ValueError):
            default_backend()

    def test_context_backend_validation(self):
        with pytest.raises(ValueError):
            ExecutionContext(backend="bogus")
        for name in BACKENDS:
            assert ExecutionContext(backend=name).resolve_backend() == name

    def test_get_backend_singletons(self):
        for name in BACKENDS:
            assert get_backend(name) is get_backend(name)
            assert get_backend(name).name == name
        with pytest.raises(ValueError):
            get_backend("nope")

    def test_shared_payload_roundtrip(self):
        arrays = {"a": np.arange(7.0),
                  "empty": np.empty(0, dtype=np.int64),
                  "mask": np.array([[True, False], [False, True],
                                    [True, True]]),
                  "ints": np.arange(5, dtype=np.int32)}
        payload = SharedPayload(arrays)
        try:
            assert payload.spec[0] in live_segment_names()
            got = _attach_payload(payload.spec)
            for key, want in arrays.items():
                np.testing.assert_array_equal(got[key], want)
                assert got[key].dtype == want.dtype
            assert not got["a"].flags.writeable
        finally:
            payload.close()
        assert payload.spec[0] not in live_segment_names()
        payload.close()  # idempotent

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_shipped_matches_serial(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        x = np.linspace(0.0, 3.0, 37)
        ctx = ExecutionContext(backend=backend, chunk_items=8)
        pieces = ctx.item_chunks(x.size)
        assert len(pieces) > 1

        def run():
            rng = np.random.default_rng(5)
            with use_ledger() as ledger:
                out = ctx.run_shipped(_square_task, {"x": x},
                                      {"bias": 1.5}, pieces, rng=rng)
            return out, ledger.work, ledger.depth, \
                ledger.by_label["sq"].work

        base_ctx = ExecutionContext(backend="serial", chunk_items=8)
        rng = np.random.default_rng(5)
        with use_ledger() as base_ledger:
            base = base_ctx.run_shipped(_square_task, {"x": x},
                                        {"bias": 1.5}, pieces, rng=rng)
        out, work, depth, sq = run()
        assert out == base
        assert (work, depth) == (base_ledger.work, base_ledger.depth)
        assert sq == base_ledger.by_label["sq"].work
        assert depth == 2.0  # fork/join: depths max, not add

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_run_shipped_raises_lowest_index_error(self, backend,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        ctx = ExecutionContext(backend=backend, chunk_items=4)
        pieces = ctx.item_chunks(20)
        fail_from = pieces[2][0]
        with use_ledger() as ledger:
            with pytest.raises(ValueError, match=f"boom {fail_from}"):
                ctx.run_shipped(_fail_task, {"x": np.zeros(1)},
                                {"fail_from": fail_from}, pieces)
        # Every chunk ran and charged before the deterministic re-raise.
        assert ledger.by_label["chunk"].work == 20


class TestBackendMatrix:
    """ISSUE 4 acceptance: fixed seed ⇒ bit-identical solutions and
    ledger totals for ``REPRO_BACKEND ∈ {serial, thread, process}`` at
    ``REPRO_WORKERS ∈ {1, 2, 4}`` — and no leaked shared memory."""

    WORKER_COUNTS = (1, 2, 4)

    @staticmethod
    def _opts() -> SolverOptions:
        # Small walker chunks so every backend genuinely fans out (the
        # process backend ships only multi-chunk dispatches).  The
        # chunk policy is part of the result, so it is held fixed
        # across the whole matrix.
        return default_options().with_(chunk_items=512)

    def _schur(self, monkeypatch, backend: str, workers: int):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        monkeypatch.setenv("REPRO_WORKERS", str(workers))
        g = G.grid2d(14, 14)
        C = np.arange(0, g.n, 3)
        return approx_schur(g, C, eps=0.5, seed=123, options=self._opts())

    def test_approx_schur_backend_matrix_bit_identical(self, monkeypatch):
        base = self._schur(monkeypatch, "serial", 1)
        for backend in BACKENDS:
            for workers in self.WORKER_COUNTS:
                other = self._schur(monkeypatch, backend, workers)
                assert other == base, (backend, workers)

    def test_ledger_totals_backend_invariant(self, monkeypatch):
        g = G.grid2d(10, 10)
        C = np.arange(0, g.n, 2)

        def totals(backend, workers):
            monkeypatch.setenv("REPRO_BACKEND", backend)
            monkeypatch.setenv("REPRO_WORKERS", str(workers))
            with use_ledger() as ledger:
                approx_schur(g, C, eps=0.5, seed=3, options=self._opts())
            return ledger.work, ledger.depth

        base = totals("serial", 1)
        for backend in BACKENDS:
            for workers in self.WORKER_COUNTS:
                assert totals(backend, workers) == base, (backend, workers)

    def test_approx_schur_backend_matrix_with_coalesce(self, monkeypatch):
        # The determinism matrix holds per fixed coalesce setting too:
        # coalescing happens store-side, after the (backend-invariant)
        # walk realisation, so the flag cannot reintroduce
        # backend/worker dependence.
        opts = self._opts().with_(coalesce_emitted=True)

        def schur(backend, workers):
            monkeypatch.setenv("REPRO_BACKEND", backend)
            monkeypatch.setenv("REPRO_WORKERS", str(workers))
            g = G.grid2d(14, 14)
            C = np.arange(0, g.n, 3)
            return approx_schur(g, C, eps=0.5, seed=123, options=opts)

        base = schur("serial", 1)
        for backend in BACKENDS:
            for workers in self.WORKER_COUNTS:
                assert schur(backend, workers) == base, (backend, workers)

    def test_solve_many_backend_invariant(self, monkeypatch):
        g = G.grid2d(12, 12)
        rng = np.random.default_rng(7)
        B = rng.standard_normal((g.n, 9))
        B -= B.mean(axis=0)
        opts = practical_options().with_(chunk_items=512)

        def solutions(backend, workers):
            monkeypatch.setenv("REPRO_BACKEND", backend)
            monkeypatch.setenv("REPRO_WORKERS", str(workers))
            solver = LaplacianSolver(g, options=opts, seed=11)
            return solver.solve_many(B, eps=1e-6)

        base = solutions("serial", 1)
        for backend in BACKENDS:
            for workers in (2, 4):
                np.testing.assert_array_equal(
                    solutions(backend, workers), base,
                    err_msg=f"{backend} workers={workers}")

    def test_no_leaked_shared_memory(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        monkeypatch.setenv("REPRO_WORKERS", "2")
        shm_dir = "/dev/shm"
        prefix = f"repro-{os.getpid()}-"
        g = G.grid2d(12, 12)
        solver = LaplacianSolver(
            g, options=practical_options().with_(chunk_items=512), seed=8)
        b = np.zeros(g.n)
        b[0], b[-1] = 1.0, -1.0
        solver.solve(b, eps=1e-4)
        del solver
        # The registry is drained as each dispatch joins, and nothing
        # with this process's prefix survives on the filesystem.
        assert live_segment_names() == ()
        if os.path.isdir(shm_dir):
            leaked = [name for name in os.listdir(shm_dir)
                      if name.startswith(prefix)]
            assert leaked == []

    def test_options_backend_threads_through(self):
        opts = default_options().with_(backend="process", workers=3)
        ctx = opts.execution()
        assert ctx.resolve_backend() == "process"
        assert ctx.resolve_workers() == 3


class TestInteriorDegreeOracle:
    """The incremental store's degree oracle == the induced rebuild."""

    def test_oracle_matches_induced_rebuild_per_round(self):
        from repro.core.boundedness import naive_split
        from repro.core.dd_subset import _within_subset_degrees
        from repro.core.terminal_walks import terminal_walks

        g = naive_split(G.grid2d(9, 9), 0.25)
        inc = IncrementalWalkCSR(g, rebuild_factor=0.3)
        rng = np.random.default_rng(0)
        work = g
        remaining = np.arange(g.n)
        for _ in range(4):
            if remaining.size <= 4:
                break
            member = np.zeros(g.n, dtype=bool)
            member[remaining] = True
            induced = work.edge_subset(member[work.u] & member[work.v])
            oracle = inc.interior_degrees(remaining)
            assert oracle.m == induced.m
            np.testing.assert_array_equal(oracle.weighted_degrees(),
                                          induced.weighted_degrees())
            # Candidate-scan kernel: several random candidate subsets.
            for _ in range(3):
                cand = rng.choice(remaining,
                                  size=max(1, remaining.size // 4),
                                  replace=False)
                cm = np.zeros(g.n, dtype=bool)
                cm[cand] = True
                np.testing.assert_array_equal(
                    oracle.within_subset_degrees(cm),
                    _within_subset_degrees(induced, cm))
            F = np.unique(rng.choice(remaining,
                                     size=max(1, remaining.size // 5),
                                     replace=False))
            terminals = np.setdiff1d(remaining, F)
            nxt, stats = terminal_walks(work, terminals, seed=rng,
                                        return_stats=True)
            p = stats.passthrough_stored
            inc.advance(F, nxt.u[p:], nxt.v[p:], nxt.w[p:],
                        None if nxt.mult is None else nxt.mult[p:])
            work = nxt
            remaining = terminals

    def test_scan_path_does_not_change_approx_schur(self):
        # incremental=True routes the 5DD scan through the oracle;
        # incremental=False rebuilds the induced subgraph.  Outputs
        # must be bit-identical (same degrees ⇒ same candidate
        # acceptance ⇒ same RNG consumption ⇒ same F sequence).
        g = G.grid2d(13, 13)
        C = np.arange(0, g.n, 4)
        # Coalescing only exists with the store: pin it off so both
        # paths realise the same walks (tests/test_coalesce.py covers
        # the coalesced store's own scratch-equality contract).
        opts = default_options().with_(coalesce_emitted=False)
        a = approx_schur(g, C, eps=0.5, seed=99, options=opts,
                         incremental=True)
        b = approx_schur(g, C, eps=0.5, seed=99, options=opts,
                         incremental=False)
        assert a == b


class TestIncrementalCSR:
    """The maintained restricted CSR equals a from-scratch rebuild."""

    def _assert_view_equal(self, got, want, got_mult, want_graph):
        np.testing.assert_array_equal(got.indptr, want.indptr)
        np.testing.assert_array_equal(got.neighbor, want.neighbor)
        np.testing.assert_array_equal(got.weight, want.weight)
        np.testing.assert_array_equal(got.cumweight, want.cumweight)
        want_mult = want_graph.multiplicities()[want.edge_id]
        got_m = got_mult if got_mult is not None \
            else np.ones(got.weight.size, dtype=np.int32)
        np.testing.assert_array_equal(got_m, want_mult)

    def test_round_by_round_equality(self):
        from repro.core.boundedness import naive_split
        from repro.core.terminal_walks import terminal_walks

        g = naive_split(G.grid2d(9, 9), 0.25)
        inc = IncrementalWalkCSR(g, rebuild_factor=0.3)
        rng = np.random.default_rng(0)
        work = g
        remaining = np.arange(g.n)
        for _ in range(4):
            if remaining.size <= 4:
                break
            F = rng.choice(remaining, size=max(1, remaining.size // 5),
                           replace=False)
            F = np.unique(F)
            terminals = np.setdiff1d(remaining, F)
            is_term = np.zeros(g.n, dtype=bool)
            is_term[terminals] = True
            view, slot_mult = inc.restricted_view(F)
            want = work.adjacency_restricted(~is_term)
            self._assert_view_equal(view, want, slot_mult, work)
            nxt, stats = terminal_walks(work, terminals, seed=rng,
                                        return_stats=True)
            p = stats.passthrough_stored
            inc.advance(F, nxt.u[p:], nxt.v[p:], nxt.w[p:],
                        None if nxt.mult is None else nxt.mult[p:])
            assert inc.live_graph() == nxt
            work = nxt
            remaining = terminals

    def test_incremental_matches_scratch_end_to_end(self):
        g = G.grid2d(13, 13)
        C = np.arange(0, g.n, 4)
        # Scratch rebuilds cannot coalesce — pin the flag off so the
        # equality is well-defined under a REPRO_COALESCE=1 ambient.
        opts = default_options().with_(coalesce_emitted=False)
        a = approx_schur(g, C, eps=0.5, seed=99, options=opts,
                         incremental=True)
        b = approx_schur(g, C, eps=0.5, seed=99, options=opts,
                         incremental=False)
        assert a == b

    def test_options_knob_disables_store_identically(self):
        # incremental_csr=False must not change any result — the views
        # are bit-identical either way — but lets memory-constrained
        # callers skip the store (e.g. streaming factorizations).
        # Coalescing needs the store, so it is pinned off here too.
        g = G.grid2d(12, 12)
        opts = practical_options().with_(coalesce_emitted=False)
        on = LaplacianSolver(g, options=opts, seed=8)
        off = LaplacianSolver(g, options=opts.with_(incremental_csr=False),
                              seed=8)
        np.testing.assert_array_equal(on.chain.final_pinv,
                                      off.chain.final_pinv)
        C = np.arange(0, g.n, 4)
        a = approx_schur(g, C, eps=0.5, seed=8, options=opts)
        b = approx_schur(g, C, eps=0.5, seed=8,
                         options=opts.with_(incremental_csr=False))
        assert a == b

    def test_epoch_rebuild_compacts(self):
        g = G.grid2d(6, 6)
        inc = IncrementalWalkCSR(g, rebuild_factor=0.01)
        inc.eliminate(np.array([0, 1, 2]))
        dead_before = inc.m - inc.m_alive
        assert dead_before > 0
        # Any insert past the tiny rebuild threshold triggers compaction.
        inc.insert(np.array([3]), np.array([20]), np.array([1.0]))
        assert inc.m == inc.m_alive

    def test_live_graph_order_matches_terminal_walks_layout(self):
        g = G.grid2d(5, 5)
        from repro.core.terminal_walks import terminal_walks

        inc = IncrementalWalkCSR(g)
        terminals = np.arange(0, g.n, 2)
        F = np.setdiff1d(np.arange(g.n), terminals)
        nxt, stats = terminal_walks(g, terminals, seed=1,
                                    return_stats=True)
        p = stats.passthrough_stored
        inc.advance(F, nxt.u[p:], nxt.v[p:], nxt.w[p:])
        assert inc.live_graph() == nxt


class TestBlockedTrackErrors:
    def test_history_has_per_column_entries(self):
        from repro.core.richardson import preconditioned_richardson
        from repro.graphs.laplacian import apply_laplacian
        from repro.linalg.ops import project_out_ones

        # > min_vertices so the chain is non-trivial and the iteration
        # actually runs (a dense-base-case preconditioner is exact and
        # freezes every column at iteration 0).
        g = G.grid2d(12, 12)
        solver = LaplacianSolver(g, options=practical_options(), seed=0)
        B = np.random.default_rng(2).standard_normal((g.n, 3))
        B = project_out_ones(B)

        def errs(X):
            return np.linalg.norm(apply_laplacian(g, X) - B, axis=0)

        res = preconditioned_richardson(
            lambda X: apply_laplacian(g, X),
            solver.preconditioner.apply, B, eps=1e-6,
            track_errors=errs)
        assert len(res.error_history) >= 2
        assert all(h.shape == (3,) for h in res.error_history)
        # Residuals decay overall (geometric convergence, Theorem 3.8).
        assert np.all(res.error_history[-1] < res.error_history[0])


class TestChebyshevPreconditionedFreeze:
    def _setup(self):
        import math

        from repro.graphs.laplacian import laplacian

        g = G.grid2d(8, 8)
        solver = LaplacianSolver(g, options=practical_options(), seed=4)
        L = laplacian(g)
        B = np.random.default_rng(5).standard_normal((g.n, 5))
        return g, solver, L, B, math.exp(-1), math.exp(1)

    def test_preconditioned_rule_converges(self):
        from repro.linalg.chebyshev import chebyshev_iteration
        from repro.linalg.ops import project_out_ones

        g, solver, L, B, lo, hi = self._setup()
        X = chebyshev_iteration(L, solver.preconditioner.apply, B,
                                lo, hi, 200, tol=1e-9)
        R = np.asarray(L @ X) - project_out_ones(B)
        # The preconditioned rule targets the preconditioned residual;
        # raw residuals still land within the spectral-equivalence
        # factor of the target.
        bnorm = np.linalg.norm(B, axis=0)
        assert np.all(np.linalg.norm(R, axis=0) <= 1e-6 * bnorm)

    def test_raw_rule_still_available(self):
        from repro.linalg.chebyshev import chebyshev_iteration
        from repro.linalg.ops import project_out_ones

        g, solver, L, B, lo, hi = self._setup()
        X = chebyshev_iteration(L, solver.preconditioner.apply, B,
                                lo, hi, 200, tol=1e-9, stop_rule="raw")
        R = np.asarray(L @ X) - project_out_ones(B)
        bnorm = np.linalg.norm(B, axis=0)
        assert np.all(np.linalg.norm(R, axis=0) <= 2e-9 * bnorm)

    def test_ctx_column_chunks_match_unchunked(self):
        from repro.linalg.chebyshev import chebyshev_iteration

        g, solver, L, B, lo, hi = self._setup()
        plain = chebyshev_iteration(L, solver.preconditioner.apply, B,
                                    lo, hi, 30)
        ctx = ExecutionContext(chunk_columns=2)
        chunked = chebyshev_iteration(L, solver.preconditioner.apply, B,
                                      lo, hi, 30, ctx=ctx)
        np.testing.assert_allclose(chunked, plain, rtol=1e-12, atol=1e-12)


class TestShippedSolves:
    """ISSUE 7 tentpole: blocked solves ship as self-contained tasks
    over a once-published shared-memory chain payload.  Fixed seed ⇒
    bit-identical solutions and ledger totals vs the threaded closure
    path across {process, distributed} × {1, 2, 4} workers, and no
    shared memory survives solver teardown."""

    WORKER_COUNTS = (1, 2, 4)

    @staticmethod
    def _problem():
        g = G.grid2d(13, 13)
        rng = np.random.default_rng(3)
        B = rng.standard_normal((g.n, 8))
        B -= B.mean(axis=0)
        return g, B

    @staticmethod
    def _opts():
        # chunk_columns=2 over k=8 RHS -> 4 column chunks, so every
        # kernel genuinely fans out; chunk policy is part of the
        # result, held fixed across the matrix.
        return practical_options().with_(chunk_columns=2,
                                         chunk_items=512)

    def _solve(self, g, B, backend, workers, ship,
               method="richardson", eps=1e-6):
        opts = self._opts().with_(backend=backend, workers=workers,
                                  ship_solves=ship)
        solver = LaplacianSolver(g, options=opts, seed=11)
        with use_ledger() as ledger:
            rep = solver.solve_many_report(B, eps=eps, method=method)
        solver.close()
        return rep, (ledger.work, ledger.depth)

    @pytest.mark.parametrize("method", ["richardson", "pcg"])
    def test_shipped_matrix_bit_identical(self, method):
        g, B = self._problem()
        base, lbase = self._solve(g, B, "thread", 2, False, method)
        assert base.iterations > 0
        for backend in ("process", "distributed"):
            for workers in self.WORKER_COUNTS:
                rep, led = self._solve(g, B, backend, workers, True,
                                       method)
                np.testing.assert_array_equal(
                    rep.x, base.x,
                    err_msg=f"{backend} workers={workers}")
                assert rep.iterations == base.iterations
                assert led == lbase, (backend, workers)
        assert live_segment_names() == ()

    def test_chebyshev_shipped_matches_chunked(self):
        import math

        from repro.graphs.laplacian import laplacian
        from repro.linalg.chebyshev import chebyshev_iteration

        g, B = self._problem()
        lo, hi = math.exp(-1), math.exp(1)
        opts = self._opts().with_(backend="process", workers=2,
                                  ship_solves=True)
        solver = LaplacianSolver(g, options=opts, seed=4)
        L = laplacian(g)
        plain = chebyshev_iteration(
            L, solver.preconditioner.apply, B, lo, hi, 40, tol=1e-8,
            ctx=solver.ctx)
        shipped = chebyshev_iteration(
            L, solver.preconditioner.apply, B, lo, hi, 40, tol=1e-8,
            ship=solver.shipment)
        np.testing.assert_array_equal(shipped, plain)
        solver.close()
        assert live_segment_names() == ()

    def test_frozen_column_compaction_across_chunks(self):
        # Per-column targets spanning seven decades stagger the freeze
        # points, so columns compact out of their chunks at different
        # iterations; shipped chunks must reproduce the threaded
        # freeze/compaction trajectory exactly.
        g, B = self._problem()
        eps = np.geomspace(1e-2, 1e-9, B.shape[1])
        base, lbase = self._solve(g, B, "thread", 2, False, eps=eps)
        per = base.per_column_iterations
        assert per is not None and np.unique(per).size > 1
        rep, led = self._solve(g, B, "process", 2, True, eps=eps)
        np.testing.assert_array_equal(rep.x, base.x)
        np.testing.assert_array_equal(rep.per_column_iterations, per)
        assert led == lbase
        assert live_segment_names() == ()

    def test_shipment_lifecycle_and_hygiene(self):
        g, B = self._problem()
        opts = self._opts().with_(backend="process", workers=2,
                                  ship_solves=True)
        solver = LaplacianSolver(g, options=opts, seed=11)
        shipment = solver.shipment
        assert solver.shipment is shipment  # cached on the solver
        # Payload = chain + Laplacian CSR, so strictly bigger than the
        # chain alone; both sizes surface on the report.
        assert shipment.nbytes > solver.chain.nbytes > 0
        rep = solver.solve_many_report(B, eps=1e-5)
        assert rep.chain_nbytes == solver.chain.nbytes
        assert sum(rep.chain_level_nbytes) <= rep.chain_nbytes
        # The chain segment persists between dispatches (publish once,
        # attach per worker) ...
        assert len(live_segment_names()) == 1
        x1 = rep.x
        np.testing.assert_array_equal(
            solver.solve_many(B, eps=1e-5), x1)
        # ... and close() unlinks it; idempotent, solver still usable.
        solver.close()
        assert live_segment_names() == ()
        np.testing.assert_array_equal(
            solver.solve_many(B, eps=1e-5), x1)
        solver.close()
        solver.close()
        assert live_segment_names() == ()

    def test_ship_solves_env_knob(self, monkeypatch):
        from repro.pram.executor import default_ship_solves

        monkeypatch.delenv("REPRO_SHIP_SOLVES", raising=False)
        assert default_ship_solves() is False
        for val, want in (("1", True), ("true", True), ("on", True),
                          ("yes", True), ("0", False), ("no", False),
                          ("off", False), ("", False)):
            monkeypatch.setenv("REPRO_SHIP_SOLVES", val)
            assert default_ship_solves() is want, val
        monkeypatch.setenv("REPRO_SHIP_SOLVES", "wat")
        with pytest.raises(ValueError):
            default_ship_solves()
        # An explicit option beats the env var; None defers to it.
        monkeypatch.setenv("REPRO_SHIP_SOLVES", "1")
        opts = default_options()
        assert opts.resolve_ship_solves() is True
        assert opts.with_(ship_solves=False).resolve_ship_solves() \
            is False
