"""Smoke tests for the example scripts' building blocks.

Full example runs are demo-sized (tens of seconds); here we exercise
their non-trivial helper logic at reduced scale so regressions in the
examples are caught by the fast suite.
"""

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name,
                                                  EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestExampleHelpers:
    def test_examples_exist_and_import(self):
        expected = {"quickstart", "semi_supervised_learning",
                    "electrical_flows", "spectral_partitioning",
                    "schur_sparsification", "maxflow_and_sdd"}
        found = {p.stem for p in EXAMPLES.glob("*.py")}
        assert expected <= found
        for name in expected:
            _load(name)  # import-time errors fail here

    def test_two_moons_graph_connected(self):
        mod = _load("semi_supervised_learning")
        g, truth = mod.two_moons_graph(40, seed=0)
        from repro.graphs.validation import is_connected

        assert is_connected(g)
        assert truth.shape == (g.n,)
        assert set(truth.tolist()) == {0, 1}

    def test_tree_routing_power_dominates_electrical(self):
        pytest.importorskip("networkx")
        mod = _load("electrical_flows")
        from repro.apps import wilson_spanning_tree
        from repro.apps.electrical import (
            dissipated_power,
            electrical_flow,
            st_demand,
        )
        from repro.config import practical_options
        from repro.graphs import generators as G

        g = G.grid2d(4, 4)
        b = st_demand(g.n, 0, g.n - 1)
        flow, _ = electrical_flow(g, b, eps=1e-8,
                                  options=practical_options(), seed=0)
        tree = wilson_spanning_tree(g, seed=1)
        p_tree = mod.tree_routing_power(g, tree, b)
        # Thomson's principle: the electrical flow minimises energy.
        assert p_tree >= dissipated_power(g, flow) - 1e-9
