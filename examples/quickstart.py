"""Quickstart: solve a Laplacian system on a 2-D grid.

Paper: Theorems 1.1/1.2 end to end — α-bounded splitting (Lemma 3.2)
→ ``BlockCholesky`` (§3, Algorithm 1) → ``ApplyCholesky`` (§3,
Algorithm 2) → preconditioned Richardson (§3, Algorithm 5), with the
error measured in the L-norm the theorems promise.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LaplacianSolver, generators, practical_options
from repro.graphs.laplacian import laplacian
from repro.linalg.ops import relative_lnorm_error, residual_norm
from repro.linalg.pinv import exact_solution


def main() -> None:
    # A 40x40 grid graph: 1600 vertices, 3120 edges.
    g = generators.grid2d(40, 40)
    print(f"graph: n={g.n}, m={g.m}")

    # Factor once; solve many right-hand sides.
    solver = LaplacianSolver(g, options=practical_options(), seed=0)
    print(f"block Cholesky chain: d={solver.chain.d} levels, "
          f"{solver.multigraph.m_logical} multi-edges after splitting "
          f"({solver.multigraph.m} stored groups)")

    # Unit current in at the top-left corner, out at the bottom-right.
    b = np.zeros(g.n)
    b[0], b[-1] = 1.0, -1.0

    for eps in (1e-2, 1e-4, 1e-8):
        report = solver.solve_report(b, eps=eps)
        print(f"eps={eps:8.0e}  iterations={report.iterations:3d}  "
              f"residual={report.residual_2norm:.3e}")

    # Compare against the dense ground truth.
    x = solver.solve(b, eps=1e-8)
    xstar = exact_solution(g, b)
    err = relative_lnorm_error(laplacian(g), x, xstar)
    print(f"relative L-norm error vs dense oracle: {err:.3e}")
    print(f"voltage drop corner-to-corner (effective resistance): "
          f"{x[0] - x[-1]:.4f}")


if __name__ == "__main__":
    main()
