"""Electrical flows on a bottlenecked network [CKMST11].

Paper: the §1 motivation (Laplacian solves inside flow algorithms);
effective resistances exercise the §6 Johnson–Lindenstrauss
leverage-score machinery (``ResistanceOracle`` issues one blocked
solve for all JL sketch columns).

Routes current across a dumbbell (two grids joined by one bridge) and
inspects the physics: flow conservation, the bridge carrying all the
current, energy optimality versus a naive spanning-tree routing, and
effective resistance.

Run:  python examples/electrical_flows.py
"""

import numpy as np

from repro.apps import wilson_spanning_tree
from repro.apps.electrical import (
    dissipated_power,
    electrical_flow,
    st_demand,
)
from repro.config import practical_options
from repro.graphs import generators


def tree_routing_power(g, tree_edges, b) -> float:
    """Energy of the unique routing of demand ``b`` along a tree."""
    import networkx as nx

    T = nx.Graph()
    T.add_nodes_from(range(g.n))
    for e in tree_edges:
        T.add_edge(int(g.u[e]), int(g.v[e]), eid=int(e))
    flow = np.zeros(g.m)
    # Route each demand pair through the tree path to vertex 0.
    sources = np.nonzero(b)[0]
    for s in sources:
        amount = b[s]
        path = nx.shortest_path(T, int(s), 0)
        for a, c in zip(path[:-1], path[1:]):
            e = T.edges[a, c]["eid"]
            sign = 1.0 if (g.u[e] == a and g.v[e] == c) else -1.0
            flow[e] += sign * amount
    return dissipated_power(g, flow)


def main() -> None:
    side = 10
    g = generators.dumbbell(side)
    s, t = 0, g.n - 1  # opposite corners of the two grids
    print(f"dumbbell graph: n={g.n}, m={g.m}, bridge edge = last")

    b = st_demand(g.n, s, t)
    flow, x = electrical_flow(g, b, eps=1e-8,
                              options=practical_options(), seed=0)

    # KCL: net flow at each vertex equals the demand.
    net = np.zeros(g.n)
    np.add.at(net, g.u, flow)
    np.subtract.at(net, g.v, flow)
    print(f"max KCL violation: {np.abs(net - b).max():.2e}")

    bridge = g.m - 1  # dumbbell() appends the bridge edge last
    print(f"bridge flow: {abs(flow[bridge]):.6f} (must carry ~all of "
          f"the 1.0 demand)")
    print(f"effective resistance s-t: {x[s] - x[t]:.4f}")

    p_electrical = dissipated_power(g, flow)
    tree = wilson_spanning_tree(g, seed=1)
    p_tree = tree_routing_power(g, tree, b)
    print(f"energy: electrical={p_electrical:.4f}  "
          f"random-tree routing={p_tree:.4f}  "
          f"(electrical is optimal; ratio={p_tree / p_electrical:.2f}x)")


if __name__ == "__main__":
    main()
