"""Sparse approximate Schur complements.

Paper: §7, Algorithm 6 ``ApproxSchur`` (Theorem 7.1), built on §5's
``TerminalWalks`` (Algorithm 4) and §3's ``5DDSubset`` (Algorithm 3).

Eliminates the interior of a grid onto its boundary ring.  The exact
Schur complement onto the boundary is *dense* (every boundary pair
interacts); ``ApproxSchur`` returns a multigraph with at most the
original edge count whose Laplacian spectrally approximates it.

Run:  python examples/schur_sparsification.py
"""

import numpy as np

from repro.core.schur import approx_schur
from repro.graphs import generators
from repro.graphs.laplacian import laplacian
from repro.linalg.loewner import approximation_factor
from repro.linalg.pinv import exact_schur_complement


def main() -> None:
    side = 10
    g = generators.grid2d(side, side)
    ids = np.arange(g.n).reshape(side, side)
    boundary = np.unique(np.concatenate([
        ids[0, :], ids[-1, :], ids[:, 0], ids[:, -1]]))
    print(f"grid {side}x{side}: n={g.n}, m={g.m}; eliminating the "
          f"{g.n - boundary.size} interior vertices onto "
          f"{boundary.size} boundary vertices")

    SC = exact_schur_complement(laplacian(g).toarray(), boundary)
    dense_pairs = int((np.abs(SC) > 1e-12).sum() - boundary.size) // 2
    print(f"exact Schur complement: {dense_pairs} interacting pairs "
          f"(vs {g.m} edges in G)")

    for eps in (0.5, 0.25):
        report = approx_schur(g, boundary, eps=eps, seed=0,
                              return_report=True)
        H = report.graph
        # Compare on the boundary block only.
        LH = laplacian(H).toarray()[np.ix_(boundary, boundary)]
        measured = approximation_factor(LH, SC)
        print(f"eps={eps:4.2f}: {H.m_logical} multi-edges "
              f"(<= {report.edges_per_round[0]} after alpha-splitting; "
              f"{H.coalesced().m} distinct edges, {report.rounds} rounds), "
              f"measured approximation factor = {measured:.3f}")


if __name__ == "__main__":
    main()
