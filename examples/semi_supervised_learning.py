"""Semi-supervised learning on a similarity graph [ZGL03].

Paper: the §1 learning motivation.  Two Gaussian point clouds are
connected into a k-NN-style similarity graph; three labelled points
per class are propagated to everything else by the harmonic-function
method — all classes solved as ONE blocked multi-RHS call against a
single Theorem 1.1 factorization (DESIGN.md §5).

Run:  python examples/semi_supervised_learning.py
"""

import numpy as np

from repro.apps import harmonic_label_propagation
from repro.config import practical_options
from repro.graphs.multigraph import MultiGraph


def two_moons_graph(n_per_class: int, seed: int
                    ) -> tuple[MultiGraph, np.ndarray]:
    """Two noisy clusters + a mutual-k-NN similarity graph."""
    rng = np.random.default_rng(seed)
    a = rng.normal(loc=(-1.5, 0.0), scale=0.55, size=(n_per_class, 2))
    b = rng.normal(loc=(+1.5, 0.0), scale=0.55, size=(n_per_class, 2))
    pts = np.vstack([a, b])
    truth = np.repeat([0, 1], n_per_class)

    # k-NN graph with Gaussian similarity weights.
    k = 8
    d2 = ((pts[:, None, :] - pts[None, :, :]) ** 2).sum(axis=2)
    np.fill_diagonal(d2, np.inf)
    sigma2 = np.median(d2[np.isfinite(d2)])
    us, vs, ws = [], [], []
    for i in range(pts.shape[0]):
        for j in np.argsort(d2[i])[:k]:
            if i < j:
                us.append(i)
                vs.append(int(j))
                ws.append(float(np.exp(-d2[i, j] / sigma2)))
    g = MultiGraph(pts.shape[0], np.array(us), np.array(vs),
                   np.array(ws)).coalesced()

    # k-NN graphs can be disconnected; patch by linking each component
    # to its nearest outside point (keeps the similarity semantics).
    from repro.graphs.validation import connected_components

    labels = connected_components(g)
    while labels.max() > 0:
        comp0 = labels == 0
        d2c = d2.copy()
        d2c[np.ix_(comp0, comp0)] = np.inf
        d2c[np.ix_(~comp0, ~comp0)] = np.inf
        i, j = np.unravel_index(np.argmin(d2c), d2c.shape)
        g = MultiGraph(
            g.n,
            np.concatenate([g.u, [min(i, j)]]),
            np.concatenate([g.v, [max(i, j)]]),
            np.concatenate([g.w, [float(np.exp(-d2[i, j] / sigma2))]]))
        labels = connected_components(g)
    return g, truth


def main() -> None:
    g, truth = two_moons_graph(150, seed=1)
    print(f"similarity graph: n={g.n}, m={g.m}")

    rng = np.random.default_rng(2)
    labeled = np.concatenate([
        rng.choice(np.nonzero(truth == 0)[0], size=3, replace=False),
        rng.choice(np.nonzero(truth == 1)[0], size=3, replace=False)])
    labels = truth[labeled]
    print(f"labelled vertices: {labeled.tolist()} -> {labels.tolist()}")

    assignment, scores = harmonic_label_propagation(
        g, labeled, labels, options=practical_options(), seed=3)

    accuracy = float(np.mean(assignment == truth))
    print(f"propagation accuracy on {g.n} points from "
          f"{labeled.size} labels: {accuracy:.1%}")
    margin = np.abs(scores[:, 0] - scores[:, 1])
    print(f"mean decision margin: {margin.mean():.3f} "
          f"(min {margin.min():.4f})")


if __name__ == "__main__":
    main()
