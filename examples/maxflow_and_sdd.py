"""Max-flow by electrical flows, and SDD systems by double cover.

Paper: §1 motivations — flow problems solved through Laplacian
systems [CKMST11], and general SDD systems (the broader class all
these solvers target) reduced to Laplacians via the Gremban double
cover; every inner solve is the paper's Theorem 1.1/1.2 solver.

Run:  python examples/maxflow_and_sdd.py
"""

import numpy as np

from repro.apps.maxflow import approx_max_flow, flow_feasibility
from repro.config import practical_options
from repro.core.sdd import solve_sdd
from repro.graphs import generators


def maxflow_demo() -> None:
    g = generators.grid2d(5, 5)
    s, t = 0, g.n - 1
    print(f"max-flow on a 5x5 unit-capacity grid, corner to corner")
    res = approx_max_flow(g, s, t, eps=0.25, bisection_steps=8,
                          mwu_iters=25, seed=0)
    value, violation = flow_feasibility(g, res.flow, s, t)
    print(f"  approximate max flow: {res.value:.3f} "
          f"(exact: 2.0 — the corner degree bounds it)")
    print(f"  max congestion {res.congestion:.3f}, conservation "
          f"violation {violation:.1e}, {res.oracle_calls} electrical "
          f"solves")


def sdd_demo() -> None:
    # An SDD system with *positive* off-diagonals (e.g. from a signed
    # graph / anti-ferromagnetic coupling) — not a Laplacian, but one
    # Gremban double cover away from one.
    rng = np.random.default_rng(1)
    n = 30
    M = np.zeros((n, n))
    for i in range(n):
        j = (i + 1) % n
        M[i, j] = M[j, i] = rng.choice([-1.0, +1.0]) * rng.uniform(0.5, 2)
    off = np.abs(M).sum(axis=1)
    M[np.diag_indices(n)] = off + rng.uniform(0.1, 1.0, size=n)

    b = rng.standard_normal(n)
    x = solve_sdd(M, b, eps=1e-8, options=practical_options(), seed=2)
    residual = np.linalg.norm(M @ x - b) / np.linalg.norm(b)
    signs = int((M[np.triu_indices(n, 1)] > 0).sum())
    print(f"SDD system with {signs} positive couplings "
          f"(signed ring, n={n})")
    print(f"  relative residual after Gremban + Laplacian solve: "
          f"{residual:.2e}")


def main() -> None:
    maxflow_demo()
    print()
    sdd_demo()


if __name__ == "__main__":
    main()
