"""Spectral partitioning via solver-driven inverse power iteration.

Paper: the §1 scientific-computing motivation (eigenvector/spectral
primitives through Laplacian solves).  Recovers the planted cut of a
dumbbell graph from the Fiedler vector, computing eigenvectors with
repeated ``LaplacianSolver`` applies instead of dense
eigendecomposition.

Run:  python examples/spectral_partitioning.py
"""

import numpy as np

from repro.apps import fiedler_vector, spectral_bisection
from repro.apps.partitioning import cut_quality
from repro.config import practical_options
from repro.core.solver import LaplacianSolver
from repro.graphs import generators


def main() -> None:
    side = 9
    g = generators.dumbbell(side)
    half = side * side
    print(f"dumbbell: two {side}x{side} grids + 1 bridge "
          f"(n={g.n}, m={g.m})")

    solver = LaplacianSolver(g, options=practical_options(), seed=0)
    v, lam2 = fiedler_vector(g, solver=solver, seed=1)
    print(f"lambda_2 = {lam2:.6f} (inverse power iteration)")

    side_mask = spectral_bisection(g, solver=solver, seed=2)
    cut, cond = cut_quality(g, side_mask)
    print(f"spectral cut weight = {cut:.1f}, conductance = {cond:.5f}")

    planted = np.zeros(g.n, dtype=bool)
    planted[:half] = True
    agreement = max(np.mean(side_mask == planted),
                    np.mean(side_mask != planted))
    print(f"agreement with the planted grid/grid split: {agreement:.1%}")
    cut_p, cond_p = cut_quality(g, planted)
    print(f"planted cut weight = {cut_p:.1f}, conductance = {cond_p:.5f}")


if __name__ == "__main__":
    main()
