"""Chunked thread-pool execution for numpy-heavy inner loops.

numpy kernels release the GIL, so a thread pool gives genuine
concurrency for the embarrassingly parallel phases of the solver
(per-edge weight transforms, batched walk stepping on disjoint walker
chunks, per-column-block iterative solves).  This module is the
"real machine" counterpart of the idealised cost ledger: the ledger
measures PRAM work/depth; the executor demonstrates the dataflow is
actually parallelisable.

:class:`ExecutionContext` is the solver stack's single dispatch point
for that parallelism.  Its determinism contract (DESIGN.md §6):

* **Chunk layout depends only on problem size** (item count + the
  context's chunk policy), never on the worker count.  Worker count
  only decides how the fixed chunks are scheduled onto threads.
* **Randomness is per-chunk**: each chunk receives its own
  ``SeedSequence``-spawned child stream, drawn in chunk order from the
  caller's generator.  Spawning is itself deterministic and does not
  consume the parent's bit stream.
* **Ledger charges fork/join**: each chunk records its costs into a
  private sub-ledger; at the join the parent ledger absorbs the sum of
  chunk works and the max of chunk depths.

Together these make every chunked phase bit-identical for a fixed seed
regardless of ``REPRO_WORKERS`` — the property the worker-invariance
tests assert.

The lower-level API remains: :func:`chunk_ranges` splits an index range
into contiguous chunks, :func:`parallel_map` maps a function over items
with an optional thread pool.  ``workers=None`` or ``workers<=1`` runs
serially (no pool overhead).
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = ["ExecutionContext", "parallel_map", "chunk_ranges",
           "default_workers", "DEFAULT_CHUNK_ITEMS",
           "DEFAULT_CHUNK_COLUMNS", "MAX_CHUNKS"]

T = TypeVar("T")
R = TypeVar("R")

#: Work items (walkers, edges) per chunk — large enough that each
#: chunk's numpy kernels dominate its Python dispatch overhead.
DEFAULT_CHUNK_ITEMS = 65536

#: Right-hand-side columns per chunk for blocked iterative solves.
DEFAULT_CHUNK_COLUMNS = 16

#: Hard cap on chunks per dispatch (bounds RNG spawns and pool queue
#: length).  Part of the chunk policy, hence worker-independent.
MAX_CHUNKS = 256

# ``default_workers`` caches its (env string → value) lookup so hot
# loops can consult it lazily at every dispatch; keying the cache on the
# raw env value keeps ``monkeypatch.setenv("REPRO_WORKERS", ...)``
# reliable — a changed env invalidates the cache on the next call.
_workers_cache: tuple[str | None, int] | None = None


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` env var or CPU count."""
    global _workers_cache
    env = os.environ.get("REPRO_WORKERS")
    if _workers_cache is not None and _workers_cache[0] == env:
        return _workers_cache[1]
    value = 0
    if env:
        try:
            value = max(1, int(env))
        except ValueError:
            value = 0
    if value == 0:
        value = os.cpu_count() or 1
    _workers_cache = (env, value)
    return value


def chunk_ranges(n: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``chunks`` contiguous ``(lo, hi)`` pieces.

    The pieces differ in size by at most one and cover the range exactly;
    empty pieces are omitted (so fewer than ``chunks`` pairs may return).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    chunks = min(chunks, max(n, 1))
    base, extra = divmod(n, chunks)
    out: list[tuple[int, int]] = []
    lo = 0
    for i in range(chunks):
        hi = lo + base + (1 if i < extra else 0)
        if hi > lo:
            out.append((lo, hi))
        lo = hi
    return out


def parallel_map(fn: Callable[[T], R],
                 items: Sequence[T],
                 workers: int | None = None) -> list[R]:
    """Map ``fn`` over ``items``, optionally with a thread pool.

    Results preserve input order.  With ``workers`` ``None`` or ≤ 1 the
    map runs serially in the calling thread (no pool overhead).
    """
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


@dataclass(frozen=True)
class ExecutionContext:
    """Parallel-dispatch policy threaded through the solver stack.

    Parameters
    ----------
    workers:
        Thread count.  ``None`` (default) consults
        :func:`default_workers` lazily *at each dispatch*, so changing
        ``REPRO_WORKERS`` mid-session (or monkeypatching it in a test)
        takes effect immediately.  The worker count never influences
        results — only wall-clock.
    chunk_items:
        Target work items (walkers) per chunk for :meth:`item_chunks`.
    chunk_columns:
        Target right-hand-side columns per chunk for
        :meth:`column_chunks`.
    max_chunks:
        Cap on the number of chunks per dispatch.

    The three chunk-policy fields fully determine chunk boundaries from
    the problem size alone — see the module docstring for the
    determinism contract.
    """

    workers: int | None = None
    chunk_items: int = DEFAULT_CHUNK_ITEMS
    chunk_columns: int = DEFAULT_CHUNK_COLUMNS
    max_chunks: int = MAX_CHUNKS

    def __post_init__(self) -> None:
        if self.chunk_items < 1 or self.chunk_columns < 1 \
                or self.max_chunks < 1:
            raise ValueError("chunk policy values must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be None or >= 1")

    # -- worker resolution --------------------------------------------------

    def resolve_workers(self) -> int:
        """The thread count to use *right now* (lazy env consultation)."""
        if self.workers is not None:
            return self.workers
        return default_workers()

    # -- deterministic chunk layout ------------------------------------------

    def _chunk_count(self, n: int, grain: int) -> int:
        if n <= 0:
            return 1
        return max(1, min(self.max_chunks, math.ceil(n / grain)))

    def item_chunks(self, n: int) -> list[tuple[int, int]]:
        """Chunk ``range(n)`` work items; layout depends only on ``n``."""
        return chunk_ranges(n, self._chunk_count(n, self.chunk_items))

    def column_chunks(self, k: int) -> list[tuple[int, int]]:
        """Chunk ``k`` RHS columns; layout depends only on ``k``."""
        return chunk_ranges(k, self._chunk_count(k, self.chunk_columns))

    # -- dispatch ------------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """:func:`parallel_map` with this context's (lazy) worker count."""
        return parallel_map(fn, items, workers=self.resolve_workers())

    def run_chunks(self,
                   fn: Callable[..., R],
                   pieces: Sequence[tuple[int, int]],
                   rng: np.random.Generator | None = None) -> list[R]:
        """Run ``fn(lo, hi[, stream])`` over ``pieces``, in parallel.

        ``pieces`` must come from :meth:`item_chunks` /
        :meth:`column_chunks` (or any layout derived from problem size
        only).  When ``rng`` is given, one independent child stream is
        spawned per piece — in piece order — and passed as the third
        argument; the parent generator's bit stream is not consumed.

        Ledger charges made inside each chunk are collected in private
        sub-ledgers and joined into the ambient ledger as a fork/join
        region (works add, depths max), so ledger totals are identical
        whether the chunks ran on one thread or many.  A raising chunk
        does not short-circuit the others: every chunk runs (and
        charges) regardless of worker count, then the lowest-index
        chunk's exception is re-raised — keeping both the ledger totals
        and the surfaced error deterministic.
        """
        from repro.pram.ledger import current_ledger, use_ledger

        streams: Sequence[np.random.Generator | None]
        if rng is not None:
            streams = rng.spawn(len(pieces))
        else:
            streams = [None] * len(pieces)

        parent = current_ledger()
        subs = [parent.__class__() for _ in pieces] \
            if parent is not None else None
        errors: list[BaseException | None] = [None] * len(pieces)

        def one(i: int) -> R | None:
            lo, hi = pieces[i]
            args = (lo, hi) if streams[i] is None else (lo, hi, streams[i])
            try:
                if subs is None:
                    return fn(*args)
                with use_ledger(subs[i]):
                    return fn(*args)
            except BaseException as exc:  # re-raised after the join
                errors[i] = exc
                return None

        results = parallel_map(one, range(len(pieces)),
                               workers=self.resolve_workers())
        if parent is not None and subs:
            parent.absorb_parallel(subs)
        for exc in errors:
            if exc is not None:
                raise exc
        return results


#: Shared all-defaults context (lazy ``REPRO_WORKERS`` resolution).
ExecutionContext.DEFAULT = ExecutionContext()
