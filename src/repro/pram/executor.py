"""Backend-pluggable chunked execution for the solver's parallel phases.

The solver stack has two kinds of embarrassingly parallel work:

* **numpy-bound chunks** (per-edge weight transforms, column-blocked
  iterative solves) — the kernels release the GIL, so a thread pool
  already scales them;
* **Python-bound chunks** (walker-stepping bookkeeping, per-round CSR
  maintenance, chunk orchestration) — under the GIL a thread pool tops
  out around 1.2×, so true multi-core scaling needs separate
  *processes*.

This module is the solver's single dispatch point for both.  An
:class:`ExecutionBackend` decides *where* a fixed set of chunks runs:

* :class:`SerialBackend` — in the calling thread (no pool overhead,
  the reference semantics);
* :class:`ThreadPoolBackend` — a ``ThreadPoolExecutor`` (the PR-3
  behaviour, best for numpy-bound chunks);
* :class:`ProcessPoolBackend` — a persistent ``ProcessPoolExecutor``
  fed through ``multiprocessing.shared_memory``: the immutable
  per-level arrays (CSR ``indptr``/``neighbor``/weights, slot
  resistances, terminal masks, walker starts) are published **once**
  per dispatch as a single shared segment, and each chunk task pickles
  only its chunk id, seed-spawn key, and slice bounds.

The backend never influences *results* — only wall-clock.
:class:`ExecutionContext`'s determinism contract (DESIGN.md §6–§7):

* **Chunk layout depends only on problem size** (item count + the
  context's chunk policy), never on the worker count or backend.
* **Randomness is per-chunk**: each chunk receives its own
  ``SeedSequence``-spawned child stream, drawn in chunk order from the
  caller's generator.  The thread path spawns child *generators*
  (``rng.spawn``); the process path ships the spawned *seed sequences*
  and reconstructs the identical generators worker-side — same bit
  generator type, same child seed, bit-identical stream.
* **Ledger charges fork/join**: each chunk records its costs into a
  private sub-ledger — in-process via :func:`use_ledger`, in a worker
  process via an explicit ledger handed to the shipped task — and at
  the join the parent ledger absorbs the sum of chunk works and the
  max of chunk depths.  Totals are identical across backends and
  worker counts.

Together these make every chunked phase bit-identical for a fixed seed
regardless of ``REPRO_BACKEND`` / ``REPRO_WORKERS`` — the property the
backend-matrix invariance tests assert.

Shared-memory lifecycle (crash-safe; see DESIGN.md §7): the parent
creates each payload segment, registers it in a module-level registry,
and closes + unlinks it in a ``finally`` as soon as the dispatch
joins; an ``atexit`` hook unlinks anything the registry still holds
(e.g. after a mid-dispatch crash), so no segment outlives the parent.
Workers attach read-only, keep a small LRU of attachments, and never
unlink — the parent owns the segment.

The lower-level API remains: :func:`chunk_ranges` splits an index range
into contiguous chunks, :func:`parallel_map` maps a function over items
with an optional thread pool.  ``workers=None`` or ``workers<=1`` runs
serially (no pool overhead).
"""

from __future__ import annotations

import atexit
import itertools
import math
import os
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

from repro.errors import ExecutionError, TransportError

__all__ = ["ExecutionContext", "ExecutionBackend", "SerialBackend",
           "ThreadPoolBackend", "ProcessPoolBackend",
           "DistributedBackend", "SharedPayload", "PersistentPayload",
           "SolveShipment",
           "RetryPolicy", "parallel_map", "chunk_ranges",
           "run_column_chunks", "default_workers", "default_backend",
           "default_chunk_items", "default_retries",
           "default_chunk_timeout", "default_degrade",
           "default_ship_solves",
           "get_backend", "live_segment_names",
           "shutdown_distributed_pools", "live_distributed_workers",
           "BACKENDS", "DEFAULT_CHUNK_ITEMS", "DEFAULT_CHUNK_COLUMNS",
           "MAX_CHUNKS", "DEFAULT_RETRIES"]

T = TypeVar("T")
R = TypeVar("R")

#: Work items (walkers, edges) per chunk — large enough that each
#: chunk's numpy kernels dominate its Python dispatch overhead.
DEFAULT_CHUNK_ITEMS = 65536

#: Right-hand-side columns per chunk for blocked iterative solves.
DEFAULT_CHUNK_COLUMNS = 16

#: Hard cap on chunks per dispatch (bounds RNG spawns and pool queue
#: length).  Part of the chunk policy, hence worker-independent.
MAX_CHUNKS = 256

#: Recognised execution backends, in increasing isolation order.  The
#: ``distributed`` entry runs worker processes behind the hardened
#: transport (DESIGN.md §13): framed + checksummed + authenticated
#: connections, heartbeat liveness, lease-based scheduling with
#: in-place worker replacement, and payloads over shared memory or
#: in-band frames (``REPRO_TRANSPORT``) — same determinism contract
#: as every other backend.
BACKENDS = ("serial", "thread", "process", "distributed")

# The ``default_*`` getters cache their (env string → value) lookup so
# hot loops can consult them lazily at every dispatch; keying each
# cache on the raw env value keeps ``monkeypatch.setenv(...)``
# reliable — a changed env invalidates the cache on the next call.
_env_caches: dict[str, tuple[str | None, object]] = {}


def _env_cached(var: str, parse):
    """Shared env-var getter idiom: ``parse(raw)`` once per raw value.

    ``parse`` receives the raw env string (or ``None`` when unset),
    returns the resolved value, and may raise :class:`ValueError` —
    errors are not cached, so a corrected environment recovers.  Also
    serves ``default_sampler`` in :mod:`repro.sampling.walks`.
    """
    env = os.environ.get(var)
    hit = _env_caches.get(var)
    if hit is not None and hit[0] == env:
        return hit[1]
    value = parse(env)
    _env_caches[var] = (env, value)
    return value


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` env var or CPU count."""

    def parse(env: str | None) -> int:
        value = 0
        if env:
            try:
                value = max(1, int(env))
            except ValueError:
                value = 0
        return value if value else (os.cpu_count() or 1)

    return _env_cached("REPRO_WORKERS", parse)


def default_backend() -> str:
    """Backend name from ``REPRO_BACKEND`` env var (default: thread).

    Raises :class:`ValueError` for anything outside :data:`BACKENDS` —
    a typo'd environment should fail loudly, not silently fall back.
    """

    def parse(env: str | None) -> str:
        value = (env or "thread").strip().lower()
        if value not in BACKENDS:
            raise ValueError(
                f"REPRO_BACKEND must be one of {BACKENDS}, got {env!r}")
        return value

    return _env_cached("REPRO_BACKEND", parse)


def default_chunk_items() -> int:
    """Walker-chunk grain from ``REPRO_CHUNK_ITEMS`` env var.

    Defaults to :data:`DEFAULT_CHUNK_ITEMS`.  Lets deployments tune the
    process backend's chunk size (e.g. when the multi-core speedup gate
    is marginal on a given host) without code edits.  **Chunk layout is
    part of the result for a fixed seed** — it decides the per-chunk
    RNG streams — so this is a solver-level knob on par with
    ``SolverOptions.chunk_items`` (which takes precedence), and an
    unparseable or non-positive value raises :class:`ValueError` rather
    than silently changing the layout.
    """

    def parse(env: str | None) -> int:
        if not env:
            return DEFAULT_CHUNK_ITEMS
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value < 1:
            raise ValueError(
                f"REPRO_CHUNK_ITEMS must be a positive integer, "
                f"got {env!r}")
        return value

    return _env_cached("REPRO_CHUNK_ITEMS", parse)


#: Default number of *re*-dispatches after a transient chunk failure
#: (so ``DEFAULT_RETRIES + 1`` total attempts).
DEFAULT_RETRIES = 2


def default_retries() -> int:
    """Transient-failure retry budget from ``REPRO_RETRIES``.

    Defaults to :data:`DEFAULT_RETRIES`; must be a non-negative
    integer (``0`` disables re-dispatch entirely).
    """

    def parse(env: str | None) -> int:
        if not env:
            return DEFAULT_RETRIES
        try:
            value = int(env)
        except ValueError:
            value = -1
        if value < 0:
            raise ValueError(
                f"REPRO_RETRIES must be a non-negative integer, "
                f"got {env!r}")
        return value

    return _env_cached("REPRO_RETRIES", parse)


def default_chunk_timeout() -> float | None:
    """Per-dispatch stall timeout (seconds) from ``REPRO_CHUNK_TIMEOUT``.

    ``None`` (the default, when unset or empty) disables stall
    detection.  When set, the process backend treats *no chunk
    completing for this many seconds* as a hung dispatch: it kills the
    pool and re-dispatches the unfinished chunks under the retry
    budget.
    """

    def parse(env: str | None) -> float | None:
        if not env or not env.strip():
            return None
        try:
            value = float(env)
        except ValueError:
            value = 0.0
        if value <= 0:
            raise ValueError(
                f"REPRO_CHUNK_TIMEOUT must be a positive number of "
                f"seconds, got {env!r}")
        return value

    return _env_cached("REPRO_CHUNK_TIMEOUT", parse)


def default_degrade() -> bool:
    """Backend-degradation gate from ``REPRO_DEGRADE`` (default off).

    Off by default so tests (and anything that *wants* to observe
    failures) see :class:`~repro.errors.ExecutionError` after retry
    exhaustion; the CLI turns it on so interactive solves survive.
    """

    def parse(env: str | None) -> bool:
        value = (env or "").strip().lower()
        if value in ("", "0", "false", "no", "off"):
            return False
        if value in ("1", "true", "yes", "on"):
            return True
        raise ValueError(
            f"REPRO_DEGRADE must be a boolean (0/1/true/false), "
            f"got {env!r}")

    return _env_cached("REPRO_DEGRADE", parse)


def default_ship_solves() -> bool:
    """Shipped-solve gate from ``REPRO_SHIP_SOLVES`` (default off).

    When on, the blocked column solves (Richardson/PCG/Chebyshev) run
    as picklable payload + pure task through :meth:`run_shipped` —
    crossing the process boundary under the process and distributed
    backends — instead of dispatching closures onto the thread pool.
    Results are bit-identical either way (that is what the backend
    matrix asserts); the knob only moves where the work runs.
    ``SolverOptions.ship_solves`` takes precedence when set.
    """

    def parse(env: str | None) -> bool:
        value = (env or "").strip().lower()
        if value in ("", "0", "false", "no", "off"):
            return False
        if value in ("1", "true", "yes", "on"):
            return True
        raise ValueError(
            f"REPRO_SHIP_SOLVES must be a boolean (0/1/true/false), "
            f"got {env!r}")

    return _env_cached("REPRO_SHIP_SOLVES", parse)


def default_coalesce() -> bool:
    """Emitted-edge coalescing gate from ``REPRO_COALESCE`` (default
    off).

    When on, the elimination loops' incremental walk store merges each
    round's emitted parallel edges per ``{u, v}`` pair (and folds them
    into previously coalesced live slots), shrinking heavy-row degrees,
    alias-plane rebuild cost, and peak edge memory (DESIGN.md §11).
    The Laplacian is preserved exactly; walk realisations change
    *distributionally* (per flag setting results stay bit-deterministic
    across backends and worker counts).  ``SolverOptions.
    coalesce_emitted`` takes precedence when set; legacy baselines are
    structurally pinned off (they never build the store).
    """

    def parse(env: str | None) -> bool:
        value = (env or "").strip().lower()
        if value in ("", "0", "false", "no", "off"):
            return False
        if value in ("1", "true", "yes", "on"):
            return True
        raise ValueError(
            f"REPRO_COALESCE must be a boolean (0/1/true/false), "
            f"got {env!r}")

    return _env_cached("REPRO_COALESCE", parse)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-dispatch policy for transient chunk failures.

    Parameters
    ----------
    max_attempts:
        Total dispatch attempts per chunk (first try + retries).
    base_delay:
        Backoff before retry round ``r`` is ``base_delay * 2**(r-1)``
        seconds — exponential, per round (not per chunk).
    timeout:
        Stall timeout in seconds for the process backend: if no chunk
        completes for this long, the pool is presumed hung, its
        workers are killed, and the unfinished chunks are
        re-dispatched.  ``None`` disables stall detection.

    Transient failures are worker crashes (``BrokenProcessPool``),
    stall timeouts, and injected faults
    (:class:`repro.pram.faults.InjectedFault`).  Everything else — a
    task raising ``ValueError``, say — is deterministic and propagates
    unchanged on the first attempt.  Because chunk layout and RNG
    streams are functions of problem size only (DESIGN.md §6), a
    re-dispatched chunk is bit-identical to what the lost attempt
    would have produced, so retries never change results.
    """

    max_attempts: int = DEFAULT_RETRIES + 1
    base_delay: float = 0.05
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be None or positive")

    def delay(self, retry_round: int) -> float:
        """Backoff before retry round ``retry_round`` (1-based)."""
        return self.base_delay * (2.0 ** max(0, retry_round - 1))

    @classmethod
    def from_env(cls) -> "RetryPolicy":
        """Policy from ``REPRO_RETRIES``/``REPRO_CHUNK_TIMEOUT``."""
        return cls(max_attempts=default_retries() + 1,
                   timeout=default_chunk_timeout())


_retryable_types: tuple | None = None


def _is_transient(exc: BaseException) -> bool:
    """Is ``exc`` a transient failure the retry policy may re-dispatch?"""
    global _retryable_types
    if _retryable_types is None:
        from concurrent.futures.process import BrokenProcessPool

        from repro.pram.faults import InjectedFault

        _retryable_types = (InjectedFault, TimeoutError, BrokenProcessPool,
                            TransportError)
    return isinstance(exc, _retryable_types)


def chunk_ranges(n: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``chunks`` contiguous ``(lo, hi)`` pieces.

    The pieces differ in size by at most one and cover the range exactly;
    empty pieces are omitted (so fewer than ``chunks`` pairs may return).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    chunks = min(chunks, max(n, 1))
    base, extra = divmod(n, chunks)
    out: list[tuple[int, int]] = []
    lo = 0
    for i in range(chunks):
        hi = lo + base + (1 if i < extra else 0)
        if hi > lo:
            out.append((lo, hi))
        lo = hi
    return out


def parallel_map(fn: Callable[[T], R],
                 items: Sequence[T],
                 workers: int | None = None) -> list[R]:
    """Map ``fn`` over ``items``, optionally with a thread pool.

    Results preserve input order.  With ``workers`` ``None`` or ≤ 1 the
    map runs serially in the calling thread (no pool overhead).

    The pool is deliberately *transient* (unlike the persistent process
    pools below): keeping idle worker threads alive between dispatches
    would mean the process backend's ``fork`` happens in a threaded
    parent — CPython's fork-with-threads hazard.  Tearing the pool down
    per call guarantees a thread-free fork whenever backends are mixed
    in one session, at ~tens of µs per dispatch.
    """
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def run_column_chunks(ctx: "ExecutionContext", b: np.ndarray,
                      run_block: Callable[..., R],
                      cols: Sequence[np.ndarray | float | None] = (),
                      col_ids: np.ndarray | None = None
                      ) -> list[R] | None:
    """Shared broadcast–slice–dispatch for column-blocked solves.

    The blocked iterative kernels (Richardson, PCG, Chebyshev) all
    chunk an ``(n, k)`` right-hand-side block the same way: split the
    ``k`` columns into the context's size-determined (hence worker- and
    backend-independent) column chunks, broadcast every per-column
    parameter (scalar, length-``k`` array, or ``None``) to a ``(k,)``
    vector, slice block and parameters per chunk, and run the chunks on
    the context's pool.  This helper is that shared mechanics;
    result-type-specific merging (hstack of solutions, max of iteration
    counts, ...) stays with each caller.

    Every chunk additionally receives its slice of ``col_ids`` — the
    global right-hand-side column index of each local column (defaults
    to ``arange(k)``) — as the final positional argument, so breakdown
    quarantine and ``nan:col=N`` fault directives keep addressing
    columns by their caller-visible index inside a chunk.

    Returns the per-chunk ``run_block(b_chunk, *col_chunks, ids_chunk)``
    results in column order, or ``None`` when the layout is a single
    chunk — callers fall through to their unchunked path (avoiding the
    pool and sub-ledger overhead for small blocks).
    """
    k = b.shape[1]
    pieces = ctx.column_chunks(k)
    if len(pieces) <= 1:
        return None
    bc = [None if c is None
          else np.broadcast_to(np.asarray(c, dtype=np.float64), (k,)).copy()
          for c in cols]
    ids = np.arange(k, dtype=np.int64) if col_ids is None \
        else np.asarray(col_ids, dtype=np.int64)

    def one(lo: int, hi: int) -> R:
        return run_block(b[:, lo:hi],
                         *[None if c is None else c[lo:hi] for c in bc],
                         ids[lo:hi])

    return ctx.run_chunks(one, pieces, scope="columns")


# -- shared-memory payloads ---------------------------------------------------

#: Byte alignment of each array inside a payload segment (cache line).
_SHM_ALIGN = 64

#: Segments created by this process that are not yet unlinked.  The
#: dispatch sites close entries in a ``finally``; the ``atexit`` hook
#: below sweeps whatever a crash left behind.
_live_segments: dict[str, object] = {}

_segment_counter = itertools.count()


def _fresh_segment_name() -> str:
    # Short (macOS caps shm names at 31 chars) and unique per process.
    return f"repro-{os.getpid()}-{next(_segment_counter)}"


def live_segment_names() -> tuple[str, ...]:
    """Names of shared-memory segments this process currently owns.

    Empty whenever no shipped dispatch is in flight — the cleanup tests
    assert exactly that after solver teardown.
    """
    return tuple(_live_segments)


@atexit.register
def _cleanup_segments() -> None:  # pragma: no cover - crash path
    for shm in list(_live_segments.values()):
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass
    _live_segments.clear()


class SharedPayload:
    """One shared-memory segment holding a dict of immutable arrays.

    The parent copies every array into a single aligned segment at
    construction and hands workers a tiny picklable ``spec``
    (segment name + per-array dtype/shape/offset).  Lifecycle: the
    creating process owns the segment — :meth:`close` (always called in
    the dispatch's ``finally``) closes **and unlinks** it; the
    module-level registry plus ``atexit`` hook make the unlink
    crash-safe.  Workers only ever attach and close.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        from multiprocessing import shared_memory

        fields: list[tuple[str, str, tuple[int, ...], int]] = []
        prepared: list[tuple[np.ndarray, int]] = []
        offset = 0
        for key, arr in arrays.items():
            a = np.ascontiguousarray(arr)
            offset = -(-offset // _SHM_ALIGN) * _SHM_ALIGN
            fields.append((key, a.dtype.str, a.shape, offset))
            prepared.append((a, offset))
            offset += a.nbytes
        while True:
            try:
                self._shm = shared_memory.SharedMemory(
                    create=True, size=max(offset, 1),
                    name=_fresh_segment_name())
                break
            except FileExistsError:
                # A hard-killed earlier run with a recycled pid left a
                # stale segment under this name; the counter advances
                # every attempt, so skipping to the next name converges.
                continue
        _live_segments[self._shm.name] = self._shm
        for a, off in prepared:
            if a.nbytes:
                view = np.ndarray(a.shape, dtype=a.dtype,
                                  buffer=self._shm.buf, offset=off)
                view[...] = a
        #: Picklable description workers attach from.
        self.spec: tuple = (self._shm.name, tuple(fields))

    @property
    def nbytes(self) -> int:
        """Size of the backing segment in bytes."""
        return self._shm.size

    def close(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._shm.name in _live_segments:
            _live_segments.pop(self._shm.name, None)
            try:
                self._shm.close()
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class PersistentPayload:
    """A shared-memory payload that outlives individual dispatches.

    :class:`SharedPayload` is per-dispatch: published before the chunks
    run, unlinked in the dispatch's ``finally``.  The solver's chain
    payload (DESIGN.md §10) must instead live as long as the solver —
    it is published once, attached once per worker (the LRU keeps it
    resident), and reused by every shipped solve dispatch.  This
    wrapper owns that lifecycle: :meth:`ensure` lazily (re)publishes
    the segment — including after an external teardown such as the
    ``atexit`` sweep — and :meth:`close` unlinks it on solver close or
    GC, after which :func:`live_segment_names` is empty again.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        self.arrays = dict(arrays)
        self._payload: SharedPayload | None = None
        self._fingerprint: str | None = None

    def ensure(self) -> SharedPayload:
        """The live segment, publishing (or re-publishing) on demand."""
        if self._payload is None \
                or self._payload.spec[0] not in _live_segments:
            self._payload = SharedPayload(self.arrays)
        return self._payload

    def fingerprint(self) -> str:
        """Content hash of the payload arrays (cached; the in-band
        transport's attach-once cache key — DESIGN.md §13)."""
        if self._fingerprint is None:
            from repro.pram.transport import payload_fingerprint

            self._fingerprint = payload_fingerprint(self.arrays)
        return self._fingerprint

    @property
    def nbytes(self) -> int:
        """Host-side bytes of the payload arrays (segment-size proxy)."""
        return sum(int(np.asarray(a).nbytes)
                   for a in self.arrays.values())

    def close(self) -> None:
        """Unlink the segment if published (idempotent)."""
        if self._payload is not None:
            self._payload.close()
            self._payload = None

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass


# Worker-side attachment cache: segment name → (SharedMemory, arrays).
# Segment names are never reused, so a cache hit can only come from a
# payload that is still the *current* one for its role.  Two roles
# coexist since shipped solves landed: the per-dispatch payload (RHS
# block and column params, fresh each dispatch) and the solver's
# persistent chain payload (attached once, reused across every solve
# dispatch).  Two slots hold exactly one of each — the worker touches
# the chain payload first on every chunk, so LRU eviction always
# reclaims the previous dispatch's payload, never the chain.  Keeping
# the bound tight matters because an unlinked segment's pages are freed
# only when the last mapping closes: a larger cache would pin that many
# dead payloads in every worker's RSS.
_attached: "OrderedDict[str, tuple]" = OrderedDict()
_ATTACH_CACHE = 2


def _attach_payload(spec: tuple) -> dict[str, np.ndarray]:
    """Attach (or reuse) a payload segment and rebuild its array views."""
    from multiprocessing import shared_memory

    name, fields = spec
    hit = _attached.get(name)
    if hit is not None:
        _attached.move_to_end(name)
        return hit[1]
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13 has no ``track`` parameter: attaching would
        # enrol the segment with the resource tracker a second time,
        # and the tracker would see one more unregister than register
        # once the parent unlinks.  The parent owns the lifecycle, so
        # suppress the worker-side registration entirely.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = (
            lambda rname, rtype: None if rtype == "shared_memory"
            else original(rname, rtype))
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    arrays: dict[str, np.ndarray] = {}
    for key, dtype, shape, offset in fields:
        view = np.ndarray(shape, dtype=np.dtype(dtype),
                          buffer=shm.buf, offset=offset)
        view.setflags(write=False)
        arrays[key] = view
    _attached[name] = (shm, arrays)
    while len(_attached) > _ATTACH_CACHE:
        _, (old_shm, old_arrays) = _attached.popitem(last=False)
        old_arrays.clear()
        try:
            old_shm.close()
        except BufferError:  # pragma: no cover - a view escaped; keep
            pass             # the mapping alive until process exit
    return arrays


# -- worker-process entry -----------------------------------------------------


def _execute_shipped_chunk(arrays_or_fn, task, meta, lo, hi, seed_seq,
                           bitgen_cls, want_ledger, fault_directives=(),
                           chunk=0, attempt=0):
    """Transport-agnostic core of one shipped chunk.

    Rebuilds the chunk's RNG stream from its spawned seed sequence
    (identical to the in-process child stream) and hands the task an
    explicit fresh sub-ledger — the task installs it only around the
    work that the in-process path would have charged, so ledger totals
    stay backend-invariant.  Exceptions are returned, not raised, so
    every chunk runs and the parent re-raises deterministically.

    ``arrays_or_fn`` is either the resolved array dict or a zero-arg
    callable producing it — the callable runs *inside* the try, so
    payload-resolution failures (a vanished shm segment, a poisoned
    in-band payload) settle as ordinary failure triples the retry
    machinery can re-dispatch.

    ``fault_directives`` (pre-filtered kill/hang directives from an
    active :class:`repro.pram.faults.FaultPlan`) are applied before the
    payload resolves: a matching ``kill`` exits this process hard, a
    ``hang`` stalls it — both of which the parent's retry machinery
    must survive.
    """
    from repro.pram.ledger import WorkDepthLedger, detach_ledger

    # A fork start method may have copied the parent's ambient ledger
    # contextvar into this process — detach it so setup work (sampler
    # rebuilds, array reconstruction) charges nothing anywhere.
    detach_ledger()
    stream = None
    if seed_seq is not None:
        stream = np.random.Generator(bitgen_cls(seed_seq))
    ledger = WorkDepthLedger() if want_ledger else None
    try:
        if fault_directives:
            from repro.pram.faults import apply_worker_faults

            apply_worker_faults(fault_directives, chunk=chunk,
                                attempt=attempt)
        arrays = arrays_or_fn() if callable(arrays_or_fn) \
            else arrays_or_fn
        return True, task(arrays, meta, lo, hi, stream, ledger), ledger
    except Exception as exc:
        return False, exc, ledger


def _shipped_worker(spec, task, meta, lo, hi, seed_seq, bitgen_cls,
                    want_ledger, fault_directives=(), chunk=0, attempt=0,
                    shared_spec=None):
    """Run one shipped chunk inside a shared-memory worker process.

    The process backend's entry point: reconstructs the array views
    from shared memory and delegates to :func:`_execute_shipped_chunk`.
    ``shared_spec`` is the spec of a :class:`PersistentPayload` (the
    solver's chain payload): attached **first** so the LRU keeps it
    hot across dispatches, its arrays merged under the dispatch
    payload's (dispatch keys win on collision).
    """
    def arrays_fn():
        shared_arrays = {} if shared_spec is None \
            else _attach_payload(shared_spec)
        arrays = _attach_payload(spec)
        if shared_arrays:
            arrays = {**shared_arrays, **arrays}
        return arrays

    return _execute_shipped_chunk(arrays_fn, task, meta, lo, hi,
                                  seed_seq, bitgen_cls, want_ledger,
                                  fault_directives, chunk, attempt)


def _run_shipped_inprocess(task, arrays, meta, pieces, seed_seqs,
                           bitgen_cls, want_ledger, workers,
                           backend_name="serial", policy=None,
                           scope=None, log=None, shared=None):
    """Shared in-process realisation of the shipped-task protocol.

    Used by the serial and thread backends: same task signature, same
    explicit sub-ledgers, same per-chunk streams as the process
    backend — only the transport (direct references vs shared memory)
    differs, so results and ledger totals cannot.

    Transient failures (injected faults — in-process chunks cannot
    genuinely crash a worker) are retried under ``policy`` with a
    fresh sub-ledger per attempt, so only the successful attempt's
    charges survive and ledger totals stay fault-invariant.  A chunk
    that exhausts its attempts settles as a
    :class:`~repro.errors.ExecutionError` triple.
    """
    from repro.pram import faults as _faults
    from repro.pram.ledger import WorkDepthLedger

    plan = _faults.active_plan()
    if shared is not None:
        # In-process there is no boundary to cross: hand the task the
        # persistent payload's host arrays directly (dispatch keys win,
        # mirroring the worker-side merge).
        arrays = {**shared.arrays, **arrays}

    def one(i: int, attempt: int = 0):
        lo, hi = pieces[i]
        stream = None
        if seed_seqs[i] is not None:
            stream = np.random.Generator(bitgen_cls(seed_seqs[i]))
        ledger = WorkDepthLedger() if want_ledger else None
        try:
            if plan is not None:
                _faults.apply_chunk_faults(plan, chunk=i, attempt=attempt,
                                           backend=backend_name,
                                           phase=scope, log=log)
            return True, task(arrays, meta, lo, hi, stream, ledger), ledger
        except Exception as exc:
            return False, exc, ledger

    results = parallel_map(one, range(len(pieces)), workers=workers)
    max_attempts = policy.max_attempts if policy is not None else 1
    for retry_round in range(1, max_attempts):
        failed = [i for i, (ok, val, _) in enumerate(results)
                  if not ok and _is_transient(val)]
        if not failed:
            break
        if log is not None:
            for i in failed:
                log.record("retry", chunk=i, attempt=retry_round,
                           backend=backend_name,
                           detail=repr(results[i][1]))
        time.sleep(policy.delay(retry_round))
        redo = parallel_map(lambda i: one(i, retry_round), failed,
                            workers=workers)
        for i, triple in zip(failed, redo):
            results[i] = triple
    for i, (ok, val, _) in enumerate(results):
        if not ok and _is_transient(val):
            if log is not None:
                log.record("exhausted", chunk=i, attempt=max_attempts,
                           backend=backend_name, detail=repr(val))
            results[i] = (False, ExecutionError(
                f"chunk {i} failed after {max_attempts} attempt(s) "
                f"on the {backend_name} backend",
                chunk=i, attempts=max_attempts, cause=val), None)
    return results


# -- persistent process pools -------------------------------------------------

_pools: dict[int, ProcessPoolExecutor] = {}


def _process_pool(workers: int) -> ProcessPoolExecutor:
    """A persistent pool per worker count (forked lazily, reused)."""
    pool = _pools.get(workers)
    if pool is None:
        import multiprocessing

        method = "fork" if "fork" in multiprocessing.get_all_start_methods() \
            else "spawn"
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(method))
        _pools[workers] = pool
    return pool


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter exit
    for pool in _pools.values():
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
    _pools.clear()


# -- backends -----------------------------------------------------------------


class ExecutionBackend:
    """Where a fixed chunk layout actually runs.

    Backends are pure *schedulers*: they receive chunk boundaries, RNG
    seed keys, and (for shipped tasks) an array payload, and return the
    per-chunk ``(ok, result_or_exc, subledger)`` triples in chunk
    order.  They must not influence chunk layout, stream assignment, or
    charge attribution — that is what keeps results bit-identical
    across ``{serial, thread, process}``.

    Two entry points:

    * :meth:`map` — run arbitrary in-process callables (closures
      allowed).  This serves the numpy-bound chunk dispatches.
    * :meth:`run_shipped` — run a *module-level* task function over a
      dict of immutable arrays.  Only this form can cross a process
      boundary (the task is pickled by reference, the arrays travel
      through shared memory, and each chunk job pickles only
      ``(chunk bounds, seed key)``).
    """

    name: str = "abstract"

    def map(self, fn: Callable[[T], R], items: Sequence[T],
            workers: int) -> list[R]:
        """Run an in-process map over ``items`` (closures allowed)."""
        raise NotImplementedError

    def run_shipped(self, task, arrays, meta, pieces, seed_seqs,
                    bitgen_cls, want_ledger, workers, policy=None,
                    scope=None, log=None, shared=None) -> list:
        """Run a shippable task; ``(ok, value, ledger)`` per chunk.

        ``policy`` is the :class:`RetryPolicy` governing transient
        failures, ``scope`` labels the dispatch for fault-plan
        matching (``"walk"``/``"columns"``/``"solve"``), ``log`` is an
        optional :class:`repro.pram.faults.FaultLog` that receives
        every recovery action, and ``shared`` is an optional
        :class:`PersistentPayload` whose arrays are merged under the
        dispatch payload (the solver's chain payload, published once
        per solver rather than once per dispatch).
        """
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Run every chunk in the calling thread — the reference semantics
    all other backends must reproduce bit-for-bit."""

    name = "serial"

    def map(self, fn, items, workers):
        """Sequential in-thread map (``workers`` is ignored)."""
        return [fn(x) for x in items]

    def run_shipped(self, task, arrays, meta, pieces, seed_seqs,
                    bitgen_cls, want_ledger, workers, policy=None,
                    scope=None, log=None, shared=None):
        """Run the shipped-task protocol sequentially in-process."""
        return _run_shipped_inprocess(task, arrays, meta, pieces,
                                      seed_seqs, bitgen_cls, want_ledger,
                                      workers=1, backend_name=self.name,
                                      policy=policy, scope=scope, log=log,
                                      shared=shared)


class ThreadPoolBackend(ExecutionBackend):
    """Thread-pool scheduling (the PR-3 behaviour): genuine concurrency
    for chunks whose numpy kernels release the GIL."""

    name = "thread"

    def map(self, fn, items, workers):
        """Thread-pool map (serial when ``workers <= 1``)."""
        return parallel_map(fn, items, workers=workers)

    def run_shipped(self, task, arrays, meta, pieces, seed_seqs,
                    bitgen_cls, want_ledger, workers, policy=None,
                    scope=None, log=None, shared=None):
        """Run the shipped-task protocol on the thread pool."""
        return _run_shipped_inprocess(task, arrays, meta, pieces,
                                      seed_seqs, bitgen_cls, want_ledger,
                                      workers=workers,
                                      backend_name=self.name,
                                      policy=policy, scope=scope, log=log,
                                      shared=shared)


class ProcessPoolBackend(ExecutionBackend):
    """Process-pool scheduling over shared-memory array payloads.

    Shipped tasks run on a persistent worker pool; the payload arrays
    cross the process boundary once per dispatch through one shared
    segment, and each chunk job pickles only its slice bounds and
    seed-spawn key.  Closure-based dispatches (:meth:`map`) cannot be
    pickled, so they fall back to the thread pool — those sites are
    numpy-bound column loops that already scale under threads, which is
    exactly why only the walker phase ships.
    """

    name = "process"

    def map(self, fn, items, workers):
        """Closures cannot cross the process boundary — run them on
        the thread pool (those dispatch sites are numpy-bound and
        release the GIL; see the class docstring)."""
        return parallel_map(fn, items, workers=workers)

    def run_shipped(self, task, arrays, meta, pieces, seed_seqs,
                    bitgen_cls, want_ledger, workers, policy=None,
                    scope=None, log=None, shared=None):
        """Publish ``arrays`` once via shared memory and run the chunks
        on the persistent process pool, surviving worker crashes and
        stalls via deterministic re-dispatch.

        Per-chunk futures are tracked individually.  When a worker
        dies (``BrokenProcessPool``) or no chunk completes within the
        policy's stall ``timeout``, the done futures are drained, the
        still-pending ones cancelled, the pool torn down (stalled
        workers killed) and rebuilt, and **only the unfinished
        chunks** are re-submitted with their original ``(lo, hi,
        seed_key)`` — with per-chunk streams a function of chunk index
        only, the retried chunk is bit-identical to what the lost
        attempt would have produced.  Attempts are bounded by
        ``policy.max_attempts`` with exponential backoff between
        rounds; a chunk that exhausts its budget settles as an
        :class:`~repro.errors.ExecutionError` triple (the caller may
        then degrade to a weaker backend).  The payload segment
        persists across attempts — re-published defensively if torn
        down — and is always unlinked in the ``finally``.
        """
        from concurrent.futures import FIRST_COMPLETED, wait
        from concurrent.futures.process import BrokenProcessPool

        from repro.pram import faults as _faults

        nworkers = max(1, workers)
        max_attempts = policy.max_attempts if policy is not None else 1
        timeout = policy.timeout if policy is not None else None
        plan = _faults.active_plan()
        directives = () if plan is None else \
            plan.chunk_directives(backend=self.name, phase=scope)

        results: list = [None] * len(pieces)
        pending = list(range(len(pieces)))
        attempt = 0
        payload = SharedPayload(arrays)
        try:
            while True:
                if payload.spec[0] not in _live_segments:
                    # The segment was torn down (e.g. by an atexit
                    # sweep racing a crash) — publish a fresh one.
                    payload = SharedPayload(arrays)
                # The persistent payload (if any) is owned by the
                # caller — ensure it is live, never close it here.
                shared_spec = None if shared is None \
                    else shared.ensure().spec
                pool = _process_pool(nworkers)
                futures: dict = {}
                broken = False
                try:
                    for i in pending:
                        lo, hi = pieces[i]
                        fut = pool.submit(
                            _shipped_worker, payload.spec, task, meta,
                            lo, hi, seed_seqs[i], bitgen_cls, want_ledger,
                            directives, i, attempt, shared_spec)
                        futures[fut] = i
                except BrokenProcessPool:
                    broken = True

                stalled = False
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(not_done, timeout=timeout,
                                          return_when=FIRST_COMPLETED)
                    if not done:
                        stalled = True
                        break

                # Drain everything that finished; cancel the rest.
                still_pending: list[int] = []
                causes: dict[int, BaseException] = {}
                for fut, i in futures.items():
                    if fut.done() and not fut.cancelled():
                        try:
                            triple = fut.result()
                        except BrokenProcessPool as exc:
                            broken = True
                            still_pending.append(i)
                            causes[i] = exc
                            continue
                        except Exception as exc:  # pragma: no cover
                            still_pending.append(i)
                            causes[i] = exc
                            continue
                        ok, val, _ = triple
                        if ok or not _is_transient(val):
                            results[i] = triple
                        else:
                            still_pending.append(i)
                            causes[i] = val
                    else:
                        fut.cancel()
                        still_pending.append(i)
                        causes[i] = TimeoutError(
                            f"chunk {i} did not complete within "
                            f"{timeout}s (stalled dispatch)") if stalled \
                            else BrokenProcessPool(
                                f"chunk {i} lost to a dead worker")
                still_pending.extend(i for i in pending
                                     if i not in causes
                                     and results[i] is None)
                for i in still_pending:
                    causes.setdefault(i, BrokenProcessPool(
                        f"chunk {i} was never scheduled"))

                if broken or stalled:
                    # Tear the pool down: a broken pool is unusable,
                    # and a stalled one has wedged workers that must
                    # be killed before a rebuild can make progress.
                    _pools.pop(nworkers, None)
                    try:
                        procs = list((pool._processes or {}).values())
                    except Exception:  # pragma: no cover
                        procs = []
                    pool.shutdown(wait=False, cancel_futures=True)
                    if stalled:
                        for proc in procs:
                            try:
                                proc.terminate()
                            except Exception:  # pragma: no cover
                                pass
                    if log is not None:
                        log.record(
                            "timeout" if stalled else "pool_rebuild",
                            backend=self.name, attempt=attempt,
                            detail=f"chunks {sorted(still_pending)} "
                                   f"unfinished")

                if not still_pending:
                    return results
                attempt += 1
                if attempt >= max_attempts:
                    for i in sorted(still_pending):
                        if log is not None:
                            log.record("exhausted", chunk=i,
                                       attempt=max_attempts,
                                       backend=self.name,
                                       detail=repr(causes.get(i)))
                        results[i] = (False, ExecutionError(
                            f"chunk {i} failed after {max_attempts} "
                            f"attempt(s) on the process backend",
                            chunk=i, attempts=max_attempts,
                            cause=causes.get(i)), None)
                    return results
                if log is not None:
                    for i in sorted(still_pending):
                        log.record("retry", chunk=i, attempt=attempt,
                                   backend=self.name,
                                   detail=repr(causes.get(i)))
                if policy is not None:
                    time.sleep(policy.delay(attempt))
                pending = sorted(still_pending)
        finally:
            payload.close()


# -- distributed backend (hardened transport, DESIGN.md §13) ------------------

_dist_pools: dict[int, "TransportPool"] = {}


def _dist_pool(workers: int) -> "TransportPool":
    """A persistent transport pool per worker count, verified at checkout.

    Two liveness/coherence checks fix the capacity-rot failure mode of
    the PR-7 stub (a cached pool reused after workers died ran later
    dispatches under-provisioned):

    * a pool whose transport config (heartbeat interval, ACK timeout,
      session key) no longer matches the environment is torn down and
      rebuilt, so tests and operators changing ``REPRO_HEARTBEAT_S`` /
      ``REPRO_TRANSPORT_KEY`` get a coherent fleet without a restart;
    * otherwise :meth:`TransportPool.ensure_capacity` retires dead
      workers and tops the pool back up to its size.
    """
    from repro.pram import transport as _transport

    pool = _dist_pools.get(workers)
    if pool is not None:
        env_key = _transport.default_transport_key()
        want = (_transport.default_heartbeat_s(),
                _transport.default_ack_timeout(),
                env_key if env_key is not None else pool.config[2])
        if pool.config != want:
            _dist_pools.pop(workers, None)
            pool.shutdown(terminate=True)
            pool = None
        else:
            pool.ensure_capacity()
    if pool is None:
        pool = _transport.TransportPool(workers)
        _dist_pools[workers] = pool
    return pool


def shutdown_distributed_pools(terminate: bool = False) -> None:
    """Drain and discard every cached distributed pool.

    ``terminate=False`` is the graceful path: workers receive a stop
    message and are joined; stragglers are terminated.  Benchmarks and
    tests call this to prove teardown reaps every worker process.
    """
    pools = list(_dist_pools.values())
    _dist_pools.clear()
    for pool in pools:
        try:
            pool.shutdown(terminate=terminate)
        except Exception:  # pragma: no cover - best-effort teardown
            pass


def live_distributed_workers() -> tuple[int, ...]:
    """PIDs of all live workers across the cached distributed pools
    (empty after :func:`shutdown_distributed_pools` — the teardown
    gate benchmarks assert)."""
    pids: list[int] = []
    for pool in _dist_pools.values():
        pids.extend(pool.alive_pids())
    return tuple(pids)


@atexit.register
def _shutdown_dist_pools() -> None:  # pragma: no cover - interpreter exit
    shutdown_distributed_pools(terminate=True)


class DistributedBackend(ExecutionBackend):
    """Multi-node execution over the hardened transport.

    Same contract as :class:`ProcessPoolBackend` — chunk layout a
    function of problem size only, per-chunk seed keys, fork/join
    ledgers, bounded retries with stall timeouts — but jobs travel
    over authenticated, checksummed, heartbeat-monitored connections
    (:mod:`repro.pram.transport`, DESIGN.md §13) and scheduling is
    lease-based: a worker death loses only its leased chunk, which is
    re-queued while a **replacement worker** is spawned in place — the
    pool is never torn down mid-round.

    Payloads ship per ``REPRO_TRANSPORT``: ``shm`` publishes one
    shared-memory segment per dispatch (same-host fast path), ``tcp``
    ships the arrays in-band as chunked frames against a worker-side
    attach-once cache keyed on content fingerprints — no ``/dev/shm``
    assumption, and bit-identical results either way.
    """

    name = "distributed"

    def map(self, fn, items, workers):
        """Closures cannot cross a socket — run them on the thread
        pool (same rationale as :meth:`ProcessPoolBackend.map`)."""
        return parallel_map(fn, items, workers=workers)

    def run_shipped(self, task, arrays, meta, pieces, seed_seqs,
                    bitgen_cls, want_ledger, workers, policy=None,
                    scope=None, log=None, shared=None):
        """Dispatch the chunks under worker leases, surviving deaths,
        stalls, and wire faults via deterministic re-dispatch."""
        from repro.pram import faults as _faults
        from repro.pram import transport as _transport

        nworkers = max(1, workers)
        plan = _faults.active_plan()
        job_directives = () if plan is None else (
            plan.chunk_directives(backend=self.name, phase=scope)
            + plan.transport_directives())
        frame_directives = () if plan is None else \
            plan.frame_directives()

        mode = _transport.default_transport()
        payload: SharedPayload | None = None
        payloads: dict[str, dict] = {}
        try:
            if mode == "tcp":
                dispatch_fp = _transport.payload_fingerprint(arrays)
                payloads[dispatch_fp] = dict(arrays)
                dispatch_ref = ("tcp", dispatch_fp)
                if shared is not None:
                    payloads[shared.fingerprint()] = shared.arrays
                    shared_ref = ("tcp", shared.fingerprint())
                else:
                    shared_ref = None
            else:
                payload = SharedPayload(arrays)
                dispatch_ref = ("shm", payload.spec)
                shared_ref = None if shared is None \
                    else ("shm", shared.ensure().spec)
            refs = (dispatch_ref, shared_ref)

            def make_args(i: int, attempt: int) -> tuple:
                lo, hi = pieces[i]
                return (dispatch_ref, shared_ref, task, meta, lo, hi,
                        seed_seqs[i], bitgen_cls, want_ledger,
                        job_directives, i, attempt)

            pool = _dist_pool(nworkers)
            return pool.run_tasks(len(pieces), make_args, refs,
                                  payloads, policy=policy, log=log,
                                  frame_directives=frame_directives,
                                  backend_name=self.name)
        finally:
            if payload is not None:
                payload.close()


_BACKENDS: dict[str, ExecutionBackend] = {
    "serial": SerialBackend(),
    "thread": ThreadPoolBackend(),
    "process": ProcessPoolBackend(),
    "distributed": DistributedBackend(),
}


def get_backend(name: str) -> ExecutionBackend:
    """The shared singleton backend instance for ``name``."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {BACKENDS}") from None


@dataclass(frozen=True)
class ExecutionContext:
    """Parallel-dispatch policy threaded through the solver stack.

    Parameters
    ----------
    workers:
        Worker count (threads or processes, per ``backend``).  ``None``
        (default) consults :func:`default_workers` lazily *at each
        dispatch*, so changing ``REPRO_WORKERS`` mid-session (or
        monkeypatching it in a test) takes effect immediately.  The
        worker count never influences results — only wall-clock.
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, or
        ``"distributed"`` — see :class:`ExecutionBackend`.  ``None``
        (default) consults the ``REPRO_BACKEND`` env var lazily
        (default ``"thread"``).  Like ``workers``, the backend never
        influences results.
    chunk_items:
        Target work items (walkers) per chunk for :meth:`item_chunks`.
        ``None`` (default) consults the ``REPRO_CHUNK_ITEMS`` env var
        lazily (default :data:`DEFAULT_CHUNK_ITEMS`) — see
        :func:`default_chunk_items`; an explicit value wins.
    chunk_columns:
        Target right-hand-side columns per chunk for
        :meth:`column_chunks`.
    max_chunks:
        Cap on the number of chunks per dispatch.
    retry:
        :class:`RetryPolicy` for transient chunk failures.  ``None``
        (default) builds one lazily from ``REPRO_RETRIES`` /
        ``REPRO_CHUNK_TIMEOUT`` at each dispatch.  Retries never
        influence results — a re-dispatched chunk is bit-identical.
    degrade:
        Whether retry-exhausted chunks fall back to a weaker backend
        (process→thread→serial) instead of raising
        :class:`~repro.errors.ExecutionError`.  ``None`` (default)
        consults ``REPRO_DEGRADE`` lazily (default off — tests want to
        *see* failures; the CLI turns it on).

    The three chunk-policy fields fully determine chunk boundaries from
    the problem size alone — see the module docstring for the
    determinism contract.
    """

    workers: int | None = None
    backend: str | None = None
    chunk_items: int | None = None
    chunk_columns: int = DEFAULT_CHUNK_COLUMNS
    max_chunks: int = MAX_CHUNKS
    retry: "RetryPolicy | None" = None
    degrade: bool | None = None

    def __post_init__(self) -> None:
        if (self.chunk_items is not None and self.chunk_items < 1) \
                or self.chunk_columns < 1 or self.max_chunks < 1:
            raise ValueError("chunk policy values must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be None or >= 1")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be None or one of {BACKENDS}, "
                f"got {self.backend!r}")
        if self.retry is not None and not isinstance(self.retry,
                                                     RetryPolicy):
            raise ValueError("retry must be None or a RetryPolicy")

    # -- worker/backend resolution --------------------------------------------

    def resolve_workers(self) -> int:
        """The worker count to use *right now* (lazy env consultation)."""
        if self.workers is not None:
            return self.workers
        return default_workers()

    def resolve_backend(self) -> str:
        """The backend name to use *right now* (lazy env consultation)."""
        if self.backend is not None:
            return self.backend
        return default_backend()

    def resolve_retry(self) -> "RetryPolicy":
        """The retry policy to use *right now* (lazy env consultation)."""
        if self.retry is not None:
            return self.retry
        return RetryPolicy.from_env()

    def resolve_degrade(self) -> bool:
        """Whether backend degradation is enabled *right now*."""
        if self.degrade is not None:
            return self.degrade
        return default_degrade()

    # -- deterministic chunk layout ------------------------------------------

    def _chunk_count(self, n: int, grain: int) -> int:
        if n <= 0:
            return 1
        return max(1, min(self.max_chunks, math.ceil(n / grain)))

    def resolve_chunk_items(self) -> int:
        """The item-chunk grain to use *right now* (lazy env lookup)."""
        if self.chunk_items is not None:
            return self.chunk_items
        return default_chunk_items()

    def item_chunks(self, n: int) -> list[tuple[int, int]]:
        """Chunk ``range(n)`` work items; layout depends only on ``n``
        and the chunk policy (explicit ``chunk_items`` or the
        ``REPRO_CHUNK_ITEMS`` env default)."""
        return chunk_ranges(n, self._chunk_count(n,
                                                 self.resolve_chunk_items()))

    def column_chunks(self, k: int) -> list[tuple[int, int]]:
        """Chunk ``k`` RHS columns; layout depends only on ``k``."""
        return chunk_ranges(k, self._chunk_count(k, self.chunk_columns))

    # -- dispatch ------------------------------------------------------------

    def _map_workers(self) -> int:
        return 1 if self.resolve_backend() == "serial" \
            else self.resolve_workers()

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Map ``fn`` over ``items`` on this context's backend.

        Closure-friendly (in-process) mapping: the serial backend runs
        in the calling thread, thread and process backends use the
        thread pool (see :class:`ProcessPoolBackend` for why closures
        never cross the process boundary).
        """
        return parallel_map(fn, items, workers=self._map_workers())

    def run_chunks(self,
                   fn: Callable[..., R],
                   pieces: Sequence[tuple[int, int]],
                   rng: np.random.Generator | None = None,
                   scope: str | None = None) -> list[R]:
        """Run ``fn(lo, hi[, stream])`` over ``pieces``, in parallel.

        ``pieces`` must come from :meth:`item_chunks` /
        :meth:`column_chunks` (or any layout derived from problem size
        only).  When ``rng`` is given, one independent child stream is
        spawned per piece — in piece order — and passed as the third
        argument; the parent generator's bit stream is not consumed.

        Ledger charges made inside each chunk are collected in private
        sub-ledgers and joined into the ambient ledger as a fork/join
        region (works add, depths max), so ledger totals are identical
        whether the chunks ran on one thread or many.  A raising chunk
        does not short-circuit the others: every chunk runs (and
        charges) regardless of worker count, then the lowest-index
        chunk's exception is re-raised — keeping both the ledger totals
        and the surfaced error deterministic.

        Transient failures (injected faults — see
        :mod:`repro.pram.faults`) are retried under
        :meth:`resolve_retry` with a fresh sub-ledger per attempt, so
        only the surviving attempt charges and both results and ledger
        totals stay fault-invariant.  ``scope`` labels the dispatch
        (``"walk"``/``"columns"``) for fault-directive ``phase=``
        matching.

        ``fn`` may be any in-process callable (closures welcome); use
        :meth:`run_shipped` for chunk work that should cross the
        process boundary under the process backend.
        """
        from repro.pram import faults as _faults
        from repro.pram.ledger import current_ledger, use_ledger

        streams: Sequence[np.random.Generator | None]
        if rng is not None:
            streams = rng.spawn(len(pieces))
        else:
            streams = [None] * len(pieces)

        parent = current_ledger()
        backend_name = self.resolve_backend()
        plan = _faults.active_plan()
        log = _faults.current_fault_log()

        def one(i: int, attempt: int = 0):
            lo, hi = pieces[i]
            args = (lo, hi) if streams[i] is None else (lo, hi, streams[i])
            sub = parent.__class__() if parent is not None else None
            try:
                if plan is not None:
                    _faults.apply_chunk_faults(plan, chunk=i,
                                               attempt=attempt,
                                               backend=backend_name,
                                               phase=scope, log=log)
                if sub is None:
                    return True, fn(*args), None
                with use_ledger(sub):
                    return True, fn(*args), sub
            except BaseException as exc:  # re-raised after the join
                return False, exc, sub

        triples = parallel_map(one, range(len(pieces)),
                               workers=self._map_workers())
        if plan is not None:
            policy = self.resolve_retry()
            for retry_round in range(1, policy.max_attempts):
                failed = [i for i, (ok, val, _) in enumerate(triples)
                          if not ok and _is_transient(val)]
                if not failed:
                    break
                if log is not None:
                    for i in failed:
                        log.record("retry", chunk=i, attempt=retry_round,
                                   backend=backend_name,
                                   detail=repr(triples[i][1]))
                time.sleep(policy.delay(retry_round))
                redo = parallel_map(lambda i: one(i, retry_round), failed,
                                    workers=self._map_workers())
                for i, triple in zip(failed, redo):
                    triples[i] = triple
            for i, (ok, val, _) in enumerate(triples):
                if not ok and _is_transient(val):
                    if log is not None:
                        log.record("exhausted", chunk=i,
                                   attempt=policy.max_attempts,
                                   backend=backend_name, detail=repr(val))
                    triples[i] = (False, ExecutionError(
                        f"chunk {i} failed after {policy.max_attempts} "
                        f"attempt(s) on the {backend_name} backend",
                        chunk=i, attempts=policy.max_attempts,
                        cause=val), None)
        if parent is not None:
            subs = [sub for _, _, sub in triples if sub is not None]
            if subs:
                parent.absorb_parallel(subs)
        for ok, val, _ in triples:
            if not ok:
                raise val
        return [val for _, val, _ in triples]

    def run_shipped(self,
                    task: Callable[..., R],
                    arrays: dict[str, np.ndarray],
                    meta: dict,
                    pieces: Sequence[tuple[int, int]],
                    rng: np.random.Generator | None = None,
                    scope: str | None = None,
                    shared: "PersistentPayload | None" = None) -> list[R]:
        """Run a shippable ``task`` over ``pieces`` on this backend.

        ``task`` must be a **module-level** function (pickled by
        reference under the process backend) with signature
        ``task(arrays, meta, lo, hi, stream, ledger)``:

        * ``arrays`` — the payload dict, reconstructed worker-side as
          read-only views over one shared-memory segment (direct
          references in-process);
        * ``meta`` — small picklable scalars;
        * ``stream`` — the chunk's spawned RNG stream (``None`` when no
          ``rng`` was given).  Identical to the stream
          :meth:`run_chunks` would have passed: the same
          ``SeedSequence`` child wrapped in the same bit-generator
          type;
        * ``ledger`` — a fresh sub-ledger when the caller had one
          installed, else ``None``.  The task must install it (via
          :func:`repro.pram.use_ledger`) only around the work the
          in-process path charges, keeping totals backend-invariant.

        Semantics mirror :meth:`run_chunks`: results in piece order,
        sub-ledgers joined fork/join into the ambient ledger, every
        chunk runs, and the lowest-index chunk's exception is re-raised
        after the join.

        Transient failures (worker crashes, stall timeouts, injected
        faults) are re-dispatched under :meth:`resolve_retry`; when
        :meth:`resolve_degrade` is on, chunks that exhaust their
        attempts fall back down the backend ladder
        (distributed→process→thread→serial) with the **same** seed
        keys — the fallback results are bit-identical, so degradation
        never changes answers, only where they were computed.
        ``scope`` labels the dispatch for fault-plan ``phase=``
        matching, and ``shared`` is an optional
        :class:`PersistentPayload` of long-lived arrays (the solver's
        chain payload) merged under the per-dispatch ``arrays`` —
        published once per owner, attached once per worker, never
        torn down by the dispatch.
        """
        from repro.pram import faults as _faults
        from repro.pram.ledger import current_ledger

        backend_name = self.resolve_backend()
        backend = get_backend(backend_name)
        parent = current_ledger()
        policy = self.resolve_retry()
        log = _faults.current_fault_log()
        if rng is not None:
            seed_seqs = rng.bit_generator.seed_seq.spawn(len(pieces))
            bitgen_cls = type(rng.bit_generator)
        else:
            seed_seqs = [None] * len(pieces)
            bitgen_cls = None
        outs = backend.run_shipped(task, arrays, meta, pieces, seed_seqs,
                                   bitgen_cls, parent is not None,
                                   self.resolve_workers(), policy=policy,
                                   scope=scope, log=log, shared=shared)
        if self.resolve_degrade():
            ladder = list(BACKENDS[:BACKENDS.index(backend_name)])[::-1]
            for fallback in ladder:
                failed = [i for i, (ok, val, _) in enumerate(outs)
                          if not ok and isinstance(val, ExecutionError)]
                if not failed:
                    break
                if log is not None:
                    log.record("degrade", backend=fallback,
                               detail=f"chunks {failed} fell back "
                                      f"{backend_name}->{fallback}")
                sub = get_backend(fallback).run_shipped(
                    task, arrays, meta, [pieces[i] for i in failed],
                    [seed_seqs[i] for i in failed], bitgen_cls,
                    parent is not None, self.resolve_workers(),
                    policy=policy, scope=scope, log=log, shared=shared)
                for i, triple in zip(failed, sub):
                    outs[i] = triple
        subs = [sub for _, _, sub in outs if sub is not None]
        if parent is not None and subs:
            parent.absorb_parallel(subs)
        for ok, value, _ in outs:
            if not ok:
                raise value
        return [value for _, value, _ in outs]


#: Shared all-defaults context (lazy ``REPRO_WORKERS``/``REPRO_BACKEND``
#: resolution).
ExecutionContext.DEFAULT = ExecutionContext()


# -- shipped blocked solves (DESIGN.md §10) -----------------------------------


def _solve_chunk_task(arrays, meta, lo, hi, stream, ledger):
    """Shipped blocked-solve chunk: reconstruct, iterate, report.

    The worker-side half of :class:`SolveShipment`.  ``arrays`` merges
    the solver's persistent chain payload (per-level CSR blocks, Jacobi
    diagonals, ``final_pinv``, the Laplacian CSR triple) with the
    per-dispatch payload (RHS block, per-column parameter vectors,
    global column ids).  The task rebuilds view-only operators over
    those arrays — :meth:`CholeskyChain.from_payload` plus a CSR
    ``apply_L`` closure with the in-process path's exact ledger charge
    — and runs the requested blocked kernel on its column slice
    ``[lo, hi)``, charging only inside the explicit sub-ledger so
    totals stay backend-invariant.

    Returns ``(kernel_result, fault_events)``: quarantine/injection
    events recorded by the kernel land in a chunk-local
    :class:`~repro.pram.faults.FaultLog` (contextvars do not cross the
    process boundary) and are merged into the caller's ambient log in
    chunk order.
    """
    import scipy.sparse as sp

    from repro.core.apply_cholesky import ApplyCholeskyOperator
    from repro.core.chain import CholeskyChain
    from repro.pram import charge, ledger_active, use_ledger
    from repro.pram import primitives as P
    from repro.pram.faults import FaultLog

    n = int(meta["n"])
    m_edges = int(meta["m_edges"])
    chain = CholeskyChain.from_payload(arrays, meta["chain"])
    precond = ApplyCholeskyOperator(chain)
    L = sp.csr_matrix((arrays["L_data"], arrays["L_indices"],
                       arrays["L_indptr"]), shape=(n, n), copy=False)

    def apply_L(x):
        x = np.asarray(x, dtype=np.float64)
        if ledger_active():
            charge(*P.matvec_cost(m_edges * x.shape[1]),
                   label="apply_laplacian")
        return L @ x

    b = arrays["rhs"][:, lo:hi]
    cols = [None if key is None else arrays[key][lo:hi]
            for key in meta["col_params"]]
    ids = arrays["col_ids"][lo:hi]
    plan = meta["plan"]
    flog = FaultLog()
    params = dict(meta["params"])
    kernel = meta["kernel"]

    def run():
        if kernel == "richardson":
            from repro.core.richardson import _blocked_richardson

            return _blocked_richardson(
                apply_L, precond.apply, b, eps=cols[0],
                col_ids=ids, plan=plan, flog=flog, **params)
        if kernel == "cg":
            from repro.linalg.cg import _blocked_cg

            prec = precond.apply if params.pop("preconditioned") else None
            return _blocked_cg(apply_L, b, tol=cols[0],
                               preconditioner=prec, col_ids=ids,
                               plan=plan, flog=flog, **params)
        if kernel == "chebyshev":
            from repro.linalg.chebyshev import _blocked_chebyshev

            return _blocked_chebyshev(apply_L, precond.apply, b,
                                      tol=cols[0], col_ids=ids,
                                      plan=plan, flog=flog, **params)
        raise ValueError(f"unknown shipped kernel {kernel!r}")

    if ledger is None:
        result = run()
    else:
        with use_ledger(ledger):
            result = run()
    return result, tuple(flog.events)


class SolveShipment:
    """Shipped-solve dispatcher for one solver's blocked column loops.

    Owns the solver's :class:`PersistentPayload` (the serialized
    :class:`~repro.core.chain.CholeskyChain` plus Laplacian CSR —
    published once, reused by every dispatch, unlinked on
    :meth:`close`) and turns a blocked kernel call into a
    :meth:`ExecutionContext.run_shipped` dispatch of
    :func:`_solve_chunk_task` over the context's column chunks.  The
    chunk layout, per-column parameter broadcast, and global-id
    slicing are exactly :func:`run_column_chunks`'s, so for a fixed
    seed the shipped results are bit-identical to the threaded
    closure path on every backend × worker count.

    ``ship=None`` defers the on/off decision to ``REPRO_SHIP_SOLVES``
    lazily at each call; an explicit bool wins
    (``SolverOptions.ship_solves``).
    """

    def __init__(self, ctx: ExecutionContext,
                 arrays: dict[str, np.ndarray], meta: dict,
                 ship: bool | None = None) -> None:
        self.ctx = ctx
        self.payload = PersistentPayload(arrays)
        self.meta = dict(meta)
        self.ship = ship

    def enabled(self) -> bool:
        """Is shipping on *right now* (lazy env consultation)?"""
        if self.ship is not None:
            return bool(self.ship)
        return default_ship_solves()

    @property
    def nbytes(self) -> int:
        """Bytes of the persistent payload (the per-solver ship cost)."""
        return self.payload.nbytes

    def close(self) -> None:
        """Unlink the chain payload segment (idempotent)."""
        self.payload.close()

    def run(self, kernel: str, b: np.ndarray,
            cols: Sequence[np.ndarray | float | None] = (),
            col_ids: np.ndarray | None = None,
            params: dict | None = None) -> list | None:
        """Dispatch ``kernel`` over the column chunks of ``b``.

        Mirrors :func:`run_column_chunks`: returns the per-chunk
        kernel results in column order, or ``None`` when shipping is
        disabled or the layout is a single chunk — callers fall
        through to their existing (threaded-closure or unchunked)
        path.
        """
        if not self.enabled():
            return None
        k = b.shape[1]
        pieces = self.ctx.column_chunks(k)
        if len(pieces) <= 1:
            return None
        from repro.pram import faults as _faults

        # Resolve the ambient plan/log here, in the calling thread —
        # the plan crosses in ``meta``; worker-side events come back
        # in the task result and are merged below in chunk order.
        plan = _faults.active_plan()
        flog = _faults.current_fault_log()
        bc = [None if c is None
              else np.broadcast_to(np.asarray(c, dtype=np.float64),
                                   (k,)).copy()
              for c in cols]
        ids = np.arange(k, dtype=np.int64) if col_ids is None \
            else np.asarray(col_ids, dtype=np.int64)
        arrays: dict[str, np.ndarray] = {"rhs": b}
        col_keys: list[str | None] = []
        for j, c in enumerate(bc):
            if c is None:
                col_keys.append(None)
            else:
                key = f"colp{j}"
                col_keys.append(key)
                arrays[key] = c
        arrays["col_ids"] = ids
        meta = {**self.meta, "kernel": kernel,
                "params": dict(params or {}),
                "col_params": tuple(col_keys), "plan": plan}
        outs = self.ctx.run_shipped(_solve_chunk_task, arrays, meta,
                                    pieces, scope="solve",
                                    shared=self.payload)
        if flog is not None:
            for _, events in outs:
                flog.events.extend(events)
        return [result for result, _ in outs]
