"""Chunked thread-pool execution for numpy-heavy inner loops.

numpy kernels release the GIL, so a thread pool gives genuine
concurrency for the embarrassingly parallel phases of the solver
(per-edge weight transforms, batched walk stepping on disjoint walker
chunks, per-system JL solves in Lemma 3.3).  This module is the
"real machine" counterpart of the idealised cost ledger: the ledger
measures PRAM work/depth; the executor demonstrates the dataflow is
actually parallelisable.

The API is deliberately tiny: :func:`chunk_ranges` splits an index range
into contiguous chunks, :func:`parallel_map` maps a function over items
with an optional thread pool.  ``workers=None`` or ``workers<=1`` runs
serially (default — keeps unit tests deterministic and cheap).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence, TypeVar

__all__ = ["parallel_map", "chunk_ranges", "default_workers"]

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` env var or CPU count."""
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def chunk_ranges(n: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``chunks`` contiguous ``(lo, hi)`` pieces.

    The pieces differ in size by at most one and cover the range exactly;
    empty pieces are omitted (so fewer than ``chunks`` pairs may return).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    chunks = min(chunks, max(n, 1))
    base, extra = divmod(n, chunks)
    out: list[tuple[int, int]] = []
    lo = 0
    for i in range(chunks):
        hi = lo + base + (1 if i < extra else 0)
        if hi > lo:
            out.append((lo, hi))
        lo = hi
    return out


def parallel_map(fn: Callable[[T], R],
                 items: Sequence[T],
                 workers: int | None = None) -> list[R]:
    """Map ``fn`` over ``items``, optionally with a thread pool.

    Results preserve input order.  With ``workers`` ``None`` or ≤ 1 the
    map runs serially in the calling thread (no pool overhead).
    """
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))
