"""Backend-pluggable chunked execution for the solver's parallel phases.

The solver stack has two kinds of embarrassingly parallel work:

* **numpy-bound chunks** (per-edge weight transforms, column-blocked
  iterative solves) — the kernels release the GIL, so a thread pool
  already scales them;
* **Python-bound chunks** (walker-stepping bookkeeping, per-round CSR
  maintenance, chunk orchestration) — under the GIL a thread pool tops
  out around 1.2×, so true multi-core scaling needs separate
  *processes*.

This module is the solver's single dispatch point for both.  An
:class:`ExecutionBackend` decides *where* a fixed set of chunks runs:

* :class:`SerialBackend` — in the calling thread (no pool overhead,
  the reference semantics);
* :class:`ThreadPoolBackend` — a ``ThreadPoolExecutor`` (the PR-3
  behaviour, best for numpy-bound chunks);
* :class:`ProcessPoolBackend` — a persistent ``ProcessPoolExecutor``
  fed through ``multiprocessing.shared_memory``: the immutable
  per-level arrays (CSR ``indptr``/``neighbor``/weights, slot
  resistances, terminal masks, walker starts) are published **once**
  per dispatch as a single shared segment, and each chunk task pickles
  only its chunk id, seed-spawn key, and slice bounds.

The backend never influences *results* — only wall-clock.
:class:`ExecutionContext`'s determinism contract (DESIGN.md §6–§7):

* **Chunk layout depends only on problem size** (item count + the
  context's chunk policy), never on the worker count or backend.
* **Randomness is per-chunk**: each chunk receives its own
  ``SeedSequence``-spawned child stream, drawn in chunk order from the
  caller's generator.  The thread path spawns child *generators*
  (``rng.spawn``); the process path ships the spawned *seed sequences*
  and reconstructs the identical generators worker-side — same bit
  generator type, same child seed, bit-identical stream.
* **Ledger charges fork/join**: each chunk records its costs into a
  private sub-ledger — in-process via :func:`use_ledger`, in a worker
  process via an explicit ledger handed to the shipped task — and at
  the join the parent ledger absorbs the sum of chunk works and the
  max of chunk depths.  Totals are identical across backends and
  worker counts.

Together these make every chunked phase bit-identical for a fixed seed
regardless of ``REPRO_BACKEND`` / ``REPRO_WORKERS`` — the property the
backend-matrix invariance tests assert.

Shared-memory lifecycle (crash-safe; see DESIGN.md §7): the parent
creates each payload segment, registers it in a module-level registry,
and closes + unlinks it in a ``finally`` as soon as the dispatch
joins; an ``atexit`` hook unlinks anything the registry still holds
(e.g. after a mid-dispatch crash), so no segment outlives the parent.
Workers attach read-only, keep a small LRU of attachments, and never
unlink — the parent owns the segment.

The lower-level API remains: :func:`chunk_ranges` splits an index range
into contiguous chunks, :func:`parallel_map` maps a function over items
with an optional thread pool.  ``workers=None`` or ``workers<=1`` runs
serially (no pool overhead).
"""

from __future__ import annotations

import atexit
import itertools
import math
import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

__all__ = ["ExecutionContext", "ExecutionBackend", "SerialBackend",
           "ThreadPoolBackend", "ProcessPoolBackend", "SharedPayload",
           "parallel_map", "chunk_ranges", "run_column_chunks",
           "default_workers", "default_backend", "default_chunk_items",
           "get_backend", "live_segment_names",
           "BACKENDS", "DEFAULT_CHUNK_ITEMS", "DEFAULT_CHUNK_COLUMNS",
           "MAX_CHUNKS"]

T = TypeVar("T")
R = TypeVar("R")

#: Work items (walkers, edges) per chunk — large enough that each
#: chunk's numpy kernels dominate its Python dispatch overhead.
DEFAULT_CHUNK_ITEMS = 65536

#: Right-hand-side columns per chunk for blocked iterative solves.
DEFAULT_CHUNK_COLUMNS = 16

#: Hard cap on chunks per dispatch (bounds RNG spawns and pool queue
#: length).  Part of the chunk policy, hence worker-independent.
MAX_CHUNKS = 256

#: Recognised execution backends, in increasing isolation order.
BACKENDS = ("serial", "thread", "process")

# The ``default_*`` getters cache their (env string → value) lookup so
# hot loops can consult them lazily at every dispatch; keying each
# cache on the raw env value keeps ``monkeypatch.setenv(...)``
# reliable — a changed env invalidates the cache on the next call.
_env_caches: dict[str, tuple[str | None, object]] = {}


def _env_cached(var: str, parse):
    """Shared env-var getter idiom: ``parse(raw)`` once per raw value.

    ``parse`` receives the raw env string (or ``None`` when unset),
    returns the resolved value, and may raise :class:`ValueError` —
    errors are not cached, so a corrected environment recovers.  Also
    serves ``default_sampler`` in :mod:`repro.sampling.walks`.
    """
    env = os.environ.get(var)
    hit = _env_caches.get(var)
    if hit is not None and hit[0] == env:
        return hit[1]
    value = parse(env)
    _env_caches[var] = (env, value)
    return value


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` env var or CPU count."""

    def parse(env: str | None) -> int:
        value = 0
        if env:
            try:
                value = max(1, int(env))
            except ValueError:
                value = 0
        return value if value else (os.cpu_count() or 1)

    return _env_cached("REPRO_WORKERS", parse)


def default_backend() -> str:
    """Backend name from ``REPRO_BACKEND`` env var (default: thread).

    Raises :class:`ValueError` for anything outside :data:`BACKENDS` —
    a typo'd environment should fail loudly, not silently fall back.
    """

    def parse(env: str | None) -> str:
        value = (env or "thread").strip().lower()
        if value not in BACKENDS:
            raise ValueError(
                f"REPRO_BACKEND must be one of {BACKENDS}, got {env!r}")
        return value

    return _env_cached("REPRO_BACKEND", parse)


def default_chunk_items() -> int:
    """Walker-chunk grain from ``REPRO_CHUNK_ITEMS`` env var.

    Defaults to :data:`DEFAULT_CHUNK_ITEMS`.  Lets deployments tune the
    process backend's chunk size (e.g. when the multi-core speedup gate
    is marginal on a given host) without code edits.  **Chunk layout is
    part of the result for a fixed seed** — it decides the per-chunk
    RNG streams — so this is a solver-level knob on par with
    ``SolverOptions.chunk_items`` (which takes precedence), and an
    unparseable or non-positive value raises :class:`ValueError` rather
    than silently changing the layout.
    """

    def parse(env: str | None) -> int:
        if not env:
            return DEFAULT_CHUNK_ITEMS
        try:
            value = int(env)
        except ValueError:
            value = 0
        if value < 1:
            raise ValueError(
                f"REPRO_CHUNK_ITEMS must be a positive integer, "
                f"got {env!r}")
        return value

    return _env_cached("REPRO_CHUNK_ITEMS", parse)


def chunk_ranges(n: int, chunks: int) -> list[tuple[int, int]]:
    """Split ``range(n)`` into ``chunks`` contiguous ``(lo, hi)`` pieces.

    The pieces differ in size by at most one and cover the range exactly;
    empty pieces are omitted (so fewer than ``chunks`` pairs may return).
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if chunks < 1:
        raise ValueError("chunks must be >= 1")
    chunks = min(chunks, max(n, 1))
    base, extra = divmod(n, chunks)
    out: list[tuple[int, int]] = []
    lo = 0
    for i in range(chunks):
        hi = lo + base + (1 if i < extra else 0)
        if hi > lo:
            out.append((lo, hi))
        lo = hi
    return out


def parallel_map(fn: Callable[[T], R],
                 items: Sequence[T],
                 workers: int | None = None) -> list[R]:
    """Map ``fn`` over ``items``, optionally with a thread pool.

    Results preserve input order.  With ``workers`` ``None`` or ≤ 1 the
    map runs serially in the calling thread (no pool overhead).

    The pool is deliberately *transient* (unlike the persistent process
    pools below): keeping idle worker threads alive between dispatches
    would mean the process backend's ``fork`` happens in a threaded
    parent — CPython's fork-with-threads hazard.  Tearing the pool down
    per call guarantees a thread-free fork whenever backends are mixed
    in one session, at ~tens of µs per dispatch.
    """
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(x) for x in items]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items))


def run_column_chunks(ctx: "ExecutionContext", b: np.ndarray,
                      run_block: Callable[..., R],
                      cols: Sequence[np.ndarray | float | None] = ()
                      ) -> list[R] | None:
    """Shared broadcast–slice–dispatch for column-blocked solves.

    The blocked iterative kernels (Richardson, PCG, Chebyshev) all
    chunk an ``(n, k)`` right-hand-side block the same way: split the
    ``k`` columns into the context's size-determined (hence worker- and
    backend-independent) column chunks, broadcast every per-column
    parameter (scalar, length-``k`` array, or ``None``) to a ``(k,)``
    vector, slice block and parameters per chunk, and run the chunks on
    the context's pool.  This helper is that shared mechanics;
    result-type-specific merging (hstack of solutions, max of iteration
    counts, ...) stays with each caller.

    Returns the per-chunk ``run_block(b_chunk, *col_chunks)`` results
    in column order, or ``None`` when the layout is a single chunk —
    callers fall through to their unchunked path (avoiding the pool and
    sub-ledger overhead for small blocks).
    """
    k = b.shape[1]
    pieces = ctx.column_chunks(k)
    if len(pieces) <= 1:
        return None
    bc = [None if c is None
          else np.broadcast_to(np.asarray(c, dtype=np.float64), (k,)).copy()
          for c in cols]

    def one(lo: int, hi: int) -> R:
        return run_block(b[:, lo:hi],
                         *[None if c is None else c[lo:hi] for c in bc])

    return ctx.run_chunks(one, pieces)


# -- shared-memory payloads ---------------------------------------------------

#: Byte alignment of each array inside a payload segment (cache line).
_SHM_ALIGN = 64

#: Segments created by this process that are not yet unlinked.  The
#: dispatch sites close entries in a ``finally``; the ``atexit`` hook
#: below sweeps whatever a crash left behind.
_live_segments: dict[str, object] = {}

_segment_counter = itertools.count()


def _fresh_segment_name() -> str:
    # Short (macOS caps shm names at 31 chars) and unique per process.
    return f"repro-{os.getpid()}-{next(_segment_counter)}"


def live_segment_names() -> tuple[str, ...]:
    """Names of shared-memory segments this process currently owns.

    Empty whenever no shipped dispatch is in flight — the cleanup tests
    assert exactly that after solver teardown.
    """
    return tuple(_live_segments)


@atexit.register
def _cleanup_segments() -> None:  # pragma: no cover - crash path
    for shm in list(_live_segments.values()):
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass
    _live_segments.clear()


class SharedPayload:
    """One shared-memory segment holding a dict of immutable arrays.

    The parent copies every array into a single aligned segment at
    construction and hands workers a tiny picklable ``spec``
    (segment name + per-array dtype/shape/offset).  Lifecycle: the
    creating process owns the segment — :meth:`close` (always called in
    the dispatch's ``finally``) closes **and unlinks** it; the
    module-level registry plus ``atexit`` hook make the unlink
    crash-safe.  Workers only ever attach and close.
    """

    def __init__(self, arrays: dict[str, np.ndarray]) -> None:
        from multiprocessing import shared_memory

        fields: list[tuple[str, str, tuple[int, ...], int]] = []
        prepared: list[tuple[np.ndarray, int]] = []
        offset = 0
        for key, arr in arrays.items():
            a = np.ascontiguousarray(arr)
            offset = -(-offset // _SHM_ALIGN) * _SHM_ALIGN
            fields.append((key, a.dtype.str, a.shape, offset))
            prepared.append((a, offset))
            offset += a.nbytes
        while True:
            try:
                self._shm = shared_memory.SharedMemory(
                    create=True, size=max(offset, 1),
                    name=_fresh_segment_name())
                break
            except FileExistsError:
                # A hard-killed earlier run with a recycled pid left a
                # stale segment under this name; the counter advances
                # every attempt, so skipping to the next name converges.
                continue
        _live_segments[self._shm.name] = self._shm
        for a, off in prepared:
            if a.nbytes:
                view = np.ndarray(a.shape, dtype=a.dtype,
                                  buffer=self._shm.buf, offset=off)
                view[...] = a
        #: Picklable description workers attach from.
        self.spec: tuple = (self._shm.name, tuple(fields))

    @property
    def nbytes(self) -> int:
        """Size of the backing segment in bytes."""
        return self._shm.size

    def close(self) -> None:
        """Close and unlink the segment (idempotent)."""
        if self._shm.name in _live_segments:
            _live_segments.pop(self._shm.name, None)
            try:
                self._shm.close()
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


# Worker-side attachment cache: segment name → (SharedMemory, arrays).
# Segment names are never reused, so a cache hit can only come from
# chunks of the *same* dispatch — one live payload suffices.  Keeping
# the bound tight matters because an unlinked segment's pages are freed
# only when the last mapping closes: a larger cache would pin that many
# dead payloads in every worker's RSS.
_attached: "OrderedDict[str, tuple]" = OrderedDict()
_ATTACH_CACHE = 1


def _attach_payload(spec: tuple) -> dict[str, np.ndarray]:
    """Attach (or reuse) a payload segment and rebuild its array views."""
    from multiprocessing import shared_memory

    name, fields = spec
    hit = _attached.get(name)
    if hit is not None:
        _attached.move_to_end(name)
        return hit[1]
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        # Python < 3.13 has no ``track`` parameter: attaching would
        # enrol the segment with the resource tracker a second time,
        # and the tracker would see one more unregister than register
        # once the parent unlinks.  The parent owns the lifecycle, so
        # suppress the worker-side registration entirely.
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = (
            lambda rname, rtype: None if rtype == "shared_memory"
            else original(rname, rtype))
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original
    arrays: dict[str, np.ndarray] = {}
    for key, dtype, shape, offset in fields:
        view = np.ndarray(shape, dtype=np.dtype(dtype),
                          buffer=shm.buf, offset=offset)
        view.setflags(write=False)
        arrays[key] = view
    _attached[name] = (shm, arrays)
    while len(_attached) > _ATTACH_CACHE:
        _, (old_shm, old_arrays) = _attached.popitem(last=False)
        old_arrays.clear()
        try:
            old_shm.close()
        except BufferError:  # pragma: no cover - a view escaped; keep
            pass             # the mapping alive until process exit
    return arrays


# -- worker-process entry -----------------------------------------------------


def _shipped_worker(spec, task, meta, lo, hi, seed_seq, bitgen_cls,
                    want_ledger):
    """Run one shipped chunk inside a worker process.

    Reconstructs the array views from shared memory, rebuilds the
    chunk's RNG stream from its spawned seed sequence (identical to the
    in-process child stream), and hands the task an explicit fresh
    sub-ledger — the task installs it only around the work that the
    in-process path would have charged, so ledger totals stay
    backend-invariant.  Exceptions are returned, not raised, so every
    chunk runs and the parent re-raises deterministically.
    """
    from repro.pram.ledger import WorkDepthLedger, detach_ledger

    # A fork start method may have copied the parent's ambient ledger
    # contextvar into this process — detach it so setup work (sampler
    # rebuilds, array reconstruction) charges nothing anywhere.
    detach_ledger()
    stream = None
    if seed_seq is not None:
        stream = np.random.Generator(bitgen_cls(seed_seq))
    ledger = WorkDepthLedger() if want_ledger else None
    try:
        arrays = _attach_payload(spec)
        return True, task(arrays, meta, lo, hi, stream, ledger), ledger
    except Exception as exc:
        return False, exc, ledger


def _run_shipped_inprocess(task, arrays, meta, pieces, seed_seqs,
                           bitgen_cls, want_ledger, workers):
    """Shared in-process realisation of the shipped-task protocol.

    Used by the serial and thread backends: same task signature, same
    explicit sub-ledgers, same per-chunk streams as the process
    backend — only the transport (direct references vs shared memory)
    differs, so results and ledger totals cannot.
    """
    from repro.pram.ledger import WorkDepthLedger

    def one(i: int):
        lo, hi = pieces[i]
        stream = None
        if seed_seqs[i] is not None:
            stream = np.random.Generator(bitgen_cls(seed_seqs[i]))
        ledger = WorkDepthLedger() if want_ledger else None
        try:
            return True, task(arrays, meta, lo, hi, stream, ledger), ledger
        except Exception as exc:
            return False, exc, ledger

    return parallel_map(one, range(len(pieces)), workers=workers)


# -- persistent process pools -------------------------------------------------

_pools: dict[int, ProcessPoolExecutor] = {}


def _process_pool(workers: int) -> ProcessPoolExecutor:
    """A persistent pool per worker count (forked lazily, reused)."""
    pool = _pools.get(workers)
    if pool is None:
        import multiprocessing

        method = "fork" if "fork" in multiprocessing.get_all_start_methods() \
            else "spawn"
        pool = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=multiprocessing.get_context(method))
        _pools[workers] = pool
    return pool


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter exit
    for pool in _pools.values():
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
    _pools.clear()


# -- backends -----------------------------------------------------------------


class ExecutionBackend:
    """Where a fixed chunk layout actually runs.

    Backends are pure *schedulers*: they receive chunk boundaries, RNG
    seed keys, and (for shipped tasks) an array payload, and return the
    per-chunk ``(ok, result_or_exc, subledger)`` triples in chunk
    order.  They must not influence chunk layout, stream assignment, or
    charge attribution — that is what keeps results bit-identical
    across ``{serial, thread, process}``.

    Two entry points:

    * :meth:`map` — run arbitrary in-process callables (closures
      allowed).  This serves the numpy-bound chunk dispatches.
    * :meth:`run_shipped` — run a *module-level* task function over a
      dict of immutable arrays.  Only this form can cross a process
      boundary (the task is pickled by reference, the arrays travel
      through shared memory, and each chunk job pickles only
      ``(chunk bounds, seed key)``).
    """

    name: str = "abstract"

    def map(self, fn: Callable[[T], R], items: Sequence[T],
            workers: int) -> list[R]:
        """Run an in-process map over ``items`` (closures allowed)."""
        raise NotImplementedError

    def run_shipped(self, task, arrays, meta, pieces, seed_seqs,
                    bitgen_cls, want_ledger, workers) -> list:
        """Run a shippable task; ``(ok, value, ledger)`` per chunk."""
        raise NotImplementedError


class SerialBackend(ExecutionBackend):
    """Run every chunk in the calling thread — the reference semantics
    all other backends must reproduce bit-for-bit."""

    name = "serial"

    def map(self, fn, items, workers):
        """Sequential in-thread map (``workers`` is ignored)."""
        return [fn(x) for x in items]

    def run_shipped(self, task, arrays, meta, pieces, seed_seqs,
                    bitgen_cls, want_ledger, workers):
        """Run the shipped-task protocol sequentially in-process."""
        return _run_shipped_inprocess(task, arrays, meta, pieces,
                                      seed_seqs, bitgen_cls, want_ledger,
                                      workers=1)


class ThreadPoolBackend(ExecutionBackend):
    """Thread-pool scheduling (the PR-3 behaviour): genuine concurrency
    for chunks whose numpy kernels release the GIL."""

    name = "thread"

    def map(self, fn, items, workers):
        """Thread-pool map (serial when ``workers <= 1``)."""
        return parallel_map(fn, items, workers=workers)

    def run_shipped(self, task, arrays, meta, pieces, seed_seqs,
                    bitgen_cls, want_ledger, workers):
        """Run the shipped-task protocol on the thread pool."""
        return _run_shipped_inprocess(task, arrays, meta, pieces,
                                      seed_seqs, bitgen_cls, want_ledger,
                                      workers=workers)


class ProcessPoolBackend(ExecutionBackend):
    """Process-pool scheduling over shared-memory array payloads.

    Shipped tasks run on a persistent worker pool; the payload arrays
    cross the process boundary once per dispatch through one shared
    segment, and each chunk job pickles only its slice bounds and
    seed-spawn key.  Closure-based dispatches (:meth:`map`) cannot be
    pickled, so they fall back to the thread pool — those sites are
    numpy-bound column loops that already scale under threads, which is
    exactly why only the walker phase ships.
    """

    name = "process"

    def map(self, fn, items, workers):
        """Closures cannot cross the process boundary — run them on
        the thread pool (those dispatch sites are numpy-bound and
        release the GIL; see the class docstring)."""
        return parallel_map(fn, items, workers=workers)

    def run_shipped(self, task, arrays, meta, pieces, seed_seqs,
                    bitgen_cls, want_ledger, workers):
        """Publish ``arrays`` once via shared memory, run the chunks
        on the persistent process pool, unlink in ``finally``."""
        from concurrent.futures.process import BrokenProcessPool

        payload = SharedPayload(arrays)
        try:
            pool = _process_pool(max(1, workers))
            futures = [
                pool.submit(_shipped_worker, payload.spec, task, meta,
                            lo, hi, seed_seqs[i], bitgen_cls, want_ledger)
                for i, (lo, hi) in enumerate(pieces)]
            try:
                return [f.result() for f in futures]
            except BrokenProcessPool:
                # A worker died; drop the pool so the next dispatch
                # starts a fresh one instead of failing forever.
                _pools.pop(max(1, workers), None)
                raise
        finally:
            payload.close()


_BACKENDS: dict[str, ExecutionBackend] = {
    "serial": SerialBackend(),
    "thread": ThreadPoolBackend(),
    "process": ProcessPoolBackend(),
}


def get_backend(name: str) -> ExecutionBackend:
    """The shared singleton backend instance for ``name``."""
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; choose from {BACKENDS}") from None


@dataclass(frozen=True)
class ExecutionContext:
    """Parallel-dispatch policy threaded through the solver stack.

    Parameters
    ----------
    workers:
        Worker count (threads or processes, per ``backend``).  ``None``
        (default) consults :func:`default_workers` lazily *at each
        dispatch*, so changing ``REPRO_WORKERS`` mid-session (or
        monkeypatching it in a test) takes effect immediately.  The
        worker count never influences results — only wall-clock.
    backend:
        ``"serial"``, ``"thread"``, or ``"process"`` — see
        :class:`ExecutionBackend`.  ``None`` (default) consults the
        ``REPRO_BACKEND`` env var lazily (default ``"thread"``).  Like
        ``workers``, the backend never influences results.
    chunk_items:
        Target work items (walkers) per chunk for :meth:`item_chunks`.
        ``None`` (default) consults the ``REPRO_CHUNK_ITEMS`` env var
        lazily (default :data:`DEFAULT_CHUNK_ITEMS`) — see
        :func:`default_chunk_items`; an explicit value wins.
    chunk_columns:
        Target right-hand-side columns per chunk for
        :meth:`column_chunks`.
    max_chunks:
        Cap on the number of chunks per dispatch.

    The three chunk-policy fields fully determine chunk boundaries from
    the problem size alone — see the module docstring for the
    determinism contract.
    """

    workers: int | None = None
    backend: str | None = None
    chunk_items: int | None = None
    chunk_columns: int = DEFAULT_CHUNK_COLUMNS
    max_chunks: int = MAX_CHUNKS

    def __post_init__(self) -> None:
        if (self.chunk_items is not None and self.chunk_items < 1) \
                or self.chunk_columns < 1 or self.max_chunks < 1:
            raise ValueError("chunk policy values must be >= 1")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be None or >= 1")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be None or one of {BACKENDS}, "
                f"got {self.backend!r}")

    # -- worker/backend resolution --------------------------------------------

    def resolve_workers(self) -> int:
        """The worker count to use *right now* (lazy env consultation)."""
        if self.workers is not None:
            return self.workers
        return default_workers()

    def resolve_backend(self) -> str:
        """The backend name to use *right now* (lazy env consultation)."""
        if self.backend is not None:
            return self.backend
        return default_backend()

    # -- deterministic chunk layout ------------------------------------------

    def _chunk_count(self, n: int, grain: int) -> int:
        if n <= 0:
            return 1
        return max(1, min(self.max_chunks, math.ceil(n / grain)))

    def resolve_chunk_items(self) -> int:
        """The item-chunk grain to use *right now* (lazy env lookup)."""
        if self.chunk_items is not None:
            return self.chunk_items
        return default_chunk_items()

    def item_chunks(self, n: int) -> list[tuple[int, int]]:
        """Chunk ``range(n)`` work items; layout depends only on ``n``
        and the chunk policy (explicit ``chunk_items`` or the
        ``REPRO_CHUNK_ITEMS`` env default)."""
        return chunk_ranges(n, self._chunk_count(n,
                                                 self.resolve_chunk_items()))

    def column_chunks(self, k: int) -> list[tuple[int, int]]:
        """Chunk ``k`` RHS columns; layout depends only on ``k``."""
        return chunk_ranges(k, self._chunk_count(k, self.chunk_columns))

    # -- dispatch ------------------------------------------------------------

    def _map_workers(self) -> int:
        return 1 if self.resolve_backend() == "serial" \
            else self.resolve_workers()

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Map ``fn`` over ``items`` on this context's backend.

        Closure-friendly (in-process) mapping: the serial backend runs
        in the calling thread, thread and process backends use the
        thread pool (see :class:`ProcessPoolBackend` for why closures
        never cross the process boundary).
        """
        return parallel_map(fn, items, workers=self._map_workers())

    def run_chunks(self,
                   fn: Callable[..., R],
                   pieces: Sequence[tuple[int, int]],
                   rng: np.random.Generator | None = None) -> list[R]:
        """Run ``fn(lo, hi[, stream])`` over ``pieces``, in parallel.

        ``pieces`` must come from :meth:`item_chunks` /
        :meth:`column_chunks` (or any layout derived from problem size
        only).  When ``rng`` is given, one independent child stream is
        spawned per piece — in piece order — and passed as the third
        argument; the parent generator's bit stream is not consumed.

        Ledger charges made inside each chunk are collected in private
        sub-ledgers and joined into the ambient ledger as a fork/join
        region (works add, depths max), so ledger totals are identical
        whether the chunks ran on one thread or many.  A raising chunk
        does not short-circuit the others: every chunk runs (and
        charges) regardless of worker count, then the lowest-index
        chunk's exception is re-raised — keeping both the ledger totals
        and the surfaced error deterministic.

        ``fn`` may be any in-process callable (closures welcome); use
        :meth:`run_shipped` for chunk work that should cross the
        process boundary under the process backend.
        """
        from repro.pram.ledger import current_ledger, use_ledger

        streams: Sequence[np.random.Generator | None]
        if rng is not None:
            streams = rng.spawn(len(pieces))
        else:
            streams = [None] * len(pieces)

        parent = current_ledger()
        subs = [parent.__class__() for _ in pieces] \
            if parent is not None else None
        errors: list[BaseException | None] = [None] * len(pieces)

        def one(i: int) -> R | None:
            lo, hi = pieces[i]
            args = (lo, hi) if streams[i] is None else (lo, hi, streams[i])
            try:
                if subs is None:
                    return fn(*args)
                with use_ledger(subs[i]):
                    return fn(*args)
            except BaseException as exc:  # re-raised after the join
                errors[i] = exc
                return None

        results = parallel_map(one, range(len(pieces)),
                               workers=self._map_workers())
        if parent is not None and subs:
            parent.absorb_parallel(subs)
        for exc in errors:
            if exc is not None:
                raise exc
        return results

    def run_shipped(self,
                    task: Callable[..., R],
                    arrays: dict[str, np.ndarray],
                    meta: dict,
                    pieces: Sequence[tuple[int, int]],
                    rng: np.random.Generator | None = None) -> list[R]:
        """Run a shippable ``task`` over ``pieces`` on this backend.

        ``task`` must be a **module-level** function (pickled by
        reference under the process backend) with signature
        ``task(arrays, meta, lo, hi, stream, ledger)``:

        * ``arrays`` — the payload dict, reconstructed worker-side as
          read-only views over one shared-memory segment (direct
          references in-process);
        * ``meta`` — small picklable scalars;
        * ``stream`` — the chunk's spawned RNG stream (``None`` when no
          ``rng`` was given).  Identical to the stream
          :meth:`run_chunks` would have passed: the same
          ``SeedSequence`` child wrapped in the same bit-generator
          type;
        * ``ledger`` — a fresh sub-ledger when the caller had one
          installed, else ``None``.  The task must install it (via
          :func:`repro.pram.use_ledger`) only around the work the
          in-process path charges, keeping totals backend-invariant.

        Semantics mirror :meth:`run_chunks`: results in piece order,
        sub-ledgers joined fork/join into the ambient ledger, every
        chunk runs, and the lowest-index chunk's exception is re-raised
        after the join.
        """
        from repro.pram.ledger import current_ledger

        backend = get_backend(self.resolve_backend())
        parent = current_ledger()
        if rng is not None:
            seed_seqs = rng.bit_generator.seed_seq.spawn(len(pieces))
            bitgen_cls = type(rng.bit_generator)
        else:
            seed_seqs = [None] * len(pieces)
            bitgen_cls = None
        outs = backend.run_shipped(task, arrays, meta, pieces, seed_seqs,
                                   bitgen_cls, parent is not None,
                                   self.resolve_workers())
        subs = [sub for _, _, sub in outs if sub is not None]
        if parent is not None and subs:
            parent.absorb_parallel(subs)
        for ok, value, _ in outs:
            if not ok:
                raise value
        return [value for _, value, _ in outs]


#: Shared all-defaults context (lazy ``REPRO_WORKERS``/``REPRO_BACKEND``
#: resolution).
ExecutionContext.DEFAULT = ExecutionContext()
