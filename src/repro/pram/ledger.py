"""Work/depth ledger for the CREW PRAM cost model.

Usage pattern inside an algorithm::

    from repro.pram import charge, parallel_region
    from repro.pram import primitives as P

    charge(*P.map_cost(m), label="scale weights")      # sequential step
    with parallel_region("walks") as region:           # parallel branches
        region.branch(work_1, depth_1)
        region.branch(work_2, depth_2)
    # region contributes sum(work_i) work and max(depth_i) depth.

Ledger semantics
----------------
* ``charge(w, d)`` models running a parallel primitive of work ``w`` and
  depth ``d`` *after* everything charged before it:  work adds, depth
  adds (sequential composition).
* ``parallel_region()`` models a fork/join:  its branches' works add but
  only the maximum branch depth is added to the ledger at the join.
* Ledgers nest via a context variable (:func:`use_ledger`), so library
  code can charge costs without threading a ledger argument through
  every call.  When no ledger is installed, charging is a no-op with
  near-zero overhead.

The ledger also keeps per-label subtotals so benchmarks can attribute
work to phases (``5DDSubset`` vs ``TerminalWalks`` vs ``Jacobi`` ...).
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "WorkDepthLedger",
    "CostSnapshot",
    "ParallelRegion",
    "current_ledger",
    "ledger_active",
    "use_ledger",
    "detach_ledger",
    "charge",
    "parallel_region",
]


@dataclass(frozen=True)
class CostSnapshot:
    """Immutable (work, depth) pair; supports arithmetic for reporting."""

    work: float = 0.0
    depth: float = 0.0

    def __add__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(self.work + other.work, self.depth + other.depth)

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(self.work - other.work, self.depth - other.depth)

    def parallel_join(self, other: "CostSnapshot") -> "CostSnapshot":
        """Fork/join combination: work adds, depth takes the maximum."""
        return CostSnapshot(self.work + other.work,
                            max(self.depth, other.depth))


class ParallelRegion:
    """Collects branch costs inside a ``with parallel_region():`` block."""

    def __init__(self, label: str = "") -> None:
        self.label = label
        self._work = 0.0
        self._depth = 0.0
        self.branches = 0

    def branch(self, work: float, depth: float) -> None:
        """Record one parallel branch of the fork."""
        if work < 0 or depth < 0:
            raise ValueError("work and depth must be non-negative")
        self._work += work
        self._depth = max(self._depth, depth)
        self.branches += 1

    @property
    def cost(self) -> CostSnapshot:
        """Joined fork/join cost: branch works added, depths maxed."""
        return CostSnapshot(self._work, self._depth)


class WorkDepthLedger:
    """Accumulates work/depth charges with per-label attribution."""

    def __init__(self) -> None:
        self.work: float = 0.0
        self.depth: float = 0.0
        self.by_label: dict[str, CostSnapshot] = {}
        self.events: int = 0

    # -- charging ---------------------------------------------------------

    def charge(self, work: float, depth: float, label: str = "") -> None:
        """Sequentially compose a primitive of the given work/depth."""
        if work < 0 or depth < 0:
            raise ValueError("work and depth must be non-negative")
        self.work += work
        self.depth += depth
        self.events += 1
        if label:
            prev = self.by_label.get(label, CostSnapshot())
            self.by_label[label] = prev + CostSnapshot(work, depth)

    def charge_region(self, region: ParallelRegion) -> None:
        """Sequentially compose a completed fork/join region."""
        cost = region.cost
        self.charge(cost.work, cost.depth, label=region.label)

    def absorb_parallel(self, subledgers: "list[WorkDepthLedger]") -> None:
        """Join sub-ledgers recorded by concurrent branches (fork/join).

        Branch works add; the joined depth is the maximum branch depth
        (the branches ran in parallel).  Per-label subtotals merge the
        same way across branches before being added to this ledger, so
        phase attribution survives chunked execution.  The result is
        independent of how many threads actually ran the branches —
        the executor uses this to keep ledger totals worker-invariant.
        """
        if not subledgers:
            return
        self.charge(sum(s.work for s in subledgers),
                    max(s.depth for s in subledgers))
        labels: dict[str, CostSnapshot] = {}
        for sub in subledgers:
            for label, cost in sub.by_label.items():
                prev = labels.get(label)
                labels[label] = cost if prev is None \
                    else prev.parallel_join(cost)
        for label, cost in labels.items():
            prev = self.by_label.get(label, CostSnapshot())
            self.by_label[label] = prev + cost

    # -- inspection --------------------------------------------------------

    @property
    def snapshot(self) -> CostSnapshot:
        """Immutable copy of the current (work, depth) totals."""
        return CostSnapshot(self.work, self.depth)

    def reset(self) -> None:
        """Zero all totals, counters, and per-label subtotals."""
        self.work = 0.0
        self.depth = 0.0
        self.events = 0
        self.by_label.clear()

    def report(self) -> str:
        """Human-readable phase breakdown, widest phases first."""
        lines = [f"total: work={self.work:.3e} depth={self.depth:.3e} "
                 f"({self.events} events)"]
        for label, cost in sorted(self.by_label.items(),
                                  key=lambda kv: -kv[1].work):
            lines.append(f"  {label:<28s} work={cost.work:.3e} "
                         f"depth={cost.depth:.3e}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WorkDepthLedger(work={self.work:.3e}, "
                f"depth={self.depth:.3e}, events={self.events})")


_current: contextvars.ContextVar[WorkDepthLedger | None] = \
    contextvars.ContextVar("repro_pram_ledger", default=None)


def current_ledger() -> WorkDepthLedger | None:
    """The ledger installed by the innermost :func:`use_ledger`, if any."""
    return _current.get()


def ledger_active() -> bool:
    """True when a cost ledger is installed.

    Hot loops guard their :func:`charge` calls with this so that, in
    production runs (no ledger), cost accounting costs nothing — not
    even building the ``(work, depth)`` tuple and label string the
    charge would have recorded.
    """
    return _current.get() is not None


def detach_ledger() -> None:
    """Uninstall any ambient ledger (charging becomes a no-op).

    Worker *processes* call this first: a ``fork`` start method copies
    the parent's contextvars, so without the detach a forked worker
    would charge its setup work into a ghost copy of the parent's
    ledger.  Cross-process accounting instead flows through the
    explicit sub-ledger the shipped-task protocol hands each chunk
    (the ledger pickles whole — plain floats and
    :class:`CostSnapshot` label subtotals — and the parent joins the
    returned sub-ledgers via :meth:`WorkDepthLedger.absorb_parallel`,
    exactly as for thread chunks).
    """
    _current.set(None)


@contextlib.contextmanager
def use_ledger(ledger: WorkDepthLedger | None = None
               ) -> Iterator[WorkDepthLedger]:
    """Install ``ledger`` (or a fresh one) as the ambient cost ledger."""
    ledger = ledger if ledger is not None else WorkDepthLedger()
    token = _current.set(ledger)
    try:
        yield ledger
    finally:
        _current.reset(token)


def charge(work: float, depth: float, label: str = "") -> None:
    """Charge the ambient ledger; no-op when none is installed."""
    ledger = _current.get()
    if ledger is not None:
        ledger.charge(work, depth, label)


@contextlib.contextmanager
def parallel_region(label: str = "") -> Iterator[ParallelRegion]:
    """Open a fork/join region; at exit its joined cost is charged."""
    region = ParallelRegion(label)
    yield region
    ledger = _current.get()
    if ledger is not None:
        ledger.charge_region(region)
