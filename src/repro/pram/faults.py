"""Deterministic fault injection for the execution layer.

The determinism contract (DESIGN.md §6–§8) makes fault tolerance cheap:
chunk layout and per-chunk RNG streams are functions of problem size
only, so a lost chunk re-executed anywhere — same ``(lo, hi, seed_key)``
— produces bit-identical results.  This module provides the harness
that *proves* it: a declarative :class:`FaultPlan` describing where
faults should strike, applied at well-defined points inside the
dispatch and iteration machinery, plus a structured :class:`FaultLog`
recording every injection and every recovery action.

A plan is a comma-separated list of directives, each
``kind:sel=value:sel=value...``::

    kill:chunk=2:attempt=1       # chunk 2's second dispatch attempt dies
    hang:chunk=0:seconds=30      # chunk 0 stalls (process: real sleep,
                                 # killed by the parent's chunk timeout)
    nan:col=3:stage=richardson   # column 3's iterate goes NaN at iter 0
    drop:frame=0                 # first payload frame per connection lost
    corrupt:frame=2              # frame 2's bytes flip (CRC catches it)
    disconnect:worker=1          # worker 1 severs its connection mid-job
    delay:seconds=0.01           # every outbound frame is slowed

Selectors
---------
``chunk=N`` (required for kill/hang), ``attempt=N`` (default ``0``;
``*`` = every attempt — how the exhaustion/degradation paths are
exercised), ``backend=serial|thread|process|distributed`` (only fire
under that backend), ``phase=walk|columns|solve|serve`` (only fire in
that dispatch scope), ``seconds=F`` (hang/delay duration, default 30),
``col=N`` (required for nan), ``iter=N`` (default 0),
``stage=richardson|cg|chebyshev|solve|serve|transport``.  For
kill/hang directives ``stage=`` is an alias for ``phase=``
(``stage=solve`` pins a kill to the shipped-solve dispatches); for nan
directives ``stage=solve`` matches every blocked solve kernel, where a
specific stage name matches only that kernel.

The ``transport`` scope (DESIGN.md §13) targets the distributed wire.
``drop``/``corrupt``/``delay`` fire on the coordinator's outbound
payload frames: ``frame=N`` (required for drop/corrupt, optional for
delay) matches the ``N``-th *first-transmission* data frame on a
connection, ``worker=N`` optionally pins to one worker's connection,
and the ``attempt=`` coordinate counts retransmissions — so default
(``attempt=0``) directives never refire on the recovery path.
``disconnect:worker=N`` (``worker=`` required; ``chunk=``/``attempt=``
optional extra filters) ships with the job and severs the connection
worker-side; ``kill``/``hang`` pinned ``stage=transport`` also ship
with the job, with ``hang`` suspending the worker's heartbeats first —
the frozen-machine case only heartbeat monitoring can detect.  Worker
ids are monotone (replacements get fresh ids), so ``worker=N``
directives cannot refire on a replacement.

The ``serve`` scope targets the micro-batch dispatch point of
:class:`repro.serve.SolverService`: a serve-pinned kill/hang uses the
**batch sequence number** as its ``chunk=`` coordinate and fires in
the serving thread before the batched ``solve_many`` runs (retried
under the ambient :class:`repro.pram.executor.RetryPolicy`, exactly
like a lost chunk); ``nan:col=N:stage=serve`` is rewritten by
:func:`split_serve_plan` to ``stage=solve`` so the existing in-kernel
injection poisons batch column ``N`` — i.e. the ``N``-th request of
the batch — and the quarantine/escalation ladder (DESIGN.md §9)
contains the damage to that one caller.

Directives are **stateless**: whether one fires depends only on the
match coordinates (chunk, attempt, column, iteration, ...), never on
how often it fired before — the property that keeps faulted runs
deterministic and therefore comparable bit-for-bit to fault-free runs.

Plans activate either through the ``REPRO_FAULTS`` env var (read
lazily, like every other ``REPRO_*`` knob) or through the
:func:`use_faults` context manager, which overrides the environment
for its dynamic extent.  Because worker threads and processes do not
inherit the caller's context, the dispatch sites resolve
:func:`active_plan` / :func:`current_fault_log` **in the calling
thread** and pass both down explicitly (process workers receive the
pre-filtered directives as pickled call arguments).
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError

__all__ = ["FAULT_KINDS", "FaultDirective", "FaultPlan", "FaultEvent",
           "FaultLog", "InjectedFault", "use_faults", "active_plan",
           "faults_active", "use_fault_log", "current_fault_log",
           "apply_chunk_faults", "apply_worker_faults",
           "inject_nan_columns", "split_serve_plan",
           "apply_serve_faults"]

#: Recognised fault kinds.
FAULT_KINDS = ("kill", "hang", "nan", "drop", "corrupt", "disconnect",
               "delay")

#: In-process hangs cannot be interrupted from outside (no process to
#: kill), so they degenerate to a bounded stall before failing.
_INPROCESS_HANG_CAP = 0.05


class InjectedFault(ReproError):
    """Raised where a :class:`FaultPlan` directive fires.

    Classified as *transient* by the execution layer: a chunk failing
    with :class:`InjectedFault` is re-dispatched under the ambient
    :class:`repro.pram.executor.RetryPolicy`, exactly like a crashed
    worker or a timed-out chunk.
    """


@dataclass(frozen=True)
class FaultDirective:
    """One declarative fault: a kind plus match selectors.

    Frozen and module-level so instances pickle cleanly into worker
    processes.  ``attempt=None`` means *every* attempt (the ``*``
    spelling); every other ``None`` selector means "don't filter on
    this coordinate".
    """

    kind: str
    chunk: int | None = None
    attempt: int | None = 0
    col: int | None = None
    iteration: int = 0
    stage: str | None = None
    phase: str | None = None
    backend: str | None = None
    seconds: float = 30.0
    frame: int | None = None
    worker: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, "
                f"got {self.kind!r}")
        if self.kind in ("kill", "hang") and self.chunk is None:
            raise ValueError(f"{self.kind} directives require chunk=N")
        if self.kind == "nan" and self.col is None:
            raise ValueError("nan directives require col=N")
        if self.kind in ("drop", "corrupt") and self.frame is None:
            raise ValueError(f"{self.kind} directives require frame=N")
        if self.kind == "disconnect" and self.worker is None:
            raise ValueError("disconnect directives require worker=N")
        if self.seconds <= 0:
            raise ValueError("seconds must be positive")

    def matches_chunk(self, *, chunk: int, attempt: int,
                      backend: str | None = None,
                      phase: str | None = None) -> bool:
        """Does this kill/hang directive fire at these coordinates?

        A ``None`` *argument* means the coordinate is unknown at the
        call site and the corresponding selector is not consulted.
        """
        if self.kind not in ("kill", "hang"):
            return False
        if self.chunk is not None and self.chunk != chunk:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        if self.backend is not None and backend is not None \
                and self.backend != backend:
            return False
        if self.phase is not None and phase is not None \
                and self.phase != phase:
            return False
        # For kill/hang, stage= is a phase alias: ``stage=solve`` pins
        # the directive to the shipped-solve dispatch scope.
        if self.stage is not None and phase is not None \
                and self.stage != phase:
            return False
        return True

    def matches_frame(self, *, frame: int, attempt: int,
                      worker: int | None = None) -> bool:
        """Does this drop/corrupt/delay directive fire on this frame?

        ``frame`` is the per-connection first-transmission ordinal of
        the outbound data frame; ``attempt`` counts retransmissions
        (``0`` = the original send), so default directives never
        refire on the recovery path.  ``frame=None`` on the directive
        (the ``delay`` case) matches every frame; a ``worker=``
        selector pins to one connection.
        """
        if self.kind not in ("drop", "corrupt", "delay"):
            return False
        if self.frame is not None and self.frame != frame:
            return False
        if self.attempt is not None and self.attempt != attempt:
            return False
        if self.worker is not None and worker is not None \
                and self.worker != worker:
            return False
        return True

    def spec(self) -> str:
        """The directive back in ``kind:sel=value`` form."""
        parts = [self.kind]
        defaults = FaultDirective("kill", chunk=0) if self.kind != "nan" \
            else FaultDirective("nan", col=0)
        for name, key in (("chunk", "chunk"), ("attempt", "attempt"),
                          ("col", "col"), ("frame", "frame"),
                          ("worker", "worker"), ("iteration", "iter"),
                          ("stage", "stage"), ("phase", "phase"),
                          ("backend", "backend"), ("seconds", "seconds")):
            value = getattr(self, name)
            if name in ("chunk", "col", "frame", "worker"):
                if value is not None:
                    parts.append(f"{key}={value}")
                continue
            if name == "attempt":
                if value is None:
                    parts.append("attempt=*")
                elif value != 0:
                    parts.append(f"attempt={value}")
                continue
            if value != getattr(defaults, name):
                if name == "seconds":
                    parts.append(f"{key}={value:g}")
                else:
                    parts.append(f"{key}={value}")
        return ":".join(parts)


def _parse_directive(token: str) -> FaultDirective:
    parts = [p.strip() for p in token.split(":") if p.strip()]
    if not parts:
        raise ValueError("empty fault directive")
    kind = parts[0].lower()
    kwargs: dict = {}
    for part in parts[1:]:
        if "=" not in part:
            raise ValueError(
                f"fault selector must be key=value, got {part!r}")
        key, _, raw = part.partition("=")
        key = key.strip().lower()
        raw = raw.strip()
        if key == "iter":
            key = "iteration"
        if key in ("chunk", "attempt", "col", "iteration", "frame",
                   "worker"):
            if key == "attempt" and raw == "*":
                kwargs[key] = None
                continue
            try:
                kwargs[key] = int(raw)
            except ValueError:
                raise ValueError(
                    f"fault selector {key}= needs an integer, "
                    f"got {raw!r}") from None
        elif key == "seconds":
            try:
                kwargs[key] = float(raw)
            except ValueError:
                raise ValueError(
                    f"fault selector seconds= needs a number, "
                    f"got {raw!r}") from None
        elif key in ("stage", "phase", "backend"):
            kwargs[key] = raw.lower()
        else:
            raise ValueError(f"unknown fault selector {key!r}")
    return FaultDirective(kind, **kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable set of :class:`FaultDirective`\\ s."""

    directives: tuple[FaultDirective, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse a comma-separated directive list (see module docs)."""
        directives = tuple(_parse_directive(tok)
                           for tok in text.split(",") if tok.strip())
        if not directives:
            raise ValueError(f"no fault directives in {text!r}")
        return cls(directives)

    def chunk_directives(self, *, backend: str | None = None,
                         phase: str | None = None
                         ) -> tuple[FaultDirective, ...]:
        """The kill/hang directives that could fire under ``backend``
        in dispatch scope ``phase`` (used to pre-filter what ships to
        worker processes)."""
        out = []
        for d in self.directives:
            if d.kind not in ("kill", "hang"):
                continue
            # Transport-scope kill/hang ship with the job over the
            # wire (see transport_directives), never to pool workers.
            if "transport" in (d.stage, d.phase) and phase != "transport":
                continue
            if d.backend is not None and backend is not None \
                    and d.backend != backend:
                continue
            if d.phase is not None and phase is not None \
                    and d.phase != phase:
                continue
            if d.stage is not None and phase is not None \
                    and d.stage != phase:
                continue
            out.append(d)
        return tuple(out)

    def frame_directives(self) -> tuple[FaultDirective, ...]:
        """The drop/corrupt/delay directives — applied by the
        coordinator to its outbound transport frames (DESIGN.md §13)."""
        return tuple(d for d in self.directives
                     if d.kind in ("drop", "corrupt", "delay"))

    def transport_directives(self) -> tuple[FaultDirective, ...]:
        """The directives that ship *with* distributed jobs and fire
        worker-side on the wire: ``disconnect`` plus kill/hang pinned
        to the ``transport`` scope."""
        out = []
        for d in self.directives:
            if d.kind == "disconnect":
                out.append(d)
            elif d.kind in ("kill", "hang") \
                    and "transport" in (d.stage, d.phase):
                out.append(d)
        return tuple(out)

    def __bool__(self) -> bool:
        return bool(self.directives)


# -- activation ---------------------------------------------------------------

#: ``None`` → fall through to the env var; ``(plan_or_None,)`` → an
#: explicit override installed by :func:`use_faults` (a 1-tuple so that
#: ``use_faults(None)`` can mask an env-var plan).
_override: contextvars.ContextVar[tuple | None] = contextvars.ContextVar(
    "repro_fault_plan", default=None)


def _parse_env(env: str | None) -> FaultPlan | None:
    if not env or not env.strip():
        return None
    return FaultPlan.parse(env)


def active_plan() -> FaultPlan | None:
    """The fault plan in effect for the calling thread, if any.

    A :func:`use_faults` override wins; otherwise the ``REPRO_FAULTS``
    env var is consulted lazily (cached per raw value, like every
    other ``REPRO_*`` knob).  Returns ``None`` when no faults are
    active — the common case, kept cheap so iteration loops can guard
    on it.
    """
    override = _override.get()
    if override is not None:
        return override[0]
    from repro.pram.executor import _env_cached

    return _env_cached("REPRO_FAULTS", _parse_env)


def faults_active() -> bool:
    """Cheap guard: is any fault plan currently active?"""
    return active_plan() is not None


@contextlib.contextmanager
def use_faults(plan: "FaultPlan | str | None"):
    """Install ``plan`` as the active fault plan for this context.

    Accepts a :class:`FaultPlan`, a directive string (parsed), or
    ``None`` (masks any ``REPRO_FAULTS`` env plan).  The override is
    visible in the installing thread — dispatch sites resolve the plan
    there and hand it to worker threads/processes explicitly.
    """
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan)
    token = _override.set((plan,))
    try:
        yield plan
    finally:
        _override.reset(token)


# -- the structured log -------------------------------------------------------


@dataclass
class FaultEvent:
    """One injection or recovery action.

    ``action`` is the event type: ``inject`` (a directive fired),
    ``retry`` (a chunk was re-dispatched), ``pool_rebuild`` (the
    process pool was torn down and rebuilt), ``timeout`` (a stalled
    dispatch was killed), ``exhausted`` (a chunk ran out of attempts),
    ``degrade`` (failed chunks fell back to a weaker backend),
    ``quarantine`` (broken columns were frozen out of an iteration),
    ``escalate`` (quarantined columns moved to a stronger solver).
    The transport layer adds ``retransmit`` (a message went unACKed
    and was resent), ``nak`` (a corrupt frame was rejected),
    ``worker_dead`` / ``worker_replace`` (a lease-holding worker died
    and was replaced in place), ``auth_refused`` (a connection failed
    the handshake); the serving layer adds ``shed`` (a request was
    refused under admission control) and ``breaker_open`` /
    ``breaker_close`` (circuit-breaker transitions).
    """

    action: str
    kind: str = ""
    chunk: int | None = None
    attempt: int | None = None
    columns: tuple[int, ...] = ()
    backend: str = ""
    detail: str = ""


class FaultLog:
    """Structured record of injections and recovery actions.

    Appended to from the dispatching thread and (for in-process chunk
    faults) from pool threads — ``list.append`` is atomic under the
    GIL, so no locking is needed.  Attached to
    :class:`repro.core.solver.BlockSolveReport` so callers can see
    what the execution layer survived.
    """

    def __init__(self) -> None:
        self.events: list[FaultEvent] = []

    def record(self, action: str, **kw) -> FaultEvent:
        """Append a :class:`FaultEvent` for ``action`` and return it."""
        event = FaultEvent(action, **kw)
        self.events.append(event)
        return event

    def count(self, action: str) -> int:
        """Number of recorded events with the given ``action``."""
        return sum(1 for e in self.events if e.action == action)

    def actions(self) -> tuple[str, ...]:
        """Event actions in record order."""
        return tuple(e.action for e in self.events)

    def summary(self) -> dict[str, int]:
        """Action → count over all recorded events."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.action] = out.get(e.action, 0) + 1
        return out

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultLog({self.summary()})"


_log_var: contextvars.ContextVar[FaultLog | None] = contextvars.ContextVar(
    "repro_fault_log", default=None)


def current_fault_log() -> FaultLog | None:
    """The ambient fault log for the calling thread, if any."""
    return _log_var.get()


@contextlib.contextmanager
def use_fault_log(log: FaultLog | None = None):
    """Install ``log`` (a fresh one when ``None``) as the ambient
    fault log; yields the installed log."""
    if log is None:
        log = FaultLog()
    token = _log_var.set(log)
    try:
        yield log
    finally:
        _log_var.reset(token)


# -- application points -------------------------------------------------------


def apply_chunk_faults(plan: FaultPlan, *, chunk: int, attempt: int,
                       backend: str | None = None,
                       phase: str | None = None,
                       log: FaultLog | None = None) -> None:
    """Fire any matching kill/hang directive for an in-process chunk.

    In-process there is no worker to kill and no way to interrupt a
    hung thread from outside, so both kinds degenerate to raising
    :class:`InjectedFault` (hang after a bounded stall) — which the
    retry machinery treats exactly like the process-side originals.
    """
    for d in plan.directives:
        if not d.matches_chunk(chunk=chunk, attempt=attempt,
                               backend=backend, phase=phase):
            continue
        if log is not None:
            log.record("inject", kind=d.kind, chunk=chunk, attempt=attempt,
                       backend=backend or "", detail=d.spec())
        if d.kind == "hang":
            time.sleep(min(d.seconds, _INPROCESS_HANG_CAP))
        raise InjectedFault(
            f"injected {d.kind}: chunk={chunk} attempt={attempt}")


def apply_worker_faults(directives: tuple[FaultDirective, ...], *,
                        chunk: int, attempt: int) -> None:
    """Fire any matching directive inside a worker **process**.

    ``kill`` exits the process hard (``os._exit``), producing a
    genuine ``BrokenProcessPool`` in the parent; ``hang`` sleeps for
    the directive's ``seconds`` — long enough for the parent's chunk
    timeout to detect the stall and kill the pool — then raises
    :class:`InjectedFault` as a bounded fallback when no timeout is
    armed.  Directives arrive pre-filtered by backend/phase (see
    :meth:`FaultPlan.chunk_directives`).
    """
    for d in directives:
        if not d.matches_chunk(chunk=chunk, attempt=attempt):
            continue
        if d.kind == "kill":
            os._exit(77)
        time.sleep(d.seconds)
        raise InjectedFault(
            f"injected hang expired: chunk={chunk} attempt={attempt}")


def split_serve_plan(plan: FaultPlan | None
                     ) -> tuple[tuple[FaultDirective, ...],
                                FaultPlan | None]:
    """Partition ``plan`` for the serving layer's dispatch point.

    Returns ``(serve_directives, inner_plan)``.  Kill/hang directives
    pinned to the ``serve`` scope (``stage=serve`` or ``phase=serve``)
    fire at the micro-batch dispatch point — the batch sequence number
    is their ``chunk=`` coordinate — and must *not* reach the blocked
    kernels; ``nan:...:stage=serve`` directives are rewritten to
    ``stage=solve`` so the existing in-kernel injection poisons the
    request's batch column.  Everything else passes through to
    ``inner_plan`` unchanged, preserving composed plans that mix serve
    and executor faults.
    """
    if plan is None:
        return (), None
    from dataclasses import replace

    serve: list[FaultDirective] = []
    inner: list[FaultDirective] = []
    for d in plan.directives:
        if d.kind in ("kill", "hang") and "serve" in (d.stage, d.phase):
            serve.append(d)
        elif d.kind == "nan" and d.stage == "serve":
            inner.append(replace(d, stage="solve"))
        else:
            inner.append(d)
    return tuple(serve), (FaultPlan(tuple(inner)) if inner else None)


def apply_serve_faults(directives: tuple[FaultDirective, ...], *,
                       batch: int, attempt: int,
                       log: FaultLog | None = None) -> None:
    """Fire any matching serve-scope kill/hang for a micro-batch.

    Serve dispatches are in-process (the batch runs in the service's
    solve thread), so the semantics mirror :func:`apply_chunk_faults`:
    both kinds raise :class:`InjectedFault` (hang after a bounded
    stall), which the service's retry loop treats exactly like a lost
    executor chunk — stateless directives make the re-dispatched batch
    bit-identical to an undisturbed one.
    """
    for d in directives:
        if not d.matches_chunk(chunk=batch, attempt=attempt,
                               phase="serve"):
            continue
        if log is not None:
            log.record("inject", kind=d.kind, chunk=batch,
                       attempt=attempt, backend="serve", detail=d.spec())
        if d.kind == "hang":
            time.sleep(min(d.seconds, _INPROCESS_HANG_CAP))
        raise InjectedFault(
            f"injected {d.kind}: batch={batch} attempt={attempt}")


def inject_nan_columns(plan: FaultPlan, block: np.ndarray,
                       col_ids: np.ndarray, iteration: int, stage: str,
                       log: FaultLog | None = None) -> list[int]:
    """Poison matching columns of ``block`` with NaN, in place.

    ``col_ids`` maps the block's local columns to global right-hand-side
    column indices (the coordinates ``nan:col=N`` directives are
    written in), so injection keeps working when the blocked kernels
    run on a column-chunked slice.  Returns the global ids hit.
    """
    hit: list[int] = []
    for d in plan.directives:
        if d.kind != "nan":
            continue
        if d.iteration != iteration:
            continue
        # ``stage=solve`` is a wildcard over the blocked solve kernels
        # (richardson/cg/chebyshev) — the coordinate shipped-solve
        # fault tests are written in.
        if d.stage is not None and d.stage != stage \
                and d.stage != "solve":
            continue
        local = np.nonzero(np.asarray(col_ids) == d.col)[0]
        if local.size:
            block[:, local] = np.nan
            hit.extend(int(c) for c in np.asarray(col_ids)[local])
            if log is not None:
                log.record("inject", kind="nan", columns=(int(d.col),),
                           detail=f"stage={stage} iteration={iteration}")
    return hit
