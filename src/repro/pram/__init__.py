"""Work/depth (CREW PRAM) cost accounting and parallel execution helpers.

The paper states all running times as *work* (total operations) and
*depth* (longest chain of sequentially dependent operations).  Python
cannot honestly realise PRAM wall-clock scaling (GIL), so this package
provides:

* :mod:`repro.pram.ledger` — an instrumented ledger; algorithms charge
  the work/depth they would incur under the paper's cost model, and the
  benchmarks check the *measured* ledger totals against the theorems'
  asymptotic shapes.
* :mod:`repro.pram.primitives` — cost formulas for the parallel
  primitives the paper invokes (Lemma 2.6 sampling, Lemma 2.7
  conversions, reductions, scans, sorts, sparse matvec).
* :mod:`repro.pram.executor` — backend-pluggable chunked execution
  for the embarrassingly parallel phases: serial, thread-pool (numpy
  releases the GIL inside chunk kernels), process-pool over
  shared-memory array payloads for the Python-bound phases the GIL
  would otherwise serialise, or the distributed backend over the
  hardened transport.  Blocked solves can additionally ship their
  column chunks as self-contained tasks against a once-published
  chain payload (:class:`SolveShipment`, DESIGN.md §10).  Results are
  bit-identical across backends and worker counts for a fixed seed
  (DESIGN.md §6–§7).
* :mod:`repro.pram.transport` — the distributed backend's wire layer
  (DESIGN.md §13): length-prefixed CRC32-checksummed frames with
  bounded retransmission, a mutual HMAC-SHA256 session handshake,
  heartbeat liveness, lease-based scheduling with in-place worker
  replacement, and payload shipping over shared memory or in-band
  frames (``REPRO_TRANSPORT=shm|tcp``).
* :mod:`repro.pram.faults` — deterministic fault injection
  (``REPRO_FAULTS`` / :func:`use_faults`) and the structured
  :class:`FaultLog` of recovery actions, backing the fault-tolerant
  dispatch layer (DESIGN.md §9): per-chunk retries with exponential
  backoff, stall timeouts, worker replacement, and policy-gated
  backend degradation — extended to the wire with ``stage=transport``
  directives (drop/corrupt/disconnect/delay).
"""

from repro.pram.ledger import (
    WorkDepthLedger,
    CostSnapshot,
    current_ledger,
    ledger_active,
    use_ledger,
    detach_ledger,
    charge,
    parallel_region,
)
from repro.pram import primitives
from repro.pram.executor import (
    ExecutionContext,
    ExecutionBackend,
    SerialBackend,
    ThreadPoolBackend,
    ProcessPoolBackend,
    DistributedBackend,
    RetryPolicy,
    parallel_map,
    chunk_ranges,
    default_workers,
    default_backend,
    default_retries,
    default_chunk_timeout,
    default_degrade,
    default_ship_solves,
    get_backend,
    live_segment_names,
    shutdown_distributed_pools,
    live_distributed_workers,
    BACKENDS,
    SharedPayload,
    PersistentPayload,
    SolveShipment,
)
from repro.pram.transport import (
    Channel,
    TransportPool,
    payload_fingerprint,
    default_transport,
    default_transport_key,
    default_heartbeat_s,
    default_ack_timeout,
)
from repro.pram.faults import (
    FaultDirective,
    FaultEvent,
    FaultLog,
    FaultPlan,
    InjectedFault,
    active_plan,
    current_fault_log,
    faults_active,
    use_fault_log,
    use_faults,
)

__all__ = [
    "WorkDepthLedger",
    "CostSnapshot",
    "current_ledger",
    "ledger_active",
    "use_ledger",
    "detach_ledger",
    "charge",
    "parallel_region",
    "primitives",
    "ExecutionContext",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "DistributedBackend",
    "RetryPolicy",
    "parallel_map",
    "chunk_ranges",
    "default_workers",
    "default_backend",
    "default_retries",
    "default_chunk_timeout",
    "default_degrade",
    "default_ship_solves",
    "get_backend",
    "live_segment_names",
    "shutdown_distributed_pools",
    "live_distributed_workers",
    "BACKENDS",
    "SharedPayload",
    "PersistentPayload",
    "SolveShipment",
    "Channel",
    "TransportPool",
    "payload_fingerprint",
    "default_transport",
    "default_transport_key",
    "default_heartbeat_s",
    "default_ack_timeout",
    "FaultDirective",
    "FaultEvent",
    "FaultLog",
    "FaultPlan",
    "InjectedFault",
    "active_plan",
    "current_fault_log",
    "faults_active",
    "use_fault_log",
    "use_faults",
]
