"""Cost formulas for the parallel primitives the paper relies on.

Every function returns a ``(work, depth)`` pair under the CREW PRAM
model, matching the costs the paper cites:

* Lemma 2.6 [HS19]: weighted random sampling — ``O(n)`` work,
  ``O(log n)`` depth preprocessing; ``O(1)`` work and depth per query.
* Lemma 2.7 [BM10]: edge-list ↔ adjacency-list conversion of a
  multigraph with ``m`` multi-edges — ``O(m)`` work, ``O(log m)`` depth.
* Folklore: parallel map is ``(n, 1)``; reduction and prefix scan are
  ``(n, log n)``; comparison sort is ``(n log n, log n)``; applying a
  Laplacian with ``m`` multi-edges is ``(m, log m)`` (multiply all edge
  contributions in parallel, then sum per vertex with a balanced tree —
  exactly the remark in the proof of Theorem 3.10).

Charges use ``max(x, 1)`` guards so degenerate sizes still cost a unit.
"""

from __future__ import annotations

import math

__all__ = [
    "log2p",
    "map_cost",
    "reduce_cost",
    "scan_cost",
    "sort_cost",
    "convert_cost",
    "sampler_build_cost",
    "sampler_query_cost",
    "matvec_cost",
    "walk_step_cost",
    "diag_solve_cost",
    "axpy_cost",
]


def log2p(x: float) -> float:
    """``log2`` clipped below at 1 — the depth of any nonempty primitive."""
    return max(1.0, math.log2(max(x, 2.0)))


def map_cost(n: int) -> tuple[float, float]:
    """Elementwise parallel map over ``n`` items: (n, 1)."""
    return (max(n, 1), 1.0)


def reduce_cost(n: int) -> tuple[float, float]:
    """Balanced-tree reduction: (n, log n)."""
    return (max(n, 1), log2p(n))


def scan_cost(n: int) -> tuple[float, float]:
    """Work-efficient prefix scan: (n, log n)."""
    return (max(n, 1), log2p(n))


def sort_cost(n: int) -> tuple[float, float]:
    """Parallel comparison sort: (n log n, log n)."""
    return (max(n, 1) * log2p(n), log2p(n))


def convert_cost(m: int) -> tuple[float, float]:
    """Lemma 2.7 [BM10] edge-list ↔ adjacency conversion: (m, log m)."""
    return (max(m, 1), log2p(m))


def sampler_build_cost(n: int) -> tuple[float, float]:
    """Lemma 2.6 [HS19] preprocessing: (n, log n)."""
    return (max(n, 1), log2p(n))


def sampler_query_cost(q: int) -> tuple[float, float]:
    """Lemma 2.6 [HS19]: q independent queries in parallel: (q, 1)."""
    return (max(q, 1), 1.0)


def matvec_cost(m: int) -> tuple[float, float]:
    """Laplacian (or sub-block) apply with ``m`` multi-edges: (m, log m).

    Per the remark in Theorem 3.10's proof: all per-edge products run in
    parallel, per-vertex sums use balanced trees.
    """
    return (max(m, 1), log2p(m))


def walk_step_cost(active: int) -> tuple[float, float]:
    """One synchronous step of ``active`` random walkers: each walker
    performs an O(1) sampler query (Lemma 2.6), all in parallel."""
    return (max(active, 1), 1.0)


def diag_solve_cost(n: int) -> tuple[float, float]:
    """Applying ``X⁻¹`` for diagonal ``X``: (n, 1)."""
    return (max(n, 1), 1.0)


def axpy_cost(n: int) -> tuple[float, float]:
    """Vector add / scale of length n: (n, 1)."""
    return (max(n, 1), 1.0)
