"""Hardened wire transport for the distributed backend (DESIGN.md §13).

PR 7's distributed stub proved the *shape* of multi-node execution but
leaned on two same-host conveniences: ``multiprocessing.connection``
(whose pickled stream trusts the wire completely) and ``/dev/shm`` for
payloads.  This module removes both, giving the backend a transport
with the failure envelope a real fleet imposes:

* **Framed messages** — every message is pickled, split into
  ≤ :data:`FRAME_CHUNK` pieces, and sent as length-prefixed frames
  carrying a CRC32 of their payload.  A corrupt frame is rejected by
  the receiver, which NAKs it; the sender retransmits **that frame**,
  bounded by :data:`MAX_RETRANSMITS`.  A *dropped* frame surfaces as a
  missing ACK: the sender retransmits the whole message after
  ``REPRO_TRANSPORT_ACK_S`` (receivers deduplicate by message id), also
  bounded.  Exhausting either budget raises
  :class:`~repro.errors.TransportError`, which the scheduler treats as
  a dead peer.
* **Authenticated sessions** — an HMAC-SHA256 challenge/response
  handshake (mutual: each side proves knowledge of the shared key from
  ``REPRO_TRANSPORT_KEY``, or a per-pool random key when unset) plus a
  protocol version check.  Handshake payloads are **fixed-format raw
  bytes** (nonces, proofs, UTF-8 refusal reasons) — nothing from the
  wire is unpickled until the peer has proven it holds the key, so an
  unauthenticated connector can never reach ``pickle.loads``.  Bad
  auth or a version mismatch ⇒ the connection is refused and logged;
  no job bytes ever reach an unauthenticated peer.
* **Heartbeats** — each worker pushes a heartbeat frame every
  ``REPRO_HEARTBEAT_S`` seconds from a background thread.  The
  coordinator tracks ``last_heard`` per connection and declares a
  worker dead after :data:`HEARTBEAT_MISS_FACTOR` missed intervals —
  so a wedged worker (frozen VM, not a clean EOF) is detected before
  the round stalls on it.
* **In-band payloads** — with ``REPRO_TRANSPORT=tcp``, array payloads
  ship as chunked frames instead of shared-memory segments: the
  coordinator sends each distinct payload (keyed by
  :func:`payload_fingerprint`) to a worker **once**; the worker keeps
  an attach-once LRU cache mirroring the shm attachment cache, and
  can request a re-send (``need``) if its cache evicted a payload.
  Nothing in ``tcp`` mode touches ``/dev/shm``.

Scheduling on top of the transport is **lease-based**
(:class:`TransportPool`): each dispatched chunk holds a lease on its
worker; a worker death — EOF, transport failure, missed heartbeats, or
an expired lease under the policy's stall timeout — expires only that
worker's lease, re-queues its chunk, and **spawns a replacement
worker** (with backoff) instead of tearing the pool down.  The pool
survives any number of deaths as long as replacements can be spawned;
the determinism contract (DESIGN.md §6) makes every re-dispatch
bit-identical.

Fault injection (``stage=transport`` grammar, :mod:`repro.pram.faults`)
hooks the coordinator's outbound frames: ``drop:frame=N`` skips the
``N``-th first-transmission payload frame on a connection,
``corrupt:frame=N`` flips payload bytes after the CRC is computed,
``delay:seconds=F`` sleeps before sending.  Retransmitted frames carry
an ``attempt`` coordinate ≥ 1, so default (``attempt=0``) directives
never refire on the recovery path — keeping faulted runs convergent
and deterministic.  ``disconnect:worker=N`` ships with the job and
severs the connection worker-side; control frames (ACK/NAK/heartbeat)
are never fault targets.
"""

from __future__ import annotations

import hashlib
import hmac
import logging
import os
import pickle
import select
import socket
import struct
import threading
import time
import zlib
from collections import OrderedDict, deque

import numpy as np

from repro.errors import ExecutionError, TransportError

__all__ = ["PROTOCOL_VERSION", "FRAME_CHUNK", "MAX_RETRANSMITS",
           "HEARTBEAT_MISS_FACTOR", "Channel", "TransportPool",
           "payload_fingerprint", "default_transport",
           "default_transport_key", "default_heartbeat_s",
           "default_ack_timeout", "transport_worker_main"]

_log = logging.getLogger("repro.transport")

#: Wire protocol version; checked in the handshake and on every frame.
PROTOCOL_VERSION = 1

_MAGIC = b"RT"

#: Frame header: magic(2s) version(B) type(B) msg_id(I) chunk_idx(H)
#: nchunks(H) payload_length(I) payload_crc32(I) — network byte order.
_HEADER = struct.Struct("!2sBBIHHII")

# Frame types.
_DATA = 1
_ACK = 2
_NAK = 3
_HEARTBEAT = 4
_HELLO = 5
_CHALLENGE = 6
_AUTH = 7
_WELCOME = 8
_REFUSE = 9

#: Payload bytes per DATA frame; large messages span several frames.
FRAME_CHUNK = 1 << 20

#: Retransmission budget, applied independently to the per-frame NAK
#: path and the whole-message ACK-timeout path.
MAX_RETRANSMITS = 3

#: Heartbeat intervals a worker may miss before it is declared dead.
HEARTBEAT_MISS_FACTOR = 3

_HANDSHAKE_TIMEOUT = 10.0
_SPAWN_TIMEOUT = 15.0
_SEND_TIMEOUT = 60.0

#: Fixed handshake field widths: 16-byte nonces, 32-byte HMAC-SHA256
#: proofs.  Handshake payloads are raw concatenations of these — never
#: pickle — so nothing attacker-controlled is deserialized pre-auth.
_NONCE_LEN = 16
_PROOF_LEN = 32

#: Worker-side payload cache width — same rationale as the shm
#: attachment cache (executor ``_ATTACH_CACHE``): one slot for the
#: persistent chain payload, one for the current dispatch payload.
_PAYLOAD_CACHE = 2


# -- env knobs (shared cache idiom with the executor) -------------------------


def default_transport() -> str:
    """Payload mode from ``REPRO_TRANSPORT``: ``shm`` (default) or ``tcp``.

    ``shm`` publishes payload arrays as shared-memory segments that
    workers attach (same-host only); ``tcp`` ships them in-band as
    chunked frames (no ``/dev/shm`` assumption — the remote-ready
    mode).  Either way the job messages travel over the framed socket.
    """
    from repro.pram.executor import _env_cached

    def parse(env: str | None) -> str:
        if not env or not env.strip():
            return "shm"
        value = env.strip().lower()
        if value not in ("shm", "tcp"):
            raise ValueError(
                f"REPRO_TRANSPORT must be 'shm' or 'tcp', got {env!r}")
        return value

    return _env_cached("REPRO_TRANSPORT", parse)


def default_transport_key() -> bytes | None:
    """Shared HMAC key from ``REPRO_TRANSPORT_KEY`` (utf-8), or ``None``.

    When unset, each pool generates a random per-process key — secure
    for same-host pools (the key travels only through process spawn
    arguments, never the wire).  A real multi-host deployment sets the
    env var on every node.
    """
    from repro.pram.executor import _env_cached

    def parse(env: str | None) -> bytes | None:
        if not env or not env.strip():
            return None
        return env.encode("utf-8")

    return _env_cached("REPRO_TRANSPORT_KEY", parse)


def default_heartbeat_s() -> float:
    """Heartbeat interval from ``REPRO_HEARTBEAT_S`` (seconds, ≥ 0).

    ``0`` disables heartbeats (liveness then rests on EOF detection and
    lease timeouts alone).  Default 5 s; a worker is declared dead
    after :data:`HEARTBEAT_MISS_FACTOR` missed intervals.
    """
    from repro.pram.executor import _env_cached

    def parse(env: str | None) -> float:
        if not env or not env.strip():
            return 5.0
        try:
            value = float(env)
        except ValueError:
            value = -1.0
        if value < 0 or not np.isfinite(value):
            raise ValueError(
                f"REPRO_HEARTBEAT_S must be a non-negative number of "
                f"seconds, got {env!r}")
        return value

    return _env_cached("REPRO_HEARTBEAT_S", parse)


def default_ack_timeout() -> float:
    """Per-message ACK timeout from ``REPRO_TRANSPORT_ACK_S`` (s, > 0).

    How long a sender waits for a message ACK before retransmitting the
    whole message (the dropped-frame recovery path).
    """
    from repro.pram.executor import _env_cached

    def parse(env: str | None) -> float:
        if not env or not env.strip():
            return 5.0
        try:
            value = float(env)
        except ValueError:
            value = 0.0
        if value <= 0 or not np.isfinite(value):
            raise ValueError(
                f"REPRO_TRANSPORT_ACK_S must be a positive number of "
                f"seconds, got {env!r}")
        return value

    return _env_cached("REPRO_TRANSPORT_ACK_S", parse)


_auto_key: bytes | None = None


def _resolve_key() -> bytes:
    """The session key: env-configured, else one random key per process."""
    global _auto_key
    key = default_transport_key()
    if key is not None:
        return key
    if _auto_key is None:
        _auto_key = os.urandom(32)
    return _auto_key


# -- payload identity ---------------------------------------------------------


def payload_fingerprint(arrays: dict) -> str:
    """Content hash of a named-array payload (sha256 hex digest).

    The in-band payload cache key: covers names, dtypes, shapes, and
    raw bytes in sorted-name order, so two payloads share a fingerprint
    iff a worker could use either interchangeably.
    """
    h = hashlib.sha256()
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


# -- handshake ----------------------------------------------------------------


class _PumpTimeout(Exception):
    """Internal: a bounded pump found no complete frame in time."""


def _plain_recv_exact(sock, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        try:
            data = sock.recv(n - len(buf))
        except socket.timeout:
            raise TransportError("handshake timed out") from None
        except OSError as exc:
            raise TransportError(
                f"handshake connection lost: {exc!r}") from None
        if not data:
            raise TransportError("peer closed during handshake")
        buf += data
    return bytes(buf)


def _plain_send(sock, ftype: int, payload: bytes,
                version: int = PROTOCOL_VERSION) -> None:
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    header = _HEADER.pack(_MAGIC, version, ftype, 0, 0, 1,
                          len(payload), crc)
    sock.sendall(header + payload)


def _plain_recv(sock) -> tuple[int, int, bytes]:
    header = _plain_recv_exact(sock, _HEADER.size)
    magic, ver, ftype, _, _, _, length, crc = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise TransportError("peer is not speaking the repro transport")
    payload = _plain_recv_exact(sock, length) if length else b""
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise TransportError("corrupt handshake frame")
    return ver, ftype, payload


def _proof(key: bytes, role: bytes, nonce: bytes) -> bytes:
    return hmac.new(key, role + nonce, hashlib.sha256).digest()


def server_handshake(sock, key: bytes, welcome: dict,
                     log=None) -> bool:
    """Authenticate an inbound connection (coordinator side).

    Protocol (all payloads fixed-format raw bytes — **no pickle is
    ever applied to pre-auth wire data**): peer sends HELLO (16-byte
    nonce; the protocol version rides in the frame header); we answer
    CHALLENGE (our 16-byte nonce ‖ 32-byte proof over the peer's nonce,
    proving *we* hold the key — mutual auth); peer answers AUTH (32-byte
    proof over our nonce); on success we send WELCOME, a pickled dict
    tagged with an HMAC bound to the session nonce (the one post-auth
    payload).  Any failure sends REFUSE (UTF-8 reason), closes the
    socket, logs the refusal, and returns ``False`` — no job traffic
    ever flows on an unauthenticated connection.
    """
    def refuse(reason: str) -> bool:
        _log.warning("transport handshake refused: %s", reason)
        if log is not None:
            log.record("auth_refused", backend="transport", detail=reason)
        try:
            _plain_send(sock, _REFUSE, reason.encode("utf-8"))
        except OSError:
            pass
        sock.close()
        return False

    sock.settimeout(_HANDSHAKE_TIMEOUT)
    try:
        ver, ftype, payload = _plain_recv(sock)
        if ftype != _HELLO:
            return refuse(f"expected HELLO, got frame type {ftype}")
        if ver != PROTOCOL_VERSION:
            return refuse(f"protocol version mismatch: peer "
                          f"{ver}, ours {PROTOCOL_VERSION}")
        if len(payload) != _NONCE_LEN:
            return refuse(f"malformed HELLO nonce "
                          f"({len(payload)} bytes, want {_NONCE_LEN})")
        nonce_c = payload
        nonce_s = os.urandom(_NONCE_LEN)
        _plain_send(sock, _CHALLENGE,
                    nonce_s + _proof(key, b"server", nonce_c))
        ver, ftype, payload = _plain_recv(sock)
        if ftype != _AUTH:
            return refuse(f"expected AUTH, got frame type {ftype}")
        if len(payload) != _PROOF_LEN:
            return refuse(f"malformed AUTH proof "
                          f"({len(payload)} bytes, want {_PROOF_LEN})")
        if not hmac.compare_digest(payload,
                                   _proof(key, b"client", nonce_s)):
            return refuse("authentication failed (bad HMAC proof)")
        blob = pickle.dumps(welcome)
        _plain_send(sock, _WELCOME,
                    blob + _proof(key, b"welcome", nonce_c + blob))
    except (TransportError, OSError) as exc:
        return refuse(f"handshake error: {exc}")
    sock.settimeout(None)
    return True


def client_handshake(sock, key: bytes) -> dict:
    """Authenticate an outbound connection (worker side).

    Mirror image of :func:`server_handshake`; verifies the server's
    proof before answering (so a worker never talks jobs with an
    impostor coordinator either), and only unpickles the WELCOME dict
    after checking its HMAC tag — the wire never reaches
    ``pickle.loads`` unauthenticated.  Returns the WELCOME dict; raises
    :class:`TransportError` on refusal or mismatch.
    """
    def refusal(payload: bytes) -> str:
        return payload.decode("utf-8", "replace") or "refused"

    sock.settimeout(_HANDSHAKE_TIMEOUT)
    nonce_c = os.urandom(_NONCE_LEN)
    _plain_send(sock, _HELLO, nonce_c)
    ver, ftype, payload = _plain_recv(sock)
    if ftype == _REFUSE:
        raise TransportError(f"connection refused: {refusal(payload)}")
    if ftype != _CHALLENGE:
        raise TransportError(f"expected CHALLENGE, got type {ftype}")
    if ver != PROTOCOL_VERSION:
        raise TransportError(f"protocol version mismatch: coordinator "
                             f"{ver}, ours {PROTOCOL_VERSION}")
    if len(payload) != _NONCE_LEN + _PROOF_LEN:
        raise TransportError("malformed CHALLENGE frame")
    nonce_s = payload[:_NONCE_LEN]
    if not hmac.compare_digest(payload[_NONCE_LEN:],
                               _proof(key, b"server", nonce_c)):
        raise TransportError("coordinator failed authentication")
    _plain_send(sock, _AUTH, _proof(key, b"client", nonce_s))
    ver, ftype, payload = _plain_recv(sock)
    if ftype == _REFUSE:
        raise TransportError(f"connection refused: {refusal(payload)}")
    if ftype != _WELCOME:
        raise TransportError(f"expected WELCOME, got type {ftype}")
    blob, tag = payload[:-_PROOF_LEN], payload[-_PROOF_LEN:]
    if not hmac.compare_digest(tag,
                               _proof(key, b"welcome", nonce_c + blob)):
        raise TransportError("WELCOME failed authentication")
    sock.settimeout(None)
    return pickle.loads(blob)


# -- the framed channel -------------------------------------------------------


class Channel:
    """One authenticated, framed, checksummed duplex connection.

    Messages are arbitrary picklable objects.  :meth:`send_msg` blocks
    until the peer ACKs the assembled message (retransmitting on ACK
    timeout or NAK, bounded); :meth:`recv_msg` / :meth:`poll` pump
    inbound frames, transparently ACKing completed messages and
    answering NAKs.  Inbound messages that arrive while a send waits
    for its ACK are queued — full-duplex traffic cannot deadlock.

    Threading: receives happen on one thread only.  Sends are
    serialized by an internal lock so a worker's heartbeat thread can
    interleave with its result sends.  The coordinator is
    single-threaded per pool.  Both directions bound their waits with
    ``select`` on a blocking socket — the shared per-socket timeout is
    never touched after construction, so a heartbeat send can never
    race a concurrent receive into inheriting the wrong timeout.

    ``directives`` (set per dispatch round by the scheduler) are
    coordinator-side ``stage=transport`` frame faults; ``peer`` is the
    remote worker id used by ``worker=`` selectors.
    """

    def __init__(self, sock, *, peer: int | None = None,
                 ack_timeout: float | None = None) -> None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP test sockets
            pass
        sock.settimeout(None)  # waits are select-bounded from here on
        self.sock = sock
        self.peer = peer
        self.directives: tuple = ()
        self.log = None
        self.closed = False
        self.last_heard = time.monotonic()
        self._ack_timeout = ack_timeout
        self._send_lock = threading.Lock()
        self._rbuf = bytearray()
        self._inbox: deque = deque()
        self._next_msg_id = 1
        self._frames_sent = 0          # first-transmission DATA frames
        self._out: tuple | None = None  # (msg_id, [(frame_no, idx, bytes)])
        self._out_acked = False
        self._nak_resends: dict[tuple[int, int], int] = {}
        self._nak_sent: dict[tuple[int, int], int] = {}
        self._partial: dict[int, dict[int, bytes]] = {}
        self._last_delivered = 0

    # -- low level ------------------------------------------------------------

    def close(self) -> None:
        """Close the socket (idempotent)."""
        self.closed = True
        try:
            self.sock.close()
        except OSError:  # pragma: no cover
            pass

    def _fail(self, reason: str) -> TransportError:
        self.close()
        return TransportError(
            f"peer {self.peer if self.peer is not None else '?'}: {reason}")

    def _raw_send(self, data: bytes) -> None:
        with self._send_lock:
            view = memoryview(data)
            deadline = time.monotonic() + _SEND_TIMEOUT
            while view:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise self._fail(
                        f"send timed out after {_SEND_TIMEOUT}s")
                try:
                    _, writable, _ = select.select([], [self.sock], [],
                                                   remaining)
                except (OSError, ValueError) as exc:
                    raise self._fail(f"send failed ({exc!r})") from None
                if not writable:
                    raise self._fail(
                        f"send timed out after {_SEND_TIMEOUT}s")
                try:
                    sent = self.sock.send(view)
                except OSError as exc:
                    raise self._fail(f"send failed ({exc!r})") from None
                view = view[sent:]

    def _frame(self, ftype: int, msg_id: int, chunk: int, nchunks: int,
               payload: bytes) -> bytes:
        crc = zlib.crc32(payload) & 0xFFFFFFFF
        return _HEADER.pack(_MAGIC, PROTOCOL_VERSION, ftype, msg_id,
                            chunk, nchunks, len(payload), crc) + payload

    def _fill(self, n: int, deadline: float | None) -> None:
        """Buffer at least ``n`` inbound bytes or raise ``_PumpTimeout``.

        An already-expired deadline still sweeps whatever the kernel
        has buffered (zero-timeout select) before giving up, so
        :meth:`drain`/:meth:`pump` with a past deadline deliver
        kernel-buffered frames — heartbeats included — without
        blocking.
        """
        while len(self._rbuf) < n:
            if deadline is None:
                remaining = None
            else:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                readable, _, _ = select.select([self.sock], [], [],
                                               remaining)
            except (OSError, ValueError) as exc:
                raise self._fail(f"receive failed ({exc!r})") from None
            if not readable:
                raise _PumpTimeout
            try:
                data = self.sock.recv(1 << 16)
            except OSError as exc:
                raise self._fail(f"receive failed ({exc!r})") from None
            if not data:
                raise self._fail("connection closed by peer")
            self._rbuf += data

    # -- fault hooks (coordinator-side outbound frames) -----------------------

    def _send_data_frame(self, frame_no: int, msg_id: int, idx: int,
                         nchunks: int, payload: bytes,
                         attempt: int) -> None:
        drop = corrupt = False
        for d in self.directives:
            if not d.matches_frame(frame=frame_no, attempt=attempt,
                                   worker=self.peer):
                continue
            if self.log is not None:
                self.log.record("inject", kind=d.kind, chunk=frame_no,
                                attempt=attempt, backend="transport",
                                detail=d.spec())
            if d.kind == "delay":
                time.sleep(d.seconds)
            elif d.kind == "drop":
                drop = True
            elif d.kind == "corrupt":
                corrupt = True
        if drop:
            return
        frame = self._frame(_DATA, msg_id, idx, nchunks, payload)
        if corrupt:
            damaged = bytearray(frame)
            damaged[_HEADER.size] ^= 0xFF  # payload byte; CRC now lies
            frame = bytes(damaged)
        self._raw_send(frame)

    # -- sending --------------------------------------------------------------

    def send_heartbeat(self) -> None:
        """Push one heartbeat frame (never fault-targeted, never ACKed)."""
        self._raw_send(self._frame(_HEARTBEAT, 0, 0, 0, b""))

    def send_msg(self, obj) -> None:
        """Send one message reliably; blocks until the peer ACKs it.

        Recovery: a NAKed frame is retransmitted individually; a
        missing ACK retransmits the whole message after the ACK
        timeout (the receiver deduplicates).  Both paths are bounded
        by :data:`MAX_RETRANSMITS`; exhaustion (or a vanished peer)
        raises :class:`TransportError`.
        """
        if self.closed:
            raise TransportError(f"channel to peer {self.peer} is closed")
        blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        pieces = [blob[i:i + FRAME_CHUNK]
                  for i in range(0, len(blob), FRAME_CHUNK)] or [b""]
        msg_id = self._next_msg_id
        self._next_msg_id += 1
        frames = []
        for idx, piece in enumerate(pieces):
            frames.append((self._frames_sent, idx, piece))
            self._frames_sent += 1
        self._out = (msg_id, frames)
        self._out_acked = False
        try:
            for transmission in range(MAX_RETRANSMITS + 1):
                for frame_no, idx, piece in frames:
                    self._send_data_frame(frame_no, msg_id, idx,
                                          len(pieces), piece, transmission)
                deadline = time.monotonic() + self.ack_timeout()
                while not self._out_acked:
                    if not self.pump(deadline):
                        break
                if self._out_acked:
                    return
                if self.log is not None:
                    self.log.record("retransmit", chunk=None,
                                    attempt=transmission + 1,
                                    backend="transport",
                                    detail=f"msg {msg_id} unacked, "
                                           f"resending to peer {self.peer}")
            raise self._fail(
                f"message {msg_id} unacknowledged after "
                f"{MAX_RETRANSMITS + 1} transmissions")
        finally:
            self._out = None

    def ack_timeout(self) -> float:
        """Per-message ACK wait (constructor override or env)."""
        if self._ack_timeout is not None:
            return self._ack_timeout
        return default_ack_timeout()

    # -- receiving ------------------------------------------------------------

    def pump(self, deadline: float | None = None) -> bool:
        """Process one inbound frame; ``False`` if none arrived in time.

        Handles control frames internally (ACK/NAK/heartbeat), CRC
        checking + NAK generation, and message assembly: a completed
        message is ACKed and appended to the inbox.
        """
        try:
            self._fill(_HEADER.size, deadline)
        except _PumpTimeout:
            return False
        header = bytes(self._rbuf[:_HEADER.size])
        magic, ver, ftype, msg_id, idx, nchunks, length, crc = \
            _HEADER.unpack(header)
        if magic != _MAGIC:
            raise self._fail("bad frame magic (desynchronized stream)")
        if ver != PROTOCOL_VERSION:
            raise self._fail(f"protocol version {ver} != "
                             f"{PROTOCOL_VERSION} mid-session")
        try:
            self._fill(_HEADER.size + length, deadline)
        except _PumpTimeout:
            return False            # partial frame stays buffered
        del self._rbuf[:_HEADER.size]
        payload = bytes(self._rbuf[:length])
        del self._rbuf[:length]
        self.last_heard = time.monotonic()

        if ftype == _HEARTBEAT:
            return True
        if ftype == _ACK:
            if self._out is not None and msg_id == self._out[0]:
                self._out_acked = True
            return True
        if ftype == _NAK:
            self._handle_nak(msg_id, idx)
            return True
        if ftype != _DATA:
            raise self._fail(f"unexpected frame type {ftype} mid-session")

        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            seen = self._nak_sent.get((msg_id, idx), 0) + 1
            self._nak_sent[(msg_id, idx)] = seen
            if seen > MAX_RETRANSMITS:
                raise self._fail(
                    f"frame {idx} of message {msg_id} still corrupt "
                    f"after {MAX_RETRANSMITS} retransmissions")
            if self.log is not None:
                self.log.record("nak", chunk=idx, attempt=seen,
                                backend="transport",
                                detail=f"corrupt frame (msg {msg_id})")
            self._raw_send(self._frame(_NAK, msg_id, idx, 0, b""))
            return True

        if msg_id <= self._last_delivered:
            # Whole-message retransmit of something we already ACKed
            # (our ACK crossed the sender's timeout): re-ACK, discard.
            self._raw_send(self._frame(_ACK, msg_id, 0, 0, b""))
            return True
        entry = self._partial.setdefault(msg_id, {})
        entry[idx] = payload
        if len(entry) == nchunks:
            del self._partial[msg_id]
            blob = b"".join(entry[i] for i in range(nchunks))
            self._raw_send(self._frame(_ACK, msg_id, 0, 0, b""))
            self._last_delivered = msg_id
            self._inbox.append(pickle.loads(blob))
        return True

    def _handle_nak(self, msg_id: int, idx: int) -> None:
        if self._out is None or self._out[0] != msg_id:
            return
        resend = self._nak_resends.get((msg_id, idx), 0) + 1
        self._nak_resends[(msg_id, idx)] = resend
        if resend > MAX_RETRANSMITS:
            raise self._fail(
                f"frame {idx} of message {msg_id} NAKed more than "
                f"{MAX_RETRANSMITS} times")
        if self.log is not None:
            self.log.record("nak", chunk=idx, attempt=resend,
                            backend="transport",
                            detail=f"peer {self.peer} rejected frame "
                                   f"{idx} of msg {msg_id}; resending")
        _, frames = self._out
        frame_no, _, piece = frames[idx]
        nchunks = len(frames)
        self._send_data_frame(frame_no, msg_id, idx, nchunks, piece,
                              resend)

    def poll(self, timeout: float = 0.0) -> bool:
        """Pump inbound frames for up to ``timeout``; any messages queued?"""
        deadline = time.monotonic() + timeout
        while not self._inbox:
            if not self.pump(deadline):
                break
        return bool(self._inbox)

    def recv_msg(self, timeout: float | None = None):
        """Next inbound message; blocks (``timeout=None``) or raises
        :class:`TransportError` on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._inbox:
            if not self.pump(deadline):
                raise TransportError(
                    f"no message from peer {self.peer} within {timeout}s")
        return self._inbox.popleft()

    def drain(self) -> list:
        """All already-queued inbound messages (non-blocking beyond
        what is buffered on the socket)."""
        while self.pump(time.monotonic()):
            pass
        out = list(self._inbox)
        self._inbox.clear()
        return out


# -- worker process -----------------------------------------------------------


def _heartbeat_loop(chan: Channel, interval: float,
                    stop: threading.Event) -> None:
    while not stop.wait(interval):
        try:
            chan.send_heartbeat()
        except TransportError:  # pragma: no cover - parent went away
            return


def _apply_wire_faults(directives, *, worker_id: int, chunk: int,
                       attempt: int, chan: Channel,
                       stop_hb: threading.Event) -> None:
    """Worker-side ``stage=transport`` faults, applied on job receipt.

    ``disconnect`` severs the connection and exits (clean EOF at the
    coordinator); ``kill:stage=transport`` exits hard; a
    ``hang:stage=transport`` **suspends heartbeats first** and then
    sleeps — the frozen-machine case only heartbeat monitoring can
    detect — before exiting.
    """
    for d in directives:
        if d.kind == "disconnect":
            if d.worker is not None and d.worker != worker_id:
                continue
            if d.chunk is not None and d.chunk != chunk:
                continue
            if d.attempt is not None and d.attempt != attempt:
                continue
            stop_hb.set()
            chan.close()
            os._exit(78)
        elif d.kind in ("kill", "hang"):
            if not d.matches_chunk(chunk=chunk, attempt=attempt):
                continue
            if d.kind == "kill":
                os._exit(77)
            stop_hb.set()
            time.sleep(d.seconds)
            os._exit(79)


def transport_worker_main(address, key: bytes) -> None:
    """Entry point of one transport-backed worker process.

    Connects back to the coordinator, authenticates, starts the
    heartbeat thread, and serves messages until told to stop:

    * ``("payload", fp, arrays)`` — store in the attach-once cache;
    * ``("job", i, args)`` — resolve payload refs (shm attach or cache
      lookup; reply ``("need", i, fps)`` if the cache evicted one),
      run the chunk, reply ``("result", i, attempt, triple)``;
    * ``("stop",)`` — drain and exit.
    """
    from repro.pram.executor import (_attach_payload,
                                     _execute_shipped_chunk)
    from repro.pram.ledger import detach_ledger

    detach_ledger()
    try:
        sock = socket.create_connection(address,
                                        timeout=_HANDSHAKE_TIMEOUT)
        welcome = client_handshake(sock, key)
    except (TransportError, OSError):  # pragma: no cover - refused
        return
    worker_id = welcome["worker_id"]
    chan = Channel(sock, peer=worker_id,
                   ack_timeout=welcome.get("ack_timeout"))
    stop_hb = threading.Event()
    heartbeat_s = float(welcome.get("heartbeat_s", 0.0))
    if heartbeat_s > 0:
        threading.Thread(target=_heartbeat_loop,
                         args=(chan, heartbeat_s, stop_hb),
                         daemon=True).start()
    payloads: "OrderedDict[str, dict]" = OrderedDict()

    def resolve(ref):
        if ref is None:
            return {}
        kind, spec = ref
        if kind == "shm":
            return _attach_payload(spec)
        arrays = payloads[spec]
        payloads.move_to_end(spec)
        return arrays

    try:
        while True:
            msg = chan.recv_msg()
            tag = msg[0]
            if tag == "stop":
                break
            if tag == "payload":
                _, fp, arrays = msg
                payloads[fp] = arrays
                payloads.move_to_end(fp)
                while len(payloads) > _PAYLOAD_CACHE:
                    payloads.popitem(last=False)
                continue
            if tag != "job":  # pragma: no cover - protocol error
                continue
            _, i, args = msg
            (dispatch_ref, shared_ref, task, meta, lo, hi, seed_seq,
             bitgen_cls, want_ledger, directives, chunk, attempt) = args
            # Mirrors FaultPlan.transport_directives: kill/hang pinned
            # to the transport scope via either stage= or phase= are
            # wire faults (hang must suspend heartbeats first).
            wire = tuple(d for d in directives
                         if d.kind == "disconnect"
                         or (d.kind in ("kill", "hang")
                             and "transport" in (d.stage, d.phase)))
            rest = tuple(d for d in directives if d not in wire)
            _apply_wire_faults(wire, worker_id=worker_id, chunk=chunk,
                               attempt=attempt, chan=chan,
                               stop_hb=stop_hb)
            missing = [ref[1] for ref in (dispatch_ref, shared_ref)
                       if ref is not None and ref[0] == "tcp"
                       and ref[1] not in payloads]
            if missing:
                chan.send_msg(("need", i, tuple(missing)))
                continue

            def arrays_fn():
                # Dispatch first, shared second: the merge lets
                # dispatch keys win, and touching the shared (chain)
                # payload last keeps it MRU in the cache so eviction
                # always reclaims the previous dispatch payload.
                dispatch_arrays = resolve(dispatch_ref)
                shared_arrays = resolve(shared_ref)
                if shared_arrays:
                    return {**shared_arrays, **dispatch_arrays}
                return dispatch_arrays

            triple = _execute_shipped_chunk(
                arrays_fn, task, meta, lo, hi, seed_seq, bitgen_cls,
                want_ledger, rest, chunk, attempt)
            chan.send_msg(("result", i, attempt, triple))
    except TransportError:  # pragma: no cover - parent went away
        pass
    finally:
        stop_hb.set()
        chan.close()


# -- the lease-based pool -----------------------------------------------------


class _RemoteWorker:
    __slots__ = ("id", "proc", "chan", "lease", "lease_started",
                 "shipped")

    def __init__(self, worker_id: int, proc, chan: Channel) -> None:
        self.id = worker_id
        self.proc = proc
        self.chan = chan
        self.lease: tuple[int, int] | None = None  # (chunk, attempt)
        self.lease_started = 0.0
        self.shipped: set[str] = set()             # tcp payload fps


class TransportPool:
    """A replaceable fleet of authenticated transport workers.

    Maintains ``size`` live workers behind a loopback listener, each
    authenticated via the HMAC handshake and monitored by heartbeats.
    :meth:`run_tasks` schedules chunks under **leases**: one chunk per
    worker at a time; a worker death expires only its own lease (the
    chunk is re-queued with its attempt counter bumped) and a
    replacement worker is spawned with backoff — the pool is never
    torn down mid-round.  :meth:`ensure_capacity` performs the same
    liveness check at checkout, fixing the capacity-rot failure mode
    where a cached pool was reused with dead workers.

    Worker ids are **monotone** — a replacement gets a fresh id — so
    ``worker=N`` fault selectors cannot refire on the replacement.
    """

    def __init__(self, size: int, *, key: bytes | None = None,
                 heartbeat_s: float | None = None,
                 ack_timeout: float | None = None) -> None:
        import multiprocessing

        self.size = max(1, size)
        self.key = key if key is not None else _resolve_key()
        self.heartbeat_s = heartbeat_s if heartbeat_s is not None \
            else default_heartbeat_s()
        self.ack_timeout = ack_timeout if ack_timeout is not None \
            else default_ack_timeout()
        #: Env snapshot the pool was built under; a cached pool whose
        #: config drifted from the environment is rebuilt at checkout.
        self.config = (self.heartbeat_s, self.ack_timeout, self.key)
        method = "fork" \
            if "fork" in multiprocessing.get_all_start_methods() \
            else "spawn"
        self._ctx = multiprocessing.get_context(method)
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET,
                                  socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(16)
        self._next_id = 0
        self._deaths = 0
        self._closing = False
        self.replacements = 0
        self.workers: list[_RemoteWorker] = []
        try:
            for _ in range(self.size):
                self._spawn_worker()
        except TransportError:
            self.shutdown(terminate=True)
            raise

    # -- membership -----------------------------------------------------------

    def _spawn_worker(self, log=None) -> _RemoteWorker:
        worker_id = self._next_id
        self._next_id += 1
        proc = self._ctx.Process(
            target=transport_worker_main,
            args=(self._listener.getsockname(), self.key),
            daemon=True)
        proc.start()
        deadline = time.monotonic() + _SPAWN_TIMEOUT
        welcome = {"worker_id": worker_id,
                   "heartbeat_s": self.heartbeat_s,
                   "ack_timeout": self.ack_timeout}
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not proc.is_alive():
                proc.terminate()
                raise TransportError(
                    f"worker {worker_id} did not complete the "
                    f"handshake within {_SPAWN_TIMEOUT}s")
            self._listener.settimeout(remaining)
            try:
                sock, _ = self._listener.accept()
            except socket.timeout:
                continue
            # Reject unauthenticated connectors and keep listening for
            # the worker we actually spawned.
            if server_handshake(sock, self.key, welcome, log=log):
                break
        chan = Channel(sock, peer=worker_id, ack_timeout=self.ack_timeout)
        worker = _RemoteWorker(worker_id, proc, chan)
        self.workers.append(worker)
        return worker

    def _retire(self, worker: _RemoteWorker) -> None:
        worker.chan.close()
        try:
            worker.proc.terminate()
            worker.proc.join(timeout=1.0)
        except Exception:  # pragma: no cover
            pass
        if worker in self.workers:
            self.workers.remove(worker)

    def ensure_capacity(self, log=None) -> int:
        """Retire dead workers, top back up to ``size``; returns the
        number of replacements made (the checkout liveness check)."""
        replaced = 0
        for worker in list(self.workers):
            if worker.proc.is_alive() and not worker.chan.closed:
                continue
            self._retire(worker)
            replaced += 1
        while len(self.workers) < self.size and not self._closing:
            self._spawn_worker(log=log)
        return replaced

    def alive_pids(self) -> tuple[int, ...]:
        """PIDs of workers whose processes are still running."""
        return tuple(w.proc.pid for w in self.workers
                     if w.proc.is_alive())

    def shutdown(self, terminate: bool = False) -> None:
        """Graceful drain: stop every worker, join, terminate stragglers."""
        self._closing = True
        for worker in self.workers:
            if not terminate:
                try:
                    worker.chan.send_msg(("stop",))
                except TransportError:
                    pass
            worker.chan.close()
        for worker in self.workers:
            try:
                if terminate:
                    worker.proc.terminate()
                worker.proc.join(timeout=2.0)
                if worker.proc.is_alive():  # pragma: no cover - wedged
                    worker.proc.terminate()
                    worker.proc.join(timeout=1.0)
            except Exception:  # pragma: no cover
                pass
        self.workers.clear()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass

    # -- the lease scheduler --------------------------------------------------

    def run_tasks(self, njobs: int, make_args, payload_refs, payloads,
                  *, policy=None, log=None, frame_directives=(),
                  backend_name: str = "distributed") -> list:
        """Run jobs ``0..njobs-1``; returns their result triples.

        ``make_args(i, attempt)`` builds the job's argument tuple;
        ``payload_refs`` are the ``("shm", spec)`` / ``("tcp", fp)``
        refs the jobs cite, and ``payloads`` maps tcp fingerprints to
        host arrays for in-band shipping (attach-once per worker).

        Lease semantics: a chunk assigned to a worker holds a lease on
        it until its result lands.  Deaths (EOF, transport failure,
        missed heartbeats, lease past the policy timeout) expire that
        lease only: the chunk re-queues with ``attempt + 1`` and a
        backoff window, the worker is replaced, and the round
        continues.  A chunk out of attempts settles as an
        :class:`~repro.errors.ExecutionError` triple, exactly like the
        other backends.
        """
        from repro.pram.executor import _is_transient

        max_attempts = policy.max_attempts if policy is not None else 1
        lease_timeout = policy.timeout if policy is not None else None
        now = time.monotonic()
        self.ensure_capacity(log=log)
        for worker in self.workers:
            worker.chan.directives = tuple(frame_directives)
            worker.chan.log = log
            worker.chan.last_heard = now
            worker.chan.drain()  # heartbeats buffered since last round

        results: dict[int, tuple] = {}
        queue: deque[tuple[int, int]] = deque(
            (i, 0) for i in range(njobs))
        ready_at: dict[int, float] = {}

        def settle_failure(i: int, attempt: int,
                           cause: BaseException) -> None:
            if i in results:
                return
            nxt = attempt + 1
            if nxt >= max_attempts:
                if log is not None:
                    log.record("exhausted", chunk=i, attempt=max_attempts,
                               backend=backend_name, detail=repr(cause))
                results[i] = (False, ExecutionError(
                    f"chunk {i} failed after {max_attempts} attempt(s) "
                    f"on the {backend_name} backend",
                    chunk=i, attempts=max_attempts, cause=cause), None)
            else:
                if log is not None:
                    log.record("retry", chunk=i, attempt=nxt,
                               backend=backend_name, detail=repr(cause))
                delay = policy.delay(nxt) if policy is not None else 0.0
                ready_at[i] = time.monotonic() + delay
                queue.append((i, nxt))

        def replace_dead(worker: _RemoteWorker,
                         cause: BaseException) -> None:
            if log is not None:
                log.record("worker_dead", backend=backend_name,
                           detail=f"worker {worker.id}: {cause}")
            lease = worker.lease
            self._retire(worker)
            if lease is not None:
                settle_failure(lease[0], lease[1], cause)
            if self._closing or len(self.workers) >= self.size:
                return
            # Reconnect backoff: consecutive deaths widen the pause so
            # a crash-looping environment cannot spin the spawner.
            self._deaths += 1
            time.sleep(min(1.0, 0.05 * 2 ** min(self._deaths - 1, 4)))
            replacement = self._spawn_worker(log=log)
            replacement.chan.directives = tuple(frame_directives)
            replacement.chan.log = log
            self.replacements += 1
            if log is not None:
                log.record("worker_replace", backend=backend_name,
                           detail=f"worker {worker.id} -> "
                                  f"{replacement.id}")

        def assign(worker: _RemoteWorker, i: int, attempt: int) -> None:
            worker.lease = (i, attempt)
            worker.lease_started = time.monotonic()
            for ref in payload_refs:
                if ref is not None and ref[0] == "tcp" \
                        and ref[1] not in worker.shipped:
                    worker.chan.send_msg(("payload", ref[1],
                                          payloads[ref[1]]))
                    worker.shipped.add(ref[1])
            worker.chan.send_msg(("job", i, make_args(i, attempt)))

        def handle(worker: _RemoteWorker, msg) -> None:
            tag = msg[0]
            if tag == "result":
                _, i, attempt, triple = msg
                if worker.lease is not None and worker.lease[0] == i:
                    worker.lease = None
                ok, val, _ = triple
                if ok or not _is_transient(val):
                    results[i] = triple
                else:
                    settle_failure(i, attempt, val)
            elif tag == "need":
                # The worker's payload cache evicted something the job
                # cites: re-ship and re-send the job, same attempt.
                _, i, fps = msg
                for fp in fps:
                    worker.chan.send_msg(("payload", fp, payloads[fp]))
                    worker.shipped.add(fp)
                if worker.lease is not None and worker.lease[0] == i:
                    worker.lease_started = time.monotonic()
                    worker.chan.send_msg(
                        ("job", i, make_args(i, worker.lease[1])))

        while len(results) < njobs:
            now = time.monotonic()
            # 1. reap: proc death, closed channel, missed heartbeats,
            #    expired lease.
            for worker in list(self.workers):
                cause: BaseException | None = None
                if not worker.proc.is_alive() or worker.chan.closed:
                    cause = TransportError(
                        f"worker {worker.id} connection lost")
                elif self.heartbeat_s > 0 and now - worker.chan.last_heard \
                        > HEARTBEAT_MISS_FACTOR * self.heartbeat_s:
                    # A long serial stretch (e.g. shipping big tcp
                    # payloads to other workers) can leave this
                    # worker's heartbeats unread in the kernel buffer.
                    # Sweep the socket before declaring death; frames
                    # pumped here land in the inbox and are delivered
                    # by the drain step below.
                    try:
                        while worker.chan.pump(now):
                            pass
                    except TransportError as exc:
                        cause = exc
                    if cause is None and (time.monotonic()
                                          - worker.chan.last_heard) \
                            > HEARTBEAT_MISS_FACTOR * self.heartbeat_s:
                        cause = TransportError(
                            f"worker {worker.id} missed "
                            f"{HEARTBEAT_MISS_FACTOR} heartbeats")
                elif lease_timeout is not None and worker.lease is not None \
                        and now - worker.lease_started > lease_timeout:
                    cause = TimeoutError(
                        f"chunk {worker.lease[0]} lease expired after "
                        f"{lease_timeout}s (stalled worker "
                        f"{worker.id})")
                    if log is not None:
                        log.record("timeout", chunk=worker.lease[0],
                                   backend=backend_name,
                                   detail=str(cause))
                if cause is not None:
                    replace_dead(worker, cause)
            if not self.workers:
                self.ensure_capacity(log=log)

            # 2. assign eligible queued chunks to idle workers.
            idle = [w for w in self.workers if w.lease is None]
            for _ in range(len(queue)):
                if not idle:
                    break
                i, attempt = queue.popleft()
                if i in results:
                    continue
                if ready_at.get(i, 0.0) > now:
                    queue.append((i, attempt))
                    continue
                worker = idle.pop()
                try:
                    assign(worker, i, attempt)
                except TransportError as exc:
                    replace_dead(worker, exc)
            if len(results) >= njobs:
                break

            # 3. deliver buffered traffic (userspace and kernel) from
            #    every worker without blocking.  A send_msg ACK wait
            #    can pull a worker's result into Channel._rbuf
            #    alongside the ACK; the sweep also keeps last_heard
            #    fresh for workers whose heartbeats arrived while the
            #    loop was busy elsewhere.
            delivered = False
            for worker in list(self.workers):
                if worker.chan.closed:
                    continue
                try:
                    msgs = worker.chan.drain()
                except TransportError as exc:
                    replace_dead(worker, exc)
                    continue
                if msgs:
                    delivered = True
                for msg in msgs:
                    try:
                        handle(worker, msg)
                    except TransportError as exc:
                        replace_dead(worker, exc)
                        break
            if delivered:
                # New results may free workers or finish the round;
                # re-run reap/assign before blocking in select.
                continue

            # 4. wait for kernel traffic (results, needs, heartbeats).
            socks = {w.chan.sock: w for w in self.workers
                     if not w.chan.closed}
            waits = [0.25]
            if self.heartbeat_s > 0:
                waits.append(self.heartbeat_s / 2.0)
            if lease_timeout is not None:
                waits.append(lease_timeout / 4.0)
            pending_backoff = [t - now for t in ready_at.values()
                               if t > now]
            if pending_backoff:
                waits.append(max(min(pending_backoff), 0.005))
            timeout = max(min(waits), 0.005)
            if not socks:
                continue
            try:
                readable, _, _ = select.select(list(socks), [], [],
                                               timeout)
            except OSError:  # pragma: no cover - racing retirement
                continue
            for sock in readable:
                worker = socks[sock]
                try:
                    worker.chan.pump(time.monotonic() + 0.5)
                except TransportError as exc:
                    replace_dead(worker, exc)
                    continue
                for msg in worker.chan.drain():
                    try:
                        handle(worker, msg)
                    except TransportError as exc:
                        replace_dead(worker, exc)
                        break
        self._deaths = 0
        return [results[i] for i in range(njobs)]
