"""Effective-resistance oracle via JL sketching + the solver.

Precomputes ``Z = Q W^{1/2} B L⁺`` with ``O(log n / γ²)`` rows (one
solver call each); afterwards any pair's effective resistance is a
``(1±γ)``-approximate ``O(log n)``-time query
``R̂(u,v) = ‖Z[:,u] − Z[:,v]‖²`` [SS11].  This is the same machinery
Section 6 uses for leverage-score overestimation, packaged as a
user-facing oracle.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import SolverOptions
from repro.core.solver import LaplacianSolver
from repro.errors import DimensionMismatchError
from repro.graphs.multigraph import MultiGraph, scatter_add_pair_cols
from repro.rng import as_generator

__all__ = ["ResistanceOracle"]


class ResistanceOracle:
    """``(1±gamma)``-approximate all-pairs effective resistances.

    Parameters
    ----------
    graph:
        Connected multigraph.
    gamma:
        Target multiplicative distortion; the sketch uses
        ``⌈24 ln n / γ²⌉`` rows (the standard JL constant — conservative
        but cheap at these sizes).
    solver_eps:
        Accuracy of each inner solve.
    """

    def __init__(self, graph: MultiGraph, gamma: float = 0.3,
                 solver_eps: float = 1e-6,
                 options: SolverOptions | None = None,
                 seed=None) -> None:
        if not 0 < gamma < 1:
            raise ValueError(f"need 0 < gamma < 1, got {gamma}")
        rng = as_generator(seed)
        self.graph = graph
        self.gamma = gamma
        solver = LaplacianSolver(graph, options=options, seed=rng)
        q = max(4, int(math.ceil(24.0 * math.log(max(graph.n, 3))
                                 / (gamma * gamma))))
        self.q = q
        # All q sketch rows as one (n, q) right-hand-side block, solved
        # with a single blocked multi-RHS call against the shared
        # factorization (signs stay row-by-row for stream stability).
        sqrt_w = np.sqrt(graph.w)
        S = np.empty((graph.m, q))
        for i in range(q):
            S[:, i] = rng.choice([-1.0, 1.0], size=graph.m)
        S /= math.sqrt(q)
        contrib = sqrt_w[:, None] * S
        rows = scatter_add_pair_cols(graph.u, contrib, graph.v, contrib,
                                     graph.n, subtract=True)
        self._Z = solver.solve_many(rows, eps=solver_eps).T

    def query(self, u, v) -> np.ndarray | float:
        """``R̂(u, v)``; accepts scalars or aligned index arrays."""
        u_arr = np.atleast_1d(np.asarray(u, dtype=np.int64))
        v_arr = np.atleast_1d(np.asarray(v, dtype=np.int64))
        if u_arr.shape != v_arr.shape:
            raise DimensionMismatchError("u and v must align")
        diff = self._Z[:, u_arr] - self._Z[:, v_arr]
        r = np.einsum("ij,ij->j", diff, diff)
        return float(r[0]) if np.isscalar(u) and np.isscalar(v) else r

    def edge_resistances(self) -> np.ndarray:
        """``R̂`` over the graph's own edge list."""
        return self.query(self.graph.u, self.graph.v)

    def leverage_scores(self) -> np.ndarray:
        """``τ̂(e) = w(e)·R̂(e)`` (clipped into ``[0, 1]``)."""
        return np.clip(self.graph.w * self.edge_resistances(), 0.0, 1.0)
