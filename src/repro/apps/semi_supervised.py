"""Harmonic-function semi-supervised learning [ZGL03].

Given a weighted similarity graph and labels on a subset of vertices,
the harmonic solution assigns every unlabelled vertex the weighted
average of its neighbours — equivalently, per label class ``c`` with
indicator ``y_c`` on the labelled set ``S``:

    ``L_UU f_U = −L_US y_c``  ⇔  a Laplacian solve.

We reduce to the solver via grounding: the harmonic extension equals
the voltage vector when the labelled vertices are held at potentials
``y_c`` — computed here by solving on a *modified* graph where labelled
vertices are tied to a virtual ground through strong edges (the
standard "soft clamping" formulation; clamp weight → ∞ recovers the
exact harmonic solution, and the exactness gap is tested against the
dense oracle).
"""

from __future__ import annotations

import numpy as np

from repro.config import SolverOptions
from repro.core.solver import LaplacianSolver
from repro.errors import DimensionMismatchError, ReproError
from repro.graphs.multigraph import MultiGraph

__all__ = ["harmonic_label_propagation", "exact_harmonic_extension"]


def exact_harmonic_extension(graph: MultiGraph, labeled: np.ndarray,
                             values: np.ndarray) -> np.ndarray:
    """Dense oracle: solve ``L_UU f_U = −L_US f_S`` exactly."""
    import scipy.linalg

    from repro.graphs.laplacian import laplacian

    labeled = np.asarray(labeled, dtype=np.int64)
    L = laplacian(graph).toarray()
    mask = np.zeros(graph.n, dtype=bool)
    mask[labeled] = True
    U = np.nonzero(~mask)[0]
    f = np.zeros(graph.n)
    f[labeled] = values
    if U.size:
        rhs = -L[np.ix_(U, labeled)] @ np.asarray(values, dtype=np.float64)
        f[U] = scipy.linalg.solve(L[np.ix_(U, U)], rhs, assume_a="sym")
    return f


def harmonic_label_propagation(graph: MultiGraph,
                               labeled: np.ndarray,
                               labels: np.ndarray,
                               num_classes: int | None = None,
                               clamp_weight: float = 1e4,
                               eps: float = 1e-8,
                               options: SolverOptions | None = None,
                               seed=None) -> tuple[np.ndarray, np.ndarray]:
    """Propagate labels from ``labeled`` vertices to the whole graph.

    Parameters
    ----------
    graph:
        Connected similarity graph (weights = similarities).
    labeled:
        Vertex ids with known labels.
    labels:
        Integer class per labelled vertex (0-based).
    clamp_weight:
        Weight of the virtual clamp edges; larger = closer to the exact
        harmonic extension (error decays like 1/clamp_weight).
    eps:
        Solver accuracy per class.

    Returns
    -------
    ``(assignment, scores)`` — the argmax class per vertex and the
    per-class harmonic score matrix of shape ``(n, num_classes)``.
    """
    labeled = np.asarray(labeled, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if labeled.shape != labels.shape:
        raise DimensionMismatchError("labeled and labels must align")
    if labeled.size == 0:
        raise ReproError("need at least one labelled vertex")
    k = num_classes if num_classes is not None else int(labels.max()) + 1

    # Soft clamping: add a virtual ground vertex g; tie every labelled
    # vertex to g with a strong edge.  Then for class c, inject current
    # +clamp_weight·y_c at labelled vertices and the balancing current
    # at g; the resulting voltages approximate the clamped harmonic
    # extension.
    gidx = graph.n
    n2 = graph.n + 1
    u2 = np.concatenate([graph.u, labeled])
    v2 = np.concatenate([graph.v, np.full(labeled.size, gidx)])
    w2 = np.concatenate([graph.w, np.full(labeled.size, clamp_weight)])
    augmented = MultiGraph(n2, u2, v2, w2, validate=False)
    solver = LaplacianSolver(augmented, options=options, seed=seed)

    # One (n2, k) demand block — class c's column injects current at
    # its labelled members and balances at ground — solved with a
    # single blocked multi-RHS call against the one factorization.
    B = np.zeros((n2, k))
    # Out-of-range labels (negative sentinels, ids >= num_classes)
    # contribute to no class — matching the per-class loop this block
    # replaced.
    in_range = (labels >= 0) & (labels < k)
    B[labeled[in_range], labels[in_range]] = clamp_weight
    B[gidx] = -clamp_weight * np.bincount(labels[in_range], minlength=k)
    X = solver.solve_many(B, eps=eps)
    # Voltages relative to ground approximate each indicator's
    # harmonic extension.
    scores = X[: graph.n] - X[gidx]
    assignment = np.argmax(scores, axis=1)
    return assignment, scores
