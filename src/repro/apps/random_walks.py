"""Random-walk quantities from Laplacian solves.

The deep classical connection the paper leans on (Section 1's "random
walks, electrical networks, and spectral graph theory") in its
user-facing form:

* ``hitting_times(g, t)`` — expected steps for the weighted random walk
  to first reach ``t``, from every start, via **one** Laplacian solve:
  with ``c_v = d_v`` for ``v ≠ t`` and ``c_t = −Σ_{v≠t} d_v``, the
  solution of ``L y = c`` shifted so ``y_t = 0`` satisfies the hitting
  -time recurrence ``h(v) = 1 + Σ_u P_{vu} h(u)``.
* ``commute_time(g, s, t) = w(G)·2·R_eff(s, t)`` — the Chandra et al.
  identity (``w(G)`` = total edge weight counted once per endpoint,
  i.e. ``2·Σ_e w_e``).
"""

from __future__ import annotations

import numpy as np

from repro.config import SolverOptions
from repro.core.solver import LaplacianSolver
from repro.errors import ReproError
from repro.graphs.multigraph import MultiGraph

__all__ = ["hitting_times", "commute_time", "stationary_distribution"]


def stationary_distribution(graph: MultiGraph) -> np.ndarray:
    """π ∝ weighted degree (reversible weighted random walk)."""
    d = graph.weighted_degrees()
    total = d.sum()
    if total <= 0:
        raise ReproError("graph has no edges")
    return d / total


def hitting_times(graph: MultiGraph, target: int,
                  eps: float = 1e-8,
                  solver: LaplacianSolver | None = None,
                  options: SolverOptions | None = None,
                  seed=None) -> np.ndarray:
    """``h(v) = E[steps to reach target from v]`` for every vertex."""
    if not 0 <= target < graph.n:
        raise ReproError("target out of range")
    if solver is None:
        solver = LaplacianSolver(graph, options=options, seed=seed)
    d = graph.weighted_degrees()
    c = d.copy()
    c[target] = 0.0
    c[target] = -c.sum()
    y = solver.solve(c, eps=eps)
    h = y - y[target]
    h[target] = 0.0
    return h


def commute_time(graph: MultiGraph, s: int, t: int,
                 eps: float = 1e-8,
                 solver: LaplacianSolver | None = None,
                 options: SolverOptions | None = None,
                 seed=None) -> float:
    """``C(s,t) = h(s→t) + h(t→s) = (Σ_v d_v) · R_eff(s,t)``."""
    if s == t:
        return 0.0
    from repro.apps.electrical import effective_resistance

    r = effective_resistance(graph, s, t, eps=eps, solver=solver,
                             options=options, seed=seed)
    return float(graph.weighted_degrees().sum() * r)
