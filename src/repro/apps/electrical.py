"""Electrical networks: voltages, flows, resistances, power.

The classic Laplacian application [CKMST11]: view each edge as a
resistor of conductance ``w(e)``.  A current demand vector ``b``
(``Σb = 0``) induces voltages ``x = L⁺b`` and the electrical flow
``f(e) = w(e)·(x_u − x_v)``, which is the unique feasible flow
minimising dissipated energy ``Σ f(e)²/w(e)``.
"""

from __future__ import annotations

import numpy as np

from repro.config import SolverOptions
from repro.core.solver import LaplacianSolver
from repro.errors import DimensionMismatchError, ReproError
from repro.graphs.multigraph import MultiGraph

__all__ = [
    "electrical_voltages",
    "electrical_flow",
    "effective_resistance",
    "dissipated_power",
    "st_demand",
]


def st_demand(n: int, s: int, t: int, amount: float = 1.0) -> np.ndarray:
    """Demand vector sending ``amount`` units from ``s`` to ``t``."""
    if s == t:
        raise ReproError("source and sink must differ")
    b = np.zeros(n)
    b[s] = amount
    b[t] = -amount
    return b


def electrical_voltages(graph: MultiGraph, b: np.ndarray,
                        eps: float = 1e-8,
                        solver: LaplacianSolver | None = None,
                        options: SolverOptions | None = None,
                        seed=None) -> np.ndarray:
    """Voltages ``x = L⁺ b`` for demand ``b`` (must have zero sum).

    ``b`` may be one demand ``(n,)`` or ``k`` demands as ``(n, k)``
    (each column sums to zero); the blocked case factors once and
    solves all demands with one blocked multi-RHS call.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim not in (1, 2) or b.shape[0] != graph.n:
        raise DimensionMismatchError("demand must have one entry/vertex")
    sums = np.atleast_1d(np.abs(b.sum(axis=0)))
    # Each column is checked at its own scale — a tiny demand next to a
    # huge one must still sum to zero relative to itself.
    scale = np.maximum(np.atleast_1d(np.abs(b).max(axis=0, initial=0.0)),
                       1.0)
    if np.any(sums > 1e-9 * scale):
        raise ReproError("demand vector must sum to zero (KCL)")
    if solver is None:
        solver = LaplacianSolver(graph, options=options, seed=seed)
    if b.ndim == 2:
        return solver.solve_many(b, eps=eps)
    return solver.solve(b, eps=eps)


def electrical_flow(graph: MultiGraph, b: np.ndarray,
                    eps: float = 1e-8,
                    solver: LaplacianSolver | None = None,
                    options: SolverOptions | None = None,
                    seed=None) -> tuple[np.ndarray, np.ndarray]:
    """``(flow, voltages)``: ``flow[e] = w(e)(x_u − x_v)`` per edge.

    The flow routes demand ``b`` (up to the solver's ε) and minimises
    energy among all feasible flows — the primitive inside
    electrical-flow max-flow algorithms.  A blocked ``b`` of shape
    ``(n, k)`` yields ``(m, k)`` flows and ``(n, k)`` voltages.
    """
    x = electrical_voltages(graph, b, eps=eps, solver=solver,
                            options=options, seed=seed)
    w = graph.w if x.ndim == 1 else graph.w[:, None]
    flow = w * (x[graph.u] - x[graph.v])
    return flow, x


def effective_resistance(graph: MultiGraph, s: int, t: int,
                         eps: float = 1e-8,
                         solver: LaplacianSolver | None = None,
                         options: SolverOptions | None = None,
                         seed=None) -> float:
    """``R_eff(s,t) = b_stᵀ L⁺ b_st`` via one solve."""
    b = st_demand(graph.n, s, t)
    x = electrical_voltages(graph, b, eps=eps, solver=solver,
                            options=options, seed=seed)
    return float(x[s] - x[t])


def dissipated_power(graph: MultiGraph, flow: np.ndarray
                     ) -> float | np.ndarray:
    """``Σ_e flow(e)² / w(e)`` — the energy the flow dissipates.

    For a blocked ``(m, k)`` flow matrix, returns the ``k`` per-column
    energies.
    """
    flow = np.asarray(flow, dtype=np.float64)
    if flow.ndim not in (1, 2) or flow.shape[0] != graph.m:
        raise DimensionMismatchError("flow must have one entry per edge")
    w = graph.w if flow.ndim == 1 else graph.w[:, None]
    power = np.sum(flow * flow / w, axis=0)
    return float(power) if flow.ndim == 1 else power
