"""Electrical networks: voltages, flows, resistances, power.

The classic Laplacian application [CKMST11]: view each edge as a
resistor of conductance ``w(e)``.  A current demand vector ``b``
(``Σb = 0``) induces voltages ``x = L⁺b`` and the electrical flow
``f(e) = w(e)·(x_u − x_v)``, which is the unique feasible flow
minimising dissipated energy ``Σ f(e)²/w(e)``.
"""

from __future__ import annotations

import numpy as np

from repro.config import SolverOptions
from repro.core.solver import LaplacianSolver
from repro.errors import DimensionMismatchError, ReproError
from repro.graphs.multigraph import MultiGraph

__all__ = [
    "electrical_voltages",
    "electrical_flow",
    "effective_resistance",
    "dissipated_power",
    "st_demand",
]


def st_demand(n: int, s: int, t: int, amount: float = 1.0) -> np.ndarray:
    """Demand vector sending ``amount`` units from ``s`` to ``t``."""
    if s == t:
        raise ReproError("source and sink must differ")
    b = np.zeros(n)
    b[s] = amount
    b[t] = -amount
    return b


def electrical_voltages(graph: MultiGraph, b: np.ndarray,
                        eps: float = 1e-8,
                        solver: LaplacianSolver | None = None,
                        options: SolverOptions | None = None,
                        seed=None) -> np.ndarray:
    """Voltages ``x = L⁺ b`` for demand ``b`` (must have zero sum)."""
    b = np.asarray(b, dtype=np.float64)
    if b.shape != (graph.n,):
        raise DimensionMismatchError("demand must have one entry/vertex")
    if abs(b.sum()) > 1e-9 * max(np.abs(b).max(), 1.0):
        raise ReproError("demand vector must sum to zero (KCL)")
    if solver is None:
        solver = LaplacianSolver(graph, options=options, seed=seed)
    return solver.solve(b, eps=eps)


def electrical_flow(graph: MultiGraph, b: np.ndarray,
                    eps: float = 1e-8,
                    solver: LaplacianSolver | None = None,
                    options: SolverOptions | None = None,
                    seed=None) -> tuple[np.ndarray, np.ndarray]:
    """``(flow, voltages)``: ``flow[e] = w(e)(x_u − x_v)`` per edge.

    The flow routes demand ``b`` (up to the solver's ε) and minimises
    energy among all feasible flows — the primitive inside
    electrical-flow max-flow algorithms.
    """
    x = electrical_voltages(graph, b, eps=eps, solver=solver,
                            options=options, seed=seed)
    flow = graph.w * (x[graph.u] - x[graph.v])
    return flow, x


def effective_resistance(graph: MultiGraph, s: int, t: int,
                         eps: float = 1e-8,
                         solver: LaplacianSolver | None = None,
                         options: SolverOptions | None = None,
                         seed=None) -> float:
    """``R_eff(s,t) = b_stᵀ L⁺ b_st`` via one solve."""
    b = st_demand(graph.n, s, t)
    x = electrical_voltages(graph, b, eps=eps, solver=solver,
                            options=options, seed=seed)
    return float(x[s] - x[t])


def dissipated_power(graph: MultiGraph, flow: np.ndarray) -> float:
    """``Σ_e flow(e)² / w(e)`` — the energy the flow dissipates."""
    flow = np.asarray(flow, dtype=np.float64)
    if flow.shape != (graph.m,):
        raise DimensionMismatchError("flow must have one entry per edge")
    return float(np.sum(flow * flow / graph.w))
