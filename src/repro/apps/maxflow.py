"""Approximate max-flow via electrical flows [CKMST11].

The paper's introduction motivates Laplacian solvers through
interior-point and multiplicative-weight flow algorithms; this module
implements the classic Christiano–Kelner–Mądry–Spielman–Teng scheme on
top of our solver:

* repeat: set resistances ``r_e = (w_e + ε·‖w‖₁/3m) / u_e²`` from the
  current MWU weights and capacities, route the demand electrically
  (one Laplacian solve), and re-weight edges by their congestion;
* the average of the electrical flows is a ``(1−O(ε))``-approximately
  feasible s-t flow of the target value, or the energy blow-up
  certifies infeasibility;
* binary search on the flow value yields the approximate max flow.

This is the *simple* O(m^{3/2}ε^{-5/2})-style variant (no flow
trimming), intended as a faithful, readable demonstration of the
pipeline rather than a record-chasing implementation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.config import practical_options
from repro.core.solver import LaplacianSolver
from repro.errors import ReproError
from repro.graphs.multigraph import MultiGraph, scatter_add_pair

__all__ = ["approx_max_flow", "MaxFlowResult", "flow_feasibility"]


@dataclass
class MaxFlowResult:
    """Approximate max-flow output.

    ``flow[e]`` is signed along the edge orientation ``u→v``;
    ``value`` is the routed s→t amount; ``congestion`` is the max
    ``|flow_e|/u_e`` (≤ 1+O(ε) for a feasible answer).
    """

    value: float
    flow: np.ndarray
    congestion: float
    oracle_calls: int


def _electrical_oracle(graph: MultiGraph, capacities: np.ndarray,
                       s: int, t: int, F: float, eps: float,
                       max_iters: int, seed) -> tuple[np.ndarray, bool, int]:
    """MWU loop: average electrical flow routing F, or infeasibility."""
    m = graph.m
    w = np.ones(m)
    b = np.zeros(graph.n)
    b[s], b[t] = F, -F
    rho = math.sqrt(3.0 * m / eps)  # congestion width of the oracle
    flows = np.zeros(m)
    rng = np.random.default_rng(None if seed is None else seed)
    calls = 0
    for _ in range(max_iters):
        wsum = float(w.sum())
        r = (w + eps * wsum / (3.0 * m)) / (capacities ** 2)
        conductances = 1.0 / r
        # One Laplacian solve on the reweighted graph.
        reweighted = MultiGraph(graph.n, graph.u, graph.v, conductances,
                                validate=False)
        solver = LaplacianSolver(reweighted,
                                 options=practical_options(),
                                 seed=int(rng.integers(2 ** 31)))
        x = solver.solve(b, eps=min(0.5 * eps, 0.1))
        calls += 1
        f = conductances * (x[graph.u] - x[graph.v])
        energy = float(np.sum(r * f * f))
        # If a feasible flow of value F exists, the electrical flow's
        # energy is at most Σ r_e u_e² = (1 + ε/3)·Σw — larger energy
        # certifies infeasibility (CKMST11 Lemma 2.6-style argument;
        # extra ε slack absorbs the approximate solve).
        if energy > (1.0 + eps) * wsum:
            return flows / max(calls - 1, 1), False, calls
        cong = np.abs(f) / capacities
        w = w * (1.0 + (eps / rho) * cong)
        flows += f
    return flows / max_iters, True, calls


def approx_max_flow(graph: MultiGraph, s: int, t: int,
                    eps: float = 0.2,
                    capacities: np.ndarray | None = None,
                    max_value: float | None = None,
                    bisection_steps: int = 12,
                    mwu_iters: int | None = None,
                    seed=None) -> MaxFlowResult:
    """``(1−O(ε))``-approximate undirected max s-t flow.

    Parameters
    ----------
    graph:
        Connected multigraph; ``capacities`` default to the edge
        weights.
    eps:
        Approximation slack; also controls the MWU width/iterations.
    max_value:
        Upper bound for the bisection (default: capacity out of ``s``).
    mwu_iters:
        Oracle iterations per feasibility probe (default
        ``⌈2 ln(m)/ε²⌉`` — the theory's order with a small constant).
    """
    if s == t:
        raise ReproError("source equals sink")
    if not 0 < eps < 1:
        raise ReproError(f"need 0 < eps < 1, got {eps}")
    u = capacities if capacities is not None else graph.w
    u = np.asarray(u, dtype=np.float64)
    if u.shape != (graph.m,) or np.any(u <= 0):
        raise ReproError("capacities must be positive, one per edge")
    out_s = float(u[(graph.u == s) | (graph.v == s)].sum())
    hi = max_value if max_value is not None else out_s
    lo = 0.0
    iters = mwu_iters if mwu_iters is not None else max(
        8, math.ceil(2.0 * math.log(max(graph.m, 2)) / (eps * eps)))

    best = MaxFlowResult(value=0.0, flow=np.zeros(graph.m),
                         congestion=0.0, oracle_calls=0)
    calls = 0
    for _ in range(bisection_steps):
        F = 0.5 * (lo + hi)
        if F <= 0:
            break
        flow, feasible, used = _electrical_oracle(
            graph, u, s, t, F, eps, iters, seed)
        calls += used
        cong = float(np.max(np.abs(flow) / u)) if graph.m else 0.0
        # The averaged MWU flow can overshoot capacities by up to its
        # congestion; scaling it down by max(cong, 1) always yields a
        # *feasible* flow, whose value is what we actually report.
        scale = max(cong, 1.0)
        scaled_value = F / scale
        if scaled_value > best.value:
            best = MaxFlowResult(value=scaled_value, flow=flow / scale,
                                 congestion=cong / scale,
                                 oracle_calls=calls)
        if feasible and cong <= 1.0 + 2.0 * eps:
            lo = F
        else:
            hi = F
    best.oracle_calls = calls
    return best


def flow_feasibility(graph: MultiGraph, flow: np.ndarray, s: int,
                     t: int) -> tuple[float, float]:
    """``(routed value, max conservation violation)`` of a signed flow."""
    net = scatter_add_pair(graph.u, flow, graph.v, flow,
                           graph.n, subtract=True)
    value = float(net[s])
    interior = np.delete(np.arange(graph.n), [s, t])
    violation = float(np.abs(net[interior]).max()) if interior.size else 0.0
    return value, violation
