"""Applications of the Laplacian-solver primitive.

These are the workloads the paper's introduction motivates: scientific
computing, semi-supervised learning on graphs [ZGL03; ZBLWS04], and
flow problems solved through electrical networks [CKMST11; Mad13].
The spanning-tree module exercises the Section 7 Schur-complement
application ([DPPR17; DKPRS17] lineage).
"""

from repro.apps.semi_supervised import harmonic_label_propagation
from repro.apps.electrical import (
    electrical_voltages,
    electrical_flow,
    effective_resistance,
    dissipated_power,
)
from repro.apps.spanning_trees import (
    wilson_spanning_tree,
    spanning_tree_via_schur,
)
from repro.apps.partitioning import fiedler_vector, spectral_bisection
from repro.apps.resistance import ResistanceOracle
from repro.apps.maxflow import approx_max_flow, MaxFlowResult
from repro.apps.random_walks import (
    hitting_times,
    commute_time,
    stationary_distribution,
)

__all__ = [
    "harmonic_label_propagation",
    "electrical_voltages",
    "electrical_flow",
    "effective_resistance",
    "dissipated_power",
    "wilson_spanning_tree",
    "spanning_tree_via_schur",
    "fiedler_vector",
    "spectral_bisection",
    "ResistanceOracle",
    "approx_max_flow",
    "MaxFlowResult",
    "hitting_times",
    "commute_time",
    "stationary_distribution",
]
