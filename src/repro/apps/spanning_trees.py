"""Random spanning trees — the Section 7 application lineage.

The paper's ``ApproxSchur`` descends from the spanning-tree sampling
line of work ([Bro89; Ald90; Wil96; DKPRS17; Sch18]).  This module
provides:

* :func:`wilson_spanning_tree` — Wilson's loop-erased-walk sampler,
  exact from the uniform (weighted) spanning-tree distribution;
* :func:`spanning_tree_via_schur` — the divide-and-conquer pattern of
  [DKPRS17]: recursively sample the tree restricted to a vertex subset
  using an (approximate) Schur complement for the quotient graph.  Our
  variant uses ``ApproxSchur`` for the resistance-driven edge choices
  and is a demonstration of the primitive, not a calibrated sampler.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SamplingError
from repro.graphs.multigraph import MultiGraph
from repro.graphs.validation import require_connected
from repro.rng import as_generator
from repro.sampling.rowsample import RowSampler

__all__ = ["wilson_spanning_tree", "spanning_tree_via_schur"]


def wilson_spanning_tree(graph: MultiGraph, seed=None,
                         root: int | None = None) -> np.ndarray:
    """Sample a uniformly random (weight-proportional) spanning tree.

    Wilson's algorithm [Wil96]: repeatedly run a loop-erased random
    walk from an uncovered vertex to the already-built tree.  Returns
    the edge ids (into ``graph``'s arrays) of the ``n-1`` tree edges.
    """
    require_connected(graph)
    rng = as_generator(seed)
    n = graph.n
    adj = graph.adjacency()
    sampler = RowSampler(adj)
    if root is None:
        root = int(rng.integers(0, n))

    in_tree = np.zeros(n, dtype=bool)
    in_tree[root] = True
    next_slot = np.full(n, -1, dtype=np.int64)  # successor CSR slot

    for start in range(n):
        if in_tree[start]:
            continue
        # Random walk with per-vertex successor overwrite = loop erasure.
        x = start
        while not in_tree[x]:
            slot = int(sampler.sample(np.array([x]), seed=rng)[0])
            next_slot[x] = slot
            x = int(adj.neighbor[slot])
        # Commit the loop-erased path.
        x = start
        while not in_tree[x]:
            in_tree[x] = True
            x = int(adj.neighbor[next_slot[x]])

    edges = [int(adj.edge_id[next_slot[v]]) for v in range(n) if v != root]
    out = np.asarray(sorted(edges), dtype=np.int64)
    if out.size != n - 1:
        raise SamplingError("loop-erased walk produced a non-tree")
    return out


def spanning_tree_via_schur(graph: MultiGraph, seed=None,
                            pivot_fraction: float = 0.5,
                            eps: float = 0.3,
                            min_size: int = 64) -> np.ndarray:
    """Spanning tree sampled with Schur-complement guidance.

    Demonstrates the [DKPRS17] recursion shape on top of
    :func:`repro.core.schur.approx_schur`: split the vertices, use the
    approximate Schur complement onto one side to estimate boundary
    resistances, and run Wilson locally.  For graphs below ``min_size``
    it falls back to plain Wilson (which is also the exactness anchor
    for tests).  Returns tree edge ids of ``graph``.
    """
    require_connected(graph)
    if graph.n <= min_size:
        return wilson_spanning_tree(graph, seed=seed)
    rng = as_generator(seed)

    # The demonstration recursion: sample a tree of the quotient
    # (Schur) graph to decide the boundary structure, then stitch local
    # Wilson trees.  We keep the contract simple and verifiable — the
    # output is always a valid spanning tree of the *original* graph —
    # by using the Schur step only to pick a well-spread root set.
    from repro.core.schur import approx_schur

    half = graph.n // 2
    C = np.sort(rng.choice(graph.n, size=half, replace=False))
    schur = approx_schur(graph, C, eps=eps, seed=rng)
    # Degree-weighted root choice on the quotient graph: vertices
    # central in the Schur complement seed the walk order.
    wdeg = schur.weighted_degrees()
    root = int(np.argmax(wdeg))
    return wilson_spanning_tree(graph, seed=rng, root=root)
