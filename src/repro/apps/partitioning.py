"""Spectral graph partitioning driven by the solver.

The Fiedler vector (eigenvector of the second-smallest Laplacian
eigenvalue) is computed by *inverse power iteration*: each iteration
applies ``L⁺`` — i.e. one call to our solver — and re-orthogonalises
against ``1``.  Convergence is geometric with rate ``λ₂/λ₃``; the
smallest eigenvalues are exactly where plain power iteration on ``L``
fails, which is why a fast Laplacian solver matters here.
"""

from __future__ import annotations

import numpy as np

from repro.config import SolverOptions
from repro.core.solver import LaplacianSolver
from repro.errors import ConvergenceError
from repro.graphs.multigraph import MultiGraph
from repro.linalg.ops import project_out_ones
from repro.rng import as_generator

__all__ = ["fiedler_vector", "spectral_bisection", "cut_quality"]


def fiedler_vector(graph: MultiGraph,
                   eps: float = 1e-6,
                   max_iter: int = 200,
                   tol: float = 1e-6,
                   solver: LaplacianSolver | None = None,
                   options: SolverOptions | None = None,
                   seed=None) -> tuple[np.ndarray, float]:
    """``(v₂, λ₂)`` by inverse power iteration with the solver.

    The returned eigenvalue is the Rayleigh quotient of the final
    iterate; ``tol`` measures successive-iterate alignment
    ``1 − |⟨v_k, v_{k+1}⟩|``.
    """
    rng = as_generator(seed)
    if solver is None:
        solver = LaplacianSolver(graph, options=options, seed=rng)
    v = project_out_ones(rng.standard_normal(graph.n))
    v /= np.linalg.norm(v)
    converged = False
    for _ in range(max_iter):
        w = solver.solve(v, eps=eps)
        w = project_out_ones(w)
        norm = np.linalg.norm(w)
        if norm == 0:
            raise ConvergenceError("inverse iteration collapsed to kernel")
        w /= norm
        align = abs(float(v @ w))
        v = w
        if 1.0 - align < tol:
            converged = True
            break
    if not converged:
        raise ConvergenceError(
            f"Fiedler iteration did not align within {max_iter} steps")
    Lv = solver.apply_L(v)
    lam = float(v @ Lv)
    return v, lam


def spectral_bisection(graph: MultiGraph, eps: float = 1e-6,
                       solver: LaplacianSolver | None = None,
                       options: SolverOptions | None = None,
                       seed=None) -> np.ndarray:
    """Boolean side assignment from the Fiedler vector's sign-split
    (threshold at the median for balance)."""
    v, _ = fiedler_vector(graph, eps=eps, solver=solver,
                          options=options, seed=seed)
    return v >= np.median(v)


def cut_quality(graph: MultiGraph, side: np.ndarray) -> tuple[float, float]:
    """``(cut_weight, conductance)`` of a boolean bipartition."""
    side = np.asarray(side, dtype=bool)
    crossing = side[graph.u] != side[graph.v]
    cut = float(graph.w[crossing].sum())
    wdeg = graph.weighted_degrees()
    vol = min(float(wdeg[side].sum()), float(wdeg[~side].sum()))
    conductance = cut / vol if vol > 0 else float("inf")
    return cut, conductance
