"""Leverage-score overestimates and splitting (Lemma 3.3 / Section 6).

Theorem 1.2's improvement over naive splitting: instead of splitting
*every* edge into ``⌈1/α⌉`` copies, estimate each edge's leverage score
and split edge ``e`` into only ``⌈τ̂(e)/α⌉`` copies.  Since
``Σ_e τ̂(e) = O(nK)``, the multigraph has ``O(m + nKα⁻¹)`` multi-edges
instead of ``O(m/α)``.

The estimation pipeline (Section 6, following [CLMMPS15; SS11; KLP15]):

1. **Uniform sparsification**: keep ``≈ m/K`` uniformly chosen edges at
   their *original* weights, plus a spanning forest of ``G`` (so ``G'``
   stays connected).  Since ``G'`` is a subgraph of ``G`` at equal
   weights, ``L_{G'} ≼ L_G``, and by Rayleigh monotonicity

       ``τ̂(e) = w(e) · R_{G'}(e) ≥ w(e) · R_G(e) = τ(e)``

   — the estimates are *deterministic* overestimates up to the JL and
   inner-solver error (absorbed by an inflation factor).  [CLMMPS15]
   bounds ``Σ_e min(1, τ̂(e)) = O(nK)`` whp — intuitively each sampled
   edge "pays" O(1) and each unsampled edge pays its leverage against a
   1/K-rate sample, K× its own leverage on average.
2. **Johnson–Lindenstrauss sketch**: ``R_{G'}(u,v) ≈ ‖Z b_uv‖²`` with
   ``Z = Q W'^{1/2} B' L_{G'}⁺`` for a random ±1 matrix ``Q`` with
   ``O(log n)`` rows; each row costs one Laplacian solve in ``G'``,
   performed by *our own* Theorem 1.1 solver (the paper's step (b)).
3. **Split** edge ``e`` into ``⌈τ̂(e)/α⌉`` copies of equal weight; each
   copy's true leverage is ``τ(e)/⌈τ̂(e)/α⌉ ≤ α`` because ``τ ≤ τ̂``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import SolverOptions, default_options
from repro.errors import SamplingError
from repro.graphs.multigraph import MultiGraph, scatter_add_pair_cols
from repro.pram import charge, ledger_active
from repro.pram import primitives as P
from repro.rng import as_generator

__all__ = ["uniform_edge_sample", "leverage_overestimates",
           "leverage_split"]


def _spanning_edges(graph: MultiGraph) -> np.ndarray:
    """Indices of a spanning sub-forest of the graph's edges (the
    connectivity patch for ``G'``).

    Vectorised via ``scipy.sparse.csgraph``: parallel edges are
    deduplicated to their first occurrence, each surviving edge carries
    its original index (+1, to dodge the sparse zero) as its "weight",
    and a minimum spanning forest extraction returns one edge per
    merged pair — all C-side, no Python union-find loop over ``m``
    edges (this sits on the leverage-split hot path).
    """
    import scipy.sparse as sp
    from scipy.sparse.csgraph import minimum_spanning_tree

    m = graph.m
    if m == 0:
        return np.empty(0, dtype=np.int64)
    lo = np.minimum(graph.u, graph.v)
    hi = np.maximum(graph.u, graph.v)
    # One representative (the first occurrence) per distinct vertex pair
    # so the sparse constructor cannot sum parallel edges' index-keys.
    # Same overflow guard as MultiGraph.coalesced: the packed key is
    # only valid while n² fits in int64.
    if graph.n <= 3_037_000_499:
        _, first = np.unique(lo.astype(np.int64) * graph.n + hi,
                             return_index=True)
    else:  # pragma: no cover - needs > 3e9 vertices
        _, first = np.unique(np.stack([lo, hi], axis=1), axis=0,
                             return_index=True)
    A = sp.csr_matrix(
        ((first + 1).astype(np.float64), (lo[first], hi[first])),
        shape=(graph.n, graph.n))
    forest = minimum_spanning_tree(A)
    keep = np.sort(forest.data.astype(np.int64) - 1)
    if ledger_active():
        charge(*P.sort_cost(m), label="spanning_forest")
    return keep


def uniform_edge_sample(graph: MultiGraph, K: float, seed=None
                        ) -> MultiGraph:
    """Step (1): ``G' =`` (uniform ``1/K`` edge sample) ``∪`` spanning
    forest, at original weights.  ``G'`` is a subgraph of ``G`` so
    ``L_{G'} ≼ L_G``, and it is connected whenever the input is."""
    if K < 1:
        raise SamplingError(f"need K >= 1, got {K}")
    rng = as_generator(seed)
    m = graph.m
    take = max(1, int(math.ceil(m / K)))
    chosen = rng.choice(m, size=min(take, m), replace=False)
    tree = _spanning_edges(graph)
    keep = np.union1d(chosen, tree)
    if ledger_active():
        charge(*P.map_cost(m), label="uniform_edge_sample")
    return MultiGraph(graph.n, graph.u[keep], graph.v[keep], graph.w[keep],
                      validate=False)


def leverage_overestimates(graph: MultiGraph,
                           K: float,
                           seed=None,
                           options: SolverOptions | None = None,
                           jl_rows: int | None = None,
                           solver_eps: float = 0.25,
                           inflation: float = 2.0,
                           blocked: bool = True) -> np.ndarray:
    """Per-edge ``τ̂(e) ∈ (0, 1]`` with ``τ̂ ≥ τ`` whp (Section 6).

    Parameters
    ----------
    K:
        Sparsification factor; Theorem 1.2 uses ``K = Θ(log³ n)``.
    jl_rows:
        Rows of the JL sketch (default ``⌈8 ln n⌉ + 4``).
    solver_eps:
        Accuracy of the inner solves on ``G'`` — constant accuracy
        suffices (Section 6 step (b)).
    inflation:
        Multiplicative safety factor absorbing JL + solver error.
    blocked:
        Issue all ``q`` JL solves as **one** blocked multi-RHS solve
        against the shared inner factorization (default; the sign
        matrix is drawn row-by-row either way, so the randomness stream
        matches the looped baseline).  ``False`` re-runs the sequential
        one-solve-per-row baseline for comparison benchmarks.
    """
    opts = options or default_options()
    rng = as_generator(seed if seed is not None else opts.seed)
    gprime = uniform_edge_sample(graph, K, seed=rng)

    # Inner solver: Theorem 1.1 configuration on G' (naive splitting) —
    # this is the recursion the paper describes; depth is 1 because the
    # inner solver never calls leverage splitting again.  The inner
    # chain is solve-only, so its per-level graphs are streamed out.
    from repro.core.solver import LaplacianSolver

    inner = LaplacianSolver(
        gprime.coalesced(),
        options=opts.with_(splitting="naive", keep_graphs=False),
        seed=rng)

    n = graph.n
    q = jl_rows if jl_rows is not None \
        else int(math.ceil(8.0 * math.log(max(n, 3)))) + 4

    # The q sketch rows of Q W'^{1/2} B', assembled edge-wise as one
    # (n, q) right-hand-side block.  Signs are drawn row-by-row so the
    # stream is identical in blocked and looped mode.
    mq = gprime.m
    sqrt_w = np.sqrt(gprime.w)
    S = np.empty((mq, q), dtype=np.float64)
    for i in range(q):
        S[:, i] = rng.choice([-1.0, 1.0], size=mq)
    S /= math.sqrt(q)
    contrib = sqrt_w[:, None] * S
    rows = scatter_add_pair_cols(gprime.u, contrib, gprime.v, contrib,
                                 n, subtract=True)
    if ledger_active():
        charge(*P.map_cost(mq * q), label="jl_row")

    if blocked:
        # One factorization, q right-hand sides: a single blocked solve
        # where every inner operator apply is a BLAS-3-style kernel.
        Z = inner.solve_many(rows, eps=solver_eps).T
    else:
        Z = np.empty((q, n), dtype=np.float64)
        for i in range(q):
            Z[i] = inner.solve(rows[:, i], eps=solver_eps)

    # R̂(u, v) = ‖Z[:, u] − Z[:, v]‖².
    diff = Z[:, graph.u] - Z[:, graph.v]
    r_hat = np.einsum("ij,ij->j", diff, diff)
    tau_hat = graph.w * r_hat * inflation
    if ledger_active():
        charge(*P.map_cost(graph.m * q), label="jl_distances")
    # True leverage scores never exceed 1, so clipping keeps the
    # overestimate property; the floor keeps ceil(τ̂/α) ≥ 1.
    return np.clip(tau_hat, 1e-12, 1.0)


def leverage_split(graph: MultiGraph, alpha: float,
                   K: float | None = None,
                   seed=None,
                   options: SolverOptions | None = None,
                   tau_hat: np.ndarray | None = None,
                   materialize: bool = False) -> MultiGraph:
    """Lemma 3.3: split edge ``e`` into ``⌈τ̂(e)/α⌉`` α-bounded copies.

    The output has ``O(m + nKα⁻¹)`` *logical* multi-edges and the same
    Laplacian.  By default the copies are implicit multiplicities
    (O(m) stored groups); pass ``materialize=True`` for explicit rows.
    Pass ``tau_hat`` to reuse precomputed overestimates.
    """
    opts = options or default_options()
    rng = as_generator(seed if seed is not None else opts.seed)
    if tau_hat is None:
        K = K if K is not None else opts.K(graph.n)
        tau_hat = leverage_overestimates(graph, K, seed=rng, options=opts)
    tau_hat = np.asarray(tau_hat, dtype=np.float64)
    if tau_hat.shape != (graph.m,):
        raise SamplingError("tau_hat must have one entry per edge")
    # tau_hat estimates the *group-total* leverage w·R; when the input
    # already carries multiplicities, each existing copy's leverage is
    # tau_hat/mult, so the per-copy split factor composes from that —
    # otherwise pre-split inputs would be over-split by mult×.
    tau_copy = tau_hat / graph.multiplicities()
    copies = np.maximum(1, np.ceil(tau_copy / alpha)).astype(np.int64)
    if ledger_active():
        charge(*P.map_cost(graph.m), label="leverage_split")
    if graph.mult is None and np.all(copies == 1):
        return graph.copy()
    return graph.split_copies(copies, materialize=materialize)
