"""``ApplyCholesky`` — Algorithm 2 (Theorem 3.10).

Given the chain from ``BlockCholesky``, applies the linear operator
``W ≈₁ L⁺``: a forward substitution down the chain (each level solving
its ``F`` block with the Jacobi operator ``Z^(k)`` and pushing the
remainder to ``C``), a dense pseudo-solve at the O(1)-size base, and a
backward substitution up the chain.

Per application: ``O(m log n loglog n)`` work and
``O(log m log n loglog n)`` depth — each of the ``d = O(log n)`` levels
does one Jacobi apply (``O(m loglog n)`` work for ε = 1/(2d), Lemma 3.5)
plus one coupling-block matvec (``O(m)``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse.linalg as spla

from repro.core.chain import CholeskyChain
from repro.errors import DimensionMismatchError, FactorizationError
from repro.pram import charge
from repro.pram import primitives as P

__all__ = ["ApplyCholeskyOperator"]


class ApplyCholeskyOperator:
    """The preconditioner ``W``: ``apply(b) ≈ L⁺ b`` to constant factor.

    The operator is symmetric PSD on ``1⊥`` (it is a congruence chain of
    symmetric blocks, see the proof of Theorem 3.10), which is what
    preconditioned Richardson (and PCG) require.
    """

    def __init__(self, chain: CholeskyChain) -> None:
        for level in chain.levels:
            if level.jacobi is None or level.L_CF is None:
                raise FactorizationError(
                    "chain level missing its Jacobi operator; build chains "
                    "via block_cholesky()")
        self.chain = chain
        self.n = chain.n

    # -- the operator -------------------------------------------------------

    def apply(self, b: np.ndarray) -> np.ndarray:
        """``W b`` (Algorithm 2 forward + base solve + backward).

        ``b`` may be one right-hand side ``(n,)`` or a block ``(n, k)``;
        the block path performs the same substitutions on whole columns
        at once, so every per-level ``Z^(k)`` apply and coupling-block
        product is a sparse×dense-matrix (BLAS-3-style) kernel.
        """
        b = np.asarray(b, dtype=np.float64)
        if b.ndim not in (1, 2) or b.shape[0] != self.n:
            raise DimensionMismatchError(
                f"b must have shape ({self.n},) or ({self.n}, k), "
                f"got {b.shape}")
        k = 1 if b.ndim == 1 else b.shape[1]
        levels = self.chain.levels

        # Forward substitution (Algorithm 2, lines 3-5):
        #   y_F = Z^(k) b_F;   b^(k+1) = b_C - L_CF y_F.
        b_cur = b
        saved_yF: list[np.ndarray] = []
        for level in levels:
            bF = b_cur[level.idxF]
            bC = b_cur[level.idxC]
            yF = level.jacobi.apply(bF)
            yC = bC - level.L_CF @ yF
            charge(*P.matvec_cost(level.L_CF.nnz * k),
                   label="forward_coupling")
            saved_yF.append(yF)
            b_cur = yC

        # Base case (line 6): x^(d) = L_{G^(d)}⁺ b^(d).
        x_cur = self.chain.final_pinv @ b_cur
        charge(*P.matvec_cost(self.chain.final_pinv.size * k),
               label="base_case_solve")

        # Backward substitution (lines 7-8):
        #   x_F = y_F - Z^(k) (L_FC x_C);   interleave (x_F, x_C).
        for level, yF in zip(reversed(levels), reversed(saved_yF)):
            corr = level.jacobi.apply(level.blocks.L_FC @ x_cur)
            charge(*P.matvec_cost(level.blocks.L_FC.nnz * k),
                   label="backward_coupling")
            xF = yF - corr
            x_parent = np.empty((level.nf + level.nc,) + b.shape[1:],
                                dtype=np.float64)
            x_parent[level.idxF] = xF
            x_parent[level.idxC] = x_cur
            x_cur = x_parent
        return x_cur

    __call__ = apply

    # -- conveniences ---------------------------------------------------------

    def as_linear_operator(self) -> spla.LinearOperator:
        """scipy ``LinearOperator`` view (for use as an external
        preconditioner, e.g. in ``scipy.sparse.linalg.cg``)."""
        return spla.LinearOperator(shape=(self.n, self.n),
                                   matvec=self.apply, rmatvec=self.apply,
                                   matmat=self.apply,
                                   dtype=np.float64)

    def dense_operator(self) -> np.ndarray:
        """Materialise ``W`` via one blocked apply (small-n test oracle)."""
        W = self.apply(np.eye(self.n))
        return 0.5 * (W + W.T)
