"""Data structures for the approximate block Cholesky chain.

``BlockCholesky`` (Algorithm 1) produces ``(G^(0), …, G^(d); F₁, …, F_d)``.
A :class:`Level` stores what iteration ``k`` eliminated — the 5-DD set
``F_k``, the remaining set ``C_k``, and the sub-blocks of
``L_{G^(k-1)}`` that ``ApplyCholesky`` needs (``X_k + Y_k = (L)_{F_kF_k}``
and the coupling block ``L_{F_kC_k}``).  A :class:`CholeskyChain` is the
full output plus the dense base-case pseudoinverse.

:meth:`CholeskyChain.dense_factorization` materialises
``(U^(d))ᵀ D^(d) U^(d)`` (equations (5)/(6) of the paper) for the
Theorem 3.9-(5) approximation tests; it reconstructs the matrix by the
recursion in the proof of Theorem 3.10:

    ``L^{(d,k)} = [[L_FF, L_FC], [L_CF, L^{(d,k+1)}]]``

with the convention that the ``F``/``C`` blocks come from ``G^(k)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graphs.laplacian import LaplacianBlocks, laplacian
from repro.graphs.multigraph import MultiGraph
from repro.linalg.jacobi import JacobiOperator

__all__ = ["Level", "CholeskyChain"]


@dataclass
class Level:
    """One elimination round ``k`` of ``BlockCholesky``.

    Attributes
    ----------
    F, C:
        Global vertex ids eliminated / kept at this round (both sorted).
    idxF, idxC:
        Positions of ``F`` / ``C`` inside the *parent* level's active
        array — the coordinates ``ApplyCholesky`` works in.
    blocks:
        ``X``, ``Y``, ``L_FC`` of ``L_{G^(k-1)}`` under the ``F ⊔ C``
        bipartition (positional).
    jacobi:
        The operator ``Z^(k)`` of Lemma 3.5 (attached after the chain
        length ``d`` is known, since the paper sets ε = 1/(2d)).
    parent_edges:
        Multi-edge count of ``G^(k-1)`` (for cost accounting/diagnostics).
    """

    F: np.ndarray
    C: np.ndarray
    idxF: np.ndarray
    idxC: np.ndarray
    blocks: LaplacianBlocks
    parent_edges: int
    jacobi: JacobiOperator | None = None
    L_CF: sp.csr_matrix | None = None

    def attach_jacobi(self, eps: float) -> None:
        """Instantiate ``Z^(k)`` with accuracy ε (Algorithm 2 line 4)."""
        self.jacobi = JacobiOperator(self.blocks.X, self.blocks.Y, eps)
        self.L_CF = self.blocks.L_FC.T.tocsr()

    @property
    def nf(self) -> int:
        """Eliminated-block size ``|F|`` of this level."""
        return self.F.size

    @property
    def nc(self) -> int:
        """Surviving-block size ``|C|`` of this level."""
        return self.C.size


@dataclass
class CholeskyChain:
    """Output of ``BlockCholesky``: the graphs, levels, and base case.

    ``graphs`` is ``None`` when the chain was built with
    ``keep_graphs=False`` (streaming mode — each per-level graph is
    dropped once its blocks are extracted).  Edge-count diagnostics
    keep working through the cached ``logical_edges``/``stored_edges``
    lists; only :meth:`dense_factorization` (and other consumers of the
    graphs themselves) require ``keep_graphs=True``.
    """

    n: int
    graphs: list[MultiGraph] | None
    levels: list[Level]
    final_active: np.ndarray
    final_pinv: np.ndarray
    jacobi_eps: float
    logical_edges: list[int] | None = None
    stored_edges: list[int] | None = None

    @property
    def d(self) -> int:
        """Number of elimination rounds (paper's ``d = O(log n)``)."""
        return len(self.levels)

    def _require_graphs(self) -> list[MultiGraph]:
        if self.graphs is None:
            from repro.errors import FactorizationError
            raise FactorizationError(
                "chain was built with keep_graphs=False; per-level "
                "graphs were dropped after block extraction — rebuild "
                "with keep_graphs=True for graph-level diagnostics")
        return self.graphs

    @property
    def edge_counts(self) -> list[int]:
        """``m(G^(0)), …, m(G^(d))`` — Theorem 3.9-(1) says this never
        exceeds ``m(G^(0))``.  Counts *logical* multi-edges (implicit
        multiplicities expanded)."""
        if self.logical_edges is not None:
            return list(self.logical_edges)
        return [g.m_logical for g in self._require_graphs()]

    @property
    def stored_edge_counts(self) -> list[int]:
        """Edge *groups* physically held per level — the memory story;
        with implicit multiplicities this is far below
        :attr:`edge_counts`."""
        if self.stored_edges is not None:
            return list(self.stored_edges)
        return [g.m for g in self._require_graphs()]

    @property
    def active_counts(self) -> list[int]:
        """|active set| per level; shrinks ≥ 1/40 per round (Lemma 3.4)."""
        counts = [self.n]
        for level in self.levels:
            counts.append(level.C.size)
        return counts

    def total_stored_edges(self) -> int:
        """Sum of physically stored edge groups across all levels."""
        return sum(self.stored_edge_counts)

    # -- dense reconstruction (test oracle) --------------------------------

    def dense_factorization(self) -> np.ndarray:
        """Materialise ``(U^(d))ᵀ D^(d) U^(d)`` (Theorem 3.9-(5) oracle).

        O(n³)-ish; small-n tests/benches only.
        """
        # Base case: L_{G^(d)} on the final active set, in sorted order.
        base = laplacian(self._require_graphs()[-1]).toarray()
        S = base[np.ix_(self.final_active, self.final_active)]
        # Fold levels back up:
        #   L^{(d,k)} = [I 0; L_CF L_FF⁻¹ I] [L_FF 0; 0 L^{(d,k+1)}]
        #               [I L_FF⁻¹ L_FC; 0 I]
        #             = [L_FF, L_FC; L_CF, L^{(d,k+1)} + L_CF L_FF⁻¹ L_FC].
        import scipy.linalg

        for level in reversed(self.levels):
            LFF = np.diag(level.blocks.X) + level.blocks.Y.toarray()
            LFC = level.blocks.L_FC.toarray()
            nf, nc = level.nf, level.nc
            M = np.zeros((nf + nc, nf + nc))
            M[:nf, :nf] = LFF
            M[:nf, nf:] = LFC
            M[nf:, :nf] = LFC.T
            # L_FF is PD (X > 0 plus a PSD Laplacian), so solve directly.
            M[nf:, nf:] = S + LFC.T @ scipy.linalg.solve(
                LFF, LFC, assume_a="sym")
            # Un-permute [F..., C...] back into parent-active positions.
            parent_size = nf + nc
            order = np.concatenate([level.idxF, level.idxC])
            out = np.zeros((parent_size, parent_size))
            out[np.ix_(order, order)] = M
            S = out
        return S

    def summary(self) -> str:
        """One-line-per-level diagnostics."""
        lines = [f"CholeskyChain: n={self.n} d={self.d} "
                 f"jacobi_eps={self.jacobi_eps:.4g}"]
        actives = self.active_counts
        counts = self.edge_counts
        for k, level in enumerate(self.levels):
            lines.append(
                f"  level {k + 1}: |F|={level.nf} |C|={level.nc} "
                f"edges(G^{k})={counts[k]} -> "
                f"edges(G^{k + 1})={counts[k + 1]}")
        lines.append(f"  base case: {actives[-1]} vertices, "
                     f"{counts[-1]} multi-edges")
        return "\n".join(lines)
