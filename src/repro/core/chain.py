"""Data structures for the approximate block Cholesky chain.

``BlockCholesky`` (Algorithm 1) produces ``(G^(0), …, G^(d); F₁, …, F_d)``.
A :class:`Level` stores what iteration ``k`` eliminated — the 5-DD set
``F_k``, the remaining set ``C_k``, and the sub-blocks of
``L_{G^(k-1)}`` that ``ApplyCholesky`` needs (``X_k + Y_k = (L)_{F_kF_k}``
and the coupling block ``L_{F_kC_k}``).  A :class:`CholeskyChain` is the
full output plus the dense base-case pseudoinverse.

:meth:`CholeskyChain.dense_factorization` materialises
``(U^(d))ᵀ D^(d) U^(d)`` (equations (5)/(6) of the paper) for the
Theorem 3.9-(5) approximation tests; it reconstructs the matrix by the
recursion in the proof of Theorem 3.10:

    ``L^{(d,k)} = [[L_FF, L_FC], [L_CF, L^{(d,k+1)}]]``

with the convention that the ``F``/``C`` blocks come from ``G^(k)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.graphs.laplacian import LaplacianBlocks, laplacian
from repro.graphs.multigraph import MultiGraph
from repro.linalg.jacobi import JacobiOperator

__all__ = ["Level", "CholeskyChain"]


@dataclass
class Level:
    """One elimination round ``k`` of ``BlockCholesky``.

    Attributes
    ----------
    F, C:
        Global vertex ids eliminated / kept at this round (both sorted).
    idxF, idxC:
        Positions of ``F`` / ``C`` inside the *parent* level's active
        array — the coordinates ``ApplyCholesky`` works in.
    blocks:
        ``X``, ``Y``, ``L_FC`` of ``L_{G^(k-1)}`` under the ``F ⊔ C``
        bipartition (positional).
    jacobi:
        The operator ``Z^(k)`` of Lemma 3.5 (attached after the chain
        length ``d`` is known, since the paper sets ε = 1/(2d)).
    parent_edges:
        Multi-edge count of ``G^(k-1)`` (for cost accounting/diagnostics).
    """

    F: np.ndarray
    C: np.ndarray
    idxF: np.ndarray
    idxC: np.ndarray
    blocks: LaplacianBlocks
    parent_edges: int
    jacobi: JacobiOperator | None = None
    L_CF: sp.csr_matrix | None = None

    def attach_jacobi(self, eps: float) -> None:
        """Instantiate ``Z^(k)`` with accuracy ε (Algorithm 2 line 4)."""
        self.jacobi = JacobiOperator(self.blocks.X, self.blocks.Y, eps)
        self.L_CF = self.blocks.L_FC.T.tocsr()

    def nbytes(self) -> int:
        """Bytes of the arrays a solve consumes at this level (the
        payload-shipping cost): index maps, ``X``/``Y``, and both
        coupling CSR triples."""
        total = int(self.idxF.nbytes) + int(self.idxC.nbytes)
        total += int(self.blocks.X.nbytes)
        for M in (self.blocks.Y, self.blocks.L_FC,
                  self.L_CF if self.L_CF is not None
                  else self.blocks.L_FC.T.tocsr()):
            total += int(M.data.nbytes) + int(M.indices.nbytes) \
                + int(M.indptr.nbytes)
        return total

    @property
    def nf(self) -> int:
        """Eliminated-block size ``|F|`` of this level."""
        return self.F.size

    @property
    def nc(self) -> int:
        """Surviving-block size ``|C|`` of this level."""
        return self.C.size


@dataclass
class CholeskyChain:
    """Output of ``BlockCholesky``: the graphs, levels, and base case.

    ``graphs`` is ``None`` when the chain was built with
    ``keep_graphs=False`` (streaming mode — each per-level graph is
    dropped once its blocks are extracted).  Edge-count diagnostics
    keep working through the cached ``logical_edges``/``stored_edges``
    lists; only :meth:`dense_factorization` (and other consumers of the
    graphs themselves) require ``keep_graphs=True``.
    """

    n: int
    graphs: list[MultiGraph] | None
    levels: list[Level]
    final_active: np.ndarray
    final_pinv: np.ndarray
    jacobi_eps: float
    logical_edges: list[int] | None = None
    stored_edges: list[int] | None = None

    @property
    def d(self) -> int:
        """Number of elimination rounds (paper's ``d = O(log n)``)."""
        return len(self.levels)

    def _require_graphs(self) -> list[MultiGraph]:
        if self.graphs is None:
            from repro.errors import FactorizationError
            raise FactorizationError(
                "chain was built with keep_graphs=False; per-level "
                "graphs were dropped after block extraction — rebuild "
                "with keep_graphs=True for graph-level diagnostics")
        return self.graphs

    @property
    def edge_counts(self) -> list[int]:
        """``m(G^(0)), …, m(G^(d))`` — Theorem 3.9-(1) says this never
        exceeds ``m(G^(0))``.  Counts *logical* multi-edges (implicit
        multiplicities expanded)."""
        if self.logical_edges is not None:
            return list(self.logical_edges)
        return [g.m_logical for g in self._require_graphs()]

    @property
    def stored_edge_counts(self) -> list[int]:
        """Edge *groups* physically held per level — the memory story;
        with implicit multiplicities this is far below
        :attr:`edge_counts`."""
        if self.stored_edges is not None:
            return list(self.stored_edges)
        return [g.m for g in self._require_graphs()]

    @property
    def active_counts(self) -> list[int]:
        """|active set| per level; shrinks ≥ 1/40 per round (Lemma 3.4)."""
        counts = [self.n]
        for level in self.levels:
            counts.append(level.C.size)
        return counts

    def total_stored_edges(self) -> int:
        """Sum of physically stored edge groups across all levels."""
        return sum(self.stored_edge_counts)

    # -- flat-array payload (shipped solves, DESIGN.md §10) ----------------

    @property
    def nbytes(self) -> int:
        """Bytes of the solve-time chain payload: every level's arrays
        (:meth:`Level.nbytes`) plus the dense base-case pseudoinverse.
        This is exactly what :meth:`payload_arrays` ships through shared
        memory, so it is the observable cost of `ship_solves`."""
        return sum(self.level_nbytes()) + int(self.final_pinv.nbytes)

    def level_nbytes(self) -> list[int]:
        """Per-level payload bytes (``[level 1, …, level d]``)."""
        return [level.nbytes() for level in self.levels]

    def payload_arrays(self) -> tuple[dict, dict]:
        """Flatten the solve-time chain state into named arrays.

        Returns ``(arrays, meta)``: ``arrays`` maps string keys to the
        per-level ndarrays (index maps, ``X``, CSR triples of ``Y`` /
        ``L_FC`` / ``L_CF``) plus ``final_pinv`` — everything
        :class:`repro.core.apply_cholesky.ApplyCholeskyOperator` reads
        during an apply, nothing else; ``meta`` holds the picklable
        scalars (``n``, ``d``, ``jacobi_eps``) needed to rebuild shapes.
        :meth:`from_payload` inverts this mapping with pure view-wiring
        (no float is recomputed), so a reconstructed chain's applies are
        bit-identical to the original's.
        """
        arrays: dict = {"final_pinv": self.final_pinv}
        for k, level in enumerate(self.levels):
            if level.jacobi is None or level.L_CF is None:
                from repro.errors import FactorizationError
                raise FactorizationError(
                    "cannot export a chain payload before attach_jacobi")
            p = f"lv{k}_"
            arrays[p + "idxF"] = level.idxF
            arrays[p + "idxC"] = level.idxC
            arrays[p + "X"] = level.blocks.X
            for tag, M in (("Y", level.blocks.Y),
                           ("LFC", level.blocks.L_FC),
                           ("LCF", level.L_CF)):
                arrays[p + tag + "_data"] = M.data
                arrays[p + tag + "_indices"] = M.indices
                arrays[p + tag + "_indptr"] = M.indptr
        meta = {"n": int(self.n), "d": int(self.d),
                "jacobi_eps": float(self.jacobi_eps)}
        return arrays, meta

    def payload_fingerprint(self) -> str:
        """Hex digest of the solve-time payload (:meth:`payload_arrays`).

        Two chains with equal fingerprints produce bit-identical
        preconditioner applies, because the payload is *everything* an
        apply reads.  The serving cache uses this as its cheap equality
        witness that a cached chain and a fresh rebuild of the same
        ``(graph, options, seed)`` are interchangeable (DESIGN.md §12).
        """
        import hashlib

        arrays, meta = self.payload_arrays()
        h = hashlib.sha256()
        h.update(repr(sorted(meta.items())).encode())
        for name in sorted(arrays):
            arr = np.ascontiguousarray(arrays[name])
            h.update(name.encode())
            h.update(str(arr.dtype).encode())
            h.update(repr(arr.shape).encode())
            h.update(arr.tobytes())
        return h.hexdigest()

    @classmethod
    def from_payload(cls, arrays: dict, meta: dict) -> "CholeskyChain":
        """Rebuild a view-only solve chain from :meth:`payload_arrays`.

        Every level is wired directly over the given arrays (typically
        read-only shared-memory views): CSR blocks via zero-copy
        ``csr_matrix((data, indices, indptr))`` and the Jacobi operator
        via :meth:`repro.linalg.jacobi.JacobiOperator.from_parts`.  The
        result supports :class:`ApplyCholeskyOperator` construction and
        application only (graphs and global vertex ids are not shipped —
        ``F``/``C`` alias the positional index maps, which preserves the
        ``nf``/``nc`` sizes the apply needs).
        """
        eps = float(meta["jacobi_eps"])
        levels: list[Level] = []
        for k in range(int(meta["d"])):
            p = f"lv{k}_"
            idxF = arrays[p + "idxF"]
            idxC = arrays[p + "idxC"]
            nf, nc = idxF.size, idxC.size

            def csr(tag: str, shape):
                return sp.csr_matrix(
                    (arrays[p + tag + "_data"],
                     arrays[p + tag + "_indices"],
                     arrays[p + tag + "_indptr"]),
                    shape=shape, copy=False)

            Y = csr("Y", (nf, nf))
            L_FC = csr("LFC", (nf, nc))
            L_CF = csr("LCF", (nc, nf))
            level = Level(F=idxF, C=idxC, idxF=idxF, idxC=idxC,
                          blocks=LaplacianBlocks(X=arrays[p + "X"],
                                                 Y=Y, L_FC=L_FC),
                          parent_edges=0,
                          jacobi=JacobiOperator.from_parts(
                              arrays[p + "X"], Y, eps),
                          L_CF=L_CF)
            levels.append(level)
        final_pinv = arrays["final_pinv"]
        return cls(n=int(meta["n"]), graphs=None, levels=levels,
                   final_active=np.arange(final_pinv.shape[0]),
                   final_pinv=final_pinv, jacobi_eps=eps,
                   logical_edges=[], stored_edges=[])

    # -- dense reconstruction (test oracle) --------------------------------

    def dense_factorization(self) -> np.ndarray:
        """Materialise ``(U^(d))ᵀ D^(d) U^(d)`` (Theorem 3.9-(5) oracle).

        O(n³)-ish; small-n tests/benches only.
        """
        # Base case: L_{G^(d)} on the final active set, in sorted order.
        base = laplacian(self._require_graphs()[-1]).toarray()
        S = base[np.ix_(self.final_active, self.final_active)]
        # Fold levels back up:
        #   L^{(d,k)} = [I 0; L_CF L_FF⁻¹ I] [L_FF 0; 0 L^{(d,k+1)}]
        #               [I L_FF⁻¹ L_FC; 0 I]
        #             = [L_FF, L_FC; L_CF, L^{(d,k+1)} + L_CF L_FF⁻¹ L_FC].
        import scipy.linalg

        for level in reversed(self.levels):
            LFF = np.diag(level.blocks.X) + level.blocks.Y.toarray()
            LFC = level.blocks.L_FC.toarray()
            nf, nc = level.nf, level.nc
            M = np.zeros((nf + nc, nf + nc))
            M[:nf, :nf] = LFF
            M[:nf, nf:] = LFC
            M[nf:, :nf] = LFC.T
            # L_FF is PD (X > 0 plus a PSD Laplacian), so solve directly.
            M[nf:, nf:] = S + LFC.T @ scipy.linalg.solve(
                LFF, LFC, assume_a="sym")
            # Un-permute [F..., C...] back into parent-active positions.
            parent_size = nf + nc
            order = np.concatenate([level.idxF, level.idxC])
            out = np.zeros((parent_size, parent_size))
            out[np.ix_(order, order)] = M
            S = out
        return S

    def summary(self) -> str:
        """One-line-per-level diagnostics."""
        lines = [f"CholeskyChain: n={self.n} d={self.d} "
                 f"jacobi_eps={self.jacobi_eps:.4g}"]
        actives = self.active_counts
        counts = self.edge_counts
        for k, level in enumerate(self.levels):
            lines.append(
                f"  level {k + 1}: |F|={level.nf} |C|={level.nc} "
                f"edges(G^{k})={counts[k]} -> "
                f"edges(G^{k + 1})={counts[k + 1]}")
        lines.append(f"  base case: {actives[-1]} vertices, "
                     f"{counts[-1]} multi-edges")
        return "\n".join(lines)
