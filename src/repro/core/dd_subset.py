"""``5DDSubset`` — Algorithm 3 ([LPS15], Lemma 3.4).

Finds a subset ``F`` of the active vertices, of size ``> n/40``, such
that ``L_FF`` is 5-diagonally dominant (Definition 3.1): every F vertex
carries at most ``1/5`` of its weighted degree inside ``F``.  Such an
"almost independent" ``F`` is what makes ``L_FF`` trivially invertible
by a few Jacobi iterations (Lemma 3.5) and terminal walks short
(Lemma 5.4: each step escapes to ``C`` with probability ≥ 4/5).

The procedure: repeatedly sample a uniform candidate set ``F'`` of size
``n/20`` and keep the candidates whose within-``F'`` weighted degree is
at most ``1/5`` of their total weighted degree.  Lemma 3.4 shows each
round succeeds with probability ≥ 1/2, so the expected number of rounds
is O(1), giving O(m) expected work and O(log m) expected depth.
"""

from __future__ import annotations

import numpy as np

from repro.config import SolverOptions, default_options
from repro.errors import FactorizationError
from repro.graphs.multigraph import MultiGraph, scatter_add_pair
from repro.pram import charge, ledger_active
from repro.pram import primitives as P
from repro.rng import as_generator

__all__ = ["five_dd_subset", "verify_five_dd", "DDSubsetStats"]


class DDSubsetStats:
    """Diagnostics: rounds taken and the acceptance ratio per round."""

    def __init__(self) -> None:
        self.rounds: int = 0
        self.accepted: list[int] = []

    def record(self, kept: int) -> None:
        """Log one sampling round that accepted ``kept`` vertices."""
        self.rounds += 1
        self.accepted.append(kept)


def _within_subset_degrees(graph, member: np.ndarray) -> np.ndarray:
    """Weighted degree of each vertex counting only edges with *both*
    endpoints flagged in the boolean ``member`` mask.

    ``graph`` may be a :class:`MultiGraph` or any degree oracle
    exposing ``within_subset_degrees`` (e.g.
    :class:`repro.sampling.inc_csr.InteriorDegreeOracle`, which serves
    the scan straight from the incremental edge store).
    """
    if hasattr(graph, "within_subset_degrees"):
        return graph.within_subset_degrees(member)
    both = member[graph.u] & member[graph.v]
    if not both.any():
        return np.zeros(graph.n, dtype=np.float64)
    return scatter_add_pair(graph.u[both], graph.w[both],
                            graph.v[both], graph.w[both], graph.n)


def five_dd_subset(graph,
                   active: np.ndarray | None = None,
                   seed=None,
                   options: SolverOptions | None = None,
                   stats: DDSubsetStats | None = None,
                   max_rounds: int = 1000) -> np.ndarray:
    """Return a 5-DD subset ``F`` of the ``active`` vertices.

    Parameters
    ----------
    graph:
        Multigraph whose edges all live inside ``active`` — or a
        degree oracle with the same ``n`` / ``m`` /
        ``weighted_degrees()`` / ``within_subset_degrees(member)``
        surface (:class:`repro.sampling.inc_csr.InteriorDegreeOracle`),
        which lets the elimination loop run the scan without
        materialising the induced interior subgraph.  Oracle degrees
        are bit-identical to the rebuild's, so the sampled ``F`` (and
        every downstream result) is unchanged.
    active:
        Vertex ids to draw from; defaults to all of ``0..n-1``.
        Vertices with zero weighted degree are never selected (they
        would make ``X`` singular in the Jacobi operator).
    options:
        ``dd_fraction`` (accept when ``|F| > n·dd_fraction``),
        ``dd_candidate_fraction`` (candidate-set size) and
        ``dd_threshold`` (the 1/5).
    stats:
        Optional diagnostics collector.
    max_rounds:
        Hard cap — Lemma 3.4 gives success probability ≥ 1/2 per round,
        so hitting the cap indicates a bug, not bad luck.
    """
    opts = options or default_options()
    rng = as_generator(seed)
    if active is None:
        active = np.arange(graph.n, dtype=np.int64)
    else:
        active = np.asarray(active, dtype=np.int64)
    wdeg = graph.weighted_degrees()
    eligible = active[wdeg[active] > 0]
    n_act = active.size
    if eligible.size == 0:
        raise FactorizationError("no active vertex carries an edge")
    if eligible.size == 1:
        # A singleton is always 5-DD (no off-diagonal inside F).
        if stats is not None:
            stats.record(1)
        return eligible.copy()

    target = n_act * opts.dd_fraction
    cand_size = max(1, int(np.ceil(n_act * opts.dd_candidate_fraction)))
    cand_size = min(cand_size, eligible.size)

    best: np.ndarray | None = None
    for _ in range(max_rounds):
        cand = rng.choice(eligible, size=cand_size, replace=False)
        member = np.zeros(graph.n, dtype=bool)
        member[cand] = True
        deg_in = _within_subset_degrees(graph, member)
        keep = deg_in[cand] <= opts.dd_threshold * wdeg[cand]
        F = cand[keep]
        if ledger_active():
            charge(*P.map_cost(graph.m), label="dd_subset_round")
        if stats is not None:
            stats.record(int(F.size))
        if F.size > target or F.size == eligible.size:
            return np.sort(F)
        if F.size and (best is None or F.size > best.size):
            best = F
    # Lemma 3.4 gives success probability >= 1/2 per round, so reaching
    # here means the active set is degenerate (e.g. almost all isolated).
    # Any non-empty 5-DD subset still makes progress; a singleton is
    # always 5-DD, so we can always fall back to one vertex.
    if best is not None:
        return np.sort(best)
    return eligible[:1].copy()


def verify_five_dd(graph: MultiGraph, F: np.ndarray,
                   threshold: float = 1.0 / 5.0,
                   rtol: float = 1e-9) -> bool:
    """Is ``L_FF`` 5-DD?  Equivalent vertex-wise form: each ``i ∈ F``
    has within-``F`` weighted degree ≤ ``threshold``× its total."""
    F = np.asarray(F, dtype=np.int64)
    member = np.zeros(graph.n, dtype=bool)
    member[F] = True
    deg_in = _within_subset_degrees(graph, member)
    wdeg = graph.weighted_degrees()
    lhs = deg_in[F]
    rhs = threshold * wdeg[F]
    return bool(np.all(lhs <= rhs * (1.0 + rtol) + 1e-12))
