"""``PreconRichardson`` — Algorithm 5 (Theorem 3.8).

Given ``B ≈_δ A⁺``, the iteration

    ``x^(k) = (I − α B A) x^(k-1) + α x^(0)``,  ``x^(0) = B b``,
    ``α = 2 / (e^{-δ} + e^{δ})``,

returns an ε-approximate solution to ``A x = b`` after
``⌈e^{2δ} log(1/ε)⌉`` iterations, each costing one apply of ``A`` and
one of ``B``.  With the paper's δ = 1 preconditioner this is
``O(log 1/ε)`` applications — the only place the solver's accuracy
parameter enters.

The blocked entry point accepts ``b`` of shape ``(n, k)`` (``k``
right-hand sides against one factorization — the IPM-loop pattern) with
a scalar or per-column ``eps``.  Each column runs to *its own*
iteration budget ``⌈e^{2δ} log(1/ε_j)⌉`` and is additionally frozen
early once its 2-norm residual falls below
``FREEZE_FACTOR · ε_j · ‖b_j‖``; frozen columns are compacted out of
the active block (mirroring the walker compaction of the sampling
engine), so every ``A``/``B`` apply works on the still-active columns
only — as sparse×dense-matrix (BLAS-3-style) products.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.linalg.ops import project_out_ones

__all__ = ["preconditioned_richardson", "richardson_iterations",
           "RichardsonResult", "FREEZE_FACTOR"]

#: Early-freeze threshold for blocked solves: column ``j`` stops once
#: ``‖A x_j − b_j‖₂ ≤ FREEZE_FACTOR · ε_j · ‖b_j‖₂``.  This is a
#: conservative *heuristic*: the 2-norm residual bounds the A-norm
#: error only up to ``sqrt(λ_max/λ_2)``, so on extremely
#: ill-conditioned inputs a frozen column can sit slightly above its
#: ε_j A-norm target (the a-priori per-column budget of Theorem 3.8
#: still caps every column; blocked results match looped ones to
#: solver tolerance, not bitwise).  Set to 0 to disable freezing.
FREEZE_FACTOR = 0.02


def richardson_iterations(delta: float, eps: float) -> int:
    """``⌈e^{2δ} log(1/ε)⌉`` (Algorithm 5, line 4)."""
    if not 0 < eps < 1:
        raise ValueError(f"need 0 < eps < 1, got {eps}")
    if delta <= 0:
        raise ValueError(f"need delta > 0, got {delta}")
    return max(1, math.ceil(math.exp(2.0 * delta) * math.log(1.0 / eps)))


@dataclass
class RichardsonResult:
    """Solution plus iteration diagnostics."""

    x: np.ndarray
    iterations: int
    alpha: float
    #: ``track_errors`` samples: one float per iteration for
    #: single-vector solves, one per-column ``(k,)`` array per
    #: iteration for blocked solves.
    error_history: list = field(default_factory=list)
    #: Blocked solves only: iterations each column actually ran before
    #: it converged/was frozen (``None`` for single-vector solves).
    per_column_iterations: np.ndarray | None = None
    #: Blocked solves only: global column indices whose iterates went
    #: non-finite and were quarantined (their ``x`` columns are NaN;
    #: the caller escalates them — see DESIGN.md §9).  ``None`` when
    #: no column broke.
    broken_columns: np.ndarray | None = None


def preconditioned_richardson(apply_A: Callable[[np.ndarray], np.ndarray],
                              apply_B: Callable[[np.ndarray], np.ndarray],
                              b: np.ndarray,
                              delta: float = 1.0,
                              eps: float | np.ndarray = 1e-6,
                              project: bool = True,
                              iterations: int | None = None,
                              track_errors: Callable[[np.ndarray], float]
                              | None = None,
                              divergence_guard: bool = True,
                              freeze: bool = True,
                              ctx=None,
                              col_ids: np.ndarray | None = None,
                              ship=None) -> RichardsonResult:
    """Solve ``A x = b`` given a δ-quality preconditioner ``B ≈_δ A⁺``.

    Parameters
    ----------
    apply_A, apply_B:
        The system operator and preconditioner as callables.  For a
        blocked ``b`` of shape ``(n, k)`` both must accept ``(n, j)``
        blocks for any ``j ≤ k`` (columns are compacted as they
        converge).
    b:
        One right-hand side ``(n,)`` or ``k`` of them as ``(n, k)``.
    delta:
        The preconditioner quality δ (Theorem 3.10 gives δ = 1 for the
        block Cholesky chain).
    eps:
        Target relative accuracy in the ``A``-norm.  For blocked ``b``
        this may be a scalar (shared) or a length-``k`` array
        (per-column targets; each column stops at its own ε).
    project:
        Project iterates onto ``1⊥`` (Laplacian kernel handling).
    iterations:
        Override the iteration count (benchmarks sweep this).  For
        blocked solves this caps every column uniformly.
    track_errors:
        Optional callback evaluated on the full iterate every iteration
        and stored in ``error_history`` (used by benchmark E10 to
        expose the geometric decay).  For single-vector solves it
        receives/returns a scalar; for blocked solves it receives the
        complete ``(n, k)`` iterate (frozen columns included at their
        frozen values) and should return per-column errors.  Error
        tracking runs in-block — it disables ``ctx`` column chunking
        so the history covers all columns at every iteration.
    divergence_guard:
        Theorem 3.8's convergence *assumes* ``B ≈_δ A⁺``; if the
        supplied preconditioner is worse than claimed the iteration can
        diverge silently.  The guard monitors the residual (cheap — the
        iteration computes ``A x`` anyway) and raises
        :class:`repro.errors.ConvergenceError` once it exceeds 10× the
        initial residual, so callers can fall back (the solver falls
        back to PCG, which converges for *any* SPD preconditioner).
    freeze:
        Blocked solves only: enable the residual-based early freeze
        (see :data:`FREEZE_FACTOR`).  ``False`` runs every column to
        its full a-priori budget — the seed-faithful baseline, and
        what the single-vector path always does.
    ctx:
        Optional :class:`repro.pram.ExecutionContext`.  Blocked solves
        split their columns into the context's (size-determined, hence
        worker-independent) column chunks and iterate each chunk on
        the context's pool (these chunks are numpy-bound closures, so
        the process backend schedules them on threads — see
        ``ProcessPoolBackend.map``) — column results are identical to
        the unchunked block up to each chunk's own freeze decisions,
        and identical across worker counts and backends.
    col_ids:
        Global right-hand-side index of each column of ``b`` (defaults
        to ``arange(k)``) — the coordinates breakdown quarantine and
        ``nan:col=N`` fault directives are expressed in, kept stable
        under column chunking and escalation re-solves.
    ship:
        Optional :class:`repro.pram.executor.SolveShipment` (the
        solver's picklable chain payload).  When shipping is enabled
        the column chunks run as pure tasks through ``run_shipped`` —
        crossing the process boundary under the process/distributed
        backends — with bit-identical results; when disabled (or the
        layout is one chunk) the call falls through to the
        closure-chunked ``ctx`` path.  ``ship`` implies ``apply_A`` /
        ``apply_B`` are the owning solver's operators.
    """
    b = np.asarray(b, dtype=np.float64)
    if b.ndim == 2:
        # Resolve the ambient fault plan / log here, in the calling
        # thread: pool threads do not inherit contextvars, so the
        # blocked kernels receive both explicitly.
        from repro.pram import faults as _faults

        plan = _faults.active_plan()
        flog = _faults.current_fault_log()
        if (ctx is not None or ship is not None) \
                and track_errors is None:
            # Column chunks iterate independently — shipped as pure
            # tasks when a SolveShipment is enabled, as closures on
            # the context's pool otherwise; the layout is a function
            # of the column count only, so results do not depend on
            # the worker count, backend, or transport.  A diverging
            # chunk raises ConvergenceError exactly as the unchunked
            # block would (the caller's fallback covers the whole
            # block).
            results = None
            if ship is not None:
                results = ship.run(
                    "richardson", b, cols=(eps,), col_ids=col_ids,
                    params={"delta": delta, "project": project,
                            "iterations": iterations,
                            "divergence_guard": divergence_guard,
                            "freeze": freeze})
            if results is None and ctx is not None:
                from repro.pram.executor import run_column_chunks

                results = run_column_chunks(
                    ctx, b,
                    lambda bc, ec, ids: _blocked_richardson(
                        apply_A, apply_B, bc, delta=delta, eps=ec,
                        project=project, iterations=iterations,
                        divergence_guard=divergence_guard, freeze=freeze,
                        col_ids=ids, plan=plan, flog=flog),
                    cols=(eps,), col_ids=col_ids)
            if results is not None:
                broken = [r.broken_columns for r in results
                          if r.broken_columns is not None]
                return RichardsonResult(
                    x=np.hstack([r.x for r in results]),
                    iterations=max(r.iterations for r in results),
                    alpha=results[0].alpha,
                    per_column_iterations=np.concatenate(
                        [r.per_column_iterations for r in results]),
                    broken_columns=np.concatenate(broken)
                    if broken else None)
        return _blocked_richardson(apply_A, apply_B, b, delta=delta,
                                   eps=eps, project=project,
                                   iterations=iterations,
                                   divergence_guard=divergence_guard,
                                   freeze=freeze,
                                   track_errors=track_errors,
                                   col_ids=col_ids, plan=plan, flog=flog)
    from repro.errors import ConvergenceError, NumericalBreakdownError
    eps = float(eps)
    if project:
        b = project_out_ones(b)
    alpha = 2.0 / (math.exp(-delta) + math.exp(delta))
    iters = iterations if iterations is not None \
        else richardson_iterations(delta, eps)

    x0 = apply_B(b)
    if project:
        x0 = project_out_ones(x0)
    x = x0.copy()
    history: list[float] = []
    if track_errors is not None:
        history.append(track_errors(x))
    bnorm = float(np.linalg.norm(b))
    for k in range(iters):
        Ax = apply_A(x)
        if divergence_guard and bnorm > 0:
            rnorm = float(np.linalg.norm(Ax - b))
            if not np.isfinite(rnorm):
                raise NumericalBreakdownError(
                    "preconditioned Richardson iterate became "
                    f"non-finite at iteration {k}",
                    iteration=k)
            if rnorm > 10.0 * bnorm:
                raise ConvergenceError(
                    "preconditioned Richardson diverged: the "
                    "preconditioner is worse than the assumed "
                    f"delta={delta} (residual {rnorm:.2e} vs "
                    f"|b| {bnorm:.2e} at iteration {k})",
                    iterations=k, residual=rnorm / bnorm)
        correction = apply_B(Ax)
        if project:
            correction = project_out_ones(correction)
        x = x - alpha * correction + alpha * x0
        if track_errors is not None:
            history.append(track_errors(x))
    return RichardsonResult(x=x, iterations=iters, alpha=alpha,
                            error_history=history)


def _blocked_richardson(apply_A, apply_B, b: np.ndarray,
                        delta: float, eps, project: bool,
                        iterations: int | None,
                        divergence_guard: bool,
                        freeze: bool = True,
                        track_errors=None,
                        col_ids: np.ndarray | None = None,
                        plan=None, flog=None) -> RichardsonResult:
    """Algorithm 5 on an ``(n, k)`` block with column-wise convergence.

    Breakdown containment: a column whose residual goes non-finite is
    *quarantined* — frozen out of the active set immediately (its
    output column stays NaN) and reported via
    ``RichardsonResult.broken_columns`` in global ``col_ids``
    coordinates — rather than aborting the whole block.  Finite
    divergence still raises :class:`~repro.errors.ConvergenceError`
    (the preconditioner is bad for *every* column, so the caller's
    whole-block fallback is the right response).  ``plan``/``flog``
    are the fault plan and log resolved by the caller's thread.
    """
    from repro.errors import ConvergenceError
    n, k = b.shape
    ids = np.arange(k, dtype=np.int64) if col_ids is None \
        else np.asarray(col_ids, dtype=np.int64)
    broken = np.zeros(k, dtype=bool)
    eps_col = np.broadcast_to(np.asarray(eps, dtype=np.float64),
                              (k,)).copy()
    if iterations is not None:
        caps = np.full(k, int(iterations), dtype=np.int64)
    else:
        caps = np.array([richardson_iterations(delta, e) for e in eps_col],
                        dtype=np.int64)
    if project:
        b = project_out_ones(b)
    alpha = 2.0 / (math.exp(-delta) + math.exp(delta))
    bnorm = np.linalg.norm(b, axis=0)
    factor = FREEZE_FACTOR if freeze else 0.0
    freeze_at = factor * eps_col * bnorm

    X0 = apply_B(b)
    if project:
        X0 = project_out_ones(X0)
    X = X0.copy()

    out = np.empty((n, k), dtype=np.float64)
    used = np.zeros(k, dtype=np.int64)
    active = np.arange(k)
    frozen = np.zeros(k, dtype=bool)
    history: list = []
    if track_errors is not None:
        history.append(track_errors(X))
    b_act, X0_act, X_act = b, X0, X
    caps_act, bnorm_act, freeze_act = caps, bnorm, freeze_at
    max_iters = int(caps.max(initial=1))
    for it in range(max_iters):
        if plan is not None:
            from repro.pram.faults import inject_nan_columns

            inject_nan_columns(plan, X_act, ids[active], it,
                               "richardson", flog)
        AX = apply_A(X_act)
        rnorm = np.linalg.norm(AX - b_act, axis=0)
        nonfin = ~np.isfinite(rnorm)
        if divergence_guard:
            bad = (bnorm_act > 0) & ~nonfin & (rnorm > 10.0 * bnorm_act)
            if bad.any():
                j = int(np.flatnonzero(bad)[0])
                raise ConvergenceError(
                    "preconditioned Richardson diverged on column "
                    f"{int(active[j])}: the preconditioner is worse than "
                    f"the assumed delta={delta} (residual {rnorm[j]:.2e} "
                    f"vs |b| {bnorm_act[j]:.2e} at iteration {it})",
                    iterations=it, residual=float(
                        rnorm[j] / max(bnorm_act[j], 1e-300)))
        if nonfin.any():
            # Quarantine: freeze the broken columns out of the block
            # so the remaining columns keep iterating on clean data;
            # the caller escalates the NaN columns (DESIGN.md §9).
            broken[active[nonfin]] = True
            if flog is not None:
                flog.record(
                    "quarantine", kind="nan",
                    columns=tuple(int(c) for c in ids[active[nonfin]]),
                    detail=f"stage=richardson iteration={it}")
        done = nonfin | (rnorm <= freeze_act) | (caps_act <= it)
        if done.any():
            out[:, active[done]] = X_act[:, done]
            used[active[done]] = it
            frozen[active[done]] = True
            keep = ~done
            active = active[keep]
            if active.size == 0:
                break
            b_act = b_act[:, keep]
            X0_act = X0_act[:, keep]
            X_act = X_act[:, keep]
            AX = AX[:, keep]
            caps_act = caps_act[keep]
            bnorm_act = bnorm_act[keep]
            freeze_act = freeze_act[keep]
        corr = apply_B(AX)
        if project:
            corr = project_out_ones(corr)
        X_act = X_act - alpha * corr + alpha * X0_act
        if track_errors is not None:
            # Mirror the scalar path's per-iteration sampling on the
            # full-width iterate (frozen columns at frozen values).
            full = np.empty((n, k), dtype=np.float64)
            full[:, frozen] = out[:, frozen]
            full[:, active] = X_act
            history.append(track_errors(full))
    if active.size:
        out[:, active] = X_act
        used[active] = max_iters
    return RichardsonResult(x=out, iterations=int(used.max(initial=0)),
                            alpha=alpha, error_history=history,
                            per_column_iterations=used,
                            broken_columns=ids[np.flatnonzero(broken)]
                            if broken.any() else None)
