"""``PreconRichardson`` — Algorithm 5 (Theorem 3.8).

Given ``B ≈_δ A⁺``, the iteration

    ``x^(k) = (I − α B A) x^(k-1) + α x^(0)``,  ``x^(0) = B b``,
    ``α = 2 / (e^{-δ} + e^{δ})``,

returns an ε-approximate solution to ``A x = b`` after
``⌈e^{2δ} log(1/ε)⌉`` iterations, each costing one apply of ``A`` and
one of ``B``.  With the paper's δ = 1 preconditioner this is
``O(log 1/ε)`` applications — the only place the solver's accuracy
parameter enters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.linalg.ops import project_out_ones

__all__ = ["preconditioned_richardson", "richardson_iterations",
           "RichardsonResult"]


def richardson_iterations(delta: float, eps: float) -> int:
    """``⌈e^{2δ} log(1/ε)⌉`` (Algorithm 5, line 4)."""
    if not 0 < eps < 1:
        raise ValueError(f"need 0 < eps < 1, got {eps}")
    if delta <= 0:
        raise ValueError(f"need delta > 0, got {delta}")
    return max(1, math.ceil(math.exp(2.0 * delta) * math.log(1.0 / eps)))


@dataclass
class RichardsonResult:
    """Solution plus iteration diagnostics."""

    x: np.ndarray
    iterations: int
    alpha: float
    error_history: list[float] = field(default_factory=list)


def preconditioned_richardson(apply_A: Callable[[np.ndarray], np.ndarray],
                              apply_B: Callable[[np.ndarray], np.ndarray],
                              b: np.ndarray,
                              delta: float = 1.0,
                              eps: float = 1e-6,
                              project: bool = True,
                              iterations: int | None = None,
                              track_errors: Callable[[np.ndarray], float]
                              | None = None,
                              divergence_guard: bool = True
                              ) -> RichardsonResult:
    """Solve ``A x = b`` given a δ-quality preconditioner ``B ≈_δ A⁺``.

    Parameters
    ----------
    apply_A, apply_B:
        The system operator and preconditioner as callables.
    delta:
        The preconditioner quality δ (Theorem 3.10 gives δ = 1 for the
        block Cholesky chain).
    eps:
        Target relative accuracy in the ``A``-norm.
    project:
        Project iterates onto ``1⊥`` (Laplacian kernel handling).
    iterations:
        Override the iteration count (benchmarks sweep this).
    track_errors:
        Optional callback ``x ↦ error``; evaluated every iteration and
        stored in ``error_history`` (used by benchmark E10 to expose the
        geometric decay).
    divergence_guard:
        Theorem 3.8's convergence *assumes* ``B ≈_δ A⁺``; if the
        supplied preconditioner is worse than claimed the iteration can
        diverge silently.  The guard monitors the residual (cheap — the
        iteration computes ``A x`` anyway) and raises
        :class:`repro.errors.ConvergenceError` once it exceeds 10× the
        initial residual, so callers can fall back (the solver falls
        back to PCG, which converges for *any* SPD preconditioner).
    """
    from repro.errors import ConvergenceError
    b = np.asarray(b, dtype=np.float64)
    if project:
        b = project_out_ones(b)
    alpha = 2.0 / (math.exp(-delta) + math.exp(delta))
    iters = iterations if iterations is not None \
        else richardson_iterations(delta, eps)

    x0 = apply_B(b)
    if project:
        x0 = project_out_ones(x0)
    x = x0.copy()
    history: list[float] = []
    if track_errors is not None:
        history.append(track_errors(x))
    bnorm = float(np.linalg.norm(b))
    for k in range(iters):
        Ax = apply_A(x)
        if divergence_guard and bnorm > 0:
            rnorm = float(np.linalg.norm(Ax - b))
            if not np.isfinite(rnorm) or rnorm > 10.0 * bnorm:
                raise ConvergenceError(
                    "preconditioned Richardson diverged: the "
                    "preconditioner is worse than the assumed "
                    f"delta={delta} (residual {rnorm:.2e} vs "
                    f"|b| {bnorm:.2e} at iteration {k})",
                    iterations=k, residual=rnorm / bnorm)
        correction = apply_B(Ax)
        if project:
            correction = project_out_ones(correction)
        x = x - alpha * correction + alpha * x0
        if track_errors is not None:
            history.append(track_errors(x))
    return RichardsonResult(x=x, iterations=iters, alpha=alpha,
                            error_history=history)
