"""α-boundedness for multi-edges (Section 3.2, Lemma 3.2).

A multi-edge ``e`` is α-bounded w.r.t. a Laplacian ``L`` when its
leverage score ``τ(e) = w(e)·b_eᵀ L⁺ b_e ≤ α``.  ``BlockCholesky``
requires every input multi-edge to be α-bounded for
``α⁻¹ = Θ(log² n)`` — this is what powers the matrix-Freedman
concentration argument (Theorem 5.5: the norm bound ``R = α``).

Since ``τ(e) ≤ 1`` always holds (a leverage score is the fraction of
``e``'s weight "used" by the graph), splitting every edge into
``⌈1/α⌉`` parallel copies of ``1/⌈1/α⌉`` times the weight makes every
copy α-bounded while preserving the Laplacian exactly — that is
Lemma 3.2, implemented by :func:`naive_split`.

The split is *implicit* by default: rather than materialising
``m·⌈1/α⌉`` edge rows, the result carries a ``mult`` array marking each
stored group as ``⌈1/α⌉`` logical copies — O(m) memory, and the
Laplacian is not merely close but bit-identical to the input's (the
stored totals are untouched).  See DESIGN.md §"Implicit α-split
multigraphs".
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphStructureError
from repro.graphs.multigraph import MultiGraph
from repro.linalg.pinv import exact_effective_resistances
from repro.pram import charge, ledger_active
from repro.pram import primitives as P

__all__ = [
    "leverage_scores",
    "naive_split",
    "split_counts_for_alpha",
    "is_alpha_bounded",
]


def leverage_scores(graph: MultiGraph,
                    reference: MultiGraph | None = None) -> np.ndarray:
    """Exact per-*copy* leverage scores ``τ(e) = w_copy(e) R_eff(e)``.

    For a graph with implicit multiplicities the returned array has one
    entry per stored group — the score of each of the group's
    ``mult`` identical logical copies, i.e. ``(w/mult)·R_eff``.  For
    plain graphs this is the usual ``w·R_eff``.

    ``reference`` lets you measure the edges of ``graph`` against a
    *different* Laplacian (Lemma 5.2 speaks of boundedness w.r.t. the
    original ``L``, not the current level's graph).  Dense oracle —
    O(n³); for estimation at scale use
    :func:`repro.core.lev_est.leverage_overestimates`.
    """
    ref = reference if reference is not None else graph
    if ref.n != graph.n:
        raise GraphStructureError("reference graph must share vertex set")
    pairs = np.stack([graph.u, graph.v], axis=1)
    reff = exact_effective_resistances(ref, pairs)
    w_copy = graph.w if graph.mult is None else graph.w / graph.mult
    return w_copy * reff


def is_alpha_bounded(graph: MultiGraph, alpha: float,
                     reference: MultiGraph | None = None,
                     rtol: float = 1e-9) -> bool:
    """Check every logical multi-edge of ``graph`` is α-bounded (dense
    oracle; implicit copies are checked via their per-copy weight)."""
    tau = leverage_scores(graph, reference)
    return bool(np.all(tau <= alpha * (1.0 + rtol) + 1e-12))


def split_counts_for_alpha(alpha: float) -> int:
    """``⌈1/α⌉`` — copies per edge under naive splitting."""
    if not 0 < alpha:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if alpha >= 1.0:
        return 1
    return int(np.ceil(1.0 / alpha))


def naive_split(graph: MultiGraph, alpha: float,
                materialize: bool = False) -> MultiGraph:
    """Lemma 3.2: split every edge into ``⌈1/α⌉`` α-bounded copies.

    Returns a multigraph ``H`` with ``m·⌈1/α⌉`` *logical* multi-edges
    and ``L_H = L_G`` exactly.  By default the copies are implicit
    (``H.m == graph.m`` stored groups carrying ``mult = ⌈1/α⌉``), so
    the split costs O(m) work and memory rather than O(m/α).  Pass
    ``materialize=True`` to expand the copies into explicit rows — the
    seed representation, kept for benchmark baselines and equivalence
    tests.
    """
    k = split_counts_for_alpha(alpha)
    if k == 1:
        return graph.materialized() if materialize else graph.copy()
    if ledger_active():
        charge(*P.map_cost(graph.m), label="naive_split")
    return graph.split_copies(k, materialize=materialize)
