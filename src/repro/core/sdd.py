"""SDD systems via the Gremban double-cover reduction.

The Laplacian-solver literature (including this paper's predecessors
[KOSZ13; CKMPPRX14]) states results for **SDD** matrices — symmetric
diagonally dominant, allowing *positive* off-diagonals and diagonal
slack.  The classic Gremban reduction maps an SDD system to a Laplacian
one of twice the size, which our solver then handles:

Write ``M = D + N + P`` (``D`` diagonal, ``N``/``P`` the negative/
positive off-diagonal parts) with slack
``s_i = M_ii − Σ_{j≠i} |M_ij| ≥ 0``.  Build a graph on vertex set
``{1..n} ∪ {1'..n'}``:

* each negative entry ``M_ij = −w`` → edges ``(i, j)`` and ``(i', j')``
  of weight ``w`` (same-layer);
* each positive entry ``M_ij = +w`` → edges ``(i, j')`` and ``(j, i')``
  of weight ``w`` (cross-layer);
* slack ``s_i > 0`` → edge ``(i, i')`` of weight ``s_i / 2``.

Then ``L [x; −x] = [b; −b]`` iff ``M x = b``; solving the Laplacian
system and anti-symmetrising recovers ``x``.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.config import SolverOptions
from repro.core.solver import LaplacianSolver
from repro.errors import GraphStructureError, ReproError
from repro.graphs.multigraph import MultiGraph
from repro.graphs.validation import is_connected

__all__ = ["gremban_cover", "SDDSolver", "solve_sdd", "is_sdd"]


def is_sdd(M, rtol: float = 1e-9) -> bool:
    """Symmetric with ``M_ii ≥ Σ_{j≠i} |M_ij|`` for every row."""
    M = sp.csr_matrix(M)
    if abs(M - M.T).max() > rtol * max(abs(M).max(), 1.0):
        return False
    diag = M.diagonal()
    off = np.asarray(abs(M).sum(axis=1)).ravel() - np.abs(diag)
    return bool(np.all(diag + rtol * np.maximum(np.abs(diag), 1.0)
                       >= off))


def gremban_cover(M) -> MultiGraph:
    """The double-cover Laplacian's graph for an SDD matrix ``M``."""
    M = sp.coo_matrix(M)
    n = M.shape[0]
    if M.shape[0] != M.shape[1]:
        raise GraphStructureError("M must be square")
    if not is_sdd(M):
        raise GraphStructureError("M is not SDD")

    mask_off = M.row != M.col
    rows, cols, vals = M.row[mask_off], M.col[mask_off], M.data[mask_off]
    upper = rows < cols  # each symmetric pair once
    rows, cols, vals = rows[upper], cols[upper], vals[upper]

    us, vs, ws = [], [], []
    neg = vals < 0
    # same-layer edges for negative entries (standard Laplacian part)
    us += [rows[neg], rows[neg] + n]
    vs += [cols[neg], cols[neg] + n]
    ws += [-vals[neg], -vals[neg]]
    # cross-layer edges for positive entries
    pos = vals > 0
    us += [rows[pos], cols[pos]]
    vs += [cols[pos] + n, rows[pos] + n]
    ws += [vals[pos], vals[pos]]
    # slack ties the two layers
    Md = sp.csr_matrix(M)
    slack = Md.diagonal() - (np.asarray(abs(Md).sum(axis=1)).ravel()
                             - np.abs(Md.diagonal()))
    slack = np.maximum(slack, 0.0)
    has_slack = slack > 1e-14 * np.maximum(Md.diagonal(), 1.0)
    idx = np.nonzero(has_slack)[0]
    us.append(idx)
    vs.append(idx + n)
    ws.append(slack[idx] / 2.0)

    return MultiGraph(2 * n,
                      np.concatenate([np.asarray(a, dtype=np.int64)
                                      for a in us]),
                      np.concatenate([np.asarray(a, dtype=np.int64)
                                      for a in vs]),
                      np.concatenate([np.asarray(a, dtype=np.float64)
                                      for a in ws]),
                      validate=False)


class SDDSolver:
    """Solve ``M x = b`` for SDD ``M`` via one Laplacian factorization.

    For a *nonsingular* SDD matrix (some slack or positive entry in
    each irreducible block) the double cover is connected and the
    answer is unique.  Laplacian inputs (zero slack, no positive
    entries) are detected and routed to :class:`LaplacianSolver`
    directly, returning the pseudo-inverse solution.
    """

    def __init__(self, M, options: SolverOptions | None = None,
                 seed=None) -> None:
        M = sp.csr_matrix(M)
        self.n = M.shape[0]
        self.M = M
        cover = gremban_cover(M)
        if is_connected(cover):
            self._mode = "cover"
            self._solver = LaplacianSolver(cover, options=options,
                                           seed=seed)
        else:
            # Layers decouple: M is (block) Laplacian; solve directly.
            from repro.graphs.conversions import from_scipy_laplacian

            self._mode = "laplacian"
            self._solver = LaplacianSolver(from_scipy_laplacian(M),
                                           options=options, seed=seed)

    def solve(self, b: np.ndarray, eps: float = 1e-8) -> np.ndarray:
        """``M⁻¹ b`` (``M⁺ b`` in the singular case) via the Gremban
        double cover's Laplacian solve."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.n,):
            raise ReproError(f"b must have shape ({self.n},)")
        if self._mode == "laplacian":
            return self._solver.solve(b, eps=eps)
        z = self._solver.solve(np.concatenate([b, -b]), eps=eps)
        return 0.5 * (z[: self.n] - z[self.n:])


def solve_sdd(M, b: np.ndarray, eps: float = 1e-8,
              options: SolverOptions | None = None, seed=None
              ) -> np.ndarray:
    """One-shot ``M⁻¹ b`` (or ``M⁺ b``) for SDD ``M``."""
    return SDDSolver(M, options=options, seed=seed).solve(b, eps=eps)
