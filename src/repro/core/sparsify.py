"""Spectral sparsification by effective-resistance sampling [SS11].

The paper's selling point is that its solver *avoids* needing
sparsifiers; but with the solver in hand, the classic Spielman–
Srivastava sparsifier becomes a few lines — sample
``q = O(n log n / ε²)`` edges with probability proportional to
``w(e)·R_eff(e)`` (= leverage scores) and reweight by the inverse
probability.  Included as the natural "application of the solver to
the thing it bypassed", and as a second, independently-checkable use
of the Section 6 resistance machinery.
"""

from __future__ import annotations

import math

import numpy as np

from repro.config import SolverOptions
from repro.errors import ReproError
from repro.graphs.multigraph import MultiGraph
from repro.graphs.validation import require_connected
from repro.rng import as_generator
from repro.sampling.alias import AliasTable

__all__ = ["spectral_sparsify"]


def spectral_sparsify(graph: MultiGraph,
                      eps: float = 0.5,
                      oversample: float = 4.0,
                      leverage: np.ndarray | None = None,
                      exact_leverage: bool = False,
                      options: SolverOptions | None = None,
                      seed=None) -> MultiGraph:
    """``H`` with ``O(n log n / ε²)`` edges and ``L_H ≈_ε L_G`` whp.

    Parameters
    ----------
    eps:
        Target Loewner accuracy.
    oversample:
        Constant in front of ``n log n / ε²`` samples.
    leverage:
        Optional precomputed per-edge leverage scores.  Default:
        JL-sketch estimates via the solver
        (:class:`repro.apps.resistance.ResistanceOracle`);
        ``exact_leverage=True`` uses the dense oracle (tests).
    """
    if not 0 < eps < 1:
        raise ReproError(f"need 0 < eps < 1, got {eps}")
    require_connected(graph)
    rng = as_generator(seed)

    if leverage is None:
        if exact_leverage:
            from repro.core.boundedness import leverage_scores

            # leverage_scores is per logical copy; sampling reweights
            # whole groups by their total weight, so scale back to the
            # group-total leverage w·R_eff (= per-copy × mult).
            leverage = leverage_scores(graph) * graph.multiplicities()
        else:
            from repro.apps.resistance import ResistanceOracle

            oracle = ResistanceOracle(graph, gamma=min(0.5, eps),
                                      options=options, seed=rng)
            leverage = oracle.leverage_scores()
    leverage = np.maximum(np.asarray(leverage, dtype=np.float64), 1e-12)

    n = graph.n
    q = max(n, int(math.ceil(oversample * n * math.log(max(n, 2))
                             / (eps * eps))))
    probs = leverage / leverage.sum()
    table = AliasTable(probs)
    picks = table.sample(q, seed=rng)
    counts = np.bincount(picks, minlength=graph.m)
    keep = counts > 0
    # importance reweighting: each sample contributes w_e / (q p_e)
    new_w = graph.w[keep] * counts[keep] / (q * probs[keep])
    return MultiGraph(n, graph.u[keep], graph.v[keep], new_w,
                      validate=False)
