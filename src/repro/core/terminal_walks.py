"""``TerminalWalks`` — Algorithm 4: sparse Schur complements by walks.

For every multi-edge ``e = {u, v}``, launch one random walk from each
endpoint and run it until it hits the terminal set ``C``; splice
``W(e) = W₁(e) + e + W₂(e)`` and, when the two terminals differ, emit a
multi-edge ``f_e = {c₁, c₂}`` with weight

    ``w(f_e) = 1 / Σ_{f ∈ W(e)} 1/w(f)``

— the series-resistance composition of the walk.  Key guarantees:

* Lemma 5.1 — unbiased: ``E[L_H] = SC(L_G, C)``.
* Lemma 5.2 — each ``f_e`` stays α-bounded w.r.t. the *original* ``L``
  (effective resistance obeys the triangle inequality, Lemma 5.3).
* Lemma 5.4 — ``H`` has at most ``m`` multi-edges; when ``V∖C`` is 5-DD
  the total walk length is ``O(m)`` and the maximum ``O(log m)`` whp,
  so everything runs in ``O(m)`` work / ``O(log m)`` depth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError
from repro.graphs.multigraph import MultiGraph
from repro.pram import charge
from repro.pram import primitives as P
from repro.rng import as_generator
from repro.sampling.walks import WalkEngine

__all__ = ["terminal_walks", "TerminalWalkStats"]


@dataclass(frozen=True)
class TerminalWalkStats:
    """Diagnostics matching Lemma 5.4's quantities."""

    total_steps: int
    max_walk_length: int
    mean_walk_length: float
    edges_in: int
    edges_out: int
    self_loops_dropped: int


def terminal_walks(graph: MultiGraph,
                   C: np.ndarray,
                   seed=None,
                   max_steps: int = 10_000,
                   return_stats: bool = False
                   ) -> MultiGraph | tuple[MultiGraph, TerminalWalkStats]:
    """Sample a sparse approximation to ``SC(L_G, C)``.

    Parameters
    ----------
    graph:
        Connected multigraph (global vertex ids).
    C:
        Terminal vertex ids (the complement of the set being
        eliminated).  Must be non-trivial: non-empty, and the walks
        must be able to reach it.
    seed, max_steps:
        Randomness and the safety cap of the walk engine.
    return_stats:
        Also return a :class:`TerminalWalkStats`.

    Returns
    -------
    ``H`` — a multigraph on the *same global id space* whose edges touch
    only ``C`` vertices, with at most ``graph.m`` multi-edges; and
    optionally the stats.
    """
    C = np.asarray(C, dtype=np.int64)
    if C.size == 0:
        raise SamplingError("terminal set C must be non-empty")
    is_terminal = np.zeros(graph.n, dtype=bool)
    is_terminal[C] = True

    m = graph.m
    if m == 0:
        empty = MultiGraph(graph.n, np.empty(0, np.int64),
                           np.empty(0, np.int64), np.empty(0, np.float64),
                           validate=False)
        stats = TerminalWalkStats(0, 0, 0.0, 0, 0, 0)
        return (empty, stats) if return_stats else empty

    rng = as_generator(seed)
    engine = WalkEngine(graph, is_terminal)
    # One walker per endpoint: walkers [0..m) start at u, [m..2m) at v.
    starts = np.concatenate([graph.u, graph.v])
    result = engine.run(starts, seed=rng, max_steps=max_steps)

    c1 = result.terminal[:m]
    c2 = result.terminal[m:]
    # Series resistance of W(e) = W1 + e + W2.
    resistance = 1.0 / graph.w + result.resistance[:m] + result.resistance[m:]
    keep = c1 != c2
    H = MultiGraph(graph.n, c1[keep], c2[keep], 1.0 / resistance[keep],
                   validate=False)
    charge(*P.map_cost(m), label="terminal_walks_combine")

    if return_stats:
        lengths = result.length[:m] + result.length[m:]
        stats = TerminalWalkStats(
            total_steps=int(result.length.sum()),
            max_walk_length=int(lengths.max(initial=0)),
            mean_walk_length=float(lengths.mean()) if m else 0.0,
            edges_in=m,
            edges_out=int(keep.sum()),
            self_loops_dropped=int(m - keep.sum()))
        return H, stats
    return H
