"""``TerminalWalks`` — Algorithm 4: sparse Schur complements by walks.

For every logical multi-edge ``e = {u, v}``, launch one random walk
from each endpoint and run it until it hits the terminal set ``C``;
splice ``W(e) = W₁(e) + e + W₂(e)`` and, when the two terminals differ,
emit a multi-edge ``f_e = {c₁, c₂}`` with weight

    ``w(f_e) = 1 / Σ_{f ∈ W(e)} 1/w(f)``

— the series-resistance composition of the walk.  Key guarantees:

* Lemma 5.1 — unbiased: ``E[L_H] = SC(L_G, C)``.
* Lemma 5.2 — each ``f_e`` stays α-bounded w.r.t. the *original* ``L``
  (effective resistance obeys the triangle inequality, Lemma 5.3).
* Lemma 5.4 — ``H`` has at most ``m`` multi-edges; when ``V∖C`` is 5-DD
  the total walk length is ``O(m)`` and the maximum ``O(log m)`` whp,
  so everything runs in ``O(m)`` work / ``O(log m)`` depth.

Hot-path structure (see DESIGN.md): an edge group with *both* endpoints
in ``C`` has a deterministic outcome — both walks are empty, so every
one of its logical copies re-emits itself verbatim.  Such groups pass
through compactly (arrays untouched, multiplicity preserved) and launch
no walkers at all.  Only groups with an endpoint in ``V∖C`` expand, one
walker pair per logical copy; their emitted edges are explicit
(``mult = 1``) because each carries its own sampled resistance.  The
walkers sample from the engine's interior-restricted CSR — the full
``O(m/α)``-sized split graph is never materialised anywhere.

Coalesced inputs (DESIGN.md §11): when the incremental store merges a
round's emitted parallels, a later round sees one group ``(Σw_i,
mult=k)`` where the uncoalesced realisation held ``k`` explicit edges.
Expansion is unchanged — ``k`` walker pairs launch either way, so
Lemma 5.4's logical edge accounting is untouched — but each copy's
base resistance becomes ``k/Σw_i``, the conditional *mean* of the
individual ``1/w_i`` under weight-proportional choice.  Lemma 5.1's
unbiasedness therefore survives coalescing (with strictly smaller
variance per splice term); realised walks differ from the uncoalesced
run distributionally only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SamplingError
from repro.graphs.multigraph import MultiGraph
from repro.pram import charge, ledger_active
from repro.pram import primitives as P
from repro.rng import as_generator
from repro.sampling.walks import WalkEngine

__all__ = ["terminal_walks", "TerminalWalkStats"]


@dataclass(frozen=True)
class TerminalWalkStats:
    """Diagnostics matching Lemma 5.4's quantities.

    ``edges_in``/``edges_out`` count *logical* multi-edges.  The
    ``*_nbytes`` fields record the transient memory this invocation
    actually touched (restricted CSR + live walker state) for the
    hot-path benchmarks.
    """

    total_steps: int
    max_walk_length: int
    mean_walk_length: float
    edges_in: int
    edges_out: int
    self_loops_dropped: int
    walkers: int = 0
    csr_nbytes: int = 0
    walker_nbytes: int = 0
    #: Stored edge groups that passed through verbatim (both endpoints
    #: terminal) — the prefix of the output's edge arrays.  Callers
    #: maintaining an incremental CSR use it to locate the emitted
    #: suffix.
    passthrough_stored: int = 0


def terminal_walks(graph: MultiGraph,
                   C: np.ndarray,
                   seed=None,
                   max_steps: int = 10_000,
                   return_stats: bool = False,
                   legacy: bool = False,
                   engine: WalkEngine | None = None,
                   ctx=None,
                   sampler: str | None = None
                   ) -> MultiGraph | tuple[MultiGraph, TerminalWalkStats]:
    """Sample a sparse approximation to ``SC(L_G, C)``.

    Parameters
    ----------
    graph:
        Connected multigraph (global vertex ids); implicit
        multiplicities are consumed without expansion.
    C:
        Terminal vertex ids (the complement of the set being
        eliminated).  Must be non-trivial: non-empty, and the walks
        must be able to reach it.
    seed, max_steps:
        Randomness and the safety cap of the walk engine.
    return_stats:
        Also return a :class:`TerminalWalkStats`.
    legacy:
        Reproduce the seed hot path exactly — one walker per endpoint
        of *every* stored edge, full (unrestricted) CSR, uncompacted
        stepping.  Requires an explicit graph (``mult is None``).
        Benchmark baselines only.
    engine:
        Prebuilt :class:`WalkEngine` over ``graph``'s current edges
        with terminals ``C`` (e.g. from an incrementally maintained
        restricted CSR).  ``None`` builds one from scratch.
    ctx:
        Optional :class:`repro.pram.ExecutionContext`.  When given, the
        walkers step in deterministic disjoint chunks (one spawned RNG
        stream per chunk) on the context's backend — serial, thread
        pool, or shared-memory process pool — and results are
        bit-identical for a fixed seed regardless of backend and
        worker count.  ``None`` keeps the single-stream serial
        stepping.
    sampler:
        Row sampler for a freshly built engine: ``"alias"`` (per-row
        alias planes, O(1)/query — Lemma 2.6) or ``"bisect"`` (global
        cumulative-weight bisection).  ``None`` consults
        ``REPRO_SAMPLER`` lazily (default ``"bisect"``).  Ignored when
        ``engine`` is supplied (the engine already carries its
        sampler); the ``legacy`` path always bisects, mirroring the
        seed.  Fixed seed + fixed sampler ⇒ bit-identical output; the
        two samplers consume the RNG stream through different maps, so
        cross-sampler agreement is distributional (DESIGN.md §8).

    Returns
    -------
    ``H`` — a multigraph on the *same global id space* whose edges touch
    only ``C`` vertices, with at most ``graph.m_logical`` logical
    multi-edges; and optionally the stats.
    """
    C = np.asarray(C, dtype=np.int64)
    if C.size == 0:
        raise SamplingError("terminal set C must be non-empty")
    is_terminal = np.zeros(graph.n, dtype=bool)
    is_terminal[C] = True

    if graph.m == 0:
        empty = MultiGraph(graph.n, np.empty(0, np.int64),
                           np.empty(0, np.int64), np.empty(0, np.float64),
                           validate=False)
        stats = TerminalWalkStats(0, 0, 0.0, 0, 0, 0)
        return (empty, stats) if return_stats else empty

    rng = as_generator(seed)
    if legacy:
        if graph.mult is not None:
            raise SamplingError(
                "legacy terminal_walks requires an explicit (materialised) "
                "graph")
        return _terminal_walks_legacy(graph, is_terminal, rng, max_steps,
                                      return_stats)

    # Groups entirely inside C pass through verbatim: both walks are
    # empty, so each logical copy deterministically re-emits itself.
    passthrough = is_terminal[graph.u] & is_terminal[graph.v]
    widx = np.nonzero(~passthrough)[0]
    mult = graph.multiplicities()
    m_logical = graph.m_logical
    if ledger_active():
        charge(*P.map_cost(graph.m), label="terminal_walks_classify")

    pu = graph.u[passthrough]
    pv = graph.v[passthrough]
    pw = graph.w[passthrough]
    pm = None if graph.mult is None else graph.mult[passthrough]

    if widx.size == 0:
        H = MultiGraph(graph.n, pu, pv, pw, mult=pm, validate=False)
        if return_stats:
            stats = TerminalWalkStats(
                total_steps=0, max_walk_length=0, mean_walk_length=0.0,
                edges_in=m_logical, edges_out=m_logical,
                self_loops_dropped=0, passthrough_stored=pu.size)
            return H, stats
        return H

    # Expand walk groups per logical copy: walkers [0..mw) start at u,
    # [mw..2mw) at v, copy j of group i adjacent in both halves.  Only
    # `starts` and the per-copy base resistances survive into the
    # stepping loop — the u/v expansions are not kept alive.
    k = mult[widx]
    base_res = np.repeat(k / graph.w[widx], k)  # 1/w_copy = mult/w
    mw = base_res.size
    starts = np.concatenate([np.repeat(graph.u[widx], k),
                             np.repeat(graph.v[widx], k)])
    if engine is None:
        engine = WalkEngine(graph, is_terminal, sampler=sampler)
    if ctx is not None:
        result = engine.run_chunked(starts, seed=rng, max_steps=max_steps,
                                    ctx=ctx)
    else:
        result = engine.run(starts, seed=rng, max_steps=max_steps)

    c1 = result.terminal[:mw]
    c2 = result.terminal[mw:]
    # Series resistance of W(e) = W1 + e + W2.
    resistance = base_res + result.resistance[:mw] + result.resistance[mw:]
    keep = c1 != c2
    H = MultiGraph(graph.n,
                   np.concatenate([pu, c1[keep]]),
                   np.concatenate([pv, c2[keep]]),
                   np.concatenate([pw, 1.0 / resistance[keep]]),
                   mult=None if pm is None
                   else np.concatenate([pm, np.ones(int(keep.sum()),
                                                    dtype=np.int32)]),
                   validate=False)
    if ledger_active():
        charge(*P.map_cost(mw), label="terminal_walks_combine")

    if return_stats:
        lengths = result.length[:mw] + result.length[mw:]
        kept = int(keep.sum())
        pass_logical = m_logical - mw
        stats = TerminalWalkStats(
            total_steps=int(result.length.sum()),
            max_walk_length=int(lengths.max(initial=0)),
            mean_walk_length=float(lengths.sum()) / m_logical,
            edges_in=m_logical,
            edges_out=pass_logical + kept,
            self_loops_dropped=mw - kept,
            walkers=2 * mw,
            csr_nbytes=engine.adj.nbytes,
            walker_nbytes=2 * mw * engine.state_nbytes_per_walker,
            passthrough_stored=pu.size)
        return H, stats
    return H


def _terminal_walks_legacy(graph: MultiGraph, is_terminal: np.ndarray,
                           rng, max_steps: int, return_stats: bool
                           ) -> MultiGraph | tuple[MultiGraph,
                                                   TerminalWalkStats]:
    """The seed hot path: every stored edge launches two walkers.

    Always bisects — the baseline reproduces the seed realisation
    regardless of the ambient ``REPRO_SAMPLER``.
    """
    m = graph.m
    engine = WalkEngine(graph, is_terminal, restricted=False,
                        sampler="bisect")
    starts = np.concatenate([graph.u, graph.v])
    result = engine.run(starts, seed=rng, max_steps=max_steps,
                        compact=False)

    c1 = result.terminal[:m]
    c2 = result.terminal[m:]
    resistance = 1.0 / graph.w + result.resistance[:m] + result.resistance[m:]
    keep = c1 != c2
    H = MultiGraph(graph.n, c1[keep], c2[keep], 1.0 / resistance[keep],
                   validate=False)
    if ledger_active():
        charge(*P.map_cost(m), label="terminal_walks_combine")

    if return_stats:
        lengths = result.length[:m] + result.length[m:]
        stats = TerminalWalkStats(
            total_steps=int(result.length.sum()),
            max_walk_length=int(lengths.max(initial=0)),
            mean_walk_length=float(lengths.mean()) if m else 0.0,
            edges_in=m,
            edges_out=int(keep.sum()),
            self_loops_dropped=int(m - keep.sum()),
            walkers=2 * m,
            csr_nbytes=engine.adj.nbytes,
            walker_nbytes=2 * m * engine.state_nbytes_per_walker)
        return H, stats
    return H
