"""``ApproxSchur`` — Algorithm 6 (Theorem 7.1).

Computes a sparse ε-approximation to the Schur complement
``SC(L_G, C)``: repeatedly pick a 5-DD subset ``F_k`` *of the induced
subgraph on the not-yet-eliminated interior* ``U_{k-1}``, and replace
the graph by terminal walks onto everything except ``F_k``.  After
``d = O(log |V∖C|)`` rounds the interior is gone and the surviving
graph ``G_S`` satisfies, whp,

    ``L_{G_S} ≈_ε SC(L_G, C)``,    ``m(G_S) ≤ m``,

provided the input multi-edges are α-bounded for
``α⁻¹ = Θ(ε⁻² log² n)``.  Note the sharper α compared to the solver:
here the approximation must hold to ε, not just a constant.

The α-split is *implicit* (Lemma 3.2 via multiplicities, DESIGN.md):
the working graph stays O(m)-sized groups instead of O(m/α) rows, and
each round's rebuild — degrees, interior masks, the walk engine's
restricted CSR — is linear in the stored groups, not the logical edge
count.  ``legacy=True`` reruns the seed hot path (materialised split,
full CSR per round, uncompacted walkers) for benchmarking.

Paper-notation note (documented in DESIGN.md): Algorithm 6's line 5
writes ``C_k ← C_{k-1} ∖ F_k``; the consistent reading — used in the
Theorem 7.1 proof — is that round ``k``'s walks terminate on all
*current* vertices except ``F_k``.  A 5-DD subset of the induced
subgraph ``G[U]`` is 5-DD in the whole graph (its internal degree is
unchanged while its total degree only grows), so Lemma 5.4's short-walk
guarantee still applies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.config import SolverOptions, default_options
from repro.core.boundedness import naive_split
from repro.core.dd_subset import five_dd_subset
from repro.core.terminal_walks import terminal_walks
from repro.errors import FactorizationError, SamplingError
from repro.graphs.multigraph import MultiGraph
from repro.rng import as_generator
from repro.sampling.walks import WalkEngine

__all__ = ["approx_schur", "schur_alpha_inverse", "ApproxSchurReport"]


def schur_alpha_inverse(n: int, eps: float, scale: float = 0.25) -> int:
    """``α⁻¹ = Θ(ε⁻² log² n)`` (Theorem 7.1)."""
    if not 0 < eps < 1:
        raise ValueError(f"need 0 < eps < 1, got {eps}")
    log2n = math.log2(max(n, 2))
    return max(1, int(round(scale * log2n * log2n / (eps * eps))))


@dataclass
class ApproxSchurReport:
    """Diagnostics for one ``ApproxSchur`` run.

    ``edges_per_round`` counts *logical* multi-edges (the paper's
    ``m``); ``stored_edges_per_round`` counts the compact groups
    actually held.  ``peak_edge_bytes`` is the largest per-round
    edge-array footprint: working graph + its successor + the walk
    engine's CSR and walker state.
    """

    graph: MultiGraph
    rounds: int
    edges_per_round: list[int]
    interior_per_round: list[int]
    stored_edges_per_round: list[int] = field(default_factory=list)
    peak_edge_bytes: int = 0
    total_walkers: int = 0
    #: Whether emitted edges were coalesced in the incremental store
    #: (``SolverOptions.coalesce_emitted`` / ``REPRO_COALESCE``).
    coalesced: bool = False
    #: Emitted slots merged away by coalescing (batch duplicates +
    #: live-slot folds); 0 when not coalescing.
    emitted_slots_saved: int = 0
    #: Alias-table slots rebuilt after the one-time prime (the
    #: per-round churn cost coalescing shrinks); 0 without the store
    #: or under the bisect sampler.
    alias_rebuilt_slots: int = 0


def approx_schur(graph: MultiGraph,
                 C: np.ndarray,
                 eps: float = 0.5,
                 seed=None,
                 options: SolverOptions | None = None,
                 split: bool = True,
                 alpha_scale: float = 0.25,
                 return_report: bool = False,
                 legacy: bool = False,
                 incremental: bool | None = None
                 ) -> MultiGraph | ApproxSchurReport:
    """Sparse ε-approximation of ``SC(L_G, C)``.

    Parameters
    ----------
    graph:
        Connected multigraph.
    C:
        Terminal vertex ids (non-trivial: ``0 < |C| < n``).
    eps:
        Target Loewner accuracy ``L_{G_S} ≈_ε SC(L_G, C)``.
    split:
        Apply Lemma 3.2 splitting for ``α⁻¹ = Θ(ε⁻² log² n)`` first.
        Pass ``False`` when the input is already suitably α-bounded.
    alpha_scale:
        Constant in front of ``ε⁻² log² n`` (benchmark E11 sweeps it).
    legacy:
        Benchmark baseline: materialise the split and run the seed hot
        path (full per-round CSR, one walker per stored edge,
        uncompacted stepping).  Statistically equivalent, O(m/α)
        memory.
    incremental:
        Maintain the walk engine's restricted CSR incrementally across
        rounds (delete eliminated-``F`` rows, insert emitted edges —
        :class:`repro.sampling.IncrementalWalkCSR`) instead of
        rebuilding it per round.  The extracted views are bit-identical
        to from-scratch builds, so the output is unchanged; ``False``
        re-runs the per-round rebuild for comparison.  ``None``
        (default) follows ``options.incremental_csr``.  With the store
        active, ``options.coalesce_emitted`` / ``REPRO_COALESCE``
        additionally merges each round's emitted parallel edges per
        ``{u, v}`` pair (Laplacian preserved exactly, walks change
        distributionally — DESIGN.md §11); the legacy baseline never
        coalesces.

    The walker batches step through ``options``' execution context in
    deterministic disjoint chunks, so for a fixed seed the output is
    bit-identical no matter which backend (serial / thread / process)
    or worker count runs them.

    Returns
    -------
    The approximating multigraph (edges only among ``C``), on the same
    global id space; or an :class:`ApproxSchurReport` when requested.
    """
    opts = options or default_options()
    rng = as_generator(seed if seed is not None else opts.seed)
    ctx = opts.execution()
    sampler = opts.resolve_sampler()
    C = np.unique(np.asarray(C, dtype=np.int64))
    if C.size == 0 or C.size >= graph.n:
        raise SamplingError("C must be a non-trivial vertex subset")
    if C.min() < 0 or C.max() >= graph.n:
        raise SamplingError("C contains out-of-range vertex ids")

    work = naive_split(graph, 1.0 / schur_alpha_inverse(
        graph.n, eps, alpha_scale), materialize=legacy) if split else graph
    if incremental is None:
        incremental = opts.incremental_csr
    inc = None
    if incremental and not legacy:
        from repro.sampling.inc_csr import IncrementalWalkCSR

        inc = IncrementalWalkCSR(work)
    # Coalescing is a property of the incremental store; without the
    # store (or on the legacy baseline) the flag is structurally inert.
    coalesce = inc is not None and opts.resolve_coalesce()

    in_C = np.zeros(graph.n, dtype=bool)
    in_C[C] = True
    U = np.nonzero(~in_C)[0]
    if inc is not None and sampler == "alias":
        # Only interior rows can ever be eliminated (and hence walked
        # from): narrow the one-time alias prime to them.
        inc.prime_alias(U)
    active = np.arange(graph.n, dtype=np.int64)

    edges_per_round = [work.m_logical]
    stored_per_round = [work.m]
    interior_per_round = [U.size]
    peak_bytes = work.edge_nbytes
    total_walkers = 0
    rounds = 0
    max_rounds = int(np.ceil(np.log(max(U.size, 2))
                             / np.log(40.0 / 39.0))) + 10
    while U.size > 0:
        if rounds >= max_rounds:
            raise FactorizationError(
                "ApproxSchur exceeded its round budget (Lemma 3.4 "
                "guarantees a constant-fraction shrink per round)")
        # 5DDSubset measures degrees within the induced interior
        # subgraph (Algorithm 6 line 5).  With the incremental store
        # that subgraph is never rebuilt: a degree oracle gathers only
        # the interior rows from the store's epoch index —
        # O(deg U + churn) instead of O(stored edges) — with degrees
        # bit-identical to the rebuild (InteriorDegreeOracle docstring).
        if inc is not None:
            scan = inc.interior_degrees(U)
            scan_bytes = scan.nbytes
        else:
            member = np.zeros(graph.n, dtype=bool)
            member[U] = True
            interior_mask = member[work.u] & member[work.v]
            scan = work.edge_subset(interior_mask)
            scan_bytes = scan.edge_nbytes
        deg_U = scan.weighted_degrees()
        trivially_dd = U[deg_U[U] == 0]  # no interior edges: always 5-DD
        if trivially_dd.size == U.size:
            F = U
        else:
            F_sampled = five_dd_subset(scan, active=U[deg_U[U] > 0],
                                       seed=rng, options=opts)
            F = np.union1d(F_sampled, trivially_dd)
        terminals = np.setdiff1d(active, F)
        # The scan structure only exists to pick F: release it before
        # the walk phase so the two big per-round footprints (5DD scan
        # vs walk emission) never coexist.
        dd_bytes = work.edge_nbytes + scan_bytes
        scan = None
        engine = None
        if inc is not None:
            is_term = np.zeros(graph.n, dtype=bool)
            is_term[terminals] = True
            view, slot_mult = inc.restricted_view(F)
            planes = inc.alias_planes(F, view) if sampler == "alias" \
                else None
            engine = WalkEngine.from_adjacency(view, slot_mult, is_term,
                                               sampler=sampler,
                                               alias_planes=planes)
        nxt, stats = terminal_walks(work, terminals, seed=rng,
                                    max_steps=opts.max_walk_steps,
                                    return_stats=True, legacy=legacy,
                                    engine=engine, ctx=ctx,
                                    sampler=sampler)
        if inc is not None:
            p = stats.passthrough_stored
            inc.advance(F, nxt.u[p:], nxt.v[p:], nxt.w[p:],
                        None if nxt.mult is None else nxt.mult[p:],
                        coalesce=coalesce)
            if coalesce:
                # The store merged duplicates (and possibly folded
                # groups into live slots): the next round's working
                # graph is the store's live image, not the raw
                # emission.  Logical edge counts are preserved —
                # multiplicities sum.
                nxt = inc.live_graph()
        inc_bytes = 0 if inc is None else inc.nbytes
        walk_bytes = (work.edge_nbytes + stats.csr_nbytes
                      + stats.walker_nbytes + nxt.edge_nbytes + inc_bytes)
        peak_bytes = max(peak_bytes, dd_bytes + inc_bytes, walk_bytes)
        total_walkers += stats.walkers
        work = nxt
        active = terminals
        U = np.setdiff1d(U, F)
        rounds += 1
        edges_per_round.append(work.m_logical)
        stored_per_round.append(work.m)
        interior_per_round.append(U.size)

    if return_report:
        return ApproxSchurReport(
            graph=work, rounds=rounds,
            edges_per_round=edges_per_round,
            interior_per_round=interior_per_round,
            stored_edges_per_round=stored_per_round,
            peak_edge_bytes=peak_bytes,
            total_walkers=total_walkers,
            coalesced=coalesce,
            emitted_slots_saved=0 if inc is None
            else inc.emitted_slots_saved,
            alias_rebuilt_slots=0 if inc is None
            else inc.alias_rebuilt_slots)
    return work
