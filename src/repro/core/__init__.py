"""The paper's primary contribution: the parallel Laplacian solver.

Module ↔ paper map:

================  =============================================
Module            Paper object
================  =============================================
boundedness       α-bounded multi-edges, Lemma 3.2 splitting
lev_est           Lemma 3.3 / Section 6 leverage-score splitting
dd_subset         ``5DDSubset`` (Algorithm 3, Lemma 3.4)
terminal_walks    ``TerminalWalks`` (Algorithm 4, Lemmas 5.1-5.4)
chain             the ``(G^(k); F_k)`` chain, ``D^(k)``/``U^(k)``
block_cholesky    ``BlockCholesky`` (Algorithm 1, Theorem 3.9)
apply_cholesky    ``ApplyCholesky`` (Algorithm 2, Theorem 3.10)
richardson        ``PreconRichardson`` (Algorithm 5, Theorem 3.8)
solver            Theorems 1.1 / 1.2 end-to-end solver
schur             ``ApproxSchur`` (Algorithm 6, Theorem 7.1)
================  =============================================
"""

from repro.core.boundedness import (
    leverage_scores,
    naive_split,
    is_alpha_bounded,
)
from repro.core.dd_subset import five_dd_subset, verify_five_dd
from repro.core.terminal_walks import terminal_walks
from repro.core.chain import CholeskyChain, Level
from repro.core.block_cholesky import block_cholesky
from repro.core.apply_cholesky import ApplyCholeskyOperator
from repro.core.richardson import preconditioned_richardson, RichardsonResult
from repro.core.solver import LaplacianSolver, solve_laplacian, SolveReport
from repro.core.schur import approx_schur
from repro.core.lev_est import leverage_overestimates, leverage_split
from repro.core.sdd import SDDSolver, solve_sdd, is_sdd, gremban_cover
from repro.core.sparsify import spectral_sparsify

__all__ = [
    "leverage_scores",
    "naive_split",
    "is_alpha_bounded",
    "five_dd_subset",
    "verify_five_dd",
    "terminal_walks",
    "CholeskyChain",
    "Level",
    "block_cholesky",
    "ApplyCholeskyOperator",
    "preconditioned_richardson",
    "RichardsonResult",
    "LaplacianSolver",
    "solve_laplacian",
    "SolveReport",
    "approx_schur",
    "leverage_overestimates",
    "leverage_split",
    "SDDSolver",
    "solve_sdd",
    "is_sdd",
    "gremban_cover",
    "spectral_sparsify",
]
