"""End-to-end Laplacian solver (Theorems 1.1 and 1.2).

Pipeline::

    input graph (connected, simple or multi)
      └─ α-bounded splitting          Lemma 3.2 (naive) / 3.3 (leverage)
          └─ BlockCholesky            Algorithm 1 / Theorem 3.9
              └─ ApplyCholesky = W    Algorithm 2 / Theorem 3.10, W ≈₁ L⁺
                  └─ PreconRichardson Algorithm 5 / Theorem 3.8
                      └─ x̃ with ‖x̃ − L⁺b‖_L ≤ ε ‖L⁺b‖_L

:class:`LaplacianSolver` separates the (randomised, one-off)
preprocessing from the (deterministic given the chain) per-right-hand-
side solves, so many ``b`` vectors can reuse one factorization — the
standard usage pattern for Laplacian primitives inside IPM loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
import scipy.sparse as sp

from repro.config import SolverOptions, default_options
from repro.core.apply_cholesky import ApplyCholeskyOperator
from repro.core.block_cholesky import block_cholesky
from repro.core.boundedness import naive_split
from repro.core.richardson import preconditioned_richardson
from repro.errors import (
    ConvergenceError,
    DimensionMismatchError,
    ReproError,
)
from repro.graphs.conversions import from_scipy_laplacian
from repro.graphs.laplacian import apply_laplacian
from repro.graphs.multigraph import MultiGraph
from repro.graphs.validation import require_connected
from repro.linalg.cg import conjugate_gradient
from repro.linalg.ops import project_out_ones
from repro.pram.faults import FaultLog, use_fault_log
from repro.rng import as_generator

__all__ = ["LaplacianSolver", "solve_laplacian", "SolveReport",
           "BlockSolveReport"]

Method = Literal["richardson", "pcg"]


@dataclass
class SolveReport:
    """Everything a caller may want to know about one solve."""

    x: np.ndarray
    iterations: int
    method: str
    target_eps: float
    residual_2norm: float
    chain_depth: int
    multiedges: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SolveReport(method={self.method!r}, "
                f"iterations={self.iterations}, "
                f"target_eps={self.target_eps:g}, "
                f"residual={self.residual_2norm:.3e})")


@dataclass
class BlockSolveReport:
    """Diagnostics for one blocked multi-RHS solve (``solve_many``)."""

    x: np.ndarray
    iterations: int
    per_column_iterations: np.ndarray | None
    method: str
    target_eps: np.ndarray
    residual_2norms: np.ndarray
    chain_depth: int
    multiedges: int
    #: Per-column solve path (``(k,)`` object array): ``"richardson"``
    #: / ``"pcg"`` for columns served by the primary method or the
    #: whole-block fallback, ``"pcg"`` / ``"dense"`` for columns that
    #: were quarantined after a numerical breakdown and escalated
    #: individually (DESIGN.md §9).
    column_status: np.ndarray | None = None
    #: Structured :class:`repro.pram.faults.FaultLog` of every
    #: injection and recovery action during this solve (retries, pool
    #: rebuilds, quarantines, escalations).  Empty when nothing
    #: happened.
    fault_log: object | None = None
    #: Resident size of the preconditioner chain's array payload in
    #: bytes (the exact footprint one shipped-solve shared segment
    #: holds; DESIGN.md §10).
    chain_nbytes: int = 0
    #: Per-level byte breakdown of :attr:`chain_nbytes` — one entry
    #: per chain level plus the final dense pseudo-inverse.
    chain_level_nbytes: tuple = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BlockSolveReport(method={self.method!r}, "
                f"k={self.x.shape[1] if self.x.ndim == 2 else 1}, "
                f"iterations={self.iterations}, "
                f"max_residual={self.residual_2norms.max(initial=0.0):.3e})")


class LaplacianSolver:
    """Reusable solver: factor once, solve many right-hand sides.

    Parameters
    ----------
    graph:
        Connected :class:`MultiGraph` (simple graphs are the common
        case; α-bounded multigraphs are accepted with
        ``options.splitting == "none"``).
    options:
        See :class:`repro.config.SolverOptions`; presets
        ``theorem_1_1_options()`` / ``theorem_1_2_options()`` match the
        paper's two headline configurations.
    seed:
        Seed/generator for all randomness (splitting, 5DDSubset,
        terminal walks).

    The randomised build and the blocked solve paths both dispatch
    through ``options``' execution context
    (:class:`repro.pram.ExecutionContext`): ``workers`` /
    ``REPRO_WORKERS`` and ``backend`` / ``REPRO_BACKEND`` pick the
    machinery (serial, thread pool, shared-memory process pool) but
    never the result — fixed seed ⇒ bit-identical factorizations and
    solutions (DESIGN.md §6–§7).  ``coalesce_emitted`` /
    ``REPRO_COALESCE`` additionally merges each elimination level's
    emitted parallel edges in the incremental walk store (smaller
    chain levels, same Laplacians; fixed seed + fixed coalesce setting
    keeps the bit-identical contract — DESIGN.md §11).
    """

    def __init__(self, graph: MultiGraph,
                 options: SolverOptions | None = None,
                 seed=None) -> None:
        if not isinstance(graph, MultiGraph):
            raise TypeError("graph must be a MultiGraph; use "
                            "solve_laplacian() for matrix inputs")
        options = options or default_options()
        require_connected(graph)
        #: The seed as given (``options.seed`` when the argument was
        #: ``None``) — what :meth:`cache_key` hashes.  A Generator
        #: argument is kept as-is but is not replayable, so it cannot
        #: be part of a cache identity.
        self.seed = seed if seed is not None else options.seed
        rng = as_generator(self.seed)
        self.graph = graph
        self.options = options

        #: Recovery actions taken while *building* the factorization
        #: (chunk retries, pool rebuilds, backend degradation); solve
        #: calls get their own per-call log on the report.
        self.build_fault_log = FaultLog()
        with use_fault_log(self.build_fault_log):
            alpha = options.alpha(graph.n)
            if options.splitting == "naive":
                self.multigraph = naive_split(graph, alpha)
            elif options.splitting == "leverage":
                from repro.core.lev_est import leverage_split
                self.multigraph = leverage_split(graph, alpha,
                                                 K=options.K(graph.n),
                                                 seed=rng, options=options)
            elif options.splitting == "none":
                self.multigraph = graph
            else:  # pragma: no cover - guarded by SolverOptions typing
                raise ReproError(f"unknown splitting {options.splitting!r}")

            self.chain = block_cholesky(self.multigraph, options, seed=rng,
                                        keep_graphs=options.keep_graphs)
        self.preconditioner = ApplyCholeskyOperator(self.chain)
        #: Execution context for the blocked solve paths (walker
        #: stepping inside ``block_cholesky`` already went through it).
        self.ctx = options.execution()
        self._L_csr = None
        self._shipment = None

    # -- shipped blocked solves (DESIGN.md §10) ------------------------------

    @property
    def shipment(self):
        """Lazy :class:`repro.pram.executor.SolveShipment` for this chain.

        Built on first use: serialises the factorization (plus the CSR
        Laplacian) into a host-side payload that ``run_shipped``
        publishes once per process-pool round as a shared-memory
        segment.  Owned by the solver — :meth:`close` unlinks it.
        """
        if self._shipment is None:
            from repro.pram.executor import SolveShipment
            if self._L_csr is None:
                from repro.graphs.laplacian import laplacian
                self._L_csr = laplacian(self.graph)
            arrays, chain_meta = self.chain.payload_arrays()
            arrays["L_data"] = self._L_csr.data
            arrays["L_indices"] = self._L_csr.indices
            arrays["L_indptr"] = self._L_csr.indptr
            meta = {"n": int(self.n), "m_edges": int(self.graph.m),
                    "chain": chain_meta}
            self._shipment = SolveShipment(
                self.ctx, arrays, meta,
                ship=self.options.ship_solves)
        return self._shipment

    def close(self) -> None:
        """Release the shipped-solve shared-memory segment, if any.

        Idempotent; the solver stays usable (a later shipped solve
        re-publishes the payload).  Also invoked on garbage collection,
        so ``live_segment_names()`` is empty once solvers go away.
        """
        if self._shipment is not None:
            self._shipment.close()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def cache_key(self) -> str:
        """Canonical serving-cache key for ``(graph, options, seed)``.

        Two solvers with equal keys build bit-identical chains (same
        canonical multigraph, same chain-affecting options, same seed),
        which is what lets :class:`repro.serve.ChainCache` substitute a
        resident chain for a fresh build.  Requires the seed to be an
        int or ``None`` — a live Generator is not replayable and
        raises ``TypeError``.
        """
        from repro.serve.keys import solver_cache_key
        return solver_cache_key(self.graph, self.options, self.seed)

    # -- solving -------------------------------------------------------------

    @property
    def n(self) -> int:
        """Vertex count of the input graph (RHS length)."""
        return self.graph.n

    def apply_L(self, x: np.ndarray) -> np.ndarray:
        """``L x`` from the *original* graph's edges (exact).

        Accepts ``(n,)`` or a blocked ``(n, k)``; the blocked path uses
        a cached CSR Laplacian so the product is one sparse×dense
        (BLAS-3-style) kernel.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            if self._L_csr is None:
                from repro.graphs.laplacian import laplacian
                self._L_csr = laplacian(self.graph)
            from repro.pram import charge, ledger_active
            from repro.pram import primitives as P
            if ledger_active():
                charge(*P.matvec_cost(self.graph.m * x.shape[1]),
                       label="apply_laplacian")
            return self._L_csr @ x
        return apply_laplacian(self.graph, x)

    def solve(self, b: np.ndarray, eps: float = 1e-6,
              method: Method = "richardson") -> np.ndarray:
        """ε-approximate ``L⁺ b`` (in the L-norm, Theorems 1.1/1.2)."""
        return self.solve_report(b, eps=eps, method=method).x

    def solve_report(self, b: np.ndarray, eps: float = 1e-6,
                     method: Method = "richardson") -> SolveReport:
        """Like :meth:`solve` but with iteration diagnostics.

        A single-column view of :meth:`solve_many_report` (one code
        path for the dispatch / divergence-fallback logic).
        """
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.n,):
            raise DimensionMismatchError(
                f"b must have shape ({self.n},), got {b.shape}")
        rep = self.solve_many_report(b, eps=eps, method=method)
        return SolveReport(x=rep.x, iterations=rep.iterations,
                           method=rep.method, target_eps=eps,
                           residual_2norm=float(rep.residual_2norms[0]),
                           chain_depth=rep.chain_depth,
                           multiedges=rep.multiedges)

    # -- blocked multi-RHS solving ------------------------------------------

    def solve_many(self, B: np.ndarray, eps: float | np.ndarray = 1e-6,
                   method: Method = "richardson") -> np.ndarray:
        """ε-approximate ``L⁺ B`` for ``k`` right-hand sides at once.

        The "factor once, solve many" path: one blocked outer iteration
        runs all columns against the shared factorization, so every
        operator apply is a sparse×dense-matrix (BLAS-3-style) product
        instead of ``k`` sequential matvecs.  ``eps`` may be a scalar
        or a length-``k`` array — each column converges at its own
        target and is compacted out of the active block once done.

        ``B`` of shape ``(n,)`` is accepted and round-trips as ``(n,)``;
        ``(n, k)`` returns ``(n, k)`` with columns aligned to inputs.
        """
        return self.solve_many_report(B, eps=eps, method=method).x

    def solve_many_report(self, B: np.ndarray,
                          eps: float | np.ndarray = 1e-6,
                          method: Method = "richardson"
                          ) -> BlockSolveReport:
        """Like :meth:`solve_many` but with per-column diagnostics."""
        B = np.asarray(B, dtype=np.float64)
        if B.ndim not in (1, 2) or B.shape[0] != self.n:
            raise DimensionMismatchError(
                f"B must have shape ({self.n},) or ({self.n}, k), "
                f"got {B.shape}")
        # A 1-D input passes through as-is: the iterative solvers
        # dispatch on ndim, so solve()/solve_report() delegating here
        # keeps the original single-vector hot path (and its
        # seed-faithful full a-priori budget — no early freeze).
        squeeze = B.ndim == 1
        k = 1 if squeeze else B.shape[1]
        if not squeeze and self._L_csr is None:
            # Build the cached CSR Laplacian before the column-chunked
            # solvers fan out, so concurrent apply_L calls from pool
            # threads don't each rebuild it.
            from repro.graphs.laplacian import laplacian
            self._L_csr = laplacian(self.graph)
        eps_col = np.broadcast_to(np.asarray(eps, dtype=np.float64),
                                  (k,)).copy()
        eps_arg = float(eps_col[0]) if squeeze else eps_col
        B = project_out_ones(B)
        per_col = None
        fault_log = FaultLog()
        status = np.full(k, "pcg" if method == "pcg" else "richardson",
                         dtype=object)
        broken = None
        # Shipped blocked solves (DESIGN.md §10): only the blocked
        # (2-D) whole-block paths ship; the 1-D hot path and the
        # per-column escalation CG stay in-process.  run() itself
        # no-ops unless the knob + backend + chunking line up.
        ship = None if squeeze else self.shipment
        with use_fault_log(fault_log):
            if method == "richardson":
                try:
                    res = preconditioned_richardson(
                        self.apply_L, self.preconditioner.apply, B,
                        delta=self.options.richardson_delta, eps=eps_arg,
                        ctx=self.ctx, ship=ship)
                    x, iters, per_col = res.x, res.iterations, \
                        res.per_column_iterations
                    broken = res.broken_columns
                    if broken is not None and broken.size:
                        # Quarantined columns (non-finite iterates,
                        # DESIGN.md §9): escalate just those through
                        # PCG while the healthy columns keep their
                        # Richardson solutions.
                        method = "richardson+pcg"
                        status[broken] = "pcg"
                        fault_log.record(
                            "escalate", kind="nan",
                            columns=tuple(int(c) for c in broken),
                            detail="richardson -> per-column pcg")
                        sub = conjugate_gradient(
                            self.apply_L, B[:, broken],
                            tol=eps_col[broken] / 10.0,
                            preconditioner=self.preconditioner.apply,
                            matvec_edges=self.graph.m, col_ids=broken)
                        x[:, broken] = sub.x
                        iters = max(iters, sub.iterations)
                        if per_col is not None and \
                                sub.per_column_iterations is not None:
                            per_col[broken] = sub.per_column_iterations
                        broken = sub.broken_columns
                except ConvergenceError:
                    # The chain came out worse than δ = 1 (possible at
                    # aggressively small splitting factors), or every
                    # column of a 1-D solve broke down.  PCG converges
                    # for any SPD preconditioner, just more slowly, so
                    # fall back rather than return garbage.  CG's
                    # tolerance is a 2-norm residual; aim an order of
                    # magnitude below the requested L-norm target.
                    method = "richardson->pcg"
                    status[:] = "pcg"
                    res = conjugate_gradient(
                        self.apply_L, B, tol=eps_arg / 10.0,
                        preconditioner=self.preconditioner.apply,
                        matvec_edges=self.graph.m, ctx=self.ctx,
                        ship=ship)
                    x, iters, per_col = res.x, res.iterations, \
                        res.per_column_iterations
                    broken = res.broken_columns
            elif method == "pcg":
                res = conjugate_gradient(
                    self.apply_L, B, tol=eps_arg,
                    preconditioner=self.preconditioner.apply,
                    matvec_edges=self.graph.m, ctx=self.ctx,
                    ship=ship)
                x, iters, per_col = res.x, res.iterations, \
                    res.per_column_iterations
                broken = res.broken_columns
            else:
                raise ReproError(f"unknown method {method!r}")
            # Last line of containment: any column that is still
            # non-finite (PCG escalation broke down too, or an
            # unpreconditioned path went bad) gets an exact dense
            # pseudo-inverse solve.  O(n³) — acceptable for the rare
            # quarantined stragglers, never the common path.
            X2 = x if x.ndim == 2 else x[:, None]
            B2 = B if B.ndim == 2 else B[:, None]
            bad = ~np.isfinite(X2).all(axis=0)
            if broken is not None and len(broken):
                bad[np.asarray(broken, dtype=np.int64)] = True
            bad_idx = np.flatnonzero(bad)
            if bad_idx.size:
                if self._L_csr is None:
                    from repro.graphs.laplacian import laplacian
                    self._L_csr = laplacian(self.graph)
                from repro.linalg.pinv import solve_dense_pseudo
                X2[:, bad_idx] = solve_dense_pseudo(self._L_csr,
                                                    B2[:, bad_idx])
                status[bad_idx] = "dense"
                method += "+dense"
                fault_log.record(
                    "escalate", kind="nan",
                    columns=tuple(int(c) for c in bad_idx),
                    detail="dense pseudo-inverse containment")
        residuals = np.atleast_1d(
            np.linalg.norm(self.apply_L(x) - B, axis=0))
        return BlockSolveReport(x=x, iterations=iters,
                                per_column_iterations=per_col,
                                method=method, target_eps=eps_col,
                                residual_2norms=residuals,
                                chain_depth=self.chain.d,
                                multiedges=self.multigraph.m_logical,
                                column_status=status,
                                fault_log=fault_log,
                                chain_nbytes=self.chain.nbytes,
                                chain_level_nbytes=tuple(
                                    self.chain.level_nbytes()))


def solve_laplacian(L_or_graph, b: np.ndarray, eps: float = 1e-6,
                    options: SolverOptions | None = None,
                    seed=None, method: Method = "richardson"
                    ) -> np.ndarray:
    """One-shot convenience wrapper.

    Accepts a :class:`MultiGraph`, a scipy sparse Laplacian, or a dense
    Laplacian ndarray.  For repeated solves against the same graph,
    construct a :class:`LaplacianSolver` once instead.
    """
    if isinstance(L_or_graph, MultiGraph):
        graph = L_or_graph
    elif sp.issparse(L_or_graph) or isinstance(L_or_graph, np.ndarray):
        graph = from_scipy_laplacian(L_or_graph)
    else:
        raise TypeError(f"unsupported input type {type(L_or_graph)!r}")
    solver = LaplacianSolver(graph, options=options, seed=seed)
    return solver.solve(b, eps=eps, method=method)
