"""End-to-end Laplacian solver (Theorems 1.1 and 1.2).

Pipeline::

    input graph (connected, simple or multi)
      └─ α-bounded splitting          Lemma 3.2 (naive) / 3.3 (leverage)
          └─ BlockCholesky            Algorithm 1 / Theorem 3.9
              └─ ApplyCholesky = W    Algorithm 2 / Theorem 3.10, W ≈₁ L⁺
                  └─ PreconRichardson Algorithm 5 / Theorem 3.8
                      └─ x̃ with ‖x̃ − L⁺b‖_L ≤ ε ‖L⁺b‖_L

:class:`LaplacianSolver` separates the (randomised, one-off)
preprocessing from the (deterministic given the chain) per-right-hand-
side solves, so many ``b`` vectors can reuse one factorization — the
standard usage pattern for Laplacian primitives inside IPM loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np
import scipy.sparse as sp

from repro.config import SolverOptions, default_options
from repro.core.apply_cholesky import ApplyCholeskyOperator
from repro.core.block_cholesky import block_cholesky
from repro.core.boundedness import naive_split
from repro.core.richardson import preconditioned_richardson
from repro.errors import (
    ConvergenceError,
    DimensionMismatchError,
    ReproError,
)
from repro.graphs.conversions import from_scipy_laplacian
from repro.graphs.laplacian import apply_laplacian
from repro.graphs.multigraph import MultiGraph
from repro.graphs.validation import require_connected
from repro.linalg.cg import conjugate_gradient
from repro.linalg.ops import project_out_ones, residual_norm
from repro.rng import as_generator

__all__ = ["LaplacianSolver", "solve_laplacian", "SolveReport"]

Method = Literal["richardson", "pcg"]


@dataclass
class SolveReport:
    """Everything a caller may want to know about one solve."""

    x: np.ndarray
    iterations: int
    method: str
    target_eps: float
    residual_2norm: float
    chain_depth: int
    multiedges: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SolveReport(method={self.method!r}, "
                f"iterations={self.iterations}, "
                f"target_eps={self.target_eps:g}, "
                f"residual={self.residual_2norm:.3e})")


class LaplacianSolver:
    """Reusable solver: factor once, solve many right-hand sides.

    Parameters
    ----------
    graph:
        Connected :class:`MultiGraph` (simple graphs are the common
        case; α-bounded multigraphs are accepted with
        ``options.splitting == "none"``).
    options:
        See :class:`repro.config.SolverOptions`; presets
        ``theorem_1_1_options()`` / ``theorem_1_2_options()`` match the
        paper's two headline configurations.
    seed:
        Seed/generator for all randomness (splitting, 5DDSubset,
        terminal walks).
    """

    def __init__(self, graph: MultiGraph,
                 options: SolverOptions | None = None,
                 seed=None) -> None:
        if not isinstance(graph, MultiGraph):
            raise TypeError("graph must be a MultiGraph; use "
                            "solve_laplacian() for matrix inputs")
        options = options or default_options()
        require_connected(graph)
        rng = as_generator(seed if seed is not None else options.seed)
        self.graph = graph
        self.options = options

        alpha = options.alpha(graph.n)
        if options.splitting == "naive":
            self.multigraph = naive_split(graph, alpha)
        elif options.splitting == "leverage":
            from repro.core.lev_est import leverage_split
            self.multigraph = leverage_split(graph, alpha,
                                             K=options.K(graph.n),
                                             seed=rng, options=options)
        elif options.splitting == "none":
            self.multigraph = graph
        else:  # pragma: no cover - guarded by SolverOptions typing
            raise ReproError(f"unknown splitting {options.splitting!r}")

        self.chain = block_cholesky(self.multigraph, options, seed=rng)
        self.preconditioner = ApplyCholeskyOperator(self.chain)

    # -- solving -------------------------------------------------------------

    @property
    def n(self) -> int:
        return self.graph.n

    def apply_L(self, x: np.ndarray) -> np.ndarray:
        """``L x`` from the *original* graph's edges (exact)."""
        return apply_laplacian(self.graph, x)

    def solve(self, b: np.ndarray, eps: float = 1e-6,
              method: Method = "richardson") -> np.ndarray:
        """ε-approximate ``L⁺ b`` (in the L-norm, Theorems 1.1/1.2)."""
        return self.solve_report(b, eps=eps, method=method).x

    def solve_report(self, b: np.ndarray, eps: float = 1e-6,
                     method: Method = "richardson") -> SolveReport:
        """Like :meth:`solve` but with iteration diagnostics."""
        b = np.asarray(b, dtype=np.float64)
        if b.shape != (self.n,):
            raise DimensionMismatchError(
                f"b must have shape ({self.n},), got {b.shape}")
        b = project_out_ones(b)
        if method == "richardson":
            try:
                res = preconditioned_richardson(
                    self.apply_L, self.preconditioner.apply, b,
                    delta=self.options.richardson_delta, eps=eps)
                x, iters = res.x, res.iterations
            except ConvergenceError:
                # The chain came out worse than δ = 1 (possible at
                # aggressively small splitting factors).  PCG converges
                # for any SPD preconditioner, just more slowly, so fall
                # back rather than return garbage.
                method = "richardson->pcg"
                # CG's tolerance is a 2-norm residual; aim an order
                # of magnitude below the requested L-norm target.
                res = conjugate_gradient(
                    self.apply_L, b, tol=eps / 10.0,
                    preconditioner=self.preconditioner.apply,
                    matvec_edges=self.graph.m)
                x, iters = res.x, res.iterations
        elif method == "pcg":
            # PCG with the same W preconditioner: an extension — same
            # asymptotics, usually fewer iterations in practice.
            res = conjugate_gradient(
                self.apply_L, b, tol=eps,
                preconditioner=self.preconditioner.apply,
                matvec_edges=self.graph.m)
            x, iters = res.x, res.iterations
        else:
            raise ReproError(f"unknown method {method!r}")
        return SolveReport(x=x, iterations=iters, method=method,
                           target_eps=eps,
                           residual_2norm=residual_norm(
                               self.apply_L, x, b),
                           chain_depth=self.chain.d,
                           multiedges=self.multigraph.m_logical)


def solve_laplacian(L_or_graph, b: np.ndarray, eps: float = 1e-6,
                    options: SolverOptions | None = None,
                    seed=None, method: Method = "richardson"
                    ) -> np.ndarray:
    """One-shot convenience wrapper.

    Accepts a :class:`MultiGraph`, a scipy sparse Laplacian, or a dense
    Laplacian ndarray.  For repeated solves against the same graph,
    construct a :class:`LaplacianSolver` once instead.
    """
    if isinstance(L_or_graph, MultiGraph):
        graph = L_or_graph
    elif sp.issparse(L_or_graph) or isinstance(L_or_graph, np.ndarray):
        graph = from_scipy_laplacian(L_or_graph)
    else:
        raise TypeError(f"unsupported input type {type(L_or_graph)!r}")
    solver = LaplacianSolver(graph, options=options, seed=seed)
    return solver.solve(b, eps=eps, method=method)
