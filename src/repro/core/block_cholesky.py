"""``BlockCholesky`` — Algorithm 1 (Theorem 3.9).

Repeatedly: find a 5-DD subset ``F_k`` of the current vertices
(Algorithm 3), eliminate it by replacing the graph with the sampled
C-terminal-walk approximation of the Schur complement onto
``C_k = C_{k-1} ∖ F_k`` (Algorithm 4), until at most ``min_vertices``
(paper: 100) vertices remain.  The output chain satisfies, whp
(Theorem 3.9):

1. every ``G^(k)`` has at most ``m`` multi-edges,
2. every ``F_k`` is 5-DD in ``L_{G^(k-1)}``,
3. the base case has O(1) size,
4. ``d ≤ log_{40/39} n = O(log n)`` rounds,
5. ``(U^(d))ᵀ D^(d) U^(d) ≈_{0.5} L_G``,

in ``O(m log n)`` work and ``O(log m log n)`` depth.
"""

from __future__ import annotations

import numpy as np

from repro.config import SolverOptions, default_options
from repro.core.chain import CholeskyChain, Level
from repro.core.dd_subset import five_dd_subset
from repro.core.terminal_walks import TerminalWalkStats, terminal_walks
from repro.errors import FactorizationError
from repro.graphs.laplacian import laplacian, laplacian_blocks
from repro.graphs.multigraph import MultiGraph
from repro.pram import charge
from repro.pram import primitives as P
from repro.rng import as_generator
from repro.sampling.walks import WalkEngine

__all__ = ["block_cholesky"]


def _sample_schur_connected(current: MultiGraph, C: np.ndarray,
                            rng, opts: SolverOptions,
                            max_retries: int = 25,
                            engine=None, ctx=None, sampler=None
                            ) -> "tuple[MultiGraph, TerminalWalkStats]":
    """``TerminalWalks`` with a connectivity certificate.

    Fact 2.4: the *exact* Schur complement of a connected graph is
    connected.  A disconnected sample therefore certifies that the
    matrix-martingale deviation already exceeded 1 (the approximation
    can no longer hold), so we discard it and resample — a cheap O(m)
    check per level that converts Theorem 3.9's "with high probability"
    into a practically deterministic guarantee.  At theory-faithful
    ``α⁻¹ = Θ(log² n)`` a retry essentially never fires; the counter
    exists for aggressively small splitting factors on graphs with
    cut edges (e.g. barbells), where a level has a constant chance of
    dropping every copy of a bridge.

    ``engine``/``ctx``/``sampler`` thread a prebuilt walk engine
    (shared across retries — the CSR, and hence any alias planes, do
    not change between resamples), the execution context, and the row-
    sampler choice through to :func:`terminal_walks`.  Returns the
    accepted sample together with its :class:`TerminalWalkStats` (the
    incremental store consumes ``passthrough_stored``).
    """
    from repro.graphs.validation import connected_components

    # Baseline component count of the graph being eliminated: a sound
    # sample must not create *new* components (== 0 extra for connected
    # inputs; pathological already-disconnected inputs keep their count).
    active = np.union1d(C, np.union1d(np.unique(current.u),
                                      np.unique(current.v)))
    cur_sub, _ = current.induced_subgraph(active)
    baseline = int(connected_components(cur_sub).max(initial=0))

    last = None
    for _ in range(max_retries):
        nxt, stats = terminal_walks(current, C, seed=rng,
                                    max_steps=opts.max_walk_steps,
                                    return_stats=True,
                                    engine=engine, ctx=ctx,
                                    sampler=sampler)
        sub, _ = nxt.induced_subgraph(C)
        labels = connected_components(sub)
        if int(labels.max(initial=0)) <= baseline:
            return nxt, stats
        last = nxt, stats
    # Give up and return the last sample: the dense base case and the
    # outer Richardson/PCG loop still behave (slowly) with a weak
    # preconditioner, and pathological inputs shouldn't hard-fail.
    return last if last is not None else terminal_walks(
        current, C, seed=rng, max_steps=opts.max_walk_steps,
        return_stats=True, engine=engine, ctx=ctx, sampler=sampler)


def block_cholesky(graph: MultiGraph,
                   options: SolverOptions | None = None,
                   seed=None,
                   keep_graphs: bool = True) -> CholeskyChain:
    """Build the approximate block Cholesky chain for ``graph``.

    ``graph`` should be a connected multigraph whose multi-edges are
    α-bounded for ``α⁻¹ = Θ(log² n)`` (Theorem 3.9's hypothesis; use
    :func:`repro.core.boundedness.naive_split` or
    :func:`repro.core.lev_est.leverage_split` to establish it — the
    top-level :class:`repro.core.solver.LaplacianSolver` does this
    automatically).

    Walker batches inside each level step through ``options``'
    execution context (serial / thread / shared-memory process
    backend); for a fixed seed the chain is bit-identical across
    backends and worker counts (DESIGN.md §6–§7).  With
    ``options.coalesce_emitted`` (or ``REPRO_COALESCE``) each level's
    emitted parallel edges are merged per ``{u, v}`` pair in the
    incremental store — same Laplacian, smaller levels; the chain for
    a fixed (seed, coalesce) pair stays bit-identical across backends
    (DESIGN.md §11).

    With ``keep_graphs=False`` (streaming mode) each per-level graph is
    dropped as soon as its blocks are extracted and the next level is
    sampled, so only one working graph is alive at a time.  Solving is
    unaffected — ``ApplyCholesky`` consumes only the levels' blocks and
    the base pseudoinverse; edge-count diagnostics stay available
    through the chain's cached count lists, but graph-level
    introspection (``dense_factorization``, per-level subgraphs) needs
    ``keep_graphs=True``.
    """
    opts = options or default_options()
    rng = as_generator(seed if seed is not None else opts.seed)
    ctx = opts.execution()
    sampler = opts.resolve_sampler()
    inc = None
    if opts.incremental_csr and graph.m:
        from repro.sampling.inc_csr import IncrementalWalkCSR

        inc = IncrementalWalkCSR(graph)
    # Emitted-edge coalescing lives in the incremental store; without
    # the store the flag is structurally inert (DESIGN.md §11).
    coalesce = inc is not None and opts.resolve_coalesce()

    active = np.arange(graph.n, dtype=np.int64)
    current = graph
    graphs: list[MultiGraph] = [graph]
    logical_edges: list[int] = [graph.m_logical]
    stored_edges: list[int] = [graph.m]
    levels: list[Level] = []
    max_levels = int(np.ceil(np.log(max(graph.n, 2))
                             / np.log(40.0 / 39.0))) + 10

    while active.size > opts.min_vertices:
        if len(levels) >= max_levels:
            raise FactorizationError(
                f"exceeded {max_levels} elimination rounds; Lemma 3.4 "
                f"guarantees a 1/40 shrink per round, so this is a bug")
        F = five_dd_subset(current, active=active, seed=rng, options=opts)
        if F.size == 0 or F.size >= active.size:
            # Nothing (or everything) would be eliminated; the remaining
            # matrix is already 5-DD-trivial — stop and solve densely.
            break
        C = np.setdiff1d(active, F)
        idxF = np.searchsorted(active, F)
        idxC = np.searchsorted(active, C)
        blocks = laplacian_blocks(current, F, C)
        engine = None
        if inc is not None:
            is_term = np.zeros(graph.n, dtype=bool)
            is_term[C] = True
            view, slot_mult = inc.restricted_view(F)
            planes = inc.alias_planes(F, view) if sampler == "alias" \
                else None
            engine = WalkEngine.from_adjacency(view, slot_mult, is_term,
                                               sampler=sampler,
                                               alias_planes=planes)
        nxt, walk_stats = _sample_schur_connected(current, C, rng, opts,
                                                  engine=engine, ctx=ctx,
                                                  sampler=sampler)
        if inc is not None:
            # The accepted sample's layout is pass-through groups (the
            # edges not incident to F, order preserved) followed by the
            # emitted edges — mirror it into the incremental store.
            p = walk_stats.passthrough_stored
            inc.advance(F, nxt.u[p:], nxt.v[p:], nxt.w[p:],
                        None if nxt.mult is None else nxt.mult[p:],
                        coalesce=coalesce)
            if coalesce:
                # Duplicates merged (and possibly folded into live
                # slots): the next level's working graph is the
                # store's live image.  Laplacian and logical edge
                # counts are preserved.
                nxt = inc.live_graph()
        levels.append(Level(F=F, C=C, idxF=idxF, idxC=idxC,
                            blocks=blocks, parent_edges=current.m_logical))
        if keep_graphs:
            graphs.append(nxt)
        else:
            # Streaming mode: the parent graph's blocks are extracted
            # and its Schur sample drawn — drop the reference so its
            # edge arrays can be reclaimed before the next round.
            graphs.clear()
        logical_edges.append(nxt.m_logical)
        stored_edges.append(nxt.m)
        current = nxt
        active = C
        charge(*P.map_cost(current.m), label="block_cholesky_bookkeeping")

    d = max(len(levels), 1)
    jacobi_eps = opts.jacobi_eps if opts.jacobi_eps is not None \
        else 1.0 / (2.0 * d)
    for level in levels:
        level.attach_jacobi(jacobi_eps)

    # Base case: dense pseudoinverse of L_{G^(d)} on the surviving set.
    # pinv_psd uses a relative kernel cutoff and handles the (rare,
    # sampling-induced) disconnected base graph as well as the generic
    # connected one.
    from repro.linalg.pinv import pinv_psd

    L_final = laplacian(current).toarray()
    sub = L_final[np.ix_(active, active)]
    final_pinv = pinv_psd(sub)
    charge(float(active.size) ** 3, P.log2p(active.size),
           label="base_case_pinv")

    return CholeskyChain(n=graph.n,
                         graphs=graphs if keep_graphs else None,
                         levels=levels,
                         final_active=active, final_pinv=final_pinv,
                         jacobi_eps=jacobi_eps,
                         logical_edges=logical_edges,
                         stored_edges=stored_edges)
