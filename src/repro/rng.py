"""Seeded random-stream management.

Every stochastic routine in :mod:`repro` accepts either an integer seed,
an existing :class:`numpy.random.Generator`, or ``None`` (fresh OS
entropy).  Use :func:`as_generator` at API boundaries and
:func:`split` to derive independent child streams for parallel regions,
mirroring how a PRAM algorithm would hand each processor its own stream.

The splitting scheme uses ``Generator.spawn`` (SeedSequence-based) and is
therefore reproducible: the same parent seed always yields the same
children, regardless of how many random numbers were drawn in between.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["as_generator", "split", "child", "DEFAULT_SEED"]

#: Seed used by the deterministic test/bench harnesses.
DEFAULT_SEED = 0x5EED


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (OS entropy), an ``int`` seed, or an existing generator
        (returned unchanged so that streams thread through call chains).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def split(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    The children are statistically independent of each other and of the
    parent's future output, which makes them safe to hand to concurrent
    workers (each PRAM "processor" gets one stream).
    """
    if n < 0:
        raise ValueError(f"cannot split into {n} streams")
    return list(rng.spawn(n))


def child(rng: np.random.Generator) -> np.random.Generator:
    """Derive a single independent child generator (``split(rng, 1)[0]``)."""
    return rng.spawn(1)[0]


def integers_from(seed: int | np.random.Generator | None,
                  count: int,
                  high: int = 2**63 - 1) -> Sequence[int]:
    """Draw ``count`` integer sub-seeds; handy for seeding legacy APIs."""
    gen = as_generator(seed)
    return [int(x) for x in gen.integers(0, high, size=count)]
