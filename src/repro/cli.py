"""Command-line interface: ``python -m repro <command>``.

Commands
--------
* ``gen``    — generate a named workload graph and save it as .npz
* ``info``   — structural summary of a saved graph
* ``solve``  — solve ``L x = b`` for a saved graph (b from .npy or an
  s/t unit demand), printing solve diagnostics
* ``bench``  — quick work/depth ledger report for one build+solve
* ``serve``  — long-lived HTTP solver service: resident chain cache +
  micro-batched solves (DESIGN.md §12)
* ``client`` — talk to a running ``serve`` instance (register graphs,
  solve, stats)

The CLI is a thin veneer over the library; every command is also
callable in-process (`repro.cli.main([...])`) which is how the test
suite drives it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

__all__ = ["main"]


def _cmd_gen(args) -> int:
    from repro.graphs import generators as G
    from repro.graphs.io import save_npz

    makers = {
        "grid": lambda: G.grid2d(args.size, args.size),
        "torus": lambda: G.torus2d(args.size, args.size),
        "expander": lambda: G.random_regular(args.size, 4,
                                             seed=args.seed),
        "er": lambda: G.erdos_renyi(args.size, 8.0 / max(args.size, 8),
                                    seed=args.seed),
        "barbell": lambda: G.barbell(args.size, 3),
        "path": lambda: G.path(args.size),
    }
    if args.family not in makers:
        print(f"unknown family {args.family!r}; "
              f"choose from {sorted(makers)}", file=sys.stderr)
        return 2
    g = makers[args.family]()
    save_npz(g, args.output)
    print(f"wrote {args.output}: n={g.n} m={g.m}")
    return 0


def _cmd_info(args) -> int:
    from repro.graphs.io import load_npz
    from repro.graphs.validation import connected_components

    g = load_npz(args.graph)
    deg = g.multi_degrees()
    comps = int(connected_components(g).max()) + 1
    print(f"n={g.n} m={g.m} components={comps}")
    print(f"degree: min={deg.min()} max={deg.max()} "
          f"mean={deg.mean():.2f}")
    print(f"weights: min={g.w.min():.4g} max={g.w.max():.4g} "
          f"total={g.total_weight():.4g}")
    return 0


def _cmd_solve(args) -> int:
    from repro import LaplacianSolver, default_options
    from repro.graphs.io import load_npz

    g = load_npz(args.graph)
    if args.rhs:
        b = np.load(args.rhs)
    else:
        b = np.zeros(g.n)
        b[args.source], b[args.sink] = 1.0, -1.0
    if getattr(args, "transport", None) is not None:
        from repro.config import reset_env_caches

        os.environ["REPRO_TRANSPORT"] = args.transport
        reset_env_caches()
    t0 = time.time()
    options = default_options()
    if args.workers is not None:
        options = options.with_(workers=args.workers)
    if args.backend is not None:
        options = options.with_(backend=args.backend)
    if args.sampler is not None:
        options = options.with_(sampler=args.sampler)
    if args.retries is not None:
        options = options.with_(retries=args.retries)
    if args.chunk_timeout is not None:
        options = options.with_(chunk_timeout=args.chunk_timeout)
    # The CLI prefers finishing over crashing: backend degradation
    # (process -> thread -> serial) is ON here, unlike the library
    # default (tests want failures loud).
    options = options.with_(degrade=args.degrade)
    if args.ship_solves is not None:
        options = options.with_(ship_solves=args.ship_solves)
    if args.coalesce is not None:
        options = options.with_(coalesce_emitted=args.coalesce)
    solver = LaplacianSolver(g, options=options, seed=args.seed)
    t_build = time.time() - t0
    t0 = time.time()
    report = solver.solve_report(b, eps=args.eps, method=args.method)
    t_solve = time.time() - t0
    levels = solver.chain.level_nbytes()
    print(f"build: {t_build:.3f}s (d={report.chain_depth} levels, "
          f"{report.multiedges} multi-edges)")
    print(f"chain payload: {solver.chain.nbytes / 1e6:.2f} MB "
          f"(per level: "
          f"{', '.join(f'{nb / 1e6:.2f}' for nb in levels)} MB)")
    print(f"solve: {t_solve:.3f}s ({report.iterations} iterations, "
          f"method={report.method}, residual="
          f"{report.residual_2norm:.3e})")
    if args.output:
        np.save(args.output, report.x)
        print(f"wrote {args.output}")
    return 0


def _cmd_bench(args) -> int:
    from repro import LaplacianSolver, default_options, use_ledger
    from repro.graphs.io import load_npz

    g = load_npz(args.graph)
    b = np.zeros(g.n)
    b[0], b[-1] = 1.0, -1.0
    with use_ledger() as ledger:
        solver = LaplacianSolver(g, options=default_options(),
                                 seed=args.seed)
        solver.solve(b, eps=args.eps)
    print(ledger.report())
    return 0


def _cmd_serve(args) -> int:
    import signal

    from repro import default_options
    from repro.graphs.io import load_npz
    from repro.serve.service import SolverService

    g = load_npz(args.graph)
    options = default_options()
    if args.sampler is not None:
        options = options.with_(sampler=args.sampler)
    if args.backend is not None:
        options = options.with_(backend=args.backend)
    service = SolverService(options=options,
                            window_ms=args.window_ms,
                            max_batch=args.max_batch,
                            cache_bytes=args.cache_bytes,
                            max_pending=args.max_pending)
    service.start()
    # SIGTERM should tear down like Ctrl-C: unlink shm segments and
    # close the cache instead of dying mid-batch.
    signal.signal(signal.SIGTERM, signal.default_int_handler)
    try:
        key = service.register(g, seed=args.seed)
        host, port = service.serve_http(args.host, args.port)
        print(f"serving http://{host}:{port} key={key} "
              f"n={g.n} m={g.m}", flush=True)
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def _cmd_client(args) -> int:
    import json

    from repro.serve.http import http_request

    base = args.url.rstrip("/")
    if args.stats:
        code, payload = http_request(base + "/stats")
        print(json.dumps(payload, indent=2))
        return 0 if code == 200 else 1
    if args.register:
        from repro.graphs.io import load_npz
        g = load_npz(args.register)
        code, payload = http_request(
            base + "/graphs", method="POST",
            payload={"n": g.n, "u": g.u.tolist(), "v": g.v.tolist(),
                     "w": g.w.tolist(),
                     "mult": g.mult.tolist()
                     if g.mult is not None else None,
                     "seed": args.seed})
        if code != 200:
            print(f"error: {payload.get('error', code)}",
                  file=sys.stderr)
            return 1
        print(f"registered key={payload['key']} n={payload['n']} "
              f"m={payload['m']} "
              f"chain_nbytes={payload['chain_nbytes']}")
        return 0
    if not args.key:
        print("client needs --key (or --stats / --register)",
              file=sys.stderr)
        return 2
    body = {"key": args.key, "eps": args.eps, "method": args.method}
    if args.rhs:
        body["b"] = np.load(args.rhs).tolist()
    else:
        body["source"] = args.source
        body["sink"] = args.sink
    code, payload = http_request(base + "/solve", method="POST",
                                 payload=body)
    if code != 200:
        print(f"error: {payload.get('error', code)}", file=sys.stderr)
        return 1
    print(f"solved: status={payload['status']} "
          f"iterations={payload['iterations']} "
          f"residual={payload['residual_2norm']:.3e} "
          f"batched_k={payload['batched_k']}")
    if args.output:
        np.save(args.output, np.asarray(payload["x"]))
        print(f"wrote {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel Laplacian solver (Sachdeva-Zhao SPAA'23)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gen", help="generate a workload graph")
    p.add_argument("family")
    p.add_argument("output")
    p.add_argument("--size", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_gen)

    p = sub.add_parser("info", help="summarise a saved graph")
    p.add_argument("graph")
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("solve", help="solve L x = b")
    p.add_argument("graph")
    p.add_argument("--rhs", help=".npy right-hand side")
    p.add_argument("--source", type=int, default=0)
    p.add_argument("--sink", type=int, default=-1)
    p.add_argument("--eps", type=float, default=1e-6)
    p.add_argument("--method", choices=["richardson", "pcg"],
                   default="richardson")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--workers", type=int, default=None,
                   help="worker count for the parallel phases "
                        "(default: REPRO_WORKERS env var / CPU count; "
                        "results are worker-count independent)")
    p.add_argument("--backend",
                   choices=["serial", "thread", "process",
                            "distributed"],
                   default=None,
                   help="execution backend (default: REPRO_BACKEND env "
                        "var / thread); process ships walker chunks to "
                        "a shared-memory process pool, distributed to "
                        "a loopback-socket work queue — results are "
                        "backend independent")
    p.add_argument("--sampler", choices=["alias", "bisect"],
                   default=None,
                   help="walker-step row sampler (default: REPRO_SAMPLER "
                        "env var / alias); alias is the O(1)-per-step "
                        "Lemma 2.6 realisation — results are "
                        "deterministic per (seed, sampler) pair")
    p.add_argument("--retries", type=int, default=None,
                   help="extra attempts per lost/hung chunk (default: "
                        "REPRO_RETRIES env var / 2); re-dispatch is "
                        "bit-identical to an undisturbed run")
    p.add_argument("--chunk-timeout", type=float, default=None,
                   help="seconds without any chunk completing before "
                        "the process pool is declared hung and rebuilt "
                        "(default: REPRO_CHUNK_TIMEOUT env var / off)")
    p.add_argument("--degrade", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="degrade the backend (process -> thread -> "
                        "serial) when a chunk exhausts its retries "
                        "(default on for the CLI)")
    p.add_argument("--ship-solves", default=None,
                   action=argparse.BooleanOptionalAction,
                   help="ship blocked-solve column chunks to the "
                        "process/distributed pool over a shared-memory "
                        "chain payload (default: REPRO_SHIP_SOLVES env "
                        "var / off); results are bit-identical either "
                        "way")
    p.add_argument("--coalesce", default=None,
                   action=argparse.BooleanOptionalAction,
                   help="coalesce each elimination level's emitted "
                        "parallel edges in the incremental walk store "
                        "(default: REPRO_COALESCE env var / off); same "
                        "Laplacians and smaller levels — results are "
                        "deterministic per (seed, coalesce) pair")
    p.add_argument("--transport", choices=["shm", "tcp"], default=None,
                   help="distributed-backend payload mode (default: "
                        "REPRO_TRANSPORT env var / shm); shm publishes "
                        "arrays via /dev/shm, tcp ships them in-band as "
                        "chunked frames — results are bit-identical "
                        "either way")
    p.add_argument("--output", help="save x as .npy")
    p.set_defaults(fn=_cmd_solve)

    p = sub.add_parser("bench", help="work/depth ledger for one solve")
    p.add_argument("graph")
    p.add_argument("--eps", type=float, default=1e-6)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser("serve",
                       help="HTTP solver service (resident chains + "
                            "micro-batched solves)")
    p.add_argument("graph", help="initial .npz graph to register")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8000,
                   help="TCP port (0 = ephemeral; the bound port is "
                        "printed on startup)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--window-ms", type=float, default=None,
                   help="micro-batch gathering window in ms (default: "
                        "REPRO_SERVE_WINDOW_MS env var / 2.0)")
    p.add_argument("--max-batch", type=int, default=None,
                   help="flush a batch early at this many requests "
                        "(default: REPRO_SERVE_MAX_BATCH env var / 64)")
    p.add_argument("--cache-bytes", type=int, default=None,
                   help="resident chain byte budget (default: "
                        "REPRO_SERVE_CACHE_BYTES env var / 256 MiB)")
    p.add_argument("--max-pending", type=int, default=None,
                   help="admission budget: pending solve requests "
                        "beyond this are shed with 503 + Retry-After "
                        "(default: REPRO_SERVE_MAX_PENDING env var / "
                        "256; 0 disables shedding)")
    p.add_argument("--sampler", choices=["alias", "bisect"],
                   default=None)
    p.add_argument("--backend",
                   choices=["serial", "thread", "process",
                            "distributed"],
                   default=None)
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("client",
                       help="talk to a running `repro serve` instance")
    p.add_argument("url", help="service base URL, e.g. "
                               "http://127.0.0.1:8000")
    p.add_argument("--stats", action="store_true",
                   help="print the service stats snapshot")
    p.add_argument("--register", metavar="GRAPH.npz",
                   help="register (and warm-build) a graph")
    p.add_argument("--key", help="graph cache key to solve against")
    p.add_argument("--rhs", help=".npy right-hand side")
    p.add_argument("--source", type=int, default=0)
    p.add_argument("--sink", type=int, default=-1)
    p.add_argument("--eps", type=float, default=1e-6)
    p.add_argument("--method", choices=["richardson", "pcg"],
                   default="richardson")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", help="save x as .npy")
    p.set_defaults(fn=_cmd_client)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
