"""Laplacian assembly and block extraction.

``L = D - A`` with ``D`` the weighted degrees and ``A`` the (coalesced)
adjacency (Section 2 of the paper).  Different multigraphs can share a
Laplacian; these helpers always coalesce parallel edges during assembly
so the sparse matrices stay small.

:func:`laplacian_blocks` extracts exactly the pieces ``ApplyCholesky``
needs at each level: the diagonal ``X`` and induced-subgraph Laplacian
``Y`` with ``L_FF = X + Y`` (Lemma 3.5's decomposition), plus the
off-diagonal coupling block ``L_FC = -W_FC``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.errors import DimensionMismatchError
from repro.graphs.multigraph import (
    MultiGraph,
    scatter_add_pair,
    scatter_add_pair_cols,
)
from repro.pram import charge, ledger_active
from repro.pram import primitives as P

__all__ = [
    "laplacian",
    "adjacency_matrix",
    "apply_laplacian",
    "laplacian_blocks",
    "LaplacianBlocks",
]


def adjacency_matrix(graph: MultiGraph) -> sp.csr_matrix:
    """Symmetric weighted adjacency matrix (parallel edges coalesced)."""
    m = graph.m
    if m == 0:
        return sp.csr_matrix((graph.n, graph.n))
    rows = np.concatenate([graph.u, graph.v])
    cols = np.concatenate([graph.v, graph.u])
    vals = np.concatenate([graph.w, graph.w])
    A = sp.coo_matrix((vals, (rows, cols)), shape=(graph.n, graph.n))
    charge(*P.convert_cost(2 * m), label="adjacency_matrix")
    return A.tocsr()


def laplacian(graph: MultiGraph) -> sp.csr_matrix:
    """Graph Laplacian ``L = D - A`` as CSR."""
    A = adjacency_matrix(graph)
    deg = np.asarray(A.sum(axis=1)).ravel()
    L = sp.diags(deg) - A
    return L.tocsr()


def apply_laplacian(graph: MultiGraph, x: np.ndarray) -> np.ndarray:
    """``L_G x`` straight from the edge arrays (no matrix assembly).

    This is the ``O(m)`` work / ``O(log m)`` depth primitive the proof of
    Theorem 3.10 describes: per-edge products in parallel, per-vertex
    balanced-tree sums.  ``x`` may be a vector ``(n,)`` or a block of
    ``k`` columns ``(n, k)``; the block path flattens the per-column
    scatter into one ``O(mk)`` bincount.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim not in (1, 2) or x.shape[0] != graph.n:
        raise DimensionMismatchError(
            f"vector has leading dimension {x.shape[0] if x.ndim else 0} "
            f"for a {graph.n}-vertex graph")
    diff = x[graph.u] - x[graph.v]
    if x.ndim == 1:
        contrib = graph.w * diff
        out = scatter_add_pair(graph.u, contrib, graph.v, contrib,
                               graph.n, subtract=True)
    else:
        contrib = graph.w[:, None] * diff
        out = scatter_add_pair_cols(graph.u, contrib, graph.v, contrib,
                                    graph.n, subtract=True)
    if ledger_active():
        charge(*P.matvec_cost(graph.m * (1 if x.ndim == 1 else x.shape[1])),
               label="apply_laplacian")
    return out


@dataclass(frozen=True)
class LaplacianBlocks:
    """The per-level matrices ``ApplyCholesky`` consumes.

    With the bipartition ``F ⊔ C`` of the level's vertices (positional
    indices into the level's vertex array):

    * ``X`` — diagonal of ``L_FF`` minus the induced-subgraph degrees:
      each ``F`` vertex's weighted degree towards ``C`` (strictly
      positive whenever ``F`` is 5-DD).
    * ``Y`` — Laplacian of the induced subgraph ``G[F]``.
    * ``L_FC`` — coupling block (``-`` weights between F and C), CSR of
      shape ``(|F|, |C|)``; ``L_CF`` is its transpose by symmetry.
    """

    X: np.ndarray
    Y: sp.csr_matrix
    L_FC: sp.csr_matrix

    @property
    def nf(self) -> int:
        """Eliminated-block dimension ``|F|``."""
        return self.X.shape[0]

    @property
    def nc(self) -> int:
        """Surviving-block dimension ``|C|``."""
        return self.L_FC.shape[1]


def laplacian_blocks(graph: MultiGraph, F: np.ndarray,
                     C: np.ndarray) -> LaplacianBlocks:
    """Extract ``X``, ``Y``, ``L_FC`` for the bipartition ``F ⊔ C``.

    ``F`` and ``C`` are disjoint vertex-id arrays covering every vertex
    that carries an edge.  Positional indexing: row ``i`` of the blocks
    refers to vertex ``F[i]`` (resp. column ``j`` ↦ ``C[j]``).
    """
    F = np.asarray(F, dtype=np.int64)
    C = np.asarray(C, dtype=np.int64)
    nf, nc = F.size, C.size
    side = np.full(graph.n, -1, dtype=np.int8)  # 0 = F, 1 = C
    pos = np.full(graph.n, -1, dtype=np.int64)
    side[F] = 0
    pos[F] = np.arange(nf)
    side[C] = 1
    pos[C] = np.arange(nc)

    su, sv = side[graph.u], side[graph.v]
    if np.any(su < 0) or np.any(sv < 0):
        raise DimensionMismatchError(
            "edge endpoint outside F ∪ C; pass the level's full vertex set")

    # Total weighted degree of each F vertex (all incident edges).
    mask_uF = su == 0
    mask_vF = sv == 0
    deg_F = scatter_add_pair(pos[graph.u[mask_uF]], graph.w[mask_uF],
                             pos[graph.v[mask_vF]], graph.w[mask_vF], nf)

    # Induced subgraph G[F] Laplacian Y.
    ff = mask_uF & mask_vF
    uf = pos[graph.u[ff]]
    vf = pos[graph.v[ff]]
    wf = graph.w[ff]
    deg_in_F = scatter_add_pair(uf, wf, vf, wf, nf)
    if wf.size:
        A_F = sp.coo_matrix(
            (np.concatenate([wf, wf]),
             (np.concatenate([uf, vf]), np.concatenate([vf, uf]))),
            shape=(nf, nf)).tocsr()
    else:
        A_F = sp.csr_matrix((nf, nf))
    Y = (sp.diags(deg_in_F) - A_F).tocsr()

    # X = degree towards C (diagonal of L_FF minus Y's diagonal).
    X = deg_F - deg_in_F

    # Coupling block L_FC = -W_FC.
    fc_u = mask_uF & (sv == 1)   # u in F, v in C
    fc_v = mask_vF & (su == 1)   # v in F, u in C
    rows = np.concatenate([pos[graph.u[fc_u]], pos[graph.v[fc_v]]])
    cols = np.concatenate([pos[graph.v[fc_u]], pos[graph.u[fc_v]]])
    vals = -np.concatenate([graph.w[fc_u], graph.w[fc_v]])
    if rows.size:
        L_FC = sp.coo_matrix((vals, (rows, cols)), shape=(nf, nc)).tocsr()
    else:
        L_FC = sp.csr_matrix((nf, nc))

    charge(*P.convert_cost(graph.m), label="laplacian_blocks")
    return LaplacianBlocks(X=X, Y=Y, L_FC=L_FC)
