"""Graph families for tests, examples, and benchmark workloads.

All generators return connected :class:`~repro.graphs.multigraph.MultiGraph`
instances with unit weights unless a ``weights`` option says otherwise.
They are implemented from scratch on numpy (no networkx dependency in
library code; networkx is only used by the test-suite as an oracle).

Families
--------
* deterministic: :func:`path`, :func:`cycle`, :func:`complete`,
  :func:`star`, :func:`grid2d`, :func:`grid3d`, :func:`torus2d`,
  :func:`binary_tree`, :func:`barbell`, :func:`dumbbell`,
  :func:`lollipop`.
* random: :func:`erdos_renyi` (connectivity enforced),
  :func:`random_regular` (configuration model — the standard cheap
  expander), :func:`watts_strogatz`, :func:`preferential_attachment`,
  :func:`random_bipartite`.
* utilities: :func:`with_random_weights`, :func:`union_disjoint`,
  :func:`add_bridge`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphStructureError
from repro.graphs.multigraph import MultiGraph
from repro.rng import as_generator

__all__ = [
    "path", "cycle", "complete", "star", "grid2d", "grid3d", "torus2d",
    "binary_tree", "barbell", "dumbbell", "lollipop",
    "erdos_renyi", "random_regular", "watts_strogatz",
    "preferential_attachment", "random_bipartite",
    "with_random_weights", "union_disjoint", "add_bridge",
]


def _mk(n: int, u, v, w=None) -> MultiGraph:
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    if w is None:
        w = np.ones(u.shape[0], dtype=np.float64)
    return MultiGraph(n, u, v, np.asarray(w, dtype=np.float64))


# -- deterministic families --------------------------------------------------

def path(n: int, weight: float = 1.0) -> MultiGraph:
    """Path graph ``0 - 1 - ... - n-1``."""
    idx = np.arange(n - 1)
    return _mk(n, idx, idx + 1, np.full(n - 1, weight))


def cycle(n: int, weight: float = 1.0) -> MultiGraph:
    """Cycle on ``n ≥ 3`` vertices."""
    if n < 3:
        raise GraphStructureError("cycle needs n >= 3")
    idx = np.arange(n)
    return _mk(n, idx, (idx + 1) % n, np.full(n, weight))


def complete(n: int, weight: float = 1.0) -> MultiGraph:
    """Complete graph ``K_n``."""
    iu, iv = np.triu_indices(n, k=1)
    return _mk(n, iu, iv, np.full(iu.size, weight))


def star(n: int, weight: float = 1.0) -> MultiGraph:
    """Star with centre 0 and ``n-1`` leaves."""
    if n < 2:
        raise GraphStructureError("star needs n >= 2")
    leaves = np.arange(1, n)
    return _mk(n, np.zeros(n - 1, np.int64), leaves,
               np.full(n - 1, weight))


def grid2d(rows: int, cols: int) -> MultiGraph:
    """``rows × cols`` 4-neighbour grid."""
    n = rows * cols
    ids = np.arange(n).reshape(rows, cols)
    us = [ids[:, :-1].ravel(), ids[:-1, :].ravel()]
    vs = [ids[:, 1:].ravel(), ids[1:, :].ravel()]
    return _mk(n, np.concatenate(us), np.concatenate(vs))


def torus2d(rows: int, cols: int) -> MultiGraph:
    """2-D grid with wrap-around edges (each vertex degree 4)."""
    if rows < 3 or cols < 3:
        raise GraphStructureError("torus needs rows, cols >= 3")
    n = rows * cols
    ids = np.arange(n).reshape(rows, cols)
    us = [ids.ravel(), ids.ravel()]
    vs = [np.roll(ids, -1, axis=1).ravel(), np.roll(ids, -1, axis=0).ravel()]
    return _mk(n, np.concatenate(us), np.concatenate(vs))


def grid3d(a: int, b: int, c: int) -> MultiGraph:
    """``a × b × c`` 6-neighbour grid."""
    n = a * b * c
    ids = np.arange(n).reshape(a, b, c)
    us = [ids[:-1, :, :].ravel(), ids[:, :-1, :].ravel(),
          ids[:, :, :-1].ravel()]
    vs = [ids[1:, :, :].ravel(), ids[:, 1:, :].ravel(), ids[:, :, 1:].ravel()]
    return _mk(n, np.concatenate(us), np.concatenate(vs))


def binary_tree(depth: int) -> MultiGraph:
    """Complete binary tree of the given depth (root = 0)."""
    n = 2 ** (depth + 1) - 1
    children = np.arange(1, n)
    parents = (children - 1) // 2
    return _mk(n, parents, children)


def barbell(clique: int, bridge: int = 1) -> MultiGraph:
    """Two ``K_clique`` cliques joined by a ``bridge``-edge path.

    A classic hard case for unpreconditioned iterative methods: the
    bridge is a severe bottleneck, so the Laplacian is ill-conditioned.
    """
    if clique < 2:
        raise GraphStructureError("barbell needs clique >= 2")
    k1 = complete(clique)
    n = 2 * clique + max(bridge - 1, 0)
    us, vs = [k1.u, k1.u + clique + max(bridge - 1, 0)], \
             [k1.v, k1.v + clique + max(bridge - 1, 0)]
    # path from vertex clique-1 through bridge intermediates to the
    # first vertex of the second clique
    chain = np.concatenate([[clique - 1],
                            clique + np.arange(max(bridge - 1, 0)),
                            [clique + max(bridge - 1, 0)]])
    us.append(chain[:-1])
    vs.append(chain[1:])
    return _mk(n, np.concatenate(us), np.concatenate(vs))


def dumbbell(side: int) -> MultiGraph:
    """Two ``side × side`` grids joined by a single edge."""
    g = grid2d(side, side)
    off = side * side
    u = np.concatenate([g.u, g.u + off, [off - 1]])
    v = np.concatenate([g.v, g.v + off, [off]])
    return _mk(2 * off, u, v)


def lollipop(clique: int, tail: int) -> MultiGraph:
    """``K_clique`` with a ``tail``-vertex path hanging off vertex 0."""
    k = complete(clique)
    n = clique + tail
    tail_u = np.concatenate([[0], clique + np.arange(tail - 1)]) \
        if tail else np.empty(0, np.int64)
    tail_v = clique + np.arange(tail) if tail else np.empty(0, np.int64)
    return _mk(n, np.concatenate([k.u, tail_u]),
               np.concatenate([k.v, tail_v]))


# -- random families ----------------------------------------------------------

def erdos_renyi(n: int, p: float, seed=None,
                ensure_connected: bool = True) -> MultiGraph:
    """G(n, p); when ``ensure_connected`` a random spanning path over a
    permutation is added so the sample is always usable by the solver."""
    rng = as_generator(seed)
    iu, iv = np.triu_indices(n, k=1)
    keep = rng.random(iu.size) < p
    u, v = iu[keep], iv[keep]
    if ensure_connected:
        perm = rng.permutation(n)
        u = np.concatenate([u, perm[:-1]])
        v = np.concatenate([v, perm[1:]])
        g = _mk(n, u, v)
        return g.coalesced()
    return _mk(n, u, v)


def random_regular(n: int, d: int, seed=None,
                   max_tries: int = 2000) -> MultiGraph:
    """Random ``d``-regular graph via the configuration model.

    Retries until the matching is simple (no loops / parallel stubs);
    for ``d ≥ 3`` these are whp expanders, the paper's favourite
    implicit workload.  ``n·d`` must be even.
    """
    if (n * d) % 2 != 0:
        raise GraphStructureError("n*d must be even for a d-regular graph")
    if d >= n:
        raise GraphStructureError("need d < n")
    rng = as_generator(seed)
    stubs = np.repeat(np.arange(n), d)
    for _ in range(max_tries):
        perm = rng.permutation(stubs)
        u, v = perm[0::2], perm[1::2]
        if np.any(u == v):
            continue
        lo, hi = np.minimum(u, v), np.maximum(u, v)
        key = lo * n + hi
        if np.unique(key).size != key.size:
            continue
        g = _mk(n, u, v)
        from repro.graphs.validation import is_connected
        if is_connected(g):
            return g
    raise GraphStructureError(
        f"failed to draw a simple connected {d}-regular graph on {n} "
        f"vertices in {max_tries} tries")


def watts_strogatz(n: int, k: int, beta: float, seed=None) -> MultiGraph:
    """Small-world ring: each vertex wired to ``k`` nearest neighbours
    (k even), each edge rewired with probability ``beta``."""
    if k % 2 != 0 or k < 2:
        raise GraphStructureError("k must be even and >= 2")
    rng = as_generator(seed)
    base = np.arange(n)
    us, vs = [], []
    for off in range(1, k // 2 + 1):
        us.append(base)
        vs.append((base + off) % n)
    u = np.concatenate(us)
    v = np.concatenate(vs)
    rewire = rng.random(u.size) < beta
    new_targets = rng.integers(0, n, size=int(rewire.sum()))
    v = v.copy()
    v[rewire] = new_targets
    ok = u != v
    g = _mk(n, u[ok], v[ok]).coalesced()
    from repro.graphs.validation import is_connected
    if not is_connected(g):
        # Patch connectivity with a ring (keeps the small-world shape).
        u2 = np.concatenate([g.u, base])
        v2 = np.concatenate([g.v, (base + 1) % n])
        g = _mk(n, u2, v2).coalesced()
    return g


def preferential_attachment(n: int, k: int, seed=None) -> MultiGraph:
    """Barabási–Albert: each new vertex attaches to ``k`` existing
    vertices chosen proportionally to degree (with replacement, then
    coalesced)."""
    if k < 1 or n <= k:
        raise GraphStructureError("need 1 <= k < n")
    rng = as_generator(seed)
    us, vs = list(range(k)), list(range(1, k + 1))  # seed path
    targets = list(range(k + 1))
    repeated = list(us) + list(vs)
    for new in range(k + 1, n):
        choices = rng.choice(repeated, size=k)
        for t in np.unique(choices):
            us.append(int(t))
            vs.append(new)
            repeated.extend([int(t), new])
    return _mk(n, np.array(us), np.array(vs)).coalesced()


def random_bipartite(a: int, b: int, p: float, seed=None) -> MultiGraph:
    """Random bipartite graph, kept connected by a spanning double star
    (left vertex 0 sees every right vertex; right vertex 0 sees every
    left vertex — all patch edges respect the bipartition)."""
    rng = as_generator(seed)
    grid_u, grid_v = np.meshgrid(np.arange(a), a + np.arange(b),
                                 indexing="ij")
    keep = rng.random(grid_u.shape) < p
    u, v = grid_u[keep], grid_v[keep]
    u = np.concatenate([u, np.zeros(b, np.int64), np.arange(a)])
    v = np.concatenate([v, a + np.arange(b), np.full(a, a, np.int64)])
    return _mk(a + b, u, v).coalesced()


# -- utilities ----------------------------------------------------------------

def with_random_weights(graph: MultiGraph, low: float = 0.5,
                        high: float = 2.0, seed=None,
                        log_uniform: bool = False) -> MultiGraph:
    """Replace weights with random draws in ``[low, high]``.

    ``log_uniform=True`` draws ``exp(U[log low, log high])`` — wide
    weight ranges stress the α-boundedness machinery.
    """
    rng = as_generator(seed)
    if low <= 0 or high < low:
        raise GraphStructureError("need 0 < low <= high")
    if log_uniform:
        w = np.exp(rng.uniform(np.log(low), np.log(high), size=graph.m))
    else:
        w = rng.uniform(low, high, size=graph.m)
    return MultiGraph(graph.n, graph.u.copy(), graph.v.copy(), w,
                      validate=False)


def union_disjoint(g1: MultiGraph, g2: MultiGraph) -> MultiGraph:
    """Disjoint union (vertex ids of ``g2`` shifted by ``g1.n``).

    The result is disconnected — used by tests that exercise the
    connectivity validation paths.
    """
    return MultiGraph(g1.n + g2.n,
                      np.concatenate([g1.u, g2.u + g1.n]),
                      np.concatenate([g1.v, g2.v + g1.n]),
                      np.concatenate([g1.w, g2.w]), validate=False)


def add_bridge(graph: MultiGraph, x: int, y: int,
               weight: float = 1.0) -> MultiGraph:
    """Return a copy with one extra edge ``{x, y}``."""
    return MultiGraph(graph.n,
                      np.concatenate([graph.u, [x]]),
                      np.concatenate([graph.v, [y]]),
                      np.concatenate([graph.w, [weight]]))
