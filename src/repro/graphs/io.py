"""Persistence for multigraphs (``.npz`` round-trip).

Benchmarks cache generated workloads on disk so parameter sweeps don't
pay the generation cost repeatedly and runs are byte-reproducible.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.errors import GraphStructureError
from repro.graphs.multigraph import MultiGraph

__all__ = ["save_npz", "load_npz"]

_FORMAT_VERSION = 1


def save_npz(graph: MultiGraph, path: str | os.PathLike) -> None:
    """Write the graph's arrays to ``path`` (compressed npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path,
                        version=np.int64(_FORMAT_VERSION),
                        n=np.int64(graph.n),
                        u=graph.u, v=graph.v, w=graph.w)


def load_npz(path: str | os.PathLike) -> MultiGraph:
    """Read a graph previously written by :func:`save_npz`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise GraphStructureError(
                f"unsupported graph file version {version}")
        return MultiGraph(int(data["n"]), data["u"], data["v"], data["w"])
