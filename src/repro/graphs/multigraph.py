"""Edge-array weighted undirected multigraph with implicit multiplicities.

A :class:`MultiGraph` stores ``m`` edge *groups* as parallel arrays
``(u, v, w)`` plus an optional multiplicity array ``mult``: group ``i``
represents ``mult[i]`` logical parallel copies of the edge
``{u[i], v[i]}``, each of weight ``w[i] / mult[i]`` (``w`` is always the
*total* weight of the group).  Parallel edges are first-class citizens —
the solver's α-bounded splitting (Lemma 3.2) deliberately creates many
copies of each edge, and with ``mult`` it can do so in ``O(m)`` memory
instead of ``O(m/α)``.  A graph with ``mult is None`` is the plain case:
every group is a single logical edge.  Self-loops are disallowed: a
self-loop contributes ``0`` to a Laplacian, and ``TerminalWalks``
explicitly drops walks with ``c1 = c2``.

Because ``w`` stores group totals, every Laplacian-level quantity
(degrees, ``L = D - A``, block extractions) is computed from the compact
arrays unchanged — ``L`` of the implicit split equals ``L`` of the
original graph *exactly*.  Only the random-walk layer needs ``mult``:
the transition distribution of a split graph is identical to the
unsplit one, while the resistance of one traversed logical copy is
``mult/w`` (see DESIGN.md §"Implicit α-split multigraphs").

The adjacency view (CSR over the 2m directed half-edges) is built
lazily and cached; it is the representation random walks consume.  The
build uses a stable counting sort (scipy's C ``coo→csr`` kernel), i.e.
``O(m + n)`` — the parallel edge-list → adjacency-list conversion of
Lemma 2.7, charged ``(O(m), O(log m))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
import scipy.sparse as sp

from repro.errors import (
    DimensionMismatchError,
    EmptyGraphError,
    GraphStructureError,
)
from repro.pram import charge, ledger_active
from repro.pram import primitives as P

__all__ = ["MultiGraph", "AdjacencyView", "weighted_bincount",
           "scatter_add_pair", "scatter_add_pair_cols"]


def weighted_bincount(idx: np.ndarray, weights: np.ndarray,
                      minlength: int) -> np.ndarray:
    """``np.bincount(idx, weights, minlength)`` with float64 output.

    ``np.bincount`` returns *int64 zeros* when ``idx`` is empty, which
    breaks in-place float accumulation; every weighted scatter-add in
    the hot path goes through this wrapper instead of re-deriving that
    trap.
    """
    return np.bincount(idx, weights=weights, minlength=minlength) \
        .astype(np.float64, copy=False)


def scatter_add_pair(idx_a: np.ndarray, w_a: np.ndarray,
                     idx_b: np.ndarray, w_b: np.ndarray,
                     minlength: int, subtract: bool = False) -> np.ndarray:
    """Two-leg weighted scatter-add: ``Σ w_a → idx_a  ±  Σ w_b → idx_b``.

    The canonical per-vertex accumulation over both edge endpoints
    (degrees, Laplacian applies, block extractions) — every such site
    goes through here so the empty-input dtype trap of
    :func:`weighted_bincount` is handled exactly once.
    """
    out = weighted_bincount(idx_a, w_a, minlength)
    second = weighted_bincount(idx_b, w_b, minlength)
    if subtract:
        out -= second
    else:
        out += second
    return out


def scatter_add_pair_cols(idx_a: np.ndarray, w_a: np.ndarray,
                          idx_b: np.ndarray, w_b: np.ndarray,
                          minlength: int, subtract: bool = False
                          ) -> np.ndarray:
    """Column-blocked :func:`scatter_add_pair`: ``w_a``/``w_b`` are
    ``(m, k)`` weight blocks and column ``j`` scatters to column ``j``
    of the ``(minlength, k)`` output.

    The per-column scatters are flattened into one bincount by
    interleaving (row-major) indices — the blocked-RHS assembly and
    blocked Laplacian-apply kernels all share this trick through here.
    """
    k = w_a.shape[1]
    cols = np.arange(k, dtype=np.int64)
    flat_a = (idx_a[:, None] * k + cols).ravel()
    flat_b = (idx_b[:, None] * k + cols).ravel()
    return scatter_add_pair(flat_a, w_a.ravel(), flat_b, w_b.ravel(),
                            minlength * k, subtract=subtract
                            ).reshape(minlength, k)


def _counting_sort_halfedges(ends: np.ndarray, n: int
                             ) -> tuple[np.ndarray, np.ndarray]:
    """Stable counting sort of half-edges by endpoint in ``O(len + n)``.

    Returns ``(indptr, order)`` where ``order`` permutes the half-edge
    arrays into CSR layout (grouped by endpoint, original order
    preserved within each group).  Delegates the scatter pass to scipy's
    C ``coo→csr`` kernel: with one strictly increasing column id per
    half-edge, the resulting ``indices`` array *is* the stable
    counting-sort permutation — no ``O(m log m)`` comparison sort.
    """
    if ends.size == 0:
        return np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64)
    cols = np.arange(ends.size, dtype=np.int64)
    perm = sp.csr_matrix(
        (np.ones(ends.size, dtype=np.int8), (ends, cols)),
        shape=(n, ends.size))
    return perm.indptr.astype(np.int64), perm.indices.astype(np.int64)


@dataclass(frozen=True)
class AdjacencyView:
    """CSR adjacency over half-edges.

    For vertex ``x``, its incident half-edges occupy the slice
    ``indptr[x]:indptr[x+1]`` of the arrays:

    * ``neighbor`` — the other endpoint of each incident edge group,
    * ``weight`` — the group's *total* weight (all logical copies),
    * ``edge_id`` — index into the parent graph's edge arrays,
    * ``cumweight`` — *globally shifted* inclusive prefix sums of
      ``weight`` within each row; row ``x`` spans the half-open value
      interval ``(base[x], base[x] + degree[x]]`` where
      ``base[x] = cumweight[indptr[x]-1]`` (0 for the first row).  This
      lets a single vectorised ``searchsorted`` sample a
      weight-proportional neighbour for millions of walkers at once.

    A view may be *restricted* (see
    :meth:`MultiGraph.adjacency_restricted`): rows outside the requested
    source set are empty, which keeps per-round CSR rebuilds O(edges
    incident to the interior) in the elimination loop.
    """

    indptr: np.ndarray
    neighbor: np.ndarray
    weight: np.ndarray
    edge_id: np.ndarray
    cumweight: np.ndarray

    def row(self, x: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(neighbors, weights, edge ids) of vertex ``x``."""
        lo, hi = self.indptr[x], self.indptr[x + 1]
        return self.neighbor[lo:hi], self.weight[lo:hi], self.edge_id[lo:hi]

    def row_base(self, x: np.ndarray | int) -> np.ndarray:
        """Value of the global cumulative weight just before row ``x``."""
        lo = self.indptr[x]
        base = np.where(np.asarray(lo) > 0,
                        self.cumweight[np.maximum(np.asarray(lo) - 1, 0)],
                        0.0)
        return base

    @property
    def nbytes(self) -> int:
        """Total bytes held by the CSR arrays (perf accounting)."""
        return (self.indptr.nbytes + self.neighbor.nbytes
                + self.weight.nbytes + self.edge_id.nbytes
                + self.cumweight.nbytes)


class MultiGraph:
    """Weighted undirected multigraph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    u, v:
        Endpoint arrays of the ``m`` edge groups (any integer dtype).
    w:
        Strictly positive *total* group weights.
    mult:
        Optional per-group multiplicities (positive integers): group
        ``i`` stands for ``mult[i]`` logical parallel copies of weight
        ``w[i] / mult[i]`` each.  ``None`` (default) means every group
        is one logical edge.
    validate:
        When true (default), check index ranges, weight positivity,
        multiplicity positivity, and reject self-loops.
    """

    __slots__ = ("n", "u", "v", "w", "mult", "_adj", "_wdeg")

    def __init__(self, n: int,
                 u: Iterable[int] | np.ndarray,
                 v: Iterable[int] | np.ndarray,
                 w: Iterable[float] | np.ndarray,
                 mult: Iterable[int] | np.ndarray | None = None,
                 validate: bool = True) -> None:
        if n <= 0:
            raise EmptyGraphError("graph must have at least one vertex")
        self.n = int(n)
        self.u = np.ascontiguousarray(u, dtype=np.int64)
        self.v = np.ascontiguousarray(v, dtype=np.int64)
        self.w = np.ascontiguousarray(w, dtype=np.float64)
        # int32: multiplicities are copy counts (⌈1/α⌉-scale); walker
        # expansion would exhaust memory long before 2^31 copies.  The
        # range check is unconditional — a silently wrapped cast would
        # corrupt m_logical and per-copy resistances downstream.
        if mult is None:
            self.mult = None
        else:
            marr = np.ascontiguousarray(mult)
            if marr.dtype != np.int32:
                if not np.issubdtype(marr.dtype, np.integer):
                    raise GraphStructureError(
                        f"edge multiplicities must be integers, got "
                        f"dtype {marr.dtype}")
                if marr.size and (marr.max() > np.iinfo(np.int32).max
                                  or marr.min() < np.iinfo(np.int32).min):
                    raise GraphStructureError(
                        "edge multiplicity exceeds the int32 range; "
                        "split factors this large cannot be walked anyway")
                marr = marr.astype(np.int32)
            self.mult = marr
        if not (self.u.shape == self.v.shape == self.w.shape):
            raise DimensionMismatchError(
                f"edge arrays disagree: u{self.u.shape} v{self.v.shape} "
                f"w{self.w.shape}")
        if self.u.ndim != 1:
            raise DimensionMismatchError("edge arrays must be 1-D")
        if self.mult is not None and self.mult.shape != self.u.shape:
            raise DimensionMismatchError(
                f"mult{self.mult.shape} disagrees with u{self.u.shape}")
        if validate and self.m:
            if self.u.min(initial=0) < 0 or self.v.min(initial=0) < 0 \
                    or self.u.max(initial=0) >= n or self.v.max(initial=0) >= n:
                raise GraphStructureError("edge endpoint out of range")
            if np.any(self.u == self.v):
                raise GraphStructureError(
                    "self-loops are not allowed (they contribute nothing "
                    "to a Laplacian)")
            if not np.all(np.isfinite(self.w)) or np.any(self.w <= 0):
                raise GraphStructureError(
                    "edge weights must be finite and strictly positive")
            if self.mult is not None and np.any(self.mult < 1):
                raise GraphStructureError(
                    "edge multiplicities must be >= 1")
        self._adj: AdjacencyView | None = None
        self._wdeg: np.ndarray | None = None

    # -- basic properties ---------------------------------------------------

    @property
    def m(self) -> int:
        """Number of stored edge groups (rows of the edge arrays)."""
        return self.u.shape[0]

    @property
    def m_logical(self) -> int:
        """Number of logical multi-edges, ``Σ_i mult[i]``.

        This is the ``m`` the paper's lemmas speak about (Theorem
        3.9-(1), Lemma 5.4, ...); ``m`` itself counts the compact
        groups actually held in memory.
        """
        if self.mult is None:
            return self.m
        return int(self.mult.sum(dtype=np.int64))

    def multiplicities(self) -> np.ndarray:
        """Per-group multiplicity array (all-ones when ``mult is None``)."""
        if self.mult is None:
            return np.ones(self.m, dtype=np.int32)
        return self.mult

    def weighted_degrees(self) -> np.ndarray:
        """``w(x) = Σ_{e ∋ x} w(e)`` for every vertex (cached).

        Multiplicities are transparent here: group totals already sum
        the copies.
        """
        if self._wdeg is None:
            deg = scatter_add_pair(self.u, self.w, self.v, self.w, self.n)
            if ledger_active():
                charge(*P.reduce_cost(2 * self.m), label="weighted_degrees")
            self._wdeg = deg
        return self._wdeg

    def multi_degrees(self) -> np.ndarray:
        """Number of incident *logical* multi-edges per vertex."""
        mult = self.multiplicities().astype(np.float64)
        deg = scatter_add_pair(self.u, mult, self.v, mult, self.n)
        return deg.astype(np.int64)

    def total_weight(self) -> float:
        """Sum of all multi-edge weights."""
        return float(self.w.sum())

    @property
    def edge_nbytes(self) -> int:
        """Bytes held by the edge arrays (perf accounting)."""
        total = self.u.nbytes + self.v.nbytes + self.w.nbytes
        if self.mult is not None:
            total += self.mult.nbytes
        return total

    @property
    def adjacency_nbytes(self) -> int:
        """Bytes held by the cached adjacency view (0 when not built)."""
        return self._adj.nbytes if self._adj is not None else 0

    # -- adjacency ----------------------------------------------------------

    def adjacency(self) -> AdjacencyView:
        """CSR adjacency over the ``2m`` half-edges (cached).

        Built with a counting sort on endpoints — the parallel edge-list
        → adjacency-list conversion of Lemma 2.7, charged ``(m, log m)``.
        """
        if self._adj is None:
            self._adj = self._build_adjacency()
        return self._adj

    @staticmethod
    def _assemble_csr(ends: np.ndarray, others: np.ndarray,
                      ws: np.ndarray, eid: np.ndarray,
                      n: int) -> AdjacencyView:
        """Shared CSR assembly tail: counting sort + prefix weights."""
        indptr, order = _counting_sort_halfedges(ends, n)
        weight = ws[order]
        cumweight = np.cumsum(weight)
        if ledger_active():
            charge(*P.convert_cost(ends.size), label="adjacency_build")
        return AdjacencyView(indptr=indptr,
                             neighbor=others[order],
                             weight=weight,
                             edge_id=eid[order],
                             cumweight=cumweight)

    def _build_adjacency(self) -> AdjacencyView:
        m = self.m
        ends = np.concatenate([self.u, self.v])
        others = np.concatenate([self.v, self.u])
        ws = np.concatenate([self.w, self.w])
        eid = np.concatenate([np.arange(m, dtype=np.int64),
                              np.arange(m, dtype=np.int64)])
        return self._assemble_csr(ends, others, ws, eid, self.n)

    def adjacency_restricted(self, source_mask: np.ndarray) -> AdjacencyView:
        """CSR over the half-edges whose *source* vertex is flagged.

        Rows of unflagged vertices are empty; flagged rows contain all
        their incident edge groups, in the same within-row order as the
        full :meth:`adjacency` (so walk sampling is bit-identical).
        ``WalkEngine`` uses this to build only the interior rows it can
        ever sample from — O(edges incident to the interior) per
        elimination round instead of O(m).  Not cached.
        """
        source_mask = np.asarray(source_mask, dtype=bool)
        if source_mask.shape != (self.n,):
            raise DimensionMismatchError(
                "source_mask must have one flag per vertex")
        keep_u = source_mask[self.u]
        keep_v = source_mask[self.v]
        ids = np.arange(self.m, dtype=np.int64)
        ends = np.concatenate([self.u[keep_u], self.v[keep_v]])
        others = np.concatenate([self.v[keep_u], self.u[keep_v]])
        ws = np.concatenate([self.w[keep_u], self.w[keep_v]])
        eid = np.concatenate([ids[keep_u], ids[keep_v]])
        return self._assemble_csr(ends, others, ws, eid, self.n)

    def neighbors(self, x: int) -> np.ndarray:
        """Distinct sorted neighbours of vertex ``x``."""
        nbr, _, _ = self.adjacency().row(x)
        return np.unique(nbr)

    # -- derived graphs ------------------------------------------------------

    def copy(self) -> "MultiGraph":
        """Deep copy of the edge arrays (caches are not carried)."""
        return MultiGraph(self.n, self.u.copy(), self.v.copy(),
                          self.w.copy(),
                          mult=None if self.mult is None else self.mult.copy(),
                          validate=False)

    def with_edges(self, u: np.ndarray, v: np.ndarray,
                   w: np.ndarray) -> "MultiGraph":
        """Same vertex set, new edge arrays (validated)."""
        return MultiGraph(self.n, u, v, w)

    def edge_subset(self, mask: np.ndarray) -> "MultiGraph":
        """Keep only the edge groups selected by boolean ``mask``."""
        if mask.shape != (self.m,):
            raise DimensionMismatchError("mask must have one entry per edge")
        return MultiGraph(self.n, self.u[mask], self.v[mask], self.w[mask],
                          mult=None if self.mult is None else self.mult[mask],
                          validate=False)

    def induced_subgraph(self, vertices: np.ndarray
                         ) -> tuple["MultiGraph", np.ndarray]:
        """Induced subgraph on ``vertices`` with relabelled ids.

        Returns ``(H, vertices)`` where ``H`` has ``len(vertices)``
        vertices labelled by position in ``vertices`` (which is the
        mapping back to the parent's ids).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            raise EmptyGraphError("induced subgraph needs >= 1 vertex")
        pos = np.full(self.n, -1, dtype=np.int64)
        pos[vertices] = np.arange(vertices.size)
        keep = (pos[self.u] >= 0) & (pos[self.v] >= 0)
        if ledger_active():
            charge(*P.map_cost(self.m), label="induced_subgraph")
        return (MultiGraph(vertices.size, pos[self.u[keep]],
                           pos[self.v[keep]], self.w[keep],
                           mult=None if self.mult is None
                           else self.mult[keep],
                           validate=False),
                vertices)

    def coalesced(self) -> "MultiGraph":
        """Merge parallel multi-edges into single edges (weights add).

        The resulting graph is simple (``mult is None`` — logical copies
        merge like any other parallel edges) and has the same Laplacian.
        The packed ``lo * n + hi`` key is used only while ``n²`` fits in
        int64; beyond that the stacked ``(lo, hi)`` pair takes over, so
        arbitrarily large vertex counts cannot overflow.
        """
        if self.m == 0:
            return MultiGraph(self.n, self.u.copy(), self.v.copy(),
                              self.w.copy(), validate=False)
        lo = np.minimum(self.u, self.v)
        hi = np.maximum(self.u, self.v)
        if self.n <= 3_037_000_499:  # n² - 1 fits in int64
            key = lo * self.n + hi
            uniq, inverse = np.unique(key, return_inverse=True)
            out_u, out_v = uniq // self.n, uniq % self.n
            n_uniq = uniq.size
        else:
            key = np.stack([lo, hi], axis=1)
            uniq, inverse = np.unique(key, axis=0, return_inverse=True)
            inverse = inverse.reshape(-1)  # numpy >= 2.0: may be (m, 1)
            out_u, out_v = uniq[:, 0], uniq[:, 1]
            n_uniq = uniq.shape[0]
        w = weighted_bincount(inverse, self.w, n_uniq)
        if ledger_active():
            charge(*P.sort_cost(self.m), label="coalesce")
        return MultiGraph(self.n, out_u, out_v, w, validate=False)

    def split_copies(self, copies: int | np.ndarray,
                     materialize: bool = False) -> "MultiGraph":
        """Split each group into ``copies`` (scalar or per-group array)
        times its current number of logical copies, totals preserved.

        This is the shared tail of Lemma 3.2/3.3 splitting: compose the
        new copy counts with any existing multiplicities in int64 (the
        constructor rejects products beyond int32 rather than letting
        them wrap), then optionally expand for the materialised
        baseline representation.
        """
        copies = np.asarray(copies)
        if np.any(copies < 1):
            raise GraphStructureError(
                "split factors must be >= 1 (0 would silently drop "
                "edges from walks while keeping their Laplacian weight)")
        mult = self.multiplicities().astype(np.int64) * copies
        H = MultiGraph(self.n, self.u.copy(), self.v.copy(),
                       self.w.copy(), mult=mult, validate=False)
        return H.materialized() if materialize else H

    def materialized(self) -> "MultiGraph":
        """Expand implicit multiplicities into explicit parallel edges.

        Group ``i`` becomes ``mult[i]`` rows of weight ``w[i]/mult[i]``
        each; the result has ``mult is None`` and ``m == m_logical``.
        O(m_logical) memory — benchmark baselines and equivalence tests
        only; the solver stack never needs it.
        """
        if self.mult is None:
            return self.copy()
        k = self.mult
        u = np.repeat(self.u, k)
        v = np.repeat(self.v, k)
        w = np.repeat(self.w / k, k)
        if ledger_active():
            charge(*P.map_cost(self.m_logical), label="materialize")
        return MultiGraph(self.n, u, v, w, validate=False)

    def relabeled(self, new_ids: np.ndarray, n_new: int) -> "MultiGraph":
        """Map vertex ``x`` to ``new_ids[x]`` (must be injective on the
        support of the edge arrays)."""
        return MultiGraph(n_new, new_ids[self.u], new_ids[self.v],
                          self.w.copy(),
                          mult=None if self.mult is None
                          else self.mult.copy())

    # -- dunder -----------------------------------------------------------

    def __repr__(self) -> str:
        if self.mult is None:
            return f"MultiGraph(n={self.n}, m={self.m})"
        return (f"MultiGraph(n={self.n}, m={self.m}, "
                f"m_logical={self.m_logical})")

    def __eq__(self, other: object) -> bool:
        """Structural equality of the edge arrays (order-sensitive);
        multiplicities compare logically (``None`` ≡ all-ones)."""
        if not isinstance(other, MultiGraph):
            return NotImplemented
        return (self.n == other.n
                and np.array_equal(self.u, other.u)
                and np.array_equal(self.v, other.v)
                and np.array_equal(self.w, other.w)
                and np.array_equal(self.multiplicities(),
                                   other.multiplicities()))

    def __hash__(self) -> int:  # pragma: no cover - not hashable
        raise TypeError("MultiGraph is mutable-array backed; not hashable")

    @staticmethod
    def from_edges(n: int, edges: Sequence[tuple[int, int, float]]
                   ) -> "MultiGraph":
        """Convenience constructor from ``(u, v, w)`` triples."""
        if len(edges) == 0:
            return MultiGraph(n, np.empty(0, np.int64),
                              np.empty(0, np.int64),
                              np.empty(0, np.float64))
        arr = np.asarray(edges, dtype=np.float64)
        return MultiGraph(n, arr[:, 0].astype(np.int64),
                          arr[:, 1].astype(np.int64), arr[:, 2])
