"""Edge-array weighted undirected multigraph.

A :class:`MultiGraph` stores ``m`` multi-edges as three parallel arrays
``(u, v, w)``.  Parallel edges are first-class citizens — the solver's
α-bounded splitting (Lemma 3.2) deliberately creates many copies of each
edge, and ``TerminalWalks`` both consumes and produces multi-edges.
Self-loops are disallowed: a self-loop contributes ``0`` to a Laplacian,
and ``TerminalWalks`` explicitly drops walks with ``c1 = c2``.

The adjacency view (CSR over the 2m directed half-edges) is built
lazily and cached; it is the representation random walks consume.  Cost
accounting: the CSR build charges Lemma 2.7's ``(O(m), O(log m))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import (
    DimensionMismatchError,
    EmptyGraphError,
    GraphStructureError,
)
from repro.pram import charge
from repro.pram import primitives as P

__all__ = ["MultiGraph", "AdjacencyView"]


@dataclass(frozen=True)
class AdjacencyView:
    """CSR adjacency over half-edges.

    For vertex ``x``, its incident half-edges occupy the slice
    ``indptr[x]:indptr[x+1]`` of the arrays:

    * ``neighbor`` — the other endpoint of each incident multi-edge,
    * ``weight`` — the multi-edge weight,
    * ``edge_id`` — index into the parent graph's edge arrays,
    * ``cumweight`` — *globally shifted* inclusive prefix sums of
      ``weight`` within each row; row ``x`` spans the half-open value
      interval ``(base[x], base[x] + degree[x]]`` where
      ``base[x] = cumweight[indptr[x]-1]`` (0 for the first row).  This
      lets a single vectorised ``searchsorted`` sample a
      weight-proportional neighbour for millions of walkers at once.
    """

    indptr: np.ndarray
    neighbor: np.ndarray
    weight: np.ndarray
    edge_id: np.ndarray
    cumweight: np.ndarray

    def row(self, x: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(neighbors, weights, edge ids) of vertex ``x``."""
        lo, hi = self.indptr[x], self.indptr[x + 1]
        return self.neighbor[lo:hi], self.weight[lo:hi], self.edge_id[lo:hi]

    def row_base(self, x: np.ndarray | int) -> np.ndarray:
        """Value of the global cumulative weight just before row ``x``."""
        lo = self.indptr[x]
        base = np.where(np.asarray(lo) > 0,
                        self.cumweight[np.maximum(np.asarray(lo) - 1, 0)],
                        0.0)
        return base


class MultiGraph:
    """Weighted undirected multigraph on vertices ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    u, v:
        Endpoint arrays of the ``m`` multi-edges (any integer dtype).
    w:
        Strictly positive edge weights.
    validate:
        When true (default), check index ranges, weight positivity, and
        reject self-loops.
    """

    __slots__ = ("n", "u", "v", "w", "_adj", "_wdeg")

    def __init__(self, n: int,
                 u: Iterable[int] | np.ndarray,
                 v: Iterable[int] | np.ndarray,
                 w: Iterable[float] | np.ndarray,
                 validate: bool = True) -> None:
        if n <= 0:
            raise EmptyGraphError("graph must have at least one vertex")
        self.n = int(n)
        self.u = np.ascontiguousarray(u, dtype=np.int64)
        self.v = np.ascontiguousarray(v, dtype=np.int64)
        self.w = np.ascontiguousarray(w, dtype=np.float64)
        if not (self.u.shape == self.v.shape == self.w.shape):
            raise DimensionMismatchError(
                f"edge arrays disagree: u{self.u.shape} v{self.v.shape} "
                f"w{self.w.shape}")
        if self.u.ndim != 1:
            raise DimensionMismatchError("edge arrays must be 1-D")
        if validate and self.m:
            if self.u.min(initial=0) < 0 or self.v.min(initial=0) < 0 \
                    or self.u.max(initial=0) >= n or self.v.max(initial=0) >= n:
                raise GraphStructureError("edge endpoint out of range")
            if np.any(self.u == self.v):
                raise GraphStructureError(
                    "self-loops are not allowed (they contribute nothing "
                    "to a Laplacian)")
            if not np.all(np.isfinite(self.w)) or np.any(self.w <= 0):
                raise GraphStructureError(
                    "edge weights must be finite and strictly positive")
        self._adj: AdjacencyView | None = None
        self._wdeg: np.ndarray | None = None

    # -- basic properties ---------------------------------------------------

    @property
    def m(self) -> int:
        """Number of multi-edges."""
        return self.u.shape[0]

    def weighted_degrees(self) -> np.ndarray:
        """``w(x) = Σ_{e ∋ x} w(e)`` for every vertex (cached)."""
        if self._wdeg is None:
            deg = np.zeros(self.n, dtype=np.float64)
            np.add.at(deg, self.u, self.w)
            np.add.at(deg, self.v, self.w)
            charge(*P.reduce_cost(2 * self.m), label="weighted_degrees")
            self._wdeg = deg
        return self._wdeg

    def multi_degrees(self) -> np.ndarray:
        """Number of incident multi-edges per vertex."""
        deg = np.zeros(self.n, dtype=np.int64)
        np.add.at(deg, self.u, 1)
        np.add.at(deg, self.v, 1)
        return deg

    def total_weight(self) -> float:
        """Sum of all multi-edge weights."""
        return float(self.w.sum())

    # -- adjacency ----------------------------------------------------------

    def adjacency(self) -> AdjacencyView:
        """CSR adjacency over the ``2m`` half-edges (cached).

        Built with a counting sort on endpoints — the parallel edge-list
        → adjacency-list conversion of Lemma 2.7, charged ``(m, log m)``.
        """
        if self._adj is None:
            self._adj = self._build_adjacency()
        return self._adj

    def _build_adjacency(self) -> AdjacencyView:
        m, n = self.m, self.n
        ends = np.concatenate([self.u, self.v])
        others = np.concatenate([self.v, self.u])
        ws = np.concatenate([self.w, self.w])
        eid = np.concatenate([np.arange(m, dtype=np.int64),
                              np.arange(m, dtype=np.int64)])
        order = np.argsort(ends, kind="stable")
        ends_sorted = ends[order]
        counts = np.bincount(ends_sorted, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        weight = ws[order]
        cumweight = np.cumsum(weight)
        charge(*P.convert_cost(2 * m), label="adjacency_build")
        return AdjacencyView(indptr=indptr,
                             neighbor=others[order],
                             weight=weight,
                             edge_id=eid[order],
                             cumweight=cumweight)

    def neighbors(self, x: int) -> np.ndarray:
        """Distinct sorted neighbours of vertex ``x``."""
        nbr, _, _ = self.adjacency().row(x)
        return np.unique(nbr)

    # -- derived graphs ------------------------------------------------------

    def copy(self) -> "MultiGraph":
        return MultiGraph(self.n, self.u.copy(), self.v.copy(),
                          self.w.copy(), validate=False)

    def with_edges(self, u: np.ndarray, v: np.ndarray,
                   w: np.ndarray) -> "MultiGraph":
        """Same vertex set, new edge arrays (validated)."""
        return MultiGraph(self.n, u, v, w)

    def edge_subset(self, mask: np.ndarray) -> "MultiGraph":
        """Keep only the multi-edges selected by boolean ``mask``."""
        if mask.shape != (self.m,):
            raise DimensionMismatchError("mask must have one entry per edge")
        return MultiGraph(self.n, self.u[mask], self.v[mask], self.w[mask],
                          validate=False)

    def induced_subgraph(self, vertices: np.ndarray
                         ) -> tuple["MultiGraph", np.ndarray]:
        """Induced subgraph on ``vertices`` with relabelled ids.

        Returns ``(H, vertices)`` where ``H`` has ``len(vertices)``
        vertices labelled by position in ``vertices`` (which is the
        mapping back to the parent's ids).
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            raise EmptyGraphError("induced subgraph needs >= 1 vertex")
        pos = np.full(self.n, -1, dtype=np.int64)
        pos[vertices] = np.arange(vertices.size)
        keep = (pos[self.u] >= 0) & (pos[self.v] >= 0)
        charge(*P.map_cost(self.m), label="induced_subgraph")
        return (MultiGraph(vertices.size, pos[self.u[keep]],
                           pos[self.v[keep]], self.w[keep], validate=False),
                vertices)

    def coalesced(self) -> "MultiGraph":
        """Merge parallel multi-edges into single edges (weights add).

        The resulting graph is simple and has the same Laplacian.
        """
        if self.m == 0:
            return self.copy()
        lo = np.minimum(self.u, self.v)
        hi = np.maximum(self.u, self.v)
        key = lo * self.n + hi
        uniq, inverse = np.unique(key, return_inverse=True)
        w = np.zeros(uniq.size, dtype=np.float64)
        np.add.at(w, inverse, self.w)
        charge(*P.sort_cost(self.m), label="coalesce")
        return MultiGraph(self.n, uniq // self.n, uniq % self.n, w,
                          validate=False)

    def relabeled(self, new_ids: np.ndarray, n_new: int) -> "MultiGraph":
        """Map vertex ``x`` to ``new_ids[x]`` (must be injective on the
        support of the edge arrays)."""
        return MultiGraph(n_new, new_ids[self.u], new_ids[self.v],
                          self.w.copy())

    # -- dunder -----------------------------------------------------------

    def __repr__(self) -> str:
        return f"MultiGraph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        """Structural equality of the edge arrays (order-sensitive)."""
        if not isinstance(other, MultiGraph):
            return NotImplemented
        return (self.n == other.n
                and np.array_equal(self.u, other.u)
                and np.array_equal(self.v, other.v)
                and np.array_equal(self.w, other.w))

    def __hash__(self) -> int:  # pragma: no cover - not hashable
        raise TypeError("MultiGraph is mutable-array backed; not hashable")

    @staticmethod
    def from_edges(n: int, edges: Sequence[tuple[int, int, float]]
                   ) -> "MultiGraph":
        """Convenience constructor from ``(u, v, w)`` triples."""
        if len(edges) == 0:
            return MultiGraph(n, np.empty(0, np.int64),
                              np.empty(0, np.int64),
                              np.empty(0, np.float64))
        arr = np.asarray(edges, dtype=np.float64)
        return MultiGraph(n, arr[:, 0].astype(np.int64),
                          arr[:, 1].astype(np.int64), arr[:, 2])
