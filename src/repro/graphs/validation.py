"""Structural validation: connectivity and sanity checks.

Fact 2.3 of the paper: for connected ``G``, ``ker(L_G) = span(1)``.
The solver therefore requires a connected input; these helpers verify
it (union–find over the edge arrays — near-linear work, and unlike a
BFS it is also the natural "parallel" formulation via hooking).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphStructureError, NotConnectedError
from repro.graphs.multigraph import MultiGraph
from repro.pram import charge
from repro.pram import primitives as P

__all__ = ["connected_components", "is_connected", "validate_graph",
           "require_connected"]


class _DSU:
    """Array-based union–find with path halving and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        p = self.parent
        while p[x] != x:
            p[x] = p[p[x]]
            x = p[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True


def connected_components(graph: MultiGraph) -> np.ndarray:
    """Component label (0-based, order of first appearance) per vertex."""
    dsu = _DSU(graph.n)
    for a, b in zip(graph.u.tolist(), graph.v.tolist()):
        dsu.union(a, b)
    roots = np.fromiter((dsu.find(x) for x in range(graph.n)),
                        dtype=np.int64, count=graph.n)
    _, labels = np.unique(roots, return_inverse=True)
    charge(*P.reduce_cost(graph.m + graph.n), label="connected_components")
    return labels


def is_connected(graph: MultiGraph) -> bool:
    """True iff the graph has exactly one connected component."""
    if graph.n == 1:
        return True
    if graph.m == 0:
        return False
    return int(connected_components(graph).max()) == 0


def require_connected(graph: MultiGraph, what: str = "input graph") -> None:
    """Raise :class:`NotConnectedError` unless the graph is connected."""
    if not is_connected(graph):
        raise NotConnectedError(
            f"{what} must be connected (Fact 2.3: the solver needs "
            f"ker(L) = span(1))")


def validate_graph(graph: MultiGraph, connected: bool = True) -> None:
    """Full structural validation with specific error messages.

    Checks index ranges, self-loops, weight positivity/finiteness (these
    re-run even if the constructor validated, so corrupted-in-place
    arrays are caught), and optionally connectivity.
    """
    if graph.m:
        if graph.u.min() < 0 or graph.v.min() < 0 \
                or graph.u.max() >= graph.n or graph.v.max() >= graph.n:
            raise GraphStructureError("edge endpoint out of range")
        if np.any(graph.u == graph.v):
            raise GraphStructureError("self-loop present")
        if not np.all(np.isfinite(graph.w)):
            raise GraphStructureError("non-finite edge weight")
        if np.any(graph.w <= 0):
            raise GraphStructureError("non-positive edge weight")
    if connected:
        require_connected(graph)
