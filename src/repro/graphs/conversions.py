"""Representation conversions (Lemma 2.7) and external interop.

The paper's algorithms alternate between the edge-list view (sampling a
walk per multi-edge) and the adjacency view (stepping a walk); Lemma 2.7
[BM10] provides the ``O(m)`` work / ``O(log m)`` depth conversion.  The
in-library conversion lives on :class:`MultiGraph.adjacency`; this module
adds the inverse direction plus scipy/networkx bridges.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import GraphStructureError
from repro.graphs.multigraph import AdjacencyView, MultiGraph
from repro.pram import charge
from repro.pram import primitives as P

__all__ = [
    "edge_list_to_adjacency",
    "adjacency_to_edge_list",
    "from_scipy_adjacency",
    "from_scipy_laplacian",
    "from_networkx",
    "to_networkx",
]


def edge_list_to_adjacency(graph: MultiGraph) -> AdjacencyView:
    """Edge list → CSR adjacency (Lemma 2.7 forward direction)."""
    return graph.adjacency()


def adjacency_to_edge_list(n: int, adj: AdjacencyView) -> MultiGraph:
    """CSR adjacency → edge list (Lemma 2.7 reverse direction).

    Each undirected multi-edge appears as two half-edges; we keep the
    half-edge whose source is the smaller endpoint (ties impossible —
    self-loops are rejected upstream), reconstructing each multi-edge
    exactly once even for parallel edges (dedup by ``edge_id``).
    """
    sources = np.repeat(np.arange(n, dtype=np.int64),
                        np.diff(adj.indptr))
    eid = adj.edge_id
    order = np.argsort(eid, kind="stable")
    first_half = order[0::2]  # every edge id appears exactly twice
    u = sources[first_half]
    v = adj.neighbor[first_half]
    w = adj.weight[first_half]
    charge(*P.convert_cost(len(sources)), label="adjacency_to_edge_list")
    return MultiGraph(n, u, v, w, validate=False)


def from_scipy_adjacency(A: sp.spmatrix | np.ndarray) -> MultiGraph:
    """Build a graph from a symmetric non-negative adjacency matrix.

    Zero diagonal required; only the upper triangle is read (the matrix
    must be symmetric — validated approximately).
    """
    A = sp.csr_matrix(A)
    if A.shape[0] != A.shape[1]:
        raise GraphStructureError("adjacency matrix must be square")
    if abs(A - A.T).max() > 1e-12 * max(abs(A).max(), 1.0):
        raise GraphStructureError("adjacency matrix must be symmetric")
    coo = sp.triu(A, k=1).tocoo()
    if (A.diagonal() != 0).any():
        raise GraphStructureError("adjacency diagonal must be zero")
    return MultiGraph(A.shape[0], coo.row.astype(np.int64),
                      coo.col.astype(np.int64), coo.data.astype(np.float64))


def from_scipy_laplacian(L: sp.spmatrix | np.ndarray) -> MultiGraph:
    """Build a graph from a Laplacian matrix.

    Validates zero row sums and non-positive off-diagonals (the
    definition of a Laplacian from the abstract of the paper).
    """
    L = sp.csr_matrix(L)
    n = L.shape[0]
    if L.shape[0] != L.shape[1]:
        raise GraphStructureError("Laplacian must be square")
    rowsums = np.asarray(L.sum(axis=1)).ravel()
    scale = max(float(abs(L).max()), 1.0)
    if np.abs(rowsums).max() > 1e-9 * scale:
        raise GraphStructureError("Laplacian rows must sum to zero")
    off = L - sp.diags(L.diagonal())
    if off.nnz and off.data.max() > 1e-12 * scale:
        raise GraphStructureError("Laplacian off-diagonals must be <= 0")
    return from_scipy_adjacency(-off)


def from_networkx(G) -> MultiGraph:
    """Convert a (multi)graph from networkx; ``weight`` attr defaults 1."""
    import networkx as nx  # local import: optional dependency

    nodes = list(G.nodes())
    index = {node: i for i, node in enumerate(nodes)}
    us, vs, ws = [], [], []
    if G.is_multigraph():
        edges = G.edges(keys=False, data=True)
    else:
        edges = G.edges(data=True)
    for a, b, data in edges:
        if a == b:
            continue  # drop self-loops: they contribute nothing
        us.append(index[a])
        vs.append(index[b])
        ws.append(float(data.get("weight", 1.0)))
    return MultiGraph(len(nodes), np.array(us, np.int64),
                      np.array(vs, np.int64), np.array(ws, np.float64))


def to_networkx(graph: MultiGraph):
    """Convert to an ``networkx.MultiGraph`` preserving parallel edges."""
    import networkx as nx

    G = nx.MultiGraph()
    G.add_nodes_from(range(graph.n))
    for a, b, w in zip(graph.u.tolist(), graph.v.tolist(),
                       graph.w.tolist()):
        G.add_edge(a, b, weight=w)
    return G
