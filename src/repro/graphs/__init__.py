"""Weighted undirected multigraph substrate.

The paper's algorithms are stated "completely with respect to the
multi-graphs instead of matrices" (Section 2), so this package is the
foundation everything else builds on:

* :class:`repro.graphs.multigraph.MultiGraph` — edge-array multigraph
  with cached CSR adjacency views.
* :mod:`repro.graphs.laplacian` — Laplacian assembly and the sub-block
  extractions used by the block Cholesky factorization.
* :mod:`repro.graphs.generators` — graph families used by the examples,
  tests, and benchmark workloads.
* :mod:`repro.graphs.conversions` — edge-list ↔ adjacency-list
  conversion (Lemma 2.7) and scipy/networkx interop.
* :mod:`repro.graphs.validation` — structural checks (Fact 2.3 needs
  connectivity).
* :mod:`repro.graphs.io` — ``.npz`` persistence.
"""

from repro.graphs.multigraph import MultiGraph
from repro.graphs.laplacian import (
    laplacian,
    laplacian_blocks,
    apply_laplacian,
    adjacency_matrix,
)
from repro.graphs import generators
from repro.graphs.conversions import (
    edge_list_to_adjacency,
    adjacency_to_edge_list,
    from_scipy_adjacency,
    from_scipy_laplacian,
    from_networkx,
    to_networkx,
)
from repro.graphs.validation import (
    connected_components,
    is_connected,
    validate_graph,
)

__all__ = [
    "MultiGraph",
    "laplacian",
    "laplacian_blocks",
    "apply_laplacian",
    "adjacency_matrix",
    "generators",
    "edge_list_to_adjacency",
    "adjacency_to_edge_list",
    "from_scipy_adjacency",
    "from_scipy_laplacian",
    "from_networkx",
    "to_networkx",
    "connected_components",
    "is_connected",
    "validate_graph",
]
