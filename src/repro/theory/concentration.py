"""Empirical verification of the matrix-martingale argument (Section 5).

Theorem 3.9-(5)'s proof tracks the normalised deviation
``‖ L^{+/2} (L^(k) − L) L^{+/2} ‖`` of the partial factorization from
the true Laplacian and shows it stays ≤ 0.3 whp via matrix Freedman
(Theorem 5.5).  These utilities measure that deviation level-by-level
on real runs (dense, small-n) so benchmark E8/E9 can report the
martingale's actual excursion against the theoretical envelope.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.linalg

from repro.core.chain import CholeskyChain
from repro.graphs.laplacian import laplacian
from repro.graphs.multigraph import MultiGraph
from repro.linalg.loewner import approximation_factor

__all__ = ["martingale_deviation_trace", "empirical_success_rate",
           "freedman_bound"]


def _normalizer(L: np.ndarray) -> np.ndarray:
    """``L^{+/2}`` (dense)."""
    vals, vecs = scipy.linalg.eigh(L)
    tol = 1e-9 * max(abs(vals).max(), 1.0)
    keep = vals > tol
    return vecs[:, keep] * (1.0 / np.sqrt(vals[keep])) @ vecs[:, keep].T


def martingale_deviation_trace(graph: MultiGraph, chain: CholeskyChain
                               ) -> list[float]:
    """``‖ \\overline{L^(k) − L} ‖`` after each elimination round.

    ``L^(k) = (U^(k))ᵀ D^(k) U^(k)`` is reconstructed by truncating the
    chain at level ``k``.  The proof of Theorem 3.9 keeps this below
    0.3 for every ``k`` whp.
    """
    L = laplacian(graph).toarray()
    half = _normalizer(L)
    devs: list[float] = []
    graphs = chain._require_graphs()  # informative error on streamed chains
    for k in range(1, chain.d + 1):
        truncated = CholeskyChain(
            n=chain.n,
            graphs=graphs[: k + 1],
            levels=chain.levels[:k],
            final_active=chain.levels[k - 1].C,
            final_pinv=np.empty((0, 0)),
            jacobi_eps=chain.jacobi_eps)
        Lk = truncated.dense_factorization()
        devs.append(float(np.linalg.norm(half @ (Lk - L) @ half, 2)))
    return devs


def empirical_success_rate(graph: MultiGraph, trials: int,
                           target_eps: float = 0.5,
                           seed: int = 0,
                           options=None) -> float:
    """Fraction of independent ``BlockCholesky`` runs achieving
    ``(U^(d))ᵀ D^(d) U^(d) ≈_{target_eps} L`` (Theorem 3.9-(5))."""
    from repro.core.block_cholesky import block_cholesky
    from repro.rng import as_generator

    rng = as_generator(seed)
    L = laplacian(graph).toarray()
    wins = 0
    for _ in range(trials):
        chain = block_cholesky(graph, options, seed=rng)
        eps = approximation_factor(chain.dense_factorization(), L)
        wins += int(eps <= target_eps)
    return wins / trials


def freedman_bound(t: float, sigma2: float, R: float, n: int) -> float:
    """Theorem 5.5 failure-probability envelope
    ``n · exp(−t²/2 / (σ² + Rt/3))``."""
    if t <= 0:
        return float(n)
    return float(n) * math.exp(-(t * t / 2.0) / (sigma2 + R * t / 3.0))
