"""Smallest Laplacian eigenpairs via solver-driven inverse iteration.

Generalises :func:`repro.apps.partitioning.fiedler_vector` to the ``k``
smallest non-trivial eigenpairs by deflated inverse power iteration:
each step applies ``L⁺`` (one solver call) and re-orthogonalises
against ``1`` and the already-converged eigenvectors.  The standard
building block for spectral embeddings and clustering.
"""

from __future__ import annotations

import numpy as np

from repro.config import SolverOptions
from repro.core.solver import LaplacianSolver
from repro.errors import ConvergenceError, ReproError
from repro.graphs.multigraph import MultiGraph
from repro.rng import as_generator

__all__ = ["smallest_eigenpairs"]


def _orthogonalize(v: np.ndarray, basis: list[np.ndarray]) -> np.ndarray:
    v = v - v.mean()  # against 1
    for u in basis:
        v = v - float(u @ v) * u
    return v


def smallest_eigenpairs(graph: MultiGraph, k: int,
                        eps: float = 1e-8,
                        max_iter: int = 300,
                        tol: float = 1e-8,
                        solver: LaplacianSolver | None = None,
                        options: SolverOptions | None = None,
                        seed=None) -> tuple[np.ndarray, np.ndarray]:
    """``(eigenvalues, eigenvectors)`` for the ``k`` smallest non-zero
    Laplacian eigenvalues (ascending; vectors as columns).

    Raises :class:`ConvergenceError` if an eigenpair fails to settle —
    typically a (near-)degenerate pair, in which case any vector of the
    eigenspace is acceptable and ``tol`` can be loosened.
    """
    if not 1 <= k < graph.n:
        raise ReproError(f"need 1 <= k < n, got k={k}")
    rng = as_generator(seed)
    if solver is None:
        solver = LaplacianSolver(graph, options=options, seed=rng)

    basis: list[np.ndarray] = []
    values: list[float] = []
    for _ in range(k):
        v = _orthogonalize(rng.standard_normal(graph.n), basis)
        v /= np.linalg.norm(v)
        converged = False
        for _ in range(max_iter):
            w = solver.solve(v, eps=eps)
            w = _orthogonalize(w, basis)
            norm = np.linalg.norm(w)
            if norm == 0:
                raise ConvergenceError("inverse iteration collapsed")
            w /= norm
            align = abs(float(v @ w))
            v = w
            if 1.0 - align < tol:
                converged = True
                break
        if not converged:
            raise ConvergenceError(
                f"eigenpair {len(values) + 1} did not converge in "
                f"{max_iter} inverse iterations (degenerate spectrum?)")
        lam = float(v @ solver.apply_L(v))
        basis.append(v)
        values.append(lam)
    order = np.argsort(values)
    vals = np.asarray(values)[order]
    vecs = np.stack([basis[i] for i in order], axis=1)
    return vals, vecs
