"""Complexity-shape fitting for the scaling benchmarks (E2/E3/E5).

The theorems predict shapes like ``work = Õ(m log³ n)`` and
``depth = O(log² n loglog n)``.  With laptop-scale ``n`` one cannot
measure exponents of ``log log n``; what *can* be verified is:

* the power-law exponent of work vs ``m`` is ≈ 1 (near-linear);
* ``work / (m logᵖ n)`` is flattest for a small constant ``p``;
* depth grows strictly slower than any ``n^c`` (polylog).

These helpers fit those shapes from measured ``(size, cost)`` tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["loglog_slope", "fit_power_law", "PowerLawFit",
           "polylog_ratio_table", "is_polylog_shaped"]


@dataclass(frozen=True)
class PowerLawFit:
    """``y ≈ coeff · x^exponent`` with goodness-of-fit ``r2``."""

    exponent: float
    coeff: float
    r2: float


def loglog_slope(x, y) -> float:
    """Least-squares slope of ``log y`` against ``log x``."""
    return fit_power_law(x, y).exponent


def fit_power_law(x, y) -> PowerLawFit:
    """Fit ``y = c·x^a`` by linear regression in log–log space."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ValueError("need >= 2 matching samples")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law fit needs positive data")
    lx, ly = np.log(x), np.log(y)
    A = np.stack([lx, np.ones_like(lx)], axis=1)
    (a, logc), res, _, _ = np.linalg.lstsq(A, ly, rcond=None)
    ss_tot = float(((ly - ly.mean()) ** 2).sum())
    ss_res = float(res[0]) if res.size else 0.0
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(exponent=float(a), coeff=float(math.exp(logc)),
                       r2=r2)


def polylog_ratio_table(n, cost, powers=(0, 1, 2, 3, 4)
                        ) -> dict[int, np.ndarray]:
    """``cost / logᵖ n`` for each candidate power ``p``.

    The power whose ratio column is flattest (smallest max/min spread)
    is the empirical polylog degree.
    """
    n = np.asarray(n, dtype=np.float64)
    cost = np.asarray(cost, dtype=np.float64)
    out: dict[int, np.ndarray] = {}
    for p in powers:
        out[p] = cost / np.log2(np.maximum(n, 2.0)) ** p
    return out


def is_polylog_shaped(n, cost, max_power: int = 6,
                      tolerance: float = 2.5) -> bool:
    """Heuristic check that ``cost = O(logᵖ n)`` for some ``p ≤ max_power``.

    True when some ratio column ``cost / logᵖ n`` varies by at most
    ``tolerance``× across the sweep — loose on purpose: scaling tests
    must not be flaky, they guard against *polynomial* blow-ups, not
    constant factors.
    """
    table = polylog_ratio_table(n, cost, powers=tuple(range(max_power + 1)))
    for ratios in table.values():
        if ratios.max() <= tolerance * ratios.min():
            return True
    return False
