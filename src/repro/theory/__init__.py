"""Theory-side utilities: empirical concentration checks and
complexity-shape fitting for the scaling benchmarks."""

from repro.theory.concentration import (
    martingale_deviation_trace,
    empirical_success_rate,
    freedman_bound,
)
from repro.theory.complexity import (
    loglog_slope,
    fit_power_law,
    polylog_ratio_table,
)
from repro.theory.spectra import smallest_eigenpairs

__all__ = [
    "martingale_deviation_trace",
    "empirical_success_rate",
    "freedman_bound",
    "loglog_slope",
    "fit_power_law",
    "polylog_ratio_table",
    "smallest_eigenpairs",
]
