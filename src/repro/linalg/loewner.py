"""Loewner-order approximation checks: is ``A ≈_ε B``?

Section 2 of the paper defines ``A ≈_ε B`` iff ``e^{-ε} B ≼ A ≼ e^ε B``.
For Laplacians with the common kernel ``span(1)`` this is equivalent to
every generalized eigenvalue ``λ`` of ``(A, B)`` restricted to ``1⊥``
lying in ``[e^{-ε}, e^ε]``.  We compute the extreme generalized
eigenvalues of ``B^{+/2} A B^{+/2}`` densely (these checkers are test /
benchmark oracles, not part of the solver's critical path).

:func:`approximation_factor` returns the smallest ε for which
``A ≈_ε B`` holds — i.e. ``max(|log λ_min|, |log λ_max|)``.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.errors import DimensionMismatchError
from repro.graphs.laplacian import laplacian
from repro.graphs.multigraph import MultiGraph

__all__ = [
    "relative_spectral_bounds",
    "approximation_factor",
    "is_epsilon_approximation",
    "operator_approximation_factor",
]

_KERNEL_TOL = 1e-9


def _dense(M) -> np.ndarray:
    if isinstance(M, MultiGraph):
        M = laplacian(M)
    if sp.issparse(M):
        M = M.toarray()
    return np.asarray(M, dtype=np.float64)


def _half_pinv(B: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``B^{+/2}`` and an orthonormal basis of ``range(B)``."""
    vals, vecs = scipy.linalg.eigh(B)
    tol = _KERNEL_TOL * max(abs(vals).max(), 1.0)
    keep = vals > tol
    half = vecs[:, keep] * (1.0 / np.sqrt(vals[keep]))
    return half, vecs[:, keep]


def relative_spectral_bounds(A, B) -> tuple[float, float]:
    """``(λ_min, λ_max)`` of the pencil ``(A, B)`` restricted to
    ``range(B)``.

    Requires ``ker(B) ⊆ ker(A)`` (checked); otherwise no finite ε
    satisfies ``A ≼ e^ε B`` and we return ``(λ_min, inf)``.
    """
    Ad, Bd = _dense(A), _dense(B)
    if Ad.shape != Bd.shape:
        raise DimensionMismatchError("A and B must have equal shapes")
    half, basis = _half_pinv(Bd)
    # Check ker(B) ⊆ ker(A):  A restricted to ker(B) must vanish.
    n = Ad.shape[0]
    if basis.shape[1] < n:
        proj = np.eye(n) - basis @ basis.T
        leak = np.linalg.norm(proj @ Ad @ proj)
        if leak > _KERNEL_TOL * max(np.linalg.norm(Ad), 1.0):
            vals = scipy.linalg.eigvalsh(half.T @ Ad @ half)
            return float(vals.min()), float("inf")
    M = half.T @ Ad @ half
    vals = scipy.linalg.eigvalsh(M)
    return float(vals.min()), float(vals.max())


def approximation_factor(A, B) -> float:
    """Smallest ε ≥ 0 such that ``A ≈_ε B`` (``inf`` when none exists).

    By symmetry of the relation this also certifies ``B ≈_ε A``.
    """
    lo, hi = relative_spectral_bounds(A, B)
    if lo <= 0 or not np.isfinite(hi):
        return float("inf")
    return float(max(abs(np.log(lo)), abs(np.log(hi))))


def is_epsilon_approximation(A, B, eps: float,
                             slack: float = 1e-7) -> bool:
    """``A ≈_ε B`` test with a small numerical slack."""
    return approximation_factor(A, B) <= eps + slack


def operator_approximation_factor(apply_W, L) -> float:
    """ε such that the *linear operator* ``W ≈_ε L⁺``.

    Materialises ``W`` by applying it to the identity's columns (the
    operator is small-n in tests/benches) and compares against
    ``dense_laplacian_pinv(L)``.
    """
    from repro.linalg.pinv import dense_laplacian_pinv

    Ld = _dense(L)
    n = Ld.shape[0]
    W = np.zeros((n, n))
    for j in range(n):
        e = np.full(n, -1.0 / n)
        e[j] += 1.0  # projected basis vector of 1⊥
        W[:, j] = apply_W(e)
    # Restrict to 1⊥ (project rows too): the guarantee W⁺ ≈ L concerns
    # the operator on the Laplacian's range; W may act arbitrarily on 1.
    W = W - W.mean(axis=0, keepdims=True)
    W = 0.5 * (W + W.T)  # symmetrise rounding noise
    return approximation_factor(W, dense_laplacian_pinv(Ld))
