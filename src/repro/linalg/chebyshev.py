"""Chebyshev semi-iteration (extension module).

An alternative outer loop to preconditioned Richardson (Theorem 3.8):
given spectral bounds ``λ_min ≤ spec(B A) ≤ λ_max`` on ``1⊥``, Chebyshev
acceleration converges in ``O(sqrt(κ) log 1/ε)`` iterations instead of
Richardson's ``O(κ log 1/ε)``.  With the paper's constant-quality
preconditioner (κ ≤ e²) the asymptotic difference is a constant, but it
is a practically useful knob and exercises the operator interfaces.

Accepts one right-hand side ``(n,)`` or a block ``(n, k)``.  The
Chebyshev recurrence scalars (``ρ``, ``σ₁``) depend only on the spectral
bounds, so a block iterates all columns in lockstep with sparse×dense
products; with ``tol`` set, converged columns are frozen (and compacted
out of the active block).

Stopping rules
--------------
``stop_rule="preconditioned"`` (default) freezes a column from the
*preconditioned* quantities the recurrence already holds: the update
``d ≈ (2ρ/δ)·B(b − Lx) + momentum`` is a constant-factor proxy for the
preconditioned residual, so a column whose update norm has fallen below
``(λ_min/λ_max) · tol_j · ‖B b_j‖`` is frozen **before** the next
iteration's operator applies — each converged column saves the one
``apply_L`` (and one ``B`` apply) per iteration that a raw-residual
check would spend just to confirm convergence.  The ``λ_min/λ_max``
factor compensates the metric change conservatively.

``stop_rule="raw"`` keeps the previous behaviour: freeze once the raw
residual satisfies ``‖L x_j − b_j‖ ≤ tol_j · ‖b_j‖`` (measured at the
top of the next iteration, i.e. one extra ``apply_L`` per column).
"""

from __future__ import annotations

from typing import Callable, Literal

import numpy as np

from repro.linalg.ops import as_apply, project_out_ones

__all__ = ["chebyshev_iteration"]

StopRule = Literal["preconditioned", "raw"]


def chebyshev_iteration(L,
                        B: Callable[[np.ndarray], np.ndarray],
                        b: np.ndarray,
                        lam_min: float,
                        lam_max: float,
                        iterations: int,
                        singular: bool = True,
                        tol: float | np.ndarray | None = None,
                        stop_rule: StopRule = "preconditioned",
                        ctx=None,
                        col_ids: np.ndarray | None = None,
                        ship=None) -> np.ndarray:
    """Approximate ``L⁺ b`` by Chebyshev-accelerated iteration on ``BA``.

    Parameters
    ----------
    L, B:
        The system operator and a preconditioner approximating ``L⁺``.
        For blocked ``b`` both must accept ``(n, j)`` column blocks.
    lam_min, lam_max:
        Bounds on the spectrum of ``B L`` restricted to ``1⊥``.  For the
        paper's ``W ≈_1 L⁺`` these are ``e⁻¹`` and ``e``.
    iterations:
        Number of Chebyshev steps (a cap when ``tol`` is given).
    tol:
        Optional relative stopping target; scalar or per-column array
        for blocked ``b``.  Interpreted per ``stop_rule`` (see module
        docstring).
    stop_rule:
        ``"preconditioned"`` (default; cheap, no confirmation
        ``apply_L``) or ``"raw"`` (previous raw-residual behaviour).
    ctx:
        Optional :class:`repro.pram.ExecutionContext`: blocked calls
        split their columns into the context's size-determined chunks
        and iterate the chunks on its pool (worker- and
        backend-independent results).
    ship:
        Optional :class:`repro.pram.executor.SolveShipment`.  When
        enabled, the column chunks ship as pure tasks through
        ``run_shipped`` (true process/distributed parallelism) with
        bit-identical results; otherwise the ``ctx`` closure path
        runs.  ``ship`` implies ``L``/``B`` are the owning solver's
        operators.
    """
    if not (0 < lam_min <= lam_max):
        raise ValueError("need 0 < lam_min <= lam_max")
    if iterations < 1:
        raise ValueError("need at least one iteration")
    if stop_rule not in ("preconditioned", "raw"):
        raise ValueError(f"unknown stop_rule {stop_rule!r}")
    apply_L = as_apply(L)
    b = np.asarray(b, dtype=np.float64)
    if b.ndim == 2:
        # Resolved in the calling thread — pool threads do not inherit
        # contextvars, so the blocked kernel gets both explicitly.
        from repro.pram import faults as _faults

        plan = _faults.active_plan()
        flog = _faults.current_fault_log()
        if ctx is not None or ship is not None:
            results = None
            if ship is not None:
                results = ship.run(
                    "chebyshev", b, cols=(tol,), col_ids=col_ids,
                    params={"lam_min": lam_min, "lam_max": lam_max,
                            "iterations": iterations,
                            "singular": singular,
                            "stop_rule": stop_rule})
            if results is None and ctx is not None:
                from repro.pram.executor import run_column_chunks

                results = run_column_chunks(
                    ctx, b,
                    lambda bc, tc, ids: _blocked_chebyshev(
                        apply_L, B, bc, lam_min, lam_max, iterations,
                        singular, tc, stop_rule,
                        col_ids=ids, plan=plan, flog=flog),
                    cols=(tol,), col_ids=col_ids)
            if results is not None:
                return np.hstack(results)
        return _blocked_chebyshev(apply_L, B, b, lam_min, lam_max,
                                  iterations, singular, tol, stop_rule,
                                  col_ids=col_ids, plan=plan, flog=flog)
    if singular:
        b = project_out_ones(b)

    theta = 0.5 * (lam_max + lam_min)
    delta = 0.5 * (lam_max - lam_min)
    bnorm = float(np.linalg.norm(b))

    def residual(x: np.ndarray) -> np.ndarray:
        return b - apply_L(x)

    def precondition(r: np.ndarray) -> np.ndarray:
        z = B(r)
        return project_out_ones(z) if singular else z

    # Standard Chebyshev recurrence (Saad, "Iterative Methods", Alg. 12.1)
    x = np.zeros_like(b)
    r = precondition(b)
    pre_norm0 = float(np.linalg.norm(r))
    d = r / theta
    x = x + d
    if delta == 0.0 or iterations == 1:
        return x
    sigma1 = theta / delta
    rho_old = 1.0 / sigma1
    stop_pre = None if tol is None \
        else (lam_min / lam_max) * float(np.max(tol)) * pre_norm0
    for _ in range(iterations - 1):
        if stop_pre is not None and stop_rule == "preconditioned" \
                and float(np.linalg.norm(d)) <= stop_pre:
            break
        raw = residual(x)
        if stop_pre is not None and stop_rule == "raw" \
                and float(np.linalg.norm(raw)) <= float(np.max(tol)) * bnorm:
            break
        r = precondition(raw)
        rho = 1.0 / (2.0 * sigma1 - rho_old)
        d = rho * rho_old * d + (2.0 * rho / delta) * r
        x = x + d
        rho_old = rho
    return x


def _blocked_chebyshev(apply_L, B, b: np.ndarray,
                       lam_min: float, lam_max: float,
                       iterations: int, singular: bool,
                       tol, stop_rule: StopRule = "preconditioned",
                       col_ids: np.ndarray | None = None,
                       plan=None, flog=None) -> np.ndarray:
    """Chebyshev on an ``(n, k)`` block with column-wise freezing.

    Columns whose update norm goes non-finite are quarantined — frozen
    out of the active block immediately (their output columns are NaN,
    for the caller to detect and escalate) with a ``quarantine`` event
    on ``flog`` — so one broken column cannot poison its siblings.
    """
    n, k = b.shape
    ids = np.arange(k, dtype=np.int64) if col_ids is None \
        else np.asarray(col_ids, dtype=np.int64)
    if singular:
        b = project_out_ones(b)
    theta = 0.5 * (lam_max + lam_min)
    delta = 0.5 * (lam_max - lam_min)
    bnorm = np.linalg.norm(b, axis=0)

    def precondition(r: np.ndarray) -> np.ndarray:
        z = B(r)
        return project_out_ones(z) if singular else z

    out = np.zeros((n, k))
    active = np.arange(k)
    b_act = b
    r = precondition(b_act)
    pre_norm0 = np.linalg.norm(r, axis=0)
    if tol is None:
        stop = stop_pre = None
    else:
        tol_col = np.broadcast_to(np.asarray(tol, dtype=np.float64), (k,))
        stop = tol_col * bnorm
        stop_pre = (lam_min / lam_max) * tol_col * pre_norm0
    d = r / theta
    x = d.copy()
    if delta == 0.0 or iterations == 1:
        out[:, active] = x
        return out
    sigma1 = theta / delta
    rho_old = 1.0 / sigma1
    for it in range(iterations - 1):
        if plan is not None:
            from repro.pram.faults import inject_nan_columns

            inject_nan_columns(plan, x, ids[active], it,
                               "chebyshev", flog)
        nonfin = ~np.isfinite(np.linalg.norm(x, axis=0) +
                              np.linalg.norm(d, axis=0))
        if nonfin.any():
            # Quarantine broken columns: their output stays NaN for
            # the caller to escalate (DESIGN.md §9).
            if flog is not None:
                flog.record(
                    "quarantine", kind="nan",
                    columns=tuple(int(c) for c in ids[active[nonfin]]),
                    detail=f"stage=chebyshev iteration={it}")
            out[:, active[nonfin]] = x[:, nonfin]
            keep = ~nonfin
            active = active[keep]
            if active.size == 0:
                return out
            b_act = b_act[:, keep]
            x = x[:, keep]
            d = d[:, keep]
        if stop_pre is not None and stop_rule == "preconditioned":
            # Freeze on the just-applied preconditioned update — no
            # confirmation apply_L/B for converged columns.
            done = np.linalg.norm(d, axis=0) <= stop_pre[active]
            if done.any():
                out[:, active[done]] = x[:, done]
                keep = ~done
                active = active[keep]
                if active.size == 0:
                    return out
                b_act = b_act[:, keep]
                x = x[:, keep]
                d = d[:, keep]
        raw = b_act - apply_L(x)
        if stop is not None and stop_rule == "raw":
            done = np.linalg.norm(raw, axis=0) <= stop[active]
            if done.any():
                out[:, active[done]] = x[:, done]
                keep = ~done
                active = active[keep]
                if active.size == 0:
                    return out
                b_act = b_act[:, keep]
                raw = raw[:, keep]
                x = x[:, keep]
                d = d[:, keep]
        r = precondition(raw)
        rho = 1.0 / (2.0 * sigma1 - rho_old)
        d = rho * rho_old * d + (2.0 * rho / delta) * r
        x = x + d
        rho_old = rho
    out[:, active] = x
    return out
