"""Chebyshev semi-iteration (extension module).

An alternative outer loop to preconditioned Richardson (Theorem 3.8):
given spectral bounds ``λ_min ≤ spec(B A) ≤ λ_max`` on ``1⊥``, Chebyshev
acceleration converges in ``O(sqrt(κ) log 1/ε)`` iterations instead of
Richardson's ``O(κ log 1/ε)``.  With the paper's constant-quality
preconditioner (κ ≤ e²) the asymptotic difference is a constant, but it
is a practically useful knob and exercises the operator interfaces.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.linalg.ops import as_apply, project_out_ones

__all__ = ["chebyshev_iteration"]


def chebyshev_iteration(L,
                        B: Callable[[np.ndarray], np.ndarray],
                        b: np.ndarray,
                        lam_min: float,
                        lam_max: float,
                        iterations: int,
                        singular: bool = True) -> np.ndarray:
    """Approximate ``L⁺ b`` by Chebyshev-accelerated iteration on ``BA``.

    Parameters
    ----------
    L, B:
        The system operator and a preconditioner approximating ``L⁺``.
    lam_min, lam_max:
        Bounds on the spectrum of ``B L`` restricted to ``1⊥``.  For the
        paper's ``W ≈_1 L⁺`` these are ``e⁻¹`` and ``e``.
    iterations:
        Number of Chebyshev steps.
    """
    if not (0 < lam_min <= lam_max):
        raise ValueError("need 0 < lam_min <= lam_max")
    if iterations < 1:
        raise ValueError("need at least one iteration")
    apply_L = as_apply(L)
    b = np.asarray(b, dtype=np.float64)
    if singular:
        b = project_out_ones(b)

    theta = 0.5 * (lam_max + lam_min)
    delta = 0.5 * (lam_max - lam_min)

    def preconditioned_residual(x: np.ndarray) -> np.ndarray:
        r = B(b - apply_L(x))
        return project_out_ones(r) if singular else r

    # Standard Chebyshev recurrence (Saad, "Iterative Methods", Alg. 12.1)
    x = np.zeros_like(b)
    r = preconditioned_residual(x)
    d = r / theta
    x = x + d
    if delta == 0.0 or iterations == 1:
        return x
    sigma1 = theta / delta
    rho_old = 1.0 / sigma1
    for _ in range(iterations - 1):
        r = preconditioned_residual(x)
        rho = 1.0 / (2.0 * sigma1 - rho_old)
        d = rho * rho_old * d + (2.0 * rho / delta) * r
        x = x + d
        rho_old = rho
    return x
