"""Chebyshev semi-iteration (extension module).

An alternative outer loop to preconditioned Richardson (Theorem 3.8):
given spectral bounds ``λ_min ≤ spec(B A) ≤ λ_max`` on ``1⊥``, Chebyshev
acceleration converges in ``O(sqrt(κ) log 1/ε)`` iterations instead of
Richardson's ``O(κ log 1/ε)``.  With the paper's constant-quality
preconditioner (κ ≤ e²) the asymptotic difference is a constant, but it
is a practically useful knob and exercises the operator interfaces.

Accepts one right-hand side ``(n,)`` or a block ``(n, k)``.  The
Chebyshev recurrence scalars (``ρ``, ``σ₁``) depend only on the spectral
bounds, so a block iterates all columns in lockstep with sparse×dense
products; with ``tol`` set, each column is frozen (and compacted out of
the active block) as soon as its own 2-norm residual target is met.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.linalg.ops import as_apply, project_out_ones

__all__ = ["chebyshev_iteration"]


def chebyshev_iteration(L,
                        B: Callable[[np.ndarray], np.ndarray],
                        b: np.ndarray,
                        lam_min: float,
                        lam_max: float,
                        iterations: int,
                        singular: bool = True,
                        tol: float | np.ndarray | None = None
                        ) -> np.ndarray:
    """Approximate ``L⁺ b`` by Chebyshev-accelerated iteration on ``BA``.

    Parameters
    ----------
    L, B:
        The system operator and a preconditioner approximating ``L⁺``.
        For blocked ``b`` both must accept ``(n, j)`` column blocks.
    lam_min, lam_max:
        Bounds on the spectrum of ``B L`` restricted to ``1⊥``.  For the
        paper's ``W ≈_1 L⁺`` these are ``e⁻¹`` and ``e``.
    iterations:
        Number of Chebyshev steps (a cap when ``tol`` is given).
    tol:
        Optional relative 2-norm residual target; scalar or per-column
        array for blocked ``b``.  A column is frozen once
        ``‖L x_j − b_j‖ ≤ tol_j · ‖b_j‖``.
    """
    if not (0 < lam_min <= lam_max):
        raise ValueError("need 0 < lam_min <= lam_max")
    if iterations < 1:
        raise ValueError("need at least one iteration")
    apply_L = as_apply(L)
    b = np.asarray(b, dtype=np.float64)
    if b.ndim == 2:
        return _blocked_chebyshev(apply_L, B, b, lam_min, lam_max,
                                  iterations, singular, tol)
    if singular:
        b = project_out_ones(b)

    theta = 0.5 * (lam_max + lam_min)
    delta = 0.5 * (lam_max - lam_min)
    bnorm = float(np.linalg.norm(b))

    def residual(x: np.ndarray) -> np.ndarray:
        return b - apply_L(x)

    def precondition(r: np.ndarray) -> np.ndarray:
        z = B(r)
        return project_out_ones(z) if singular else z

    # Standard Chebyshev recurrence (Saad, "Iterative Methods", Alg. 12.1)
    x = np.zeros_like(b)
    raw = residual(x)
    r = precondition(raw)
    d = r / theta
    x = x + d
    if delta == 0.0 or iterations == 1:
        return x
    sigma1 = theta / delta
    rho_old = 1.0 / sigma1
    for _ in range(iterations - 1):
        raw = residual(x)
        if tol is not None and float(np.linalg.norm(raw)) \
                <= float(tol) * bnorm:
            break
        r = precondition(raw)
        rho = 1.0 / (2.0 * sigma1 - rho_old)
        d = rho * rho_old * d + (2.0 * rho / delta) * r
        x = x + d
        rho_old = rho
    return x


def _blocked_chebyshev(apply_L, B, b: np.ndarray,
                       lam_min: float, lam_max: float,
                       iterations: int, singular: bool,
                       tol) -> np.ndarray:
    """Chebyshev on an ``(n, k)`` block with column-wise freezing."""
    n, k = b.shape
    if singular:
        b = project_out_ones(b)
    theta = 0.5 * (lam_max + lam_min)
    delta = 0.5 * (lam_max - lam_min)
    bnorm = np.linalg.norm(b, axis=0)
    if tol is None:
        stop = None
    else:
        stop = np.broadcast_to(np.asarray(tol, dtype=np.float64),
                               (k,)) * bnorm

    def precondition(r: np.ndarray) -> np.ndarray:
        z = B(r)
        return project_out_ones(z) if singular else z

    out = np.zeros((n, k))
    active = np.arange(k)
    b_act = b
    r = precondition(b_act)
    d = r / theta
    x = d.copy()
    if delta == 0.0 or iterations == 1:
        out[:, active] = x
        return out
    sigma1 = theta / delta
    rho_old = 1.0 / sigma1
    for _ in range(iterations - 1):
        raw = b_act - apply_L(x)
        if stop is not None:
            done = np.linalg.norm(raw, axis=0) <= stop[active]
            if done.any():
                out[:, active[done]] = x[:, done]
                keep = ~done
                active = active[keep]
                if active.size == 0:
                    return out
                b_act = b_act[:, keep]
                raw = raw[:, keep]
                x = x[:, keep]
                d = d[:, keep]
        r = precondition(raw)
        rho = 1.0 / (2.0 * sigma1 - rho_old)
        d = rho * rho_old * d + (2.0 * rho / delta) * r
        x = x + d
        rho_old = rho
    out[:, active] = x
    return out
