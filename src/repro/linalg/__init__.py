"""Linear-algebra substrate: norms, pseudoinverse oracles, Loewner-order
approximation checks, the Jacobi operator (Lemma 3.5), and iterative
baselines (CG / Chebyshev)."""

from repro.linalg.ops import (
    energy_norm,
    lnorm_error,
    relative_lnorm_error,
    project_out_ones,
    residual_norm,
)
from repro.linalg.pinv import (
    dense_laplacian_pinv,
    solve_dense_pseudo,
    exact_solution,
)
from repro.linalg.loewner import (
    approximation_factor,
    is_epsilon_approximation,
    relative_spectral_bounds,
)
from repro.linalg.jacobi import JacobiOperator, is_k_diagonally_dominant
from repro.linalg.cg import conjugate_gradient, CGResult
from repro.linalg.chebyshev import chebyshev_iteration

__all__ = [
    "energy_norm",
    "lnorm_error",
    "relative_lnorm_error",
    "project_out_ones",
    "residual_norm",
    "dense_laplacian_pinv",
    "solve_dense_pseudo",
    "exact_solution",
    "approximation_factor",
    "is_epsilon_approximation",
    "relative_spectral_bounds",
    "JacobiOperator",
    "is_k_diagonally_dominant",
    "conjugate_gradient",
    "CGResult",
    "chebyshev_iteration",
]
