"""Vector norms and projections used throughout the paper.

The solution-quality metric of Theorems 1.1/1.2 is the ``L``-norm:
``‖x‖_L = sqrt(xᵀ L x)``, and an ε-approximate solution satisfies
``‖x̃ − L⁺b‖_L ≤ ε ‖L⁺b‖_L`` (Section 2).
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import scipy.sparse as sp

from repro.errors import DimensionMismatchError

__all__ = [
    "energy_norm",
    "lnorm_error",
    "relative_lnorm_error",
    "project_out_ones",
    "residual_norm",
    "as_apply",
]

MatLike = "sp.spmatrix | np.ndarray | Callable[[np.ndarray], np.ndarray]"


def as_apply(L) -> Callable[[np.ndarray], np.ndarray]:
    """Coerce a matrix-ish object into an ``x ↦ L x`` callable.

    The callable is shape-preserving: a ``(n,)`` input yields ``(n,)``
    and a blocked ``(n, k)`` input yields ``(n, k)`` (sparse ``@`` on a
    dense block is one BLAS-3-style product).
    """
    if callable(L) and not sp.issparse(L) and not isinstance(L, np.ndarray):
        return L
    return lambda x: np.asarray(L @ x).reshape(np.shape(x))


def energy_norm(L, x: np.ndarray) -> float:
    """``‖x‖_L = sqrt(xᵀ L x)`` (clamped at 0 against rounding)."""
    x = np.asarray(x, dtype=np.float64)
    quad = float(x @ as_apply(L)(x))
    return float(np.sqrt(max(quad, 0.0)))


def lnorm_error(L, x: np.ndarray, xstar: np.ndarray) -> float:
    """``‖x − x*‖_L``."""
    x = np.asarray(x, dtype=np.float64)
    xstar = np.asarray(xstar, dtype=np.float64)
    if x.shape != xstar.shape:
        raise DimensionMismatchError("x and x* must have the same shape")
    return energy_norm(L, x - xstar)


def relative_lnorm_error(L, x: np.ndarray, xstar: np.ndarray) -> float:
    """``‖x − x*‖_L / ‖x*‖_L`` — the ε of Theorems 1.1/1.2.

    Returns ``inf`` when ``x* ∈ ker(L)`` but ``x`` is not (and 0 when
    both are).
    """
    denom = energy_norm(L, xstar)
    num = lnorm_error(L, x, xstar)
    if denom == 0.0:
        return 0.0 if num == 0.0 else float("inf")
    return num / denom


def project_out_ones(b: np.ndarray) -> np.ndarray:
    """Project onto ``1⊥`` — the row space of a connected Laplacian.

    ``L x = b`` is solvable iff ``b ⊥ 1`` (Fact 2.3); the solver
    projects right-hand sides so callers may pass any vector.  Accepts
    a single vector ``(n,)`` or a block of columns ``(n, k)`` — each
    column is projected independently.
    """
    b = np.asarray(b, dtype=np.float64)
    return b - b.mean(axis=0)


def residual_norm(L, x: np.ndarray, b: np.ndarray) -> float:
    """Euclidean residual ``‖L x − b‖₂`` (diagnostics only — the paper's
    guarantees are in the L-norm, not the 2-norm)."""
    return float(np.linalg.norm(as_apply(L)(x) - np.asarray(b)))
