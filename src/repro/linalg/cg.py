"""Conjugate gradient with optional preconditioning.

Used in three roles:

* unpreconditioned CG — the classic iterative baseline (benchmark E12);
* PCG with the KS16 approximate Cholesky — the sequential
  state-of-practice the paper's introduction positions itself against;
* PCG with *our* ``ApplyCholesky`` operator — an alternative outer loop
  to preconditioned Richardson (same preconditioner, often fewer
  iterations in practice; offered as an extension).

For singular Laplacian systems, CG is run on the image of ``L``: the
right-hand side is projected onto ``1⊥`` and iterates are re-centred,
which is exactly solving the system in the pseudo-inverse sense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConvergenceError
from repro.linalg.ops import as_apply, project_out_ones
from repro.pram import charge
from repro.pram import primitives as P

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass
class CGResult:
    """Outcome of a CG run."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def conjugate_gradient(L,
                       b: np.ndarray,
                       tol: float = 1e-8,
                       max_iter: int | None = None,
                       preconditioner: Callable[[np.ndarray], np.ndarray]
                       | None = None,
                       singular: bool = True,
                       matvec_edges: int | None = None,
                       raise_on_fail: bool = False) -> CGResult:
    """Solve ``L x = b`` by (preconditioned) conjugate gradient.

    Parameters
    ----------
    L:
        Matrix, sparse matrix, or callable ``x ↦ L x``.
    tol:
        Relative 2-norm residual target ``‖Lx − b‖ ≤ tol·‖b‖``.
    preconditioner:
        Callable approximating ``L⁺`` (must be SPD on ``1⊥``).
    singular:
        Treat ``L`` as a Laplacian: project ``b`` and re-centre iterates.
    matvec_edges:
        Edge count for ledger charging of each matvec (optional).
    raise_on_fail:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result.
    """
    apply_L = as_apply(L)
    b = np.asarray(b, dtype=np.float64)
    if singular:
        b = project_out_ones(b)
    n = b.shape[0]
    if max_iter is None:
        max_iter = 10 * n

    x = np.zeros(n)
    r = b.copy()
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return CGResult(x=x, iterations=0, converged=True,
                        residual_norms=[0.0])

    def prec(v: np.ndarray) -> np.ndarray:
        if preconditioner is None:
            return v
        out = preconditioner(v)
        return project_out_ones(out) if singular else out

    z = prec(r)
    p = z.copy()
    rz = float(r @ z)
    residuals = [float(np.linalg.norm(r))]
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        Lp = apply_L(p)
        if matvec_edges:
            charge(*P.matvec_cost(matvec_edges), label="cg_matvec")
        pLp = float(p @ Lp)
        if pLp <= 0:
            break  # lost positive-definiteness (numerical breakdown)
        alpha = rz / pLp
        x += alpha * p
        r -= alpha * Lp
        if singular:
            r = project_out_ones(r)
        rnorm = float(np.linalg.norm(r))
        residuals.append(rnorm)
        if rnorm <= tol * bnorm:
            converged = True
            break
        z = prec(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    if singular:
        x = project_out_ones(x)
    if raise_on_fail and not converged:
        raise ConvergenceError(
            f"CG failed to reach {tol} in {it} iterations",
            iterations=it, residual=residuals[-1] / bnorm)
    return CGResult(x=x, iterations=it, converged=converged,
                    residual_norms=residuals)
