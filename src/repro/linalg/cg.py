"""Conjugate gradient with optional preconditioning.

Used in three roles:

* unpreconditioned CG — the classic iterative baseline (benchmark E12);
* PCG with the KS16 approximate Cholesky — the sequential
  state-of-practice the paper's introduction positions itself against;
* PCG with *our* ``ApplyCholesky`` operator — an alternative outer loop
  to preconditioned Richardson (same preconditioner, often fewer
  iterations in practice; offered as an extension).

For singular Laplacian systems, CG is run on the image of ``L``: the
right-hand side is projected onto ``1⊥`` and iterates are re-centred,
which is exactly solving the system in the pseudo-inverse sense.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.errors import ConvergenceError, NumericalBreakdownError
from repro.linalg.ops import as_apply, project_out_ones
from repro.pram import charge
from repro.pram import primitives as P

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass
class CGResult:
    """Outcome of a CG run."""

    x: np.ndarray
    iterations: int
    converged: bool
    residual_norms: list[float] = field(default_factory=list)
    #: Blocked solves only: iterations each column ran before it
    #: converged (``None`` for single-vector solves).
    per_column_iterations: np.ndarray | None = None
    #: Global indices of columns whose iterates went non-finite and
    #: were quarantined (NaN in ``x``; callers escalate them — see
    #: DESIGN.md §9).  ``None`` when no column broke this way.  The
    #: lost-positive-definiteness ``pLp <= 0`` stop is *not* counted
    #: here: those columns hold a valid partial iterate.
    broken_columns: np.ndarray | None = None

    @property
    def final_residual(self) -> float:
        """Last recorded 2-norm residual (NaN when none recorded)."""
        return self.residual_norms[-1] if self.residual_norms else float("nan")


def conjugate_gradient(L,
                       b: np.ndarray,
                       tol: float = 1e-8,
                       max_iter: int | None = None,
                       preconditioner: Callable[[np.ndarray], np.ndarray]
                       | None = None,
                       singular: bool = True,
                       matvec_edges: int | None = None,
                       raise_on_fail: bool = False,
                       ctx=None,
                       col_ids: np.ndarray | None = None,
                       ship=None) -> CGResult:
    """Solve ``L x = b`` by (preconditioned) conjugate gradient.

    Parameters
    ----------
    L:
        Matrix, sparse matrix, or callable ``x ↦ L x``.  For a blocked
        ``b`` of shape ``(n, k)`` the callable must accept ``(n, j)``
        blocks (converged columns are compacted out as they finish).
    tol:
        Relative 2-norm residual target ``‖Lx − b‖ ≤ tol·‖b‖``.  For
        blocked ``b`` this may be a scalar or a length-``k`` array of
        per-column targets.
    preconditioner:
        Callable approximating ``L⁺`` (must be SPD on ``1⊥``).
    singular:
        Treat ``L`` as a Laplacian: project ``b`` and re-centre iterates.
    matvec_edges:
        Edge count for ledger charging of each matvec (optional).
    raise_on_fail:
        Raise :class:`ConvergenceError` instead of returning a
        non-converged result.
    ctx:
        Optional :class:`repro.pram.ExecutionContext`: blocked solves
        split their columns into the context's size-determined chunks
        and run the chunks on its pool (column results are worker- and
        backend-independent; these chunks are numpy-bound closures, so
        the process backend schedules them on threads).
    ship:
        Optional :class:`repro.pram.executor.SolveShipment`.  When
        enabled, the column chunks ship as pure tasks through
        ``run_shipped`` (true process/distributed parallelism) with
        bit-identical results; otherwise the ``ctx`` closure path
        runs.  ``ship`` implies ``L``/``preconditioner`` are the
        owning solver's operators.
    """
    apply_L = as_apply(L)
    b = np.asarray(b, dtype=np.float64)
    if b.ndim == 2:
        # Resolved in the calling thread — pool threads do not inherit
        # contextvars, so the blocked kernel gets both explicitly.
        from repro.pram import faults as _faults

        plan = _faults.active_plan()
        flog = _faults.current_fault_log()
        if ctx is not None or ship is not None:
            results = None
            if ship is not None:
                results = ship.run(
                    "cg", b, cols=(tol,), col_ids=col_ids,
                    params={"max_iter": max_iter, "singular": singular,
                            "matvec_edges": matvec_edges,
                            "raise_on_fail": raise_on_fail,
                            "preconditioned": preconditioner is not None})
            if results is None and ctx is not None:
                from repro.pram.executor import run_column_chunks

                results = run_column_chunks(
                    ctx, b,
                    lambda bc, tc, ids: _blocked_cg(
                        apply_L, bc, tol=tc, max_iter=max_iter,
                        preconditioner=preconditioner, singular=singular,
                        matvec_edges=matvec_edges,
                        raise_on_fail=raise_on_fail,
                        col_ids=ids, plan=plan, flog=flog),
                    cols=(tol,), col_ids=col_ids)
            if results is not None:
                # Per-iteration residual_norms merge as the max over
                # the chunks still running at that iteration, matching
                # the unchunked block's max-over-active semantics.
                depth = max(len(r.residual_norms) for r in results)
                merged = [max(r.residual_norms[i] for r in results
                              if i < len(r.residual_norms))
                          for i in range(depth)]
                broken = [r.broken_columns for r in results
                          if r.broken_columns is not None]
                return CGResult(
                    x=np.hstack([r.x for r in results]),
                    iterations=max(r.iterations for r in results),
                    converged=all(r.converged for r in results),
                    residual_norms=merged,
                    per_column_iterations=np.concatenate(
                        [r.per_column_iterations for r in results]),
                    broken_columns=np.concatenate(broken)
                    if broken else None)
        return _blocked_cg(apply_L, b, tol=tol, max_iter=max_iter,
                           preconditioner=preconditioner,
                           singular=singular, matvec_edges=matvec_edges,
                           raise_on_fail=raise_on_fail,
                           col_ids=col_ids, plan=plan, flog=flog)
    tol = float(tol)
    if singular:
        b = project_out_ones(b)
    n = b.shape[0]
    if max_iter is None:
        max_iter = 10 * n

    x = np.zeros(n)
    r = b.copy()
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return CGResult(x=x, iterations=0, converged=True,
                        residual_norms=[0.0])

    def prec(v: np.ndarray) -> np.ndarray:
        if preconditioner is None:
            return v
        out = preconditioner(v)
        return project_out_ones(out) if singular else out

    z = prec(r)
    p = z.copy()
    rz = float(r @ z)
    residuals = [float(np.linalg.norm(r))]
    converged = False
    broke_down = False
    it = 0
    for it in range(1, max_iter + 1):
        Lp = apply_L(p)
        if matvec_edges:
            charge(*P.matvec_cost(matvec_edges), label="cg_matvec")
        pLp = float(p @ Lp)
        if pLp <= 0:
            break  # lost positive-definiteness (numerical breakdown)
        alpha = rz / pLp
        x += alpha * p
        r -= alpha * Lp
        if singular:
            r = project_out_ones(r)
        rnorm = float(np.linalg.norm(r))
        residuals.append(rnorm)
        if not np.isfinite(rnorm):
            broke_down = True
            break
        if rnorm <= tol * bnorm:
            converged = True
            break
        z = prec(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        rz = rz_new
        p = z + beta * p
    if singular:
        x = project_out_ones(x)
    if raise_on_fail and not converged:
        if broke_down:
            raise NumericalBreakdownError(
                f"CG iterate became non-finite at iteration {it}",
                iteration=it)
        raise ConvergenceError(
            f"CG failed to reach {tol} in {it} iterations",
            iterations=it, residual=residuals[-1] / bnorm)
    return CGResult(x=x, iterations=it, converged=converged,
                    residual_norms=residuals)


def _blocked_cg(apply_L, b: np.ndarray, tol, max_iter: int | None,
                preconditioner, singular: bool,
                matvec_edges: int | None,
                raise_on_fail: bool,
                col_ids: np.ndarray | None = None,
                plan=None, flog=None) -> CGResult:
    """``k`` independent PCG runs sharing batched matvecs.

    Each column carries its own ``α``/``β`` scalars (the runs are
    mathematically independent), but every ``L``/preconditioner apply
    is one sparse×dense-matrix product over the still-active columns;
    converged columns are frozen and compacted out.  Columns whose
    residual goes non-finite are quarantined (frozen, reported via
    ``broken_columns`` in global ``col_ids`` coordinates) instead of
    poisoning the block; ``plan``/``flog`` are the fault plan and log
    resolved by the caller's thread.
    """
    n, k = b.shape
    ids = np.arange(k, dtype=np.int64) if col_ids is None \
        else np.asarray(col_ids, dtype=np.int64)
    broken = np.zeros(k, dtype=bool)
    tol_col = np.broadcast_to(np.asarray(tol, dtype=np.float64),
                              (k,)).copy()
    if singular:
        b = project_out_ones(b)
    if max_iter is None:
        max_iter = 10 * n

    X = np.zeros((n, k))
    used = np.zeros(k, dtype=np.int64)
    bnorm = np.linalg.norm(b, axis=0)
    residuals = [float(bnorm.max(initial=0.0))]
    if not bnorm.any():
        return CGResult(x=X, iterations=0, converged=True,
                        residual_norms=[0.0],
                        per_column_iterations=used)

    def prec(V: np.ndarray) -> np.ndarray:
        if preconditioner is None:
            return V
        out = preconditioner(V)
        return project_out_ones(out) if singular else out

    # Zero columns are converged immediately; start with the rest.
    active = np.flatnonzero(bnorm > 0)
    done_flags = np.zeros(k, dtype=bool)
    done_flags[bnorm == 0] = True
    R = b[:, active].copy()
    Z = prec(R)
    Pm = Z.copy()
    rz = np.einsum("ij,ij->j", R, Z)
    it = 0
    for it in range(1, max_iter + 1):
        if plan is not None:
            from repro.pram.faults import inject_nan_columns

            inject_nan_columns(plan, Pm, ids[active], it - 1, "cg", flog)
        LP = apply_L(Pm)
        if matvec_edges:
            charge(*P.matvec_cost(matvec_edges * active.size),
                   label="cg_matvec")
        pLp = np.einsum("ij,ij->j", Pm, LP)
        # Columns that lost positive-definiteness stop where they are
        # (the scalar path's `break`), without touching the others.
        broke = pLp <= 0
        ok = ~broke
        alpha = np.where(ok, rz / np.where(ok, pLp, 1.0), 0.0)
        X[:, active[ok]] += alpha[ok] * Pm[:, ok]
        R[:, ok] -= alpha[ok] * LP[:, ok]
        if singular:
            R -= R.mean(axis=0)
        rnorm = np.linalg.norm(R, axis=0)
        residuals.append(float(np.nanmax(
            np.where(np.isfinite(rnorm), rnorm, 0.0), initial=0.0)))
        nonfin = ~np.isfinite(rnorm)
        if nonfin.any():
            # Quarantine non-finite columns: freeze them (NaN in X)
            # and report them for escalation (DESIGN.md §9).
            broken[active[nonfin]] = True
            if flog is not None:
                flog.record(
                    "quarantine", kind="nan",
                    columns=tuple(int(c) for c in ids[active[nonfin]]),
                    detail=f"stage=cg iteration={it - 1}")
        conv = (rnorm <= tol_col[active] * bnorm[active]) & ~nonfin
        finished = broke | conv | nonfin
        if finished.any():
            done_flags[active[conv]] = True
            used[active[finished]] = it
            keep = ~finished
            active = active[keep]
            if active.size == 0:
                break
            R = R[:, keep]
            Pm = Pm[:, keep]
            rz = rz[keep]
        Z = prec(R)
        rz_new = np.einsum("ij,ij->j", R, Z)
        beta = rz_new / rz
        rz = rz_new
        Pm = Z + beta * Pm
    if active.size:
        used[active] = it
    if singular:
        X = project_out_ones(X)
    converged = bool(done_flags.all())
    if raise_on_fail and not converged:
        if broken.any():
            raise NumericalBreakdownError(
                f"blocked CG: {int(broken.sum())}/{k} columns became "
                f"non-finite by iteration {it}",
                column_indices=tuple(int(c)
                                     for c in ids[np.flatnonzero(broken)]),
                iteration=it)
        raise ConvergenceError(
            f"blocked CG: {int((~done_flags).sum())}/{k} columns failed "
            f"to reach tolerance in {it} iterations",
            iterations=it, residual=residuals[-1] / max(bnorm.max(), 1e-300))
    return CGResult(x=X, iterations=it, converged=converged,
                    residual_norms=residuals,
                    per_column_iterations=used,
                    broken_columns=ids[np.flatnonzero(broken)]
                    if broken.any() else None)
