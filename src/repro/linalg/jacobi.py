"""The Jacobi operator ``Z`` of Lemma 3.5.

For a 5-DD matrix ``M = X + Y`` (``X`` diagonal, ``Y`` Laplacian) and
``0 < ε < 1``, the truncated Neumann series

    ``Z = Σ_{i=0}^{l} X⁻¹ (−Y X⁻¹)^i``,   l odd, l ≥ log₂(3/ε),

satisfies ``M ≼ Z⁻¹ ≼ M + εY``, and applying ``Z`` costs
``O(m log 1/ε)`` work / ``O(log m log 1/ε)`` depth.  This operator
replaces ``L_FF⁻¹`` in every level of the block Cholesky factorization
(Lemma 3.6) — it is the only "inner solve" the whole algorithm needs.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro.errors import DimensionMismatchError, FactorizationError
from repro.pram import charge
from repro.pram import primitives as P

__all__ = ["JacobiOperator", "is_k_diagonally_dominant", "jacobi_terms"]


def jacobi_terms(eps: float) -> int:
    """Smallest odd ``l ≥ log₂(3/ε)`` (Algorithm 2, line 12)."""
    if not 0 < eps < 1:
        raise ValueError(f"need 0 < eps < 1, got {eps}")
    l = max(1, math.ceil(math.log2(3.0 / eps)))
    return l if l % 2 == 1 else l + 1


def is_k_diagonally_dominant(M, k: float = 5.0,
                             rtol: float = 1e-9) -> bool:
    """``M_ii ≥ k · Σ_{j≠i} |M_ij|`` for every row (Definition 3.1)."""
    M = sp.csr_matrix(M)
    diag = M.diagonal()
    offdiag_abs = np.asarray(abs(M).sum(axis=1)).ravel() - np.abs(diag)
    return bool(np.all(diag + rtol * np.maximum(np.abs(diag), 1.0)
                       >= k * offdiag_abs))


class JacobiOperator:
    """Applies ``Z ≈ (X + Y)⁻¹`` via the truncated Neumann series.

    Parameters
    ----------
    X:
        Positive diagonal, as a 1-D array.
    Y:
        Laplacian of the induced subgraph ``G[F]`` (sparse, ``|F|×|F|``).
    eps:
        Loewner accuracy: ``M ≼ Z⁻¹ ≼ M + εY``.
    validate_dd:
        Check that ``X + Y`` is 5-DD (Lemma 3.5's hypothesis; the bound
        on the Neumann eigenvalues needs ``2Y ≼ X``).
    """

    def __init__(self, X: np.ndarray, Y: sp.spmatrix, eps: float,
                 validate_dd: bool = False) -> None:
        self.X = np.asarray(X, dtype=np.float64)
        self.Y = sp.csr_matrix(Y)
        if self.X.ndim != 1 or self.Y.shape != (self.X.size, self.X.size):
            raise DimensionMismatchError("X must be 1-D with Y |F|×|F|")
        if np.any(self.X <= 0):
            raise FactorizationError(
                "X has a non-positive diagonal entry: some F vertex has no "
                "edge to C, so F is not 5-DD")
        self.eps = float(eps)
        self.l = jacobi_terms(eps)
        self._xinv = 1.0 / self.X
        if validate_dd:
            M = sp.diags(self.X) + self.Y
            if not is_k_diagonally_dominant(M, 5.0):
                raise FactorizationError("X + Y is not 5-DD")

    @classmethod
    def from_parts(cls, X: np.ndarray, Y: sp.csr_matrix,
                   eps: float) -> "JacobiOperator":
        """Wire an operator directly over prebuilt arrays (no copies).

        The constructor's ``asarray``/``csr_matrix`` round-trips and
        positivity scan are skipped: the parts come from a chain that
        already passed them (typically read-only shared-memory views
        reconstructed worker-side, DESIGN.md §10).  ``l`` and ``X⁻¹``
        are recomputed from scalars/arrays deterministically, so applies
        are bit-identical to the originating operator's.
        """
        op = cls.__new__(cls)
        op.X = X
        op.Y = Y
        op.eps = float(eps)
        op.l = jacobi_terms(eps)
        op._xinv = 1.0 / X
        return op

    @property
    def n(self) -> int:
        """Dimension of the operator (``|F|``)."""
        return self.X.size

    @property
    def m_equivalent(self) -> int:
        """Edges in Y (sets the per-application matvec cost)."""
        return self.Y.nnz // 2

    def apply(self, b: np.ndarray) -> np.ndarray:
        """``Z b`` by the recurrence ``x⁽ⁱ⁾ = X⁻¹b − X⁻¹ Y x⁽ⁱ⁻¹⁾``.

        ``b`` may be a vector ``(|F|,)`` or a block ``(|F|, k)``; the
        block path runs the same recurrence with sparse×dense-matrix
        products (``Y @ x`` is one BLAS-3-style kernel per term instead
        of ``k`` matvecs).
        """
        b = np.asarray(b, dtype=np.float64)
        if b.ndim not in (1, 2) or b.shape[0] != self.n:
            raise DimensionMismatchError("b has wrong length for Z")
        xinv = self._xinv if b.ndim == 1 else self._xinv[:, None]
        xinv_b = xinv * b
        x = xinv_b.copy()
        for _ in range(self.l):
            x = xinv_b - xinv * (self.Y @ x)
        k = 1 if b.ndim == 1 else b.shape[1]
        charge(self.l * max(self.Y.nnz, self.n) * k,
               self.l * P.log2p(max(self.Y.nnz, 2)),
               label="jacobi_apply")
        return x

    __call__ = apply

    def dense_Z(self) -> np.ndarray:
        """Materialise ``Z`` (test oracle; O(n²·l))."""
        Z = self.apply(np.eye(self.n))
        return 0.5 * (Z + Z.T)

    def dense_Zinv(self) -> np.ndarray:
        """``Z⁻¹`` (test oracle for the Loewner sandwich of Lemma 3.5)."""
        import scipy.linalg
        return scipy.linalg.inv(self.dense_Z())
