"""Dense pseudoinverse oracles.

These are the *test oracles* for everything stochastic in the library:
exact ``L⁺``, exact Schur complements, exact effective resistances.
They cost ``O(n³)`` and are only used on small instances (tests,
benches' ground truth, and the ≤ ``min_vertices`` base case of
``BlockCholesky``).

For a connected graph the kernel is ``span(1)`` (Fact 2.3), so
``L⁺ = (L + J/n)⁻¹ − J/n`` with ``J`` the all-ones matrix — a standard
identity that avoids an SVD.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg
import scipy.sparse as sp

from repro.errors import DimensionMismatchError
from repro.graphs.laplacian import laplacian
from repro.graphs.multigraph import MultiGraph

__all__ = [
    "pinv_psd",
    "dense_laplacian_pinv",
    "solve_dense_pseudo",
    "exact_solution",
    "exact_schur_complement",
    "exact_effective_resistances",
    "exact_leverage_scores",
]


def pinv_psd(M: np.ndarray, rtol: float = 1e-10) -> np.ndarray:
    """Pseudoinverse of a symmetric PSD matrix with a *relative* kernel
    cutoff.

    ``numpy.linalg.pinv``'s default ``rcond`` (~1e-15) is far below the
    rounding noise of an assembled Laplacian's kernel eigenvalue, so it
    can "invert" the kernel and return garbage of magnitude 1e15.  This
    helper cuts at ``rtol · λ_max`` instead.
    """
    M = np.asarray(M, dtype=np.float64)
    vals, vecs = scipy.linalg.eigh(M)
    cutoff = rtol * max(float(vals.max(initial=0.0)), 1.0)
    keep = vals > cutoff
    if not keep.any():
        return np.zeros_like(M)
    return (vecs[:, keep] / vals[keep]) @ vecs[:, keep].T


def _as_dense(L) -> np.ndarray:
    if isinstance(L, MultiGraph):
        L = laplacian(L)
    if sp.issparse(L):
        L = L.toarray()
    return np.asarray(L, dtype=np.float64)


def dense_laplacian_pinv(L) -> np.ndarray:
    """``L⁺`` for the Laplacian of a *connected* graph.

    Uses ``(L + J/n)⁻¹ − J/n``; falls back to ``numpy.linalg.pinv`` if
    the shifted matrix is singular (disconnected input), so the result
    is always a valid pseudoinverse.
    """
    Ld = _as_dense(L)
    n = Ld.shape[0]
    if Ld.shape != (n, n):
        raise DimensionMismatchError("Laplacian must be square")
    J = np.full((n, n), 1.0 / n)
    try:
        inv = scipy.linalg.inv(Ld + J)
        return inv - J
    except scipy.linalg.LinAlgError:
        return np.linalg.pinv(Ld, hermitian=True)


def solve_dense_pseudo(L, b: np.ndarray) -> np.ndarray:
    """``L⁺ b`` via a dense solve (not a full inverse).

    Solves ``(L + J/n) y = b_proj`` and re-centres; equivalent to
    ``dense_laplacian_pinv(L) @ b`` but one factorisation instead of an
    inversion.  ``b`` may be one vector ``(n,)`` or a block ``(n, k)``
    — one LAPACK factorisation serves all ``k`` columns.
    """
    Ld = _as_dense(L)
    n = Ld.shape[0]
    b = np.asarray(b, dtype=np.float64)
    if b.ndim not in (1, 2) or b.shape[0] != n:
        raise DimensionMismatchError("b has wrong length")
    b0 = b - b.mean(axis=0)
    J = np.full((n, n), 1.0 / n)
    y = scipy.linalg.solve(Ld + J, b0, assume_a="sym")
    return y - y.mean(axis=0)


def exact_solution(graph: MultiGraph, b: np.ndarray) -> np.ndarray:
    """Ground-truth ``x* = L_G⁺ b`` for a graph instance (``b`` may be
    a single vector or an ``(n, k)`` block)."""
    return solve_dense_pseudo(laplacian(graph), b)


def exact_schur_complement(L, C: np.ndarray) -> np.ndarray:
    """Dense ``SC(L, C) = L_CC − L_CF L_FF⁻¹ L_FC`` (ground truth)."""
    Ld = _as_dense(L)
    n = Ld.shape[0]
    C = np.asarray(C, dtype=np.int64)
    mask = np.zeros(n, dtype=bool)
    mask[C] = True
    F = np.nonzero(~mask)[0]
    LCC = Ld[np.ix_(C, C)]
    if F.size == 0:
        return LCC
    LFF = Ld[np.ix_(F, F)]
    LFC = Ld[np.ix_(F, C)]
    return LCC - LFC.T @ scipy.linalg.solve(LFF, LFC, assume_a="sym")


def exact_effective_resistances(graph: MultiGraph,
                                pairs: np.ndarray | None = None
                                ) -> np.ndarray:
    """``R_eff(u, v) = b_uvᵀ L⁺ b_uv`` for each requested pair.

    ``pairs`` defaults to the graph's own edge list.
    """
    pinv = dense_laplacian_pinv(laplacian(graph))
    if pairs is None:
        us, vs = graph.u, graph.v
    else:
        pairs = np.asarray(pairs, dtype=np.int64)
        us, vs = pairs[:, 0], pairs[:, 1]
    d = pinv[us, us] + pinv[vs, vs] - 2.0 * pinv[us, vs]
    return np.maximum(d, 0.0)


def exact_leverage_scores(graph: MultiGraph) -> np.ndarray:
    """``τ(e) = w(e) · R_eff(e)`` per multi-edge (Section 3.2)."""
    return graph.w * exact_effective_resistances(graph)
