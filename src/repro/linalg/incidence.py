"""Signed incidence matrices and JL sketch helpers.

``B ∈ R^{m×n}`` with ``B[e, u_e] = +1``, ``B[e, v_e] = −1`` per
multi-edge; then ``L = Bᵀ W B`` and effective resistances are squared
distances between columns of ``W^{1/2} B L⁺`` — the representation both
the leverage-score pipeline (Section 6) and the resistance oracle use.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro.graphs.multigraph import MultiGraph, scatter_add_pair
from repro.rng import as_generator

__all__ = ["incidence_matrix", "weighted_incidence", "sketch_rows",
           "resistance_from_sketch"]


def incidence_matrix(graph: MultiGraph) -> sp.csr_matrix:
    """Signed edge-vertex incidence ``B`` (one row per multi-edge)."""
    m = graph.m
    rows = np.repeat(np.arange(m, dtype=np.int64), 2)
    cols = np.stack([graph.u, graph.v], axis=1).ravel()
    vals = np.tile(np.array([1.0, -1.0]), m)
    return sp.coo_matrix((vals, (rows, cols)),
                         shape=(m, graph.n)).tocsr()


def weighted_incidence(graph: MultiGraph) -> sp.csr_matrix:
    """``W^{1/2} B`` so that ``L = (W^{1/2}B)ᵀ (W^{1/2}B)``."""
    B = incidence_matrix(graph)
    return sp.diags(np.sqrt(graph.w)) @ B


def sketch_rows(graph: MultiGraph, q: int, seed=None) -> np.ndarray:
    """``Q W^{1/2} B`` for a random ±1/√q matrix ``Q`` — computed
    edge-wise without materialising ``Q`` (q × n output)."""
    rng = as_generator(seed)
    sqrt_w = np.sqrt(graph.w)
    out = np.empty((q, graph.n))
    for i in range(q):
        signs = rng.choice([-1.0, 1.0], size=graph.m) / math.sqrt(q)
        contrib = signs * sqrt_w
        out[i] = scatter_add_pair(graph.u, contrib, graph.v, contrib,
                                  graph.n, subtract=True)
    return out


def resistance_from_sketch(Z: np.ndarray, u: np.ndarray,
                           v: np.ndarray) -> np.ndarray:
    """``R̂(u, v) = ‖Z[:,u] − Z[:,v]‖²`` for a solved sketch
    ``Z = Q W^{1/2} B L⁺``."""
    diff = Z[:, u] - Z[:, v]
    return np.einsum("ij,ij->j", diff, diff)
