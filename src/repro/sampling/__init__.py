"""Parallel weighted random sampling and vectorised random walks.

Implements the [HS19] primitive the paper cites as Lemma 2.6 — alias
tables: ``O(n)`` work, ``O(log n)`` depth build; ``O(1)`` per query —
both for a single distribution (:class:`AliasTable`) and batched
per-CSR-row (:class:`CSRAliasSampler`, the walk engine's O(1)-per-step
hot path), the bisection-based :class:`RowSampler` alternative, the
walk engine ``TerminalWalks`` runs on, and the incrementally
maintained restricted CSR (with per-row alias planes) the elimination
loops extract their per-round walk adjacency from.
"""

from repro.sampling.alias import AliasTable, CSRAliasSampler, \
    build_alias_tables
from repro.sampling.inc_csr import IncrementalWalkCSR
from repro.sampling.rowsample import RowSampler
from repro.sampling.walks import SAMPLERS, WalkEngine, WalkResult, \
    default_sampler, make_row_sampler

__all__ = ["AliasTable", "CSRAliasSampler", "IncrementalWalkCSR",
           "RowSampler", "SAMPLERS", "WalkEngine", "WalkResult",
           "build_alias_tables", "default_sampler", "make_row_sampler"]
