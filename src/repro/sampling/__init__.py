"""Parallel weighted random sampling and vectorised random walks.

Implements the [HS19] primitive the paper cites as Lemma 2.6 (alias
tables: ``O(n)`` work, ``O(log n)`` depth build; ``O(1)`` per query) and
the batched row sampler + walk engine that ``TerminalWalks`` runs on.
"""

from repro.sampling.alias import AliasTable
from repro.sampling.rowsample import RowSampler
from repro.sampling.walks import WalkEngine, WalkResult

__all__ = ["AliasTable", "RowSampler", "WalkEngine", "WalkResult"]
