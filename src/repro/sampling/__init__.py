"""Parallel weighted random sampling and vectorised random walks.

Implements the [HS19] primitive the paper cites as Lemma 2.6 (alias
tables: ``O(n)`` work, ``O(log n)`` depth build; ``O(1)`` per query),
the batched row sampler + walk engine that ``TerminalWalks`` runs on,
and the incrementally maintained restricted CSR the elimination loops
extract their per-round walk adjacency from.
"""

from repro.sampling.alias import AliasTable
from repro.sampling.inc_csr import IncrementalWalkCSR
from repro.sampling.rowsample import RowSampler
from repro.sampling.walks import WalkEngine, WalkResult

__all__ = ["AliasTable", "IncrementalWalkCSR", "RowSampler", "WalkEngine",
           "WalkResult"]
