"""Incrementally maintained restricted CSR for the elimination loop.

Every round of ``ApproxSchur`` / ``BlockCholesky`` needs a CSR over the
half-edges whose source vertex is about to be eliminated (the rows the
walk engine can sample from).  Rebuilding that CSR from scratch costs a
counting sort over *all* stored edges per round;
:class:`IncrementalWalkCSR` instead maintains the edge store across
rounds — **delete** the edges consumed by a round's walks (everything
incident to the eliminated set ``F``), **insert** the edges the walks
emitted — and extracts each round's restricted view by gathering only
the rows it needs: ``O(deg F + inserts-since-epoch)`` instead of
``O(m)``.

Invariants (asserted by the equality tests, documented in DESIGN.md §6):

* **Order.**  The live edges, in store order, are exactly the working
  graph's edge arrays: survivors keep their relative order, inserted
  edges append.  This matches ``terminal_walks``'s output layout
  (pass-through groups first, emitted edges after).
* **View equality.**  :meth:`restricted_view` returns an
  ``AdjacencyView`` whose ``indptr``/``neighbor``/``weight``/
  ``cumweight`` (and per-slot multiplicities) are *bit-identical* to
  ``MultiGraph.adjacency_restricted`` on the equivalent compacted
  graph — same per-row slot order (all ``u``-side half-edges by edge
  index, then all ``v``-side), same float summation order — so walk
  sampling cannot tell the two builds apart.  Only ``edge_id`` differs:
  an incremental view's ids index this store, not the compacted arrays.
* **Epochs.**  A full per-vertex index (two stable counting sorts, one
  per edge side) is built over the store at construction and rebuilt —
  with dead-edge compaction — only when the appended tail outgrows
  ``rebuild_factor`` × the live edge count, keeping the amortised
  per-round index cost linear in the *churn*, not the graph.

The store also maintains the walk engine's **per-row alias planes**
(:meth:`IncrementalWalkCSR.alias_planes`, DESIGN.md §8): each row's
Vose table is cached when first built and invalidated only when one of
the row's incident edges is deleted or inserted, so a round rebuilds
tables for the churned rows alone.  Cached rows are bit-identical to a
from-scratch :func:`repro.sampling.alias.build_alias_tables` over the
extracted view, because a table is a pure function of the row's live
weight *sequence* and the store preserves per-row slot order across
mutations — including epoch compaction, which only renames global slot
ids (the cache stores row-local aliases, so it survives epochs intact).

**Coalesced inserts** (DESIGN.md §11): ``insert(..., coalesce=True)``
merges same-``{u, v}`` duplicates *within the batch* (sort/``unique``
on a packed ``lo·n + hi`` key, weight-sum, multiplicity-sum — the
``MultiGraph.coalesced`` idiom) and then folds each surviving group
into the row's live *previously coalesced* slot when one exists (a
``(u, v) → slot`` lookup maintained across rounds and remapped at
epoch compaction), so heavy rows accumulate one slot per neighbour
instead of one per walker.  A coalesced group of ``k`` emitted
parallels with weights ``w_1..w_k`` stores ``(Σw_i, mult=k)``: the
Laplacian is unchanged (weights add) and the per-copy resistance
``k/Σw_i`` is exactly the conditional mean of the individual ``1/w_i``
under weight-proportional slot choice, so terminal-walk estimates stay
unbiased (and α-boundedness is preserved — the mean of bounded
leverages is bounded).  Walks through a coalesced store differ from
the uncoalesced realisation *distributionally only*; per flag setting
the store remains bit-deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.multigraph import (
    AdjacencyView,
    MultiGraph,
    _counting_sort_halfedges,
    weighted_bincount,
)
from repro.pram import charge, ledger_active
from repro.pram import primitives as P
from repro.sampling.alias import build_alias_tables

__all__ = ["IncrementalWalkCSR", "InteriorDegreeOracle"]


def _gather_row_slices(indptr: np.ndarray, slots: np.ndarray,
                       rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate ``slots[indptr[r]:indptr[r+1]]`` for each row.

    Returns ``(values, row_of_value)`` with rows visited in the given
    (ascending) order — O(output) with no Python per-row loop.
    """
    starts = indptr[rows]
    lens = indptr[rows + 1] - starts
    total = int(lens.sum())
    if total == 0:
        return (np.empty(0, dtype=slots.dtype),
                np.empty(0, dtype=np.int64))
    offsets = np.cumsum(lens) - lens
    pos = np.repeat(starts - offsets, lens) + np.arange(total,
                                                        dtype=np.int64)
    return slots[pos], np.repeat(rows, lens)


class InteriorDegreeOracle:
    """Degrees of the live edges induced on an interior set ``U``.

    Drop-in replacement for the per-round induced-subgraph rebuild in
    the 5DD scan (:func:`repro.core.dd_subset.five_dd_subset`): it
    exposes the same ``n`` / ``m`` / :meth:`weighted_degrees` /
    within-subset-degree surface, but is assembled by *gathering only
    the rows of* ``U`` from the incremental store's epoch index —
    ``O(deg U + appended tail)`` instead of the ``O(stored edges)``
    scan a rebuild pays, which matters in late elimination rounds where
    the store is dominated by accumulated terminal–terminal edges the
    interior scan never needs.

    **Bit-equality invariant** (asserted by the tests): every degree it
    returns is bit-identical to the rebuild path
    (``work.edge_subset(interior_mask).weighted_degrees()`` and the
    candidate-scan's within-subset degrees).  Both reduce per vertex
    with one ``u``-side plus one ``v``-side ``bincount``, and both
    visit each bin's edges in ascending store order — the epoch gather
    is per-row grouped with ascending ids and appended-tail ids exceed
    every epoch id, so filtering preserves exactly the summation order
    of the induced rebuild and the floating-point sums cannot differ.
    """

    def __init__(self, n: int,
                 su: np.ndarray, ou: np.ndarray, wu: np.ndarray,
                 sv: np.ndarray, ov: np.ndarray, wv: np.ndarray) -> None:
        self.n = n
        # One u-side entry per interior edge (its u endpoint's row).
        self._su, self._ou, self._wu = su, ou, wu
        self._sv, self._ov, self._wv = sv, ov, wv
        self._wdeg: np.ndarray | None = None

    @property
    def m(self) -> int:
        """Interior edge-group count (== the induced rebuild's ``m``)."""
        return self._su.size

    @property
    def nbytes(self) -> int:
        """Bytes held by the gathered half-edge arrays."""
        return (self._su.nbytes + self._ou.nbytes + self._wu.nbytes
                + self._sv.nbytes + self._ov.nbytes + self._wv.nbytes)

    def weighted_degrees(self) -> np.ndarray:
        """Interior weighted degree per vertex (cached); bit-identical
        to ``induced.weighted_degrees()`` on the rebuilt subgraph."""
        if self._wdeg is None:
            self._wdeg = (weighted_bincount(self._su, self._wu, self.n)
                          + weighted_bincount(self._sv, self._wv, self.n))
            if ledger_active():
                charge(*P.reduce_cost(2 * self.m),
                       label="weighted_degrees")
        return self._wdeg

    def within_subset_degrees(self, member: np.ndarray) -> np.ndarray:
        """Weighted degree counting only edges with both endpoints
        flagged in ``member`` (the 5DD candidate scan's inner kernel)."""
        both_u = member[self._su] & member[self._ou]
        both_v = member[self._sv] & member[self._ov]
        if not both_u.any():
            return np.zeros(self.n, dtype=np.float64)
        return (weighted_bincount(self._su[both_u], self._wu[both_u],
                                  self.n)
                + weighted_bincount(self._sv[both_v], self._wv[both_v],
                                    self.n))


class IncrementalWalkCSR:
    """Edge store with delete-rows / insert-edges and restricted views.

    Parameters
    ----------
    graph:
        The initial working multigraph (its arrays are copied).
    rebuild_factor:
        Rebuild (and compact) the epoch index once the appended tail
        exceeds this fraction of the live edge count.
    """

    def __init__(self, graph: MultiGraph,
                 rebuild_factor: float = 1.0) -> None:
        if rebuild_factor <= 0:
            raise ValueError("rebuild_factor must be positive")
        self.n = graph.n
        self.rebuild_factor = float(rebuild_factor)
        self._size = graph.m
        self._has_mult = graph.mult is not None
        cap = max(16, graph.m)
        self._bu = np.empty(cap, dtype=np.int64)
        self._bv = np.empty(cap, dtype=np.int64)
        self._bw = np.empty(cap, dtype=np.float64)
        self._bmult = np.empty(cap, dtype=np.int32) if self._has_mult \
            else None
        self._balive = np.empty(cap, dtype=bool)
        self._bu[:graph.m] = graph.u
        self._bv[:graph.m] = graph.v
        self._bw[:graph.m] = graph.w
        if self._has_mult:
            self._bmult[:graph.m] = graph.mult
        self._balive[:graph.m] = True
        self._alive_count = graph.m
        # Per-row alias-plane cache: row -> (prob, row-local alias,
        # total).  Primed for every live row on the first
        # alias_planes() call, invalidated by edge churn; row-local
        # storage makes it epoch-compaction-proof.
        self._alias_rows: dict[int, tuple[np.ndarray, np.ndarray,
                                          float]] = {}
        self._alias_primed = False
        # Rows whose alias tables can ever be needed again: set by
        # prime_alias (the primed interior), shrunk by eliminate.
        # None = no narrowing (pre-prime).  Invariant: cached rows are
        # always inside the mask, so narrowed invalidation never
        # skips a live entry.
        self._primed_mask: np.ndarray | None = None
        # Coalesced-insert state: packed {u,v} key -> live slot id for
        # slots created by a coalescing insert (remapped at epoch
        # compaction, dropped lazily when the slot dies).
        self._slot_lookup: dict = {}
        # Perf counters for the coalesce/alias benchmarks.
        self.emitted_slots_saved = 0
        self.live_merged_slots = 0
        self.alias_built_slots = 0
        self.alias_primed_slots = 0
        self._build_epoch()

    # -- buffer views --------------------------------------------------------

    @property
    def u(self) -> np.ndarray:
        """Stored ``u`` endpoints (live and dead, in store order)."""
        return self._bu[:self._size]

    @property
    def v(self) -> np.ndarray:
        """Stored ``v`` endpoints (live and dead, in store order)."""
        return self._bv[:self._size]

    @property
    def w(self) -> np.ndarray:
        """Stored edge-group weights, aligned with :attr:`u`/:attr:`v`."""
        return self._bw[:self._size]

    @property
    def mult(self) -> np.ndarray | None:
        """Stored multiplicities (``None`` for an implicit all-ones
        store)."""
        return self._bmult[:self._size] if self._has_mult else None

    @property
    def alive(self) -> np.ndarray:
        """Liveness flag per stored edge (``False`` = deleted)."""
        return self._balive[:self._size]

    @property
    def m(self) -> int:
        """Stored edges (live + dead + appended)."""
        return self._size

    @property
    def nbytes(self) -> int:
        """Bytes held by the store: edge buffers (at capacity) plus the
        two-sided epoch index — the footprint memory accounting must
        charge whenever the store is alive."""
        total = (self._bu.nbytes + self._bv.nbytes + self._bw.nbytes
                 + self._balive.nbytes)
        if self._has_mult:
            total += self._bmult.nbytes
        total += (self._u_indptr.nbytes + self._u_slots.nbytes
                  + self._v_indptr.nbytes + self._v_slots.nbytes)
        total += sum(p.nbytes + a.nbytes + 8
                     for p, a, _ in self._alias_rows.values())
        # Coalesce lookup: ~one dict entry (key + slot id + table
        # overhead) per coalesced slot.
        total += 64 * len(self._slot_lookup)
        return total

    @property
    def alias_rebuilt_slots(self) -> int:
        """Alias-table slots rebuilt *after* the one-time prime — the
        per-round churn cost the coalesce benchmark gates on."""
        return self.alias_built_slots - self.alias_primed_slots

    @property
    def m_alive(self) -> int:
        """Live edges — the working graph's stored edge count."""
        return self._alive_count

    def _reserve(self, extra: int) -> None:
        need = self._size + extra
        cap = self._bu.shape[0]
        if need <= cap:
            return
        cap = max(need, 2 * cap)

        def grow(buf, dtype):
            new = np.empty(cap, dtype=dtype)
            new[:self._size] = buf[:self._size]
            return new

        self._bu = grow(self._bu, np.int64)
        self._bv = grow(self._bv, np.int64)
        self._bw = grow(self._bw, np.float64)
        if self._has_mult:
            self._bmult = grow(self._bmult, np.int32)
        self._balive = grow(self._balive, bool)

    # -- epoch index ---------------------------------------------------------

    def _build_epoch(self) -> None:
        """Compact dead edges away and re-index both edge sides."""
        if self._alive_count != self._size:
            keep = np.flatnonzero(self._balive[:self._size])
            if self._slot_lookup:
                # Compaction renames slot ids: remap the coalesce
                # lookup (and drop entries whose slot died).
                pos = np.full(self._size, -1, dtype=np.int64)
                pos[keep] = np.arange(keep.size, dtype=np.int64)
                self._slot_lookup = {
                    key: int(pos[slot])
                    for key, slot in self._slot_lookup.items()
                    if pos[slot] >= 0}
            m = keep.size
            self._bu[:m] = self._bu[keep]
            self._bv[:m] = self._bv[keep]
            self._bw[:m] = self._bw[keep]
            if self._has_mult:
                self._bmult[:m] = self._bmult[keep]
            self._balive[:m] = True
            self._size = m
        self._epoch_m = self._size
        self._u_indptr, self._u_slots = _counting_sort_halfedges(
            self.u, self.n)
        self._v_indptr, self._v_slots = _counting_sort_halfedges(
            self.v, self.n)
        if ledger_active():
            charge(*P.convert_cost(2 * self._epoch_m),
                   label="inc_csr_epoch_build")

    def _maybe_rebuild(self) -> None:
        appended = self.m - self._epoch_m
        if appended > self.rebuild_factor * max(self._alive_count, 1):
            self._build_epoch()

    # -- mutation ------------------------------------------------------------

    def eliminate(self, F: np.ndarray) -> None:
        """Delete every live edge incident to a vertex of ``F``.

        These are exactly the edges a round's terminal walks consume
        (groups with an endpoint in the eliminated set).  Cost:
        O(epoch-degree of ``F`` + appended tail).
        """
        F = np.asarray(F, dtype=np.int64)
        if F.size == 0:
            return
        hit_u, _ = _gather_row_slices(self._u_indptr, self._u_slots, F)
        hit_v, _ = _gather_row_slices(self._v_indptr, self._v_slots, F)
        # An F–F edge shows up in both side gathers (and may already be
        # dead): dedup through a scratch mask before the alive
        # bookkeeping, not a sort.
        alive = self.alive
        mark = np.zeros(self._size, dtype=bool)
        mark[hit_u] = True
        mark[hit_v] = True
        if self._size > self._epoch_m:
            member = np.zeros(self.n, dtype=bool)
            member[F] = True
            tail_u = self._bu[self._epoch_m:self._size]
            tail_v = self._bv[self._epoch_m:self._size]
            mark[self._epoch_m:] |= member[tail_u] | member[tail_v]
        newly = mark & alive
        self._alive_count -= int(np.count_nonzero(newly))
        alive[newly] = False
        self._invalidate_alias(self._bu[:self._size][newly],
                               self._bv[:self._size][newly])
        # Eliminated rows can never be sampled again: drop them from
        # the primed set (after the invalidation above popped their
        # now-dead entries) so later churn skips them entirely.
        if self._primed_mask is not None:
            self._primed_mask[F] = False
        if self._alias_rows:
            cache = self._alias_rows
            for r in F.tolist():
                cache.pop(r, None)
        if ledger_active():
            charge(*P.map_cost(hit_u.size + hit_v.size),
                   label="inc_csr_delete")

    def _promote_mult(self) -> None:
        """Lazily grow a multiplicity column (all existing slots = 1).

        Stores built from a multiplicity-less graph historically
        *rejected* ``mult > 1`` inserts; coalesced groups and implicit
        α-split pass-throughs now share one representation, and
        :attr:`nbytes` charges the column's true footprint from the
        moment it exists.
        """
        if self._has_mult:
            return
        self._bmult = np.ones(self._bu.shape[0], dtype=np.int32)
        self._has_mult = True

    def insert(self, u: np.ndarray, v: np.ndarray, w: np.ndarray,
               mult: np.ndarray | None = None,
               coalesce: bool = False) -> None:
        """Append emitted edges (they land after all current edges).

        With ``coalesce=True`` same-``{u, v}`` duplicates are merged
        within the batch (weights sum, multiplicities sum) and groups
        whose pair already owns a live coalesced slot fold into it in
        place instead of appending (module docstring; DESIGN.md §11).
        ``mult > 1`` inserts into a multiplicity-less store promote a
        mult column lazily rather than raising.
        """
        u = np.asarray(u, dtype=np.int64)
        if u.size == 0:
            self._maybe_rebuild()
            return
        v = np.asarray(v, dtype=np.int64)
        w = np.asarray(w, dtype=np.float64)
        if mult is not None and not self._has_mult \
                and np.any(np.asarray(mult) != 1):
            self._promote_mult()
        if coalesce:
            self._insert_coalesced(u, v, w, mult)
            return
        self._append(u, v, w,
                     None if mult is None
                     else np.asarray(mult, dtype=np.int32))
        if ledger_active():
            charge(*P.map_cost(u.size), label="inc_csr_insert")
        self._maybe_rebuild()

    def _append(self, u: np.ndarray, v: np.ndarray, w: np.ndarray,
                mult: np.ndarray | None) -> np.ndarray:
        """Raw append of prepared arrays; returns the new slot ids."""
        lo, hi = self._size, self._size + u.size
        self._reserve(u.size)
        self._bu[lo:hi] = u
        self._bv[lo:hi] = v
        self._bw[lo:hi] = w
        if self._has_mult:
            self._bmult[lo:hi] = 1 if mult is None else mult
        self._balive[lo:hi] = True
        self._size = hi
        self._alive_count += u.size
        self._invalidate_alias(u, v)
        return np.arange(lo, hi, dtype=np.int64)

    def _insert_coalesced(self, u: np.ndarray, v: np.ndarray,
                          w: np.ndarray,
                          mult: np.ndarray | None) -> None:
        """Batch-coalesced insert with live-slot folding.

        Deterministic: the batch merge is a sorted ``unique`` over the
        packed pair key with sequential per-key weight sums in batch
        order, and the live-slot lookup is keyed on those same sorted
        unique pairs — no iteration-order dependence anywhere.
        """
        self._promote_mult()
        lo_e = np.minimum(u, v)
        hi_e = np.maximum(u, v)
        m_in = np.ones(u.size, dtype=np.int64) if mult is None \
            else np.asarray(mult, dtype=np.int64)
        if self.n <= 3_037_000_499:  # n² - 1 fits in int64
            key = lo_e * self.n + hi_e
            uniq, inverse = np.unique(key, return_inverse=True)
            cu, cv = uniq // self.n, uniq % self.n
            n_uniq = uniq.size
            keys = uniq.tolist()
        else:
            pair = np.stack([lo_e, hi_e], axis=1)
            uniq, inverse = np.unique(pair, axis=0, return_inverse=True)
            inverse = inverse.reshape(-1)  # numpy >= 2.0: may be (m, 1)
            cu, cv = uniq[:, 0], uniq[:, 1]
            n_uniq = uniq.shape[0]
            keys = list(zip(cu.tolist(), cv.tolist()))
        cw = weighted_bincount(inverse, w, n_uniq)
        # Exact for counts far below 2**53 (bincount accumulates in
        # float64); back to int for the stored column.
        cm = np.bincount(inverse, weights=m_in.astype(np.float64),
                         minlength=n_uniq).astype(np.int64)
        if np.any(cm > np.iinfo(np.int32).max):
            raise OverflowError(
                "coalesced multiplicity exceeds int32; split the batch")
        cm = cm.astype(np.int32)
        # Fold groups whose pair already owns a live coalesced slot.
        lookup = self._slot_lookup
        slots = np.full(n_uniq, -1, dtype=np.int64)
        if lookup:
            alive = self._balive
            for i, key_i in enumerate(keys):
                s = lookup.get(key_i, -1)
                if s < 0:
                    continue
                if alive[s]:
                    slots[i] = s
                else:
                    del lookup[key_i]  # died since; epoch would drop it
        merge = slots >= 0
        n_merge = int(np.count_nonzero(merge))
        if n_merge:
            tgt = slots[merge]
            self._bw[tgt] += cw[merge]
            self._bmult[tgt] += cm[merge]
            self._invalidate_alias(self._bu[tgt], self._bv[tgt])
            self.live_merged_slots += n_merge
        app = ~merge
        new_slots = self._append(cu[app], cv[app], cw[app], cm[app])
        for key_i, s in zip([k for k, a in zip(keys, app.tolist()) if a],
                            new_slots.tolist()):
            lookup[key_i] = s
        self.emitted_slots_saved += int(u.size) - int(new_slots.size)
        if ledger_active():
            charge(*P.sort_cost(u.size), label="inc_csr_coalesce")
        self._maybe_rebuild()

    def advance(self, F: np.ndarray, emitted_u: np.ndarray,
                emitted_v: np.ndarray, emitted_w: np.ndarray,
                emitted_mult: np.ndarray | None = None,
                coalesce: bool = False) -> None:
        """One elimination round: delete ``F``'s edges, insert emissions."""
        self.eliminate(F)
        self.insert(emitted_u, emitted_v, emitted_w, emitted_mult,
                    coalesce=coalesce)

    def _invalidate_alias(self, us: np.ndarray, vs: np.ndarray) -> None:
        """Drop cached alias tables for churned-edge endpoints.

        Narrowed to the primed interior: rows outside
        :attr:`_primed_mask` (terminals never primed, rows already
        eliminated) can never be sampled again, so their endpoints cost
        nothing here — late rounds, whose churn lands almost entirely
        on terminals, stop paying no-op invalidations and rebuilds.
        """
        if not self._alias_rows:
            return
        cache = self._alias_rows
        rows = np.unique(np.concatenate([us, vs]))
        if self._primed_mask is not None:
            rows = rows[self._primed_mask[rows]]
        for r in rows.tolist():
            cache.pop(r, None)

    # -- extraction ----------------------------------------------------------

    def restricted_view(self, rows: np.ndarray
                        ) -> tuple[AdjacencyView, np.ndarray | None]:
        """Restricted adjacency over the live edges, rows = ``rows``.

        Returns ``(view, slot_mult)`` where ``slot_mult`` (``None`` for
        an implicit all-ones store) gives each CSR slot's logical copy
        count — what the walk engine needs for per-copy resistances.
        Bit-identical to a from-scratch
        ``adjacency_restricted`` build on the compacted live graph
        (modulo ``edge_id``, which indexes this store).
        """
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        eid_u, _ = _gather_row_slices(self._u_indptr, self._u_slots, rows)
        eid_u = eid_u[self._balive[eid_u]]
        eid_v, _ = _gather_row_slices(self._v_indptr, self._v_slots, rows)
        eid_v = eid_v[self._balive[eid_v]]
        if self._size > self._epoch_m:
            member = np.zeros(self.n, dtype=bool)
            member[rows] = True
            sl = slice(self._epoch_m, self._size)
            t_alive = self._balive[sl]
            app_u = np.flatnonzero(member[self._bu[sl]] & t_alive) \
                + self._epoch_m
            app_v = np.flatnonzero(member[self._bv[sl]] & t_alive) \
                + self._epoch_m
            eid_u = np.concatenate([eid_u, app_u])
            eid_v = np.concatenate([eid_v, app_v])
        # Canonical slot order (matches adjacency_restricted): group by
        # source row; within a row all u-side half-edges by edge index,
        # then all v-side.  Epoch gathers are row-grouped with ascending
        # ids and appended ids exceed every epoch id, so a stable
        # lexsort on (side, row) restores exactly that order.
        eid = np.concatenate([eid_u, eid_v])
        side = np.zeros(eid.size, dtype=np.int8)
        side[eid_u.size:] = 1
        src = np.where(side == 0, self.u[eid], self.v[eid])
        order = np.lexsort((side, src))
        eid = eid[order]
        src = src[order]
        neighbor = np.where(side[order] == 0, self.v[eid], self.u[eid])
        weight = self.w[eid]
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=self.n), out=indptr[1:])
        view = AdjacencyView(indptr=indptr, neighbor=neighbor,
                             weight=weight, edge_id=eid,
                             cumweight=np.cumsum(weight))
        slot_mult = None if self.mult is None else self.mult[eid]
        if ledger_active():
            charge(*P.convert_cost(eid.size), label="inc_csr_extract")
        return view, slot_mult

    def alias_planes(self, rows: np.ndarray, view: AdjacencyView
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Alias sampler planes for ``restricted_view(rows)``'s layout.

        Returns ``(prob, alias, total)`` exactly as
        :func:`repro.sampling.alias.build_alias_tables` would produce
        from the view — bit-identical, asserted by the equality tests —
        but built **incrementally**: each row's Vose table is cached on
        first use and only rows whose incident edges churned since
        (deleted by :meth:`eliminate`, appended by :meth:`insert`) are
        rebuilt, in one batched construction over just those rows.
        ``view`` must be the :meth:`restricted_view` result for the
        same ``rows`` (the planes align with its slots).

        Equality holds because a row's table is a pure function of its
        live weight sequence, which the store presents in a canonical
        per-row order that survives both mutation rounds and epoch
        compaction (module docstring); cached aliases are stored
        row-local and re-offset into each extraction's global slot ids.
        """
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        if not self._alias_primed:
            self.prime_alias()
        indptr = view.indptr
        self._build_alias_rows(rows, view)
        cache = self._alias_rows
        nnz = view.weight.size
        prob = np.empty(nnz, dtype=np.float64)
        alias = np.empty(nnz, dtype=np.int64)
        total = np.zeros(self.n, dtype=np.float64)
        for r in rows.tolist():
            lo, hi = int(indptr[r]), int(indptr[r + 1])
            if hi == lo:
                continue
            pr, al, t = cache[r]
            prob[lo:hi] = pr
            alias[lo:hi] = al + lo
            total[r] = t
        return prob, alias, total

    def prime_alias(self, rows: np.ndarray | None = None) -> None:
        """Prime the alias cache in one batched build (Lemma 2.6's
        linear preprocessing, charged once).

        ``rows`` narrows the prime to the rows that can ever be
        sampled — e.g. ``approx_schur`` passes its interior ``U``, so
        terminal rows (never in any eliminated set) cost neither build
        work nor cache bytes.  ``None`` primes every vertex (right for
        ``block_cholesky``, which eventually eliminates almost all of
        them); rounds after the prime only rebuild rows whose incident
        edges churned.  Calling this is optional — the first
        :meth:`alias_planes` call self-primes over all rows — and
        per-row planes are identical either way (pure per-row
        function), only the build/cache footprint differs.
        """
        self._alias_primed = True
        if rows is None:
            rows = np.arange(self.n, dtype=np.int64)
            self._primed_mask = np.ones(self.n, dtype=bool)
        else:
            rows = np.unique(np.asarray(rows, dtype=np.int64))
            mask = np.zeros(self.n, dtype=bool)
            mask[rows] = True
            self._primed_mask = mask
        if rows.size:
            before = self.alias_built_slots
            self._build_alias_rows(rows, self.restricted_view(rows)[0])
            self.alias_primed_slots += self.alias_built_slots - before

    def _build_alias_rows(self, rows: np.ndarray,
                          view: AdjacencyView) -> None:
        """Build (and cache) alias tables for ``rows`` not yet cached.

        ``view`` must be a restricted view covering at least ``rows``;
        the missing rows' weight sequences are sliced out of it into a
        mini-CSR and built in one batched pass — per-row results are
        bit-identical to a whole-view build (per-row independence of
        :func:`build_alias_tables`).
        """
        indptr = view.indptr
        cache = self._alias_rows
        missing = [r for r in rows.tolist()
                   if r not in cache and indptr[r + 1] > indptr[r]]
        if missing:
            miss = np.asarray(missing, dtype=np.int64)
            if self._primed_mask is not None:
                # Keep the invariant "cached rows ⊆ primed mask" so the
                # narrowed invalidation can never skip a live entry.
                self._primed_mask[miss] = True
            lens = indptr[miss + 1] - indptr[miss]
            mini_indptr = np.zeros(miss.size + 1, dtype=np.int64)
            np.cumsum(lens, out=mini_indptr[1:])
            w_mini, _ = _gather_row_slices(indptr, view.weight, miss)
            prob_m, alias_m, tot_m = build_alias_tables(mini_indptr, w_mini)
            for t, r in enumerate(miss.tolist()):
                lo, hi = int(mini_indptr[t]), int(mini_indptr[t + 1])
                # Copy the prob slice: a view would keep the whole
                # batch plane alive (and uncounted by nbytes) for as
                # long as any one row survives invalidation.  The
                # alias slice is already a fresh array (`- lo`).
                cache[r] = (prob_m[lo:hi].copy(), alias_m[lo:hi] - lo,
                            float(tot_m[t]))
            self.alias_built_slots += int(w_mini.size)
            if ledger_active():
                charge(*P.sampler_build_cost(int(w_mini.size)),
                       label="alias_build")

    def interior_degrees(self, rows: np.ndarray) -> InteriorDegreeOracle:
        """Degree oracle for the live edges induced on ``rows``.

        Serves the 5DD-subset scan without rebuilding the induced
        interior subgraph: gathers the ``rows`` rows from both sides of
        the epoch index (plus the appended tail), keeps the half-edges
        whose *other* endpoint is also in ``rows``, and hands the
        result to an :class:`InteriorDegreeOracle` — degrees are
        bit-identical to the rebuild path (see the oracle docstring for
        the summation-order argument).  Cost: O(epoch-degree of
        ``rows`` + appended tail), not O(stored edges).
        """
        rows = np.unique(np.asarray(rows, dtype=np.int64))
        member = np.zeros(self.n, dtype=bool)
        member[rows] = True
        eid_u, src_u = _gather_row_slices(self._u_indptr, self._u_slots,
                                          rows)
        keep = self._balive[eid_u] & member[self._bv[eid_u]]
        eid_u, src_u = eid_u[keep], src_u[keep]
        eid_v, src_v = _gather_row_slices(self._v_indptr, self._v_slots,
                                          rows)
        keep = self._balive[eid_v] & member[self._bu[eid_v]]
        eid_v, src_v = eid_v[keep], src_v[keep]
        gathered = eid_u.size + eid_v.size
        if self._size > self._epoch_m:
            sl = slice(self._epoch_m, self._size)
            both = (self._balive[sl] & member[self._bu[sl]]
                    & member[self._bv[sl]])
            app = np.flatnonzero(both) + self._epoch_m
            eid_u = np.concatenate([eid_u, app])
            src_u = np.concatenate([src_u, self._bu[app]])
            eid_v = np.concatenate([eid_v, app])
            src_v = np.concatenate([src_v, self._bv[app]])
        if ledger_active():
            charge(*P.map_cost(gathered + (self._size - self._epoch_m)),
                   label="inc_csr_interior_deg")
        return InteriorDegreeOracle(
            self.n,
            src_u, self._bv[eid_u], self._bw[eid_u],
            src_v, self._bu[eid_v], self._bw[eid_v])

    def live_graph(self) -> MultiGraph:
        """The equivalent compacted working graph (testing/diagnostics)."""
        keep = self.alive
        return MultiGraph(self.n, self.u[keep], self.v[keep], self.w[keep],
                          mult=None if self.mult is None
                          else self.mult[keep],
                          validate=False)